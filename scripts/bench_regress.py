#!/usr/bin/env python3
"""Bench regression gate: fresh BENCH_*.json vs checked-in baselines.

Usage: bench_regress.py [--fresh DIR] [--baselines DIR] [--update]

Compares every baseline in bench/baselines/ against the BENCH_<name>.json
of the same name in the fresh directory (default: the current directory,
where the check_build.sh smoke runs drop them). Two failure classes:

  * wall regression: a measurement's wall_seconds grew more than 25% over
    baseline. Walls under the 0.05 s floor are skipped — at smoke scales
    scheduler jitter dominates and a relative gate would only flake.
  * invocation drift: any change in any measurement's per-function
    invocation counts. These are exact and deterministic (the paper's
    measurement currency), so any delta is a real behavior change —
    a placement flip, a caching bug, a transfer regression — never noise.

A third check closes a hole the per-file comparison cannot see: every
baselined bench name must appear in BENCH_summary.json (the aggregate the
smoke run writes from the benches it actually executed). A stale
BENCH_<name>.json left in the fresh directory would otherwise let a
deleted or renamed bench keep passing the gate forever.

Run with --update to rewrite the baselines from the fresh files (after a
deliberate, explained behavior change).
"""

import argparse
import json
import os
import sys

WALL_REGRESSION_LIMIT = 0.25
WALL_FLOOR_SECONDS = 0.05


def load(path):
    with open(path) as f:
        return json.load(f)


def by_algorithm(bench):
    out = {}
    for m in bench.get("measurements", []):
        out[m["algorithm"]] = m
    return out


def compare(name, baseline, fresh):
    """Returns a list of failure strings for one bench."""
    failures = []
    base_bars = by_algorithm(baseline)
    fresh_bars = by_algorithm(fresh)

    missing = sorted(set(base_bars) - set(fresh_bars))
    if missing:
        failures.append(f"{name}: measurements vanished: {missing}")
    for algo in sorted(set(fresh_bars) - set(base_bars)):
        print(f"  {name}/{algo}: new measurement (no baseline yet)")

    for algo in sorted(set(base_bars) & set(fresh_bars)):
        base, new = base_bars[algo], fresh_bars[algo]

        base_inv = base.get("invocations", {})
        new_inv = new.get("invocations", {})
        if base_inv != new_inv:
            drift = {
                fn: (base_inv.get(fn), new_inv.get(fn))
                for fn in sorted(set(base_inv) | set(new_inv))
                if base_inv.get(fn) != new_inv.get(fn)
            }
            failures.append(
                f"{name}/{algo}: invocation counts changed "
                f"(baseline, fresh): {drift}")

        base_wall = base.get("wall_seconds", 0.0)
        new_wall = new.get("wall_seconds", 0.0)
        if base_wall < WALL_FLOOR_SECONDS:
            continue  # Too fast to gate: jitter would dominate.
        if new_wall > base_wall * (1.0 + WALL_REGRESSION_LIMIT):
            failures.append(
                f"{name}/{algo}: wall regression {base_wall:.3f}s -> "
                f"{new_wall:.3f}s "
                f"(+{(new_wall / base_wall - 1.0) * 100.0:.0f}%, "
                f"limit +{WALL_REGRESSION_LIMIT * 100.0:.0f}%)")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", default=".",
                        help="directory holding fresh BENCH_*.json")
    parser.add_argument("--baselines", default="bench/baselines",
                        help="directory holding checked-in baselines")
    parser.add_argument("--update", action="store_true",
                        help="rewrite baselines from the fresh files")
    parser.add_argument("--summary", default=None,
                        help="BENCH_summary.json of the smoke run (default: "
                             "<fresh>/BENCH_summary.json)")
    args = parser.parse_args()

    if not os.path.isdir(args.baselines):
        print(f"no baseline directory {args.baselines}; nothing to gate")
        return 0

    names = sorted(
        f for f in os.listdir(args.baselines)
        if f.startswith("BENCH_") and f.endswith(".json"))
    if not names:
        print(f"no baselines under {args.baselines}; nothing to gate")
        return 0

    failures = []
    compared = 0
    for fname in names:
        fresh_path = os.path.join(args.fresh, fname)
        base_path = os.path.join(args.baselines, fname)
        if not os.path.exists(fresh_path):
            failures.append(
                f"{fname}: baseline exists but the smoke run produced no "
                f"fresh file at {fresh_path}")
            continue
        if args.update:
            with open(fresh_path) as src, open(base_path, "w") as dst:
                dst.write(src.read())
            print(f"  {fname}: baseline updated")
            continue
        failures.extend(compare(fname, load(base_path), load(fresh_path)))
        compared += 1

    if args.update:
        print(f"updated {len(names)} baseline(s)")
        return 0

    # Baselined benches must have actually run: their names must appear in
    # the smoke run's BENCH_summary.json aggregate, or a stale fresh file
    # could mask a deleted/renamed bench indefinitely.
    summary_path = args.summary or os.path.join(args.fresh,
                                                "BENCH_summary.json")
    if os.path.exists(summary_path):
        ran = set(load(summary_path))
        for fname in names:
            bench_name = fname[len("BENCH_"):-len(".json")]
            if bench_name not in ran:
                failures.append(
                    f"{fname}: baselined bench '{bench_name}' missing from "
                    f"{summary_path} — deleted or renamed without "
                    f"re-baselining?")
    else:
        print(f"no {summary_path}; skipped baselined-name membership check")

    if failures:
        print(f"bench regression gate FAILED ({len(failures)} issue(s)):")
        for f in failures:
            print(f"  {f}")
        print("intended change? re-baseline with: "
              "scripts/bench_regress.py --update")
        return 1
    print(f"bench regression gate ok: {compared} bench(es) within limits")
    return 0


if __name__ == "__main__":
    sys.exit(main())
