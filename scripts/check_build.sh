#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
# src/obs/ is compiled with -Wall -Wextra -Werror (set in its
# CMakeLists.txt), so warnings in the observability layer fail this check.
#
# After the tests, a traced query is piped through the SQL shell and the
# dumped Chrome trace-event JSON is validated (with python3's json module
# when available) — the span tracer must emit loadable traces, not just
# pass its unit tests.
#
# The Bloom-filter transfer bench then runs in smoke mode (small
# PPP_SCALE) and its BENCH_transfer.json is validated: the ≥2× UDF
# reduction and result-identity invariants are asserted by the bench's own
# exit code.
#
# The statistics subsystem is smoke-tested through the shell: ANALYZE a
# table, EXPLAIN a query against it, and grep the provenance tag (~stats)
# the plan must now carry. bench_stats then demonstrates the ANALYZE-only
# placement flip (8x fewer expensive invocations, feedback store empty)
# and every BENCH_*.json produced by the smoke runs is aggregated into
# BENCH_summary.json — before the regression gate runs, so the gate can
# verify every baselined bench actually executed.
#
# The plan-lifecycle smoke drives the same query text through the shell
# under two placement algorithms (with an ANALYZE in between): the second
# execution must be flagged as a plan change in \plans, the history must
# be SELECTable as ppp_plan_history, and \audit must report per-operator
# cardinality rows. bench_plans then asserts the end-to-end lifecycle at
# smoke scale: <2% overhead with audit+history on, result/invocation
# parity across {off,on} x {1,4} workers, and the ANALYZE-induced flip
# recorded as two fingerprints for one text_hash with exactly one
# plan.changed tick and one flagged query-log record.
#
# The columnar-execution bench runs in smoke mode too: bench_vector
# asserts the >= 5x cheap-chain speedup of the vectorized fast path and
# exact result/invocation parity across {vectorized off,on} x {1,4}
# workers.
#
# A second pass rebuilds under ThreadSanitizer (-DPPP_SANITIZE=thread) and
# reruns the suite with span tracing forced on (PPP_TRACE_SPANS=1) — the
# parallel predicate evaluator, thread pool, sharded caches, the span
# ring buffer, and ANALYZE's snapshot swap against running queries
# (stats_test's concurrency case) must be race-free, not just
# correct-by-luck. The transfer bench repeats under TSan (transfer
# enabled, 4 workers) so concurrent Bloom probes against the publish/kill
# transitions are race-checked end to end, and bench_vector repeats there
# as well so parallel UDF evaluation over columnar survivors is too. Skip
# both with SKIP_TSAN=1 when iterating.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Traced-query smoke test: run a parallel expensive-predicate query with
# spans on, dump the trace, and check the JSON parses.
TRACE_FILE="$BUILD_DIR/check_trace.json"
rm -f "$TRACE_FILE"
"$BUILD_DIR/examples/sql_shell" >/dev/null <<EOF
\\spans on
\\set workers 4
\\set transfer on
SELECT * FROM t3, t10 WHERE t3.ua = t10.ua1 AND costly100(t10.ua);
\\spans dump $TRACE_FILE
\\quit
EOF
[[ -s "$TRACE_FILE" ]] || { echo "span dump missing: $TRACE_FILE" >&2; exit 1; }
if command -v python3 >/dev/null 2>&1; then
  python3 - "$TRACE_FILE" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "empty traceEvents"
cats = {e["cat"] for e in events}
for expected in ("query", "frontend", "optimize", "exec"):
    assert expected in cats, f"missing span category {expected}: {sorted(cats)}"
print(f"trace ok: {len(events)} events, categories {sorted(cats)}")
PYEOF
else
  echo "python3 not found; skipped trace JSON validation"
fi

# Transfer bench smoke: the bench itself asserts ≥2× UDF reduction, lower
# wall time, and identical results across {transfer off,on} × {1,4}
# workers, exiting non-zero otherwise.
rm -f BENCH_transfer.json
PPP_SCALE=40 PPP_BENCH_JSON=1 "$BUILD_DIR/bench/bench_transfer"
[[ -s BENCH_transfer.json ]] || {
  echo "missing BENCH_transfer.json" >&2; exit 1;
}
if command -v python3 >/dev/null 2>&1; then
  python3 - BENCH_transfer.json <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    bench = json.load(f)
configs = [m["algorithm"] for m in bench["measurements"]]
for expected in ("off-w1", "off-w4", "on-w1", "on-w4"):
    assert expected in configs, f"missing config {expected}: {configs}"
print(f"BENCH_transfer.json ok: {configs}")
PYEOF
fi

# Statistics smoke test: ANALYZE through the shell, then EXPLAIN a query
# whose selectivity must now come from collected statistics — the plan
# line has to carry the ~stats provenance tag (and ~decl after stats are
# switched back off).
STATS_OUT="$BUILD_DIR/check_stats.out"
"$BUILD_DIR/examples/sql_shell" >"$STATS_OUT" <<EOF
ANALYZE t3;
EXPLAIN SELECT * FROM t3 WHERE t3.a10 = 5 AND costly100(t3.ua);
\\set stats off
EXPLAIN SELECT * FROM t3 WHERE t3.a10 = 5 AND costly100(t3.ua);
\\quit
EOF
grep -q "analyzed t3" "$STATS_OUT" || {
  echo "shell ANALYZE produced no summary" >&2; exit 1;
}
grep -q -- "~stats" "$STATS_OUT" || {
  echo "EXPLAIN after ANALYZE lacks ~stats provenance tag" >&2
  cat "$STATS_OUT" >&2; exit 1;
}
grep -q -- "~decl" "$STATS_OUT" || {
  echo "EXPLAIN with stats off lacks ~decl provenance tag" >&2
  cat "$STATS_OUT" >&2; exit 1;
}
echo "stats smoke ok: ANALYZE + provenance tags present"

# Stats bench smoke: bench_stats asserts the ANALYZE-only placement flip
# (invocations drop by the join fan-out, wall time improves, identical
# results, feedback store empty), exiting non-zero otherwise.
rm -f BENCH_stats.json
PPP_SCALE=40 PPP_BENCH_JSON=1 "$BUILD_DIR/bench/bench_stats"
[[ -s BENCH_stats.json ]] || {
  echo "missing BENCH_stats.json" >&2; exit 1;
}

# Introspection smoke: a query against a base table must leave a
# ppp_query_log row SELECTable through the ordinary SQL path, and \log must
# show it. Both SELECTs print "1 rows;" (the count aggregate row).
INTRO_OUT="$BUILD_DIR/check_introspect.out"
"$BUILD_DIR/examples/sql_shell" >"$INTRO_OUT" <<EOF
SELECT count(*) FROM t3;
SELECT count(*) FROM ppp_query_log;
\\log
\\quit
EOF
[[ "$(grep -c "^1 rows;" "$INTRO_OUT")" -ge 2 ]] || {
  echo "system-table SELECT smoke failed" >&2; cat "$INTRO_OUT" >&2; exit 1;
}
grep -q " logged," "$INTRO_OUT" || {
  echo "\\log printed no query-log summary" >&2
  cat "$INTRO_OUT" >&2; exit 1;
}
echo "introspection smoke ok: ppp_query_log SELECTable, \\log reports"

# Introspection bench: asserts <2% query-log overhead on the Q1-Q5 mix and
# runs the analytical join over ppp_query_log x ppp_metrics_window.
rm -f BENCH_introspect.json
PPP_SCALE=40 PPP_BENCH_JSON=1 "$BUILD_DIR/bench/bench_introspect"
[[ -s BENCH_introspect.json ]] || {
  echo "missing BENCH_introspect.json" >&2; exit 1;
}

# Vector bench smoke: bench_vector asserts the >= 5x cheap-chain speedup
# of the columnar fast path and byte-identical results plus exact UDF
# invocation parity across {vectorized off,on} x {1,4} workers, exiting
# non-zero otherwise.
rm -f BENCH_vector.json
PPP_SCALE=40 PPP_BENCH_JSON=1 "$BUILD_DIR/bench/bench_vector"
[[ -s BENCH_vector.json ]] || {
  echo "missing BENCH_vector.json" >&2; exit 1;
}
if command -v python3 >/dev/null 2>&1; then
  python3 - BENCH_vector.json <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    bench = json.load(f)
configs = [m["algorithm"] for m in bench["measurements"]]
for expected in ("chain-scalar", "chain-vector", "udf-off-w1", "udf-off-w4",
                 "udf-on-w1", "udf-on-w4"):
    assert expected in configs, f"missing config {expected}: {configs}"
print(f"BENCH_vector.json ok: {configs}")
PYEOF
fi

# Plan-lifecycle smoke: the same query text twice (ANALYZE between), then
# once more under a different placement algorithm — a real plan change the
# history must flag. The history and audit must answer through the
# ordinary SQL path and through their shell views.
PLANS_OUT="$BUILD_DIR/check_plans.out"
"$BUILD_DIR/examples/sql_shell" >"$PLANS_OUT" <<EOF
SELECT * FROM t3, t10 WHERE t3.ua = t10.ua1 AND costly100(t10.ua);
ANALYZE t10;
SELECT * FROM t3, t10 WHERE t3.ua = t10.ua1 AND costly100(t10.ua);
\\algorithm pushdown
SELECT * FROM t3, t10 WHERE t3.ua = t10.ua1 AND costly100(t10.ua);
SELECT count(*) FROM ppp_plan_history;
\\plans
\\audit 5
\\quit
EOF
grep -q "^1 rows;" "$PLANS_OUT" || {
  echo "SELECT over ppp_plan_history failed" >&2
  cat "$PLANS_OUT" >&2; exit 1;
}
grep -q "CHANGED" "$PLANS_OUT" || {
  echo "\\plans shows no CHANGED flag after the algorithm flip" >&2
  cat "$PLANS_OUT" >&2; exit 1;
}
grep -q "1 change(s)" "$PLANS_OUT" || {
  echo "\\plans footer does not count the plan change" >&2
  cat "$PLANS_OUT" >&2; exit 1;
}
grep -q " audited," "$PLANS_OUT" || {
  echo "\\audit printed no operator-audit summary" >&2
  cat "$PLANS_OUT" >&2; exit 1;
}
echo "plan-lifecycle smoke ok: change flagged, history + audit SELECTable"

# Plan-lifecycle bench: asserts <2% audit+history overhead, off/on parity
# at 1 and 4 workers, and the ANALYZE-induced flip landing in the history
# as two fingerprints with one plan.changed tick and one flagged log row.
rm -f BENCH_plans.json
PPP_SCALE=40 PPP_BENCH_JSON=1 "$BUILD_DIR/bench/bench_plans"
[[ -s BENCH_plans.json ]] || {
  echo "missing BENCH_plans.json" >&2; exit 1;
}

# Serving-layer smoke: two shell sessions over one plan cache. The repeat
# in session 1 and the first run in session 2 must both HIT (cross-session
# sharing); ANALYZE t3 in session 2 must invalidate the cached plan, so
# session 1's next run is a miss and \session reports the invalidation.
SERVE_OUT="$BUILD_DIR/check_serve.out"
"$BUILD_DIR/examples/sql_shell" >"$SERVE_OUT" <<EOF
SELECT * FROM t3, t10 WHERE t3.ua = t10.ua1 AND costly100(t10.ua);
SELECT * FROM t3, t10 WHERE t3.ua = t10.ua1 AND costly100(t10.ua);
\\session new
SELECT * FROM t3, t10 WHERE t3.ua = t10.ua1 AND costly100(t10.ua);
ANALYZE t3;
\\session 1
SELECT * FROM t3, t10 WHERE t3.ua = t10.ua1 AND costly100(t10.ua);
\\session
SELECT count(*) FROM ppp_plan_cache;
SELECT count(*) FROM ppp_sessions;
\\quit
EOF
[[ "$(grep -c "plan cache HIT" "$SERVE_OUT")" -ge 2 ]] || {
  echo "plan cache produced no cross-session hits" >&2
  cat "$SERVE_OUT" >&2; exit 1;
}
grep -q "invalidations=1" "$SERVE_OUT" || {
  echo "ANALYZE did not invalidate the cached plan" >&2
  cat "$SERVE_OUT" >&2; exit 1;
}
[[ "$(grep -c "^1 rows;" "$SERVE_OUT")" -ge 2 ]] || {
  echo "ppp_plan_cache / ppp_sessions not SELECTable" >&2
  cat "$SERVE_OUT" >&2; exit 1;
}
echo "serve smoke ok: cross-session hits, ANALYZE invalidation, system tables"

# Serving bench smoke: bench_serve asserts >= 10x plan-production speedup
# on repeats, >= 3x QPS scaling from 1 to 8 sessions, byte-identical
# results, and exact UDF invocation parity vs plancache off, exiting
# non-zero otherwise.
rm -f BENCH_serve.json
PPP_SCALE=40 PPP_BENCH_JSON=1 "$BUILD_DIR/bench/bench_serve"
[[ -s BENCH_serve.json ]] || {
  echo "missing BENCH_serve.json" >&2; exit 1;
}

# Network server smoke: ppp_server on an ephemeral port, driven by
# ppp_client over real TCP. A plain QUERY, then PREPARE/EXECUTE with two
# distinct literals — the second EXECUTE must ride the family (generic)
# plan-cache entry — then a SHUTDOWN frame, which must drain and stop the
# server (the background process exits on its own).
NET_OUT="$BUILD_DIR/check_net_server.out"
NET_CLIENT_OUT="$BUILD_DIR/check_net_client.out"
PPP_SCALE=40 PPP_PORT=0 "$BUILD_DIR/examples/ppp_server" >"$NET_OUT" &
NET_PID=$!
NET_PORT=""
for _ in $(seq 1 100); do
  NET_PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$NET_OUT")"
  [[ -n "$NET_PORT" ]] && break
  sleep 0.1
done
[[ -n "$NET_PORT" ]] || {
  echo "ppp_server did not come up" >&2; cat "$NET_OUT" >&2
  kill "$NET_PID" 2>/dev/null; exit 1;
}
"$BUILD_DIR/examples/ppp_client" "$NET_PORT" \
  "QUERY SELECT * FROM t3, t10 WHERE t3.ua = t10.ua1 AND costly100(t10.ua);" \
  "PREPARE byrange AS SELECT t3.a FROM t3 WHERE t3.a < \$1;" \
  "EXECUTE byrange(5);" \
  "EXECUTE byrange(7);" \
  "PING" \
  "CLOSE" >"$NET_CLIENT_OUT"
grep -q "hit=1 generic=1" "$NET_CLIENT_OUT" || {
  echo "EXECUTE with a new literal did not hit the family cache" >&2
  cat "$NET_CLIENT_OUT" >&2; kill "$NET_PID" 2>/dev/null; exit 1;
}
grep -q "OK pong" "$NET_CLIENT_OUT" || {
  echo "PING over the socket failed" >&2
  cat "$NET_CLIENT_OUT" >&2; kill "$NET_PID" 2>/dev/null; exit 1;
}
# Concurrent 2-client HIT check: the QUERY above filled the shared plan
# cache, so two clients racing the same statement from fresh connections
# must both ride it (hit=1 on each).
NET_SQL="QUERY SELECT * FROM t3, t10 WHERE t3.ua = t10.ua1 AND costly100(t10.ua);"
"$BUILD_DIR/examples/ppp_client" "$NET_PORT" "$NET_SQL" \
  >"$BUILD_DIR/check_net_c2.out" &
NET_C2=$!
"$BUILD_DIR/examples/ppp_client" "$NET_PORT" "$NET_SQL" \
  >"$BUILD_DIR/check_net_c3.out" &
NET_C3=$!
wait "$NET_C2" && wait "$NET_C3" || {
  echo "concurrent ppp_client run failed" >&2
  kill "$NET_PID" 2>/dev/null; exit 1;
}
grep -q "hit=1" "$BUILD_DIR/check_net_c2.out" \
  && grep -q "hit=1" "$BUILD_DIR/check_net_c3.out" || {
  echo "concurrent clients did not hit the shared plan cache" >&2
  cat "$BUILD_DIR/check_net_c2.out" "$BUILD_DIR/check_net_c3.out" >&2
  kill "$NET_PID" 2>/dev/null; exit 1;
}
"$BUILD_DIR/examples/ppp_client" "$NET_PORT" "SHUTDOWN" >>"$NET_CLIENT_OUT"
wait "$NET_PID" || {
  echo "ppp_server exited non-zero after SHUTDOWN" >&2
  cat "$NET_OUT" >&2; exit 1;
}
grep -q "ppp_server stopped" "$NET_OUT" || {
  echo "ppp_server did not drain on SHUTDOWN" >&2
  cat "$NET_OUT" >&2; exit 1;
}
echo "net smoke ok: QUERY, PREPARE/EXECUTE family hit, concurrent 2-client HIT, PING, SHUTDOWN drain"

# Network bench smoke: bench_server asserts byte-identical results and
# exact UDF parity over TCP, >= 10x prepared-statement plan-production
# speedup, QPS/p50/p99 at 1/4/8/16 clients, and shed-not-hang at 2x queue
# depth, exiting non-zero otherwise.
rm -f BENCH_server.json
PPP_SCALE=40 PPP_BENCH_JSON=1 "$BUILD_DIR/bench/bench_server"
[[ -s BENCH_server.json ]] || {
  echo "missing BENCH_server.json" >&2; exit 1;
}

# Aggregate every BENCH_*.json the smoke runs produced into one
# BENCH_summary.json keyed by bench name. Runs before the regression gate
# so the gate can check every baselined bench name appears in it.
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'PYEOF'
import glob, json
summary = {}
for path in sorted(glob.glob("BENCH_*.json")):
    if path == "BENCH_summary.json":
        continue
    with open(path) as f:
        bench = json.load(f)
    name = bench.get("bench", path[len("BENCH_"):-len(".json")])
    configs = [m["algorithm"] for m in bench["measurements"]]
    summary[name] = bench
    print(f"  {path}: {configs}")
assert "stats" in summary, f"BENCH_stats.json missing from {sorted(summary)}"
with open("BENCH_summary.json", "w") as f:
    json.dump(summary, f, indent=1)
print(f"BENCH_summary.json ok: {sorted(summary)}")
PYEOF
else
  echo "python3 not found; skipped BENCH_summary.json aggregation"
fi

# Regression gate: fresh smoke BENCH_*.json vs the checked-in baselines.
# Fails on >25% wall regressions (above the 0.05 s jitter floor), any
# invocation-count drift, or a baselined bench missing from the summary.
# Re-baseline deliberate changes with --update.
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/bench_regress.py
else
  echo "python3 not found; skipped bench regression gate"
fi

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  cmake -B "$TSAN_BUILD_DIR" -S . -DPPP_SANITIZE=thread
  cmake --build "$TSAN_BUILD_DIR" -j "$(nproc)"
  PPP_TRACE_SPANS=1 ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure \
    -j "$(nproc)"
  # Transfer enabled + parallel workers under TSan: concurrent Bloom
  # probes, the filter publish, and the kill-switch CAS all race-checked.
  PPP_SCALE=40 PPP_BENCH_JSON=0 "$TSAN_BUILD_DIR/bench/bench_transfer"
  # Vectorized path under TSan with 4 workers: the UDF phase drives
  # parallel expensive evaluation over columnar survivors. The speedup
  # floor is lifted (sanitizer skews wall ratios); parity still gates.
  PPP_SCALE=40 PPP_BENCH_JSON=0 PPP_VECTOR_MIN_SPEEDUP=1 \
    "$TSAN_BUILD_DIR/bench/bench_vector"
  # Serving layer under TSan: 8 concurrent sessions racing the plan
  # cache, the catalog stats listener, and the shared predicate caches.
  # Wall-ratio floors are lifted (sanitizer skews timings); result
  # identity and UDF invocation parity still gate.
  PPP_SCALE=40 PPP_BENCH_JSON=0 PPP_SERVE_MIN_OPT_SPEEDUP=1 \
    PPP_SERVE_MIN_SCALING=1 "$TSAN_BUILD_DIR/bench/bench_serve"
  # Network server under TSan: up to 16 TCP clients racing the accept
  # loop, reader threads, admission queue, and per-connection write locks
  # (the acceptance bar is clean at 8). The prepared-statement speedup
  # floor is lifted; result identity, UDF parity, and shed-not-hang gate.
  PPP_SCALE=40 PPP_BENCH_JSON=0 PPP_SERVER_MIN_PREP_SPEEDUP=1 \
    "$TSAN_BUILD_DIR/bench/bench_server"
fi
