#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
# src/obs/ is compiled with -Wall -Wextra -Werror (set in its
# CMakeLists.txt), so warnings in the observability layer fail this check.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
