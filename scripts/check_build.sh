#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
# src/obs/ is compiled with -Wall -Wextra -Werror (set in its
# CMakeLists.txt), so warnings in the observability layer fail this check.
#
# A second pass rebuilds under ThreadSanitizer (-DPPP_SANITIZE=thread) and
# reruns the suite — the parallel predicate evaluator, thread pool, and
# sharded caches must be race-free, not just correct-by-luck. Skip it with
# SKIP_TSAN=1 when iterating.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  cmake -B "$TSAN_BUILD_DIR" -S . -DPPP_SANITIZE=thread
  cmake --build "$TSAN_BUILD_DIR" -j "$(nproc)"
  ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -j "$(nproc)"
fi
