#ifndef PPP_OPTIMIZER_OPTIMIZER_CONTEXT_H_
#define PPP_OPTIMIZER_OPTIMIZER_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "cost/cost_model.h"
#include "expr/predicate.h"
#include "plan/query_spec.h"

namespace ppp::obs {
class OptTrace;
}  // namespace ppp::obs

namespace ppp::optimizer {

/// Bitmask over the query's range variables (≤ 32 tables).
using TableSet = uint32_t;

/// Everything the enumerator and placement algorithms share for one query:
/// the alias binding, the analyzed conjuncts (with table sets precomputed
/// as bitmasks), and the cost model.
class OptimizerContext {
 public:
  /// Binds `spec` against `catalog` and analyzes all conjuncts.
  static common::Result<std::unique_ptr<OptimizerContext>> Build(
      const catalog::Catalog* catalog, const plan::QuerySpec& spec,
      const cost::CostParams& params);

  const plan::QuerySpec& spec() const { return spec_; }
  const catalog::Catalog* catalog() const { return catalog_; }
  const expr::TableBinding& binding() const { return binding_; }
  const cost::CostModel& cost() const { return *cost_; }

  size_t num_tables() const { return spec_.tables.size(); }
  const std::string& AliasAt(size_t i) const { return spec_.tables[i].alias; }

  /// Bit index of an alias; -1 if unknown.
  int AliasIndex(const std::string& alias) const;

  /// Bitmask of the tables referenced by analyzed predicate `p`.
  TableSet PredTables(size_t p) const { return pred_tables_[p]; }

  const std::vector<expr::PredicateInfo>& preds() const { return preds_; }
  const expr::PredicateInfo& pred(size_t p) const { return preds_[p]; }
  size_t num_preds() const { return preds_.size(); }

  /// Indexes of single-table conjuncts over alias bit `i`.
  const std::vector<size_t>& SingleTablePreds(size_t i) const {
    return single_table_preds_[i];
  }

  /// True if some conjunct references tables on both sides.
  bool Connected(TableSet left, TableSet right) const;

  std::string TableSetToString(TableSet set) const;

  /// Optional optimizer-trace sink; nullptr (the default) disables
  /// tracing. Not owned.
  obs::OptTrace* trace() const { return trace_; }
  void set_trace(obs::OptTrace* trace) { trace_ = trace; }

 private:
  OptimizerContext() = default;

  obs::OptTrace* trace_ = nullptr;

  const catalog::Catalog* catalog_ = nullptr;
  plan::QuerySpec spec_;
  expr::TableBinding binding_;
  std::unique_ptr<cost::CostModel> cost_;
  std::vector<expr::PredicateInfo> preds_;
  std::vector<TableSet> pred_tables_;
  std::vector<std::vector<size_t>> single_table_preds_;
};

}  // namespace ppp::optimizer

#endif  // PPP_OPTIMIZER_OPTIMIZER_CONTEXT_H_
