#include "optimizer/migration.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/logging.h"
#include "obs/trace.h"

namespace ppp::optimizer {

namespace {

constexpr int kMaxRounds = 16;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// A (possibly composed) constrained module on a stream.
struct Group {
  double cost = 0.0;
  double selectivity = 1.0;
  size_t start = 0;  // Index of the lowest join in the group.

  double rank() const {
    if (cost < 1e-12) return selectivity < 1.0 ? -kInf : kInf;
    return (selectivity - 1.0) / cost;
  }
};

/// Series composition (§4.4): J2 stacked on J1.
Group Compose(const Group& lower, const Group& upper) {
  Group g;
  g.cost = lower.cost + lower.selectivity * upper.cost;
  g.selectivity = lower.selectivity * upper.selectivity;
  g.start = lower.start;
  return g;
}

bool SubtreeContainsAlias(const plan::PlanNode& node,
                          const std::string& alias) {
  if ((node.kind == plan::PlanKind::kSeqScan ||
       node.kind == plan::PlanKind::kIndexScan) &&
      node.alias == alias) {
    return true;
  }
  for (const plan::PlanPtr& child : node.children) {
    if (SubtreeContainsAlias(*child, alias)) return true;
  }
  return false;
}

/// A filter is free to move along streams iff it is expensive or a
/// secondary join predicate; cheap single-table filters stay glued to
/// their scans.
bool IsMovableFilter(const plan::PlanNode& node) {
  return node.kind == plan::PlanKind::kFilter &&
         (node.predicate.is_expensive() || node.predicate.is_join());
}

}  // namespace

common::Status PredicateMigrator::OptimizeStream(
    plan::PlanPtr* root, const std::string& leaf_alias,
    bool* changed) const {
  // ---- Pass 1 (non-destructive): walk the spine, collect joins with
  // their per-stream info and the movable filters with current slots.
  std::vector<StreamJoin> joins;       // Bottom-up after reversal.
  std::vector<StreamFilter> filters;   // Bottom-up after slot assignment.
  {
    std::vector<StreamJoin> joins_topdown;
    std::vector<plan::PlanNode*> filters_topdown;
    plan::PlanNode* cur = root->get();
    while (true) {
      if (IsMovableFilter(*cur)) {
        filters_topdown.push_back(cur);
        cur = cur->children[0].get();
        continue;
      }
      if (cur->kind == plan::PlanKind::kJoin) {
        const int side =
            SubtreeContainsAlias(*cur->children[0], leaf_alias) ? 0 : 1;
        StreamJoin sj;
        sj.join = cur;
        sj.path_side = side;
        sj.info = cost_->JoinStream(*cur, side);
        joins_topdown.push_back(sj);
        cur = cur->children[static_cast<size_t>(side)].get();
        continue;
      }
      break;  // Leaf block (scan or immovable filter chain).
    }
    joins.assign(joins_topdown.rbegin(), joins_topdown.rend());

    // Slot of a filter = number of stream joins strictly below it. In the
    // top-down walk, a filter collected after `j` joins has k - j joins
    // below it... easier: re-walk assigning directly.
    const size_t k = joins.size();
    size_t joins_seen = 0;
    cur = root->get();
    while (true) {
      if (IsMovableFilter(*cur)) {
        filters.push_back({cur, k - joins_seen});
        cur = cur->children[0].get();
      } else if (cur->kind == plan::PlanKind::kJoin) {
        ++joins_seen;
        const int side =
            SubtreeContainsAlias(*cur->children[0], leaf_alias) ? 0 : 1;
        cur = cur->children[static_cast<size_t>(side)].get();
      } else {
        break;
      }
    }
  }
  if (joins.empty() || filters.empty()) return common::Status::OK();
  const size_t k = joins.size();

  // ---- Eligibility: lowest slot where each filter's tables exist.
  // available[s] = aliases below slot s (leaf block + off-path subtrees of
  // joins 0..s-1).
  std::vector<std::set<std::string>> available(k + 1);
  {
    // The leaf block is the on-path child of joins[0] (or the tree below
    // all filters when k > 0 — derive from joins[0]).
    const StreamJoin& bottom = joins[0];
    plan::PlanNode* leaf_sub =
        bottom.join->children[static_cast<size_t>(bottom.path_side)].get();
    // Skip movable filters that sit between joins[0] and the leaf block;
    // aliases are unaffected by filters.
    for (const std::string& a : leaf_sub->CollectAliases()) {
      available[0].insert(a);
    }
    for (size_t s = 0; s < k; ++s) {
      available[s + 1] = available[s];
      const StreamJoin& sj = joins[s];
      const plan::PlanNode& off_path =
          *sj.join->children[static_cast<size_t>(1 - sj.path_side)];
      for (const std::string& a : off_path.CollectAliases()) {
        available[s + 1].insert(a);
      }
    }
  }
  auto eligibility = [&](const expr::PredicateInfo& pred) -> size_t {
    for (size_t s = 0; s <= k; ++s) {
      bool ok = true;
      for (const std::string& t : pred.tables) {
        if (available[s].count(t) == 0) {
          ok = false;
          break;
        }
      }
      if (ok) return s;
    }
    return k;  // Defensive; every filter's tables exist at the root.
  };

  // ---- Group the joins: merge while ranks decrease going up (§4.4).
  std::vector<Group> groups;
  for (size_t j = 0; j < k; ++j) {
    Group g;
    g.cost = joins[j].info.cost_per_tuple;
    g.selectivity = joins[j].info.selectivity;
    g.start = j;
    groups.push_back(g);
    while (groups.size() >= 2 &&
           groups.back().rank() < groups[groups.size() - 2].rank()) {
      const Group upper = groups.back();
      groups.pop_back();
      const Group lower = groups.back();
      groups.pop_back();
      groups.push_back(Compose(lower, upper));
    }
  }
  if (trace_ != nullptr) {
    // After composition, group ranks are non-decreasing up the stream —
    // the series-parallel invariant the trace test asserts.
    std::vector<double> ranks;
    ranks.reserve(groups.size());
    for (const Group& g : groups) ranks.push_back(g.rank());
    trace_->Add("migration.groups",
                "stream=" + leaf_alias + " joins=" + std::to_string(k) +
                    " groups=" + std::to_string(groups.size()),
                ranks);
  }

  // ---- Desired slot per filter: below the first group of rank >= its
  // own, clamped up to its eligibility point.
  bool any_move = false;
  std::vector<size_t> desired(filters.size());
  for (size_t f = 0; f < filters.size(); ++f) {
    const expr::PredicateInfo& pred = filters[f].filter->predicate;
    const double r = pred.rank();
    size_t slot = k;
    for (const Group& g : groups) {
      if (g.rank() >= r) {
        slot = g.start;
        break;
      }
    }
    slot = std::max(slot, eligibility(pred));
    desired[f] = slot;
    if (slot != filters[f].slot) {
      any_move = true;
      if (trace_ != nullptr) {
        trace_->Add("migration.move",
                    pred.expr->ToString() + " slot " +
                        std::to_string(filters[f].slot) + " -> " +
                        std::to_string(slot),
                    {r});
      }
    }
  }
  if (!any_move) return common::Status::OK();
  *changed = true;

  // ---- Rebuild the spine with filters at their new slots.
  struct PendingFilter {
    expr::PredicateInfo pred;
    size_t slot;
  };
  std::vector<PendingFilter> pending;
  pending.reserve(filters.size());
  for (size_t f = 0; f < filters.size(); ++f) {
    pending.push_back({filters[f].filter->predicate, desired[f]});
  }
  // Stable placement: within a slot, ascending rank bottom-to-top.
  std::stable_sort(pending.begin(), pending.end(),
                   [](const PendingFilter& a, const PendingFilter& b) {
                     if (a.slot != b.slot) return a.slot < b.slot;
                     return a.pred.rank() < b.pred.rank();
                   });

  // Destructive walk: detach the spine.
  plan::PlanPtr cur = std::move(*root);
  std::vector<plan::PlanPtr> join_nodes_topdown;
  std::vector<int> join_sides_topdown;
  plan::PlanPtr leaf_block;
  while (true) {
    if (IsMovableFilter(*cur)) {
      plan::PlanPtr next = std::move(cur->children[0]);
      cur = std::move(next);  // Filter node dropped; preds in `pending`.
      continue;
    }
    if (cur->kind == plan::PlanKind::kJoin) {
      const int side =
          SubtreeContainsAlias(*cur->children[0], leaf_alias) ? 0 : 1;
      plan::PlanPtr next =
          std::move(cur->children[static_cast<size_t>(side)]);
      join_sides_topdown.push_back(side);
      join_nodes_topdown.push_back(std::move(cur));
      cur = std::move(next);
      continue;
    }
    leaf_block = std::move(cur);
    break;
  }
  PPP_CHECK(join_nodes_topdown.size() == k);

  plan::PlanPtr rebuilt = std::move(leaf_block);
  size_t next_pending = 0;
  for (size_t s = 0; s <= k; ++s) {
    while (next_pending < pending.size() &&
           pending[next_pending].slot == s) {
      rebuilt = plan::MakeFilter(std::move(rebuilt),
                                 std::move(pending[next_pending].pred));
      ++next_pending;
    }
    if (s < k) {
      plan::PlanPtr join = std::move(join_nodes_topdown[k - 1 - s]);
      const int side = join_sides_topdown[k - 1 - s];
      join->children[static_cast<size_t>(side)] = std::move(rebuilt);
      rebuilt = std::move(join);
    }
  }
  PPP_CHECK(next_pending == pending.size());
  *root = std::move(rebuilt);
  return cost_->Annotate(root->get());
}

common::Result<int> PredicateMigrator::Migrate(plan::PlanPtr* root) const {
  PPP_RETURN_IF_ERROR(cost_->Annotate(root->get()));

  // Inner-most streams first (§5.2): leaves in right-to-left order.
  std::vector<std::string> leaves = (*root)->CollectAliases();
  std::reverse(leaves.begin(), leaves.end());

  int rounds_with_movement = 0;
  for (int round = 0; round < kMaxRounds; ++round) {
    bool changed = false;
    for (const std::string& leaf : leaves) {
      PPP_RETURN_IF_ERROR(OptimizeStream(root, leaf, &changed));
    }
    if (!changed) break;
    ++rounds_with_movement;
  }
  PPP_RETURN_IF_ERROR(cost_->Annotate(root->get()));
  return rounds_with_movement;
}

}  // namespace ppp::optimizer
