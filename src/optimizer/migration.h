#ifndef PPP_OPTIMIZER_MIGRATION_H_
#define PPP_OPTIMIZER_MIGRATION_H_

#include <vector>

#include "common/status.h"
#include "cost/cost_model.h"
#include "plan/plan_node.h"

namespace ppp::obs {
class OptTrace;
}  // namespace ppp::obs

namespace ppp::optimizer {

/// The Predicate Migration algorithm (§4.4, [HS93a]/[He92]).
///
/// Given a fixed join tree, repeatedly applies the Series-Parallel
/// Algorithm using Parallel Chains [MS79] to every root-to-leaf stream
/// until no predicate moves:
///
///  1. Along one stream, every join is a *constrained* module with the
///     per-stream (selectivity, differential cost) of CostModel::JoinStream,
///     and every expensive/secondary filter is a *free* module.
///  2. Consecutive joins whose ranks decrease going up are composed into
///     groups with rank(J1 J2) = (s1·s2 − 1)/(c1 + s1·c2), until group
///     ranks are non-decreasing up the stream.
///  3. Each free filter is placed below the first group whose rank is ≥
///     its own rank (never below its eligibility point — a secondary join
///     predicate must stay above its primary join).
///
/// Inner streams are processed before outer ones, matching Montage (§5.2).
class PredicateMigrator {
 public:
  /// `trace`, when non-null, receives one "migration.groups" entry per
  /// optimized stream (the composed group ranks, non-decreasing upstream)
  /// and one "migration.move" entry per relocated predicate.
  explicit PredicateMigrator(const cost::CostModel* cost,
                             obs::OptTrace* trace = nullptr)
      : cost_(cost), trace_(trace) {}

  /// Migrates predicates within `*root` (a join/filter tree without a
  /// Project on top). The tree is re-annotated on return. Returns the
  /// number of fixpoint rounds that moved something.
  common::Result<int> Migrate(plan::PlanPtr* root) const;

 private:
  struct StreamJoin {
    plan::PlanNode* join = nullptr;
    int path_side = 0;
    cost::JoinStreamInfo info;
  };
  struct StreamFilter {
    plan::PlanNode* filter = nullptr;
    size_t slot = 0;  // Number of joins below it on this stream.
  };

  /// One pass of the series-parallel algorithm over the stream ending at
  /// scan `leaf_alias`. Sets *changed if a filter moved.
  common::Status OptimizeStream(plan::PlanPtr* root,
                                const std::string& leaf_alias,
                                bool* changed) const;

  const cost::CostModel* cost_;
  obs::OptTrace* trace_ = nullptr;
};

}  // namespace ppp::optimizer

#endif  // PPP_OPTIMIZER_MIGRATION_H_
