#include "optimizer/optimizer.h"

#include <algorithm>
#include <functional>
#include <optional>

#include "common/logging.h"
#include "obs/span.h"
#include "optimizer/join_enumerator.h"
#include "optimizer/migration.h"
#include "optimizer/optimizer_context.h"

namespace ppp::optimizer {

common::Result<OptimizeResult> Optimizer::Optimize(
    const plan::QuerySpec& spec, Algorithm algorithm,
    obs::OptTrace* trace) const {
  std::optional<obs::Span> span;
  if (obs::SpanTracer::Global().enabled()) {
    span.emplace("optimize", "optimize");
    span->AddArg("algorithm", AlgorithmName(algorithm));
  }
  PPP_ASSIGN_OR_RETURN(std::unique_ptr<OptimizerContext> ctx,
                       OptimizerContext::Build(catalog_, spec, params_));
  ctx->set_trace(trace);

  JoinEnumerator enumerator(ctx.get(), OptionsFor(algorithm));
  PPP_ASSIGN_OR_RETURN(std::vector<CandidatePlan> candidates,
                       enumerator.Run());

  OptimizeResult result;
  result.plans_retained = enumerator.plans_retained();
  result.final_candidates = candidates.size();
  result.dp_stats = enumerator.dp_stats();

  if (algorithm == Algorithm::kPullUp) {
    // Paste the omitted expensive predicates on top of every candidate,
    // lowest rank first (§4.2).
    std::vector<size_t> omitted = enumerator.omitted_preds();
    std::sort(omitted.begin(), omitted.end(), [&](size_t a, size_t b) {
      return ctx->pred(a).rank() < ctx->pred(b).rank();
    });
    for (CandidatePlan& cand : candidates) {
      for (size_t p : omitted) {
        cand.plan = plan::MakeFilter(std::move(cand.plan), ctx->pred(p));
      }
      PPP_RETURN_IF_ERROR(ctx->cost().Annotate(cand.plan.get()));
    }
  }

  if (algorithm == Algorithm::kMigration) {
    PredicateMigrator migrator(&ctx->cost(), trace);
    for (CandidatePlan& cand : candidates) {
      PPP_ASSIGN_OR_RETURN(const int rounds, migrator.Migrate(&cand.plan));
      result.migration_rounds = std::max(result.migration_rounds, rounds);
    }
  }

  // Pick the cheapest candidate; with an ORDER BY, an interestingly
  // ordered plan may beat a cheaper unordered one that must sort (the
  // System R payoff for retaining ordered subplans).
  auto effective_cost = [&](const CandidatePlan& cand) {
    double cost = cand.plan->est_cost;
    if (!spec.order_by.empty() &&
        cand.plan->est_order != std::optional<std::string>(spec.order_by)) {
      cost += ctx->cost().SortCost(cost::CostModel::PagesFor(
          cand.plan->est_rows, cand.plan->est_width));
    }
    return cost;
  };
  auto best = std::min_element(
      candidates.begin(), candidates.end(),
      [&](const CandidatePlan& a, const CandidatePlan& b) {
        return effective_cost(a) < effective_cost(b);
      });
  PPP_CHECK(best != candidates.end());
  result.plan = std::move(best->plan);

  if (!spec.order_by.empty() &&
      result.plan->est_order != std::optional<std::string>(spec.order_by)) {
    result.plan = plan::MakeSort(std::move(result.plan), spec.order_by);
    PPP_RETURN_IF_ERROR(ctx->cost().Annotate(result.plan.get()));
  }

  // Aggregate queries: GROUP BY and/or aggregate calls in the select list.
  bool has_aggregates = !spec.group_by.empty();
  for (const expr::ExprPtr& item : spec.select_list) {
    if (item->kind == expr::ExprKind::kFunctionCall &&
        plan::AggregateOpFromName(item->function_name).has_value()) {
      has_aggregates = true;
    }
  }
  if (spec.having != nullptr && !has_aggregates) {
    return common::Status::InvalidArgument(
        "HAVING requires GROUP BY or aggregates in the select list");
  }
  if (has_aggregates) {
    if (spec.select_list.empty()) {
      return common::Status::InvalidArgument(
          "aggregate queries need an explicit select list");
    }
    if (spec.distinct) {
      return common::Status::NotImplemented(
          "SELECT DISTINCT with aggregates is not supported");
    }
    std::vector<plan::AggregateItem> aggregates;
    std::vector<expr::ExprPtr> projections;
    for (size_t i = 0; i < spec.select_list.size(); ++i) {
      const expr::ExprPtr& item = spec.select_list[i];
      const auto op =
          item->kind == expr::ExprKind::kFunctionCall
              ? plan::AggregateOpFromName(item->function_name)
              : std::nullopt;
      if (op.has_value()) {
        if (item->children.size() > 1 ||
            (item->children.empty() &&
             *op != plan::AggregateItem::Op::kCount)) {
          return common::Status::InvalidArgument(
              "aggregate " + item->function_name + " takes one argument");
        }
        plan::AggregateItem agg;
        agg.op = *op;
        agg.arg = item->children.empty() ? nullptr : item->children[0];
        agg.name = "_agg" + std::to_string(i);
        aggregates.push_back(agg);
        projections.push_back(expr::Col("", agg.name));
      } else if (item->kind == expr::ExprKind::kColumnRef) {
        const std::string qualified = item->table + "." + item->column;
        if (std::find(spec.group_by.begin(), spec.group_by.end(),
                      qualified) == spec.group_by.end()) {
          return common::Status::InvalidArgument(
              "select item " + qualified +
              " must appear in GROUP BY or inside an aggregate");
        }
        projections.push_back(item);
      } else {
        return common::Status::InvalidArgument(
            "aggregate-query select items must be group columns or "
            "aggregate calls");
      }
    }
    // HAVING: rewrite its aggregate calls into references to (possibly
    // hidden) aggregate outputs.
    expr::ExprPtr having_rewritten;
    if (spec.having != nullptr) {
      std::function<common::Result<expr::ExprPtr>(const expr::ExprPtr&)>
          rewrite = [&](const expr::ExprPtr& e)
          -> common::Result<expr::ExprPtr> {
        if (e->kind == expr::ExprKind::kFunctionCall) {
          const auto op = plan::AggregateOpFromName(e->function_name);
          if (op.has_value()) {
            plan::AggregateItem agg;
            agg.op = *op;
            agg.arg = e->children.empty() ? nullptr : e->children[0];
            agg.name = "_agg" + std::to_string(spec.select_list.size() +
                                               aggregates.size());
            aggregates.push_back(agg);
            return expr::Col("", agg.name);
          }
        }
        if (e->children.empty()) return e;
        auto copy = std::make_shared<expr::Expr>(*e);
        for (expr::ExprPtr& child : copy->children) {
          PPP_ASSIGN_OR_RETURN(child, rewrite(child));
        }
        return expr::ExprPtr(std::move(copy));
      };
      PPP_ASSIGN_OR_RETURN(having_rewritten, rewrite(spec.having));
    }

    result.plan = plan::MakeAggregate(std::move(result.plan), spec.group_by,
                                      std::move(aggregates));
    if (having_rewritten != nullptr) {
      expr::PredicateInfo having_pred;
      having_pred.expr = having_rewritten;
      having_pred.selectivity = 0.5;  // No statistics over aggregates.
      result.plan =
          plan::MakeFilter(std::move(result.plan), std::move(having_pred));
    }
    result.plan = plan::MakeProject(std::move(result.plan),
                                    std::move(projections),
                                    spec.select_names);
    PPP_RETURN_IF_ERROR(ctx->cost().Annotate(result.plan.get()));
    result.est_cost = result.plan->est_cost;
    return result;
  }

  if (spec.distinct) {
    // SELECT DISTINCT: plan as a grouping with no aggregates. Requires an
    // explicit select list of plain column references.
    if (spec.select_list.empty()) {
      return common::Status::NotImplemented(
          "SELECT DISTINCT * is not supported; name the columns");
    }
    std::vector<std::string> group_columns;
    for (const expr::ExprPtr& item : spec.select_list) {
      if (item->kind != expr::ExprKind::kColumnRef) {
        return common::Status::NotImplemented(
            "SELECT DISTINCT supports plain column references only");
      }
      group_columns.push_back(item->table + "." + item->column);
    }
    result.plan = plan::MakeAggregate(std::move(result.plan),
                                      std::move(group_columns), {});
    result.plan = plan::MakeProject(std::move(result.plan), spec.select_list,
                                    spec.select_names);
    PPP_RETURN_IF_ERROR(ctx->cost().Annotate(result.plan.get()));
    result.est_cost = result.plan->est_cost;
    return result;
  }

  if (!spec.select_list.empty()) {
    result.plan = plan::MakeProject(std::move(result.plan), spec.select_list,
                                    spec.select_names);
    PPP_RETURN_IF_ERROR(ctx->cost().Annotate(result.plan.get()));
  }
  result.est_cost = result.plan->est_cost;
  return result;
}

}  // namespace ppp::optimizer
