#include "optimizer/join_enumerator.h"

#include <algorithm>
#include <bit>
#include <numeric>
#include <optional>

#include "common/logging.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace ppp::optimizer {

namespace {

/// Union-find over table indexes, used to decide whether an expensive join
/// predicate can be omitted (PullUp) without disconnecting the query graph.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

/// If `e` is `col = const` (either side) over `alias` with an int64
/// constant, returns the column name and key.
bool MatchIndexableEquality(const expr::Expr& e, const std::string& alias,
                            std::string* column, types::Value* key) {
  if (e.kind != expr::ExprKind::kComparison ||
      e.compare_op != expr::CompareOp::kEq) {
    return false;
  }
  const expr::Expr& l = *e.children[0];
  const expr::Expr& r = *e.children[1];
  const expr::Expr* col = nullptr;
  const expr::Expr* cst = nullptr;
  if (l.kind == expr::ExprKind::kColumnRef &&
      r.kind == expr::ExprKind::kConstant) {
    col = &l;
    cst = &r;
  } else if (r.kind == expr::ExprKind::kColumnRef &&
             l.kind == expr::ExprKind::kConstant) {
    col = &r;
    cst = &l;
  } else {
    return false;
  }
  if (col->table != alias) return false;
  if (cst->constant.type() != types::TypeId::kInt64) return false;
  *column = col->column;
  *key = cst->constant;
  return true;
}

/// If `e` is a range comparison (`col < c`, `c >= col`, ...) over `alias`
/// with an int64 constant and known column bounds, returns the inclusive
/// B-tree range to scan.
bool MatchIndexableRange(const expr::Expr& e, const std::string& alias,
                         const catalog::Table& table, std::string* column,
                         int64_t* lo, int64_t* hi) {
  if (e.kind != expr::ExprKind::kComparison) return false;
  if (e.compare_op == expr::CompareOp::kEq ||
      e.compare_op == expr::CompareOp::kNe) {
    return false;
  }
  const expr::Expr& l = *e.children[0];
  const expr::Expr& r = *e.children[1];
  const expr::Expr* col = nullptr;
  const expr::Expr* cst = nullptr;
  bool col_on_left = false;
  if (l.kind == expr::ExprKind::kColumnRef &&
      r.kind == expr::ExprKind::kConstant) {
    col = &l;
    cst = &r;
    col_on_left = true;
  } else if (r.kind == expr::ExprKind::kColumnRef &&
             l.kind == expr::ExprKind::kConstant) {
    col = &r;
    cst = &l;
  } else {
    return false;
  }
  if (col->table != alias) return false;
  if (cst->constant.type() != types::TypeId::kInt64) return false;
  const catalog::ColumnStats stats = table.GetColumnStats(col->column);
  if (stats.max_value < stats.min_value ||
      (stats.min_value == 0 && stats.max_value == 0 &&
       stats.num_distinct == 0)) {
    return false;  // No statistics to bound the open side.
  }
  const int64_t c = cst->constant.AsInt64();
  // Normalize to `col OP c`: a constant on the left flips the direction.
  expr::CompareOp op = e.compare_op;
  if (!col_on_left) {
    switch (op) {
      case expr::CompareOp::kLt:
        op = expr::CompareOp::kGt;
        break;
      case expr::CompareOp::kLe:
        op = expr::CompareOp::kGe;
        break;
      case expr::CompareOp::kGt:
        op = expr::CompareOp::kLt;
        break;
      case expr::CompareOp::kGe:
        op = expr::CompareOp::kLe;
        break;
      default:
        return false;
    }
  }
  switch (op) {
    case expr::CompareOp::kLt:
      *lo = stats.min_value;
      *hi = c - 1;
      break;
    case expr::CompareOp::kLe:
      *lo = stats.min_value;
      *hi = c;
      break;
    case expr::CompareOp::kGt:
      *lo = c + 1;
      *hi = stats.max_value;
      break;
    case expr::CompareOp::kGe:
      *lo = c;
      *hi = stats.max_value;
      break;
    default:
      return false;
  }
  *column = col->column;
  return *lo <= *hi;
}

}  // namespace

JoinEnumerator::JoinEnumerator(const OptimizerContext* ctx, EnumOptions opts)
    : ctx_(ctx), opts_(opts) {
  // Connectivity of the cheap-join-predicate graph, for omit decisions.
  UnionFind cheap_graph(ctx_->num_tables());
  for (size_t p = 0; p < ctx_->num_preds(); ++p) {
    const expr::PredicateInfo& pred = ctx_->pred(p);
    if (pred.is_join() && !pred.is_expensive()) {
      const TableSet set = ctx_->PredTables(p);
      int first = -1;
      for (size_t i = 0; i < ctx_->num_tables(); ++i) {
        if (!((set >> i) & 1)) continue;
        if (first < 0) {
          first = static_cast<int>(i);
        } else {
          cheap_graph.Union(static_cast<size_t>(first), i);
        }
      }
    }
  }

  roles_.resize(ctx_->num_preds(), PredRole::kInPlan);
  for (size_t p = 0; p < ctx_->num_preds(); ++p) {
    const expr::PredicateInfo& pred = ctx_->pred(p);
    if (!pred.is_expensive()) continue;

    if (opts_.virtual_selections) {
      // LDL / Exhaustive: every expensive predicate is a DP element.
      roles_[p] = PredRole::kVirtual;
      virtual_preds_.push_back(p);
      continue;
    }
    if (opts_.placement == EnumOptions::Placement::kOmitted) {
      // PullUp: omit unless the predicate is needed as a primary join
      // (its tables are not connected by cheap predicates alone).
      bool omittable = true;
      if (pred.is_join()) {
        const TableSet set = ctx_->PredTables(p);
        int first = -1;
        for (size_t i = 0; i < ctx_->num_tables(); ++i) {
          if (!((set >> i) & 1)) continue;
          if (first < 0) {
            first = static_cast<int>(i);
          } else if (cheap_graph.Find(static_cast<size_t>(first)) !=
                     cheap_graph.Find(i)) {
            omittable = false;
          }
        }
      }
      if (omittable) {
        roles_[p] = PredRole::kOmitted;
        omitted_.push_back(p);
      }
    }
  }
}

bool JoinEnumerator::Feasible(ElemSet set) const {
  const TableSet tables = TablePart(set);
  if (tables == 0 && set != 0) return false;  // Virtuals need a base.
  for (size_t v = 0; v < virtual_preds_.size(); ++v) {
    if ((set >> (ctx_->num_tables() + v)) & 1) {
      const TableSet needed = ctx_->PredTables(virtual_preds_[v]);
      if ((needed & tables) != needed) return false;
    }
  }
  return true;
}

common::Result<std::vector<CandidatePlan>> JoinEnumerator::BaseCandidates(
    size_t table_index) const {
  const std::string& alias = ctx_->AliasAt(table_index);
  const std::string& table_name = ctx_->spec().tables[table_index].table_name;
  const catalog::Table* table = ctx_->binding().at(alias);

  // In-plan single-table conjuncts, cheap before expensive.
  std::vector<size_t> cheap;
  std::vector<size_t> expensive;
  for (size_t p : ctx_->SingleTablePreds(table_index)) {
    if (roles_[p] != PredRole::kInPlan) continue;
    (ctx_->pred(p).is_expensive() ? expensive : cheap).push_back(p);
  }
  std::sort(cheap.begin(), cheap.end(), [&](size_t a, size_t b) {
    return ctx_->pred(a).selectivity < ctx_->pred(b).selectivity;
  });
  std::sort(expensive.begin(), expensive.end(), [&](size_t a, size_t b) {
    return ctx_->pred(a).rank() < ctx_->pred(b).rank();
  });

  const bool place_expensive =
      opts_.placement != EnumOptions::Placement::kOmitted;

  // Access paths: the heap scan, plus one index scan per indexable
  // equality conjunct.
  struct AccessPath {
    plan::PlanPtr plan;
    int absorbed = -1;  // Conjunct index satisfied by the index itself.
  };
  std::vector<AccessPath> paths;
  paths.push_back({plan::MakeSeqScan(alias, table_name), -1});
  for (size_t p : cheap) {
    std::string column;
    types::Value key;
    if (MatchIndexableEquality(*ctx_->pred(p).expr, alias, &column, &key) &&
        table->HasIndex(column)) {
      paths.push_back({plan::MakeIndexScan(alias, table_name, column, key,
                                           ctx_->pred(p)),
                       static_cast<int>(p)});
      continue;
    }
    int64_t lo = 0;
    int64_t hi = 0;
    if (MatchIndexableRange(*ctx_->pred(p).expr, alias, *table, &column,
                            &lo, &hi) &&
        table->HasIndex(column)) {
      paths.push_back({plan::MakeIndexRangeScan(alias, table_name, column,
                                                lo, hi, ctx_->pred(p)),
                       static_cast<int>(p)});
    }
  }

  std::vector<CandidatePlan> out;
  for (AccessPath& path : paths) {
    plan::PlanPtr plan = std::move(path.plan);
    for (size_t p : cheap) {
      if (static_cast<int>(p) == path.absorbed) continue;
      plan = plan::MakeFilter(std::move(plan), ctx_->pred(p));
    }
    if (place_expensive) {
      for (size_t p : expensive) {
        plan = plan::MakeFilter(std::move(plan), ctx_->pred(p));
      }
    }
    PPP_RETURN_IF_ERROR(ctx_->cost().Annotate(plan.get()));
    Offer({std::move(plan), /*unpruneable=*/false}, &out);
  }
  return out;
}

common::Result<bool> JoinEnumerator::HoistByRank(
    plan::PlanNode* join, int side,
    std::vector<expr::PredicateInfo>* floating) const {
  while (true) {
    plan::PlanNode* child = join->children[static_cast<size_t>(side)].get();
    if (child->kind != plan::PlanKind::kFilter ||
        !child->predicate.is_expensive()) {
      break;
    }
    PPP_RETURN_IF_ERROR(ctx_->cost().Annotate(join));
    const cost::JoinStreamInfo info = ctx_->cost().JoinStream(*join, side);
    if (child->predicate.rank() <= info.rank) break;
    if (ctx_->trace() != nullptr) {
      ctx_->trace()->Add("pullrank.hoist",
                         child->predicate.expr->ToString() +
                             (side == 0 ? " (outer)" : " (inner)"),
                         {child->predicate.rank(), info.rank});
    }
    // Pop the filter: splice its input into the join, float the predicate.
    floating->push_back(child->predicate);
    plan::PlanPtr filter =
        std::move(join->children[static_cast<size_t>(side)]);
    join->children[static_cast<size_t>(side)] =
        std::move(filter->children[0]);
  }
  return HasExpensiveFilter(*join->children[static_cast<size_t>(side)]);
}

plan::PlanPtr JoinEnumerator::AttachFilters(
    plan::PlanPtr plan, std::vector<expr::PredicateInfo> floating) {
  std::stable_sort(floating.begin(), floating.end(),
                   [](const expr::PredicateInfo& a,
                      const expr::PredicateInfo& b) {
                     return a.rank() < b.rank();
                   });
  for (expr::PredicateInfo& pred : floating) {
    plan = plan::MakeFilter(std::move(plan), std::move(pred));
  }
  return plan;
}

bool JoinEnumerator::HasExpensiveFilter(const plan::PlanNode& node) {
  if (node.kind == plan::PlanKind::kFilter &&
      node.predicate.is_expensive()) {
    return true;
  }
  for (const plan::PlanPtr& child : node.children) {
    if (HasExpensiveFilter(*child)) return true;
  }
  return false;
}

common::Status JoinEnumerator::CombineWithTable(
    const CandidatePlan& left, TableSet left_tables, size_t table_index,
    std::vector<CandidatePlan>* out) {
  const TableSet e_bit = TableSet{1} << table_index;
  const TableSet result_tables = left_tables | e_bit;
  const std::string& alias = ctx_->AliasAt(table_index);
  const std::string& table_name = ctx_->spec().tables[table_index].table_name;
  const catalog::Table* table = ctx_->binding().at(alias);

  // Join predicates first applicable at this join.
  std::vector<size_t> applicable;
  for (size_t p = 0; p < ctx_->num_preds(); ++p) {
    if (roles_[p] != PredRole::kInPlan) continue;
    const TableSet pt = ctx_->PredTables(p);
    if ((pt & ~result_tables) != 0) continue;
    if ((pt & e_bit) == 0 || (pt & left_tables) == 0) continue;
    applicable.push_back(p);
  }

  std::vector<size_t> cheap_equijoins;
  for (size_t p : applicable) {
    const expr::PredicateInfo& pred = ctx_->pred(p);
    if (pred.is_simple_equijoin && !pred.is_expensive()) {
      cheap_equijoins.push_back(p);
    }
  }

  // Primary for nested loops: minimal rank among applicable (footnote 1).
  int nlj_primary = -1;
  for (size_t p : applicable) {
    if (nlj_primary < 0 ||
        ctx_->pred(p).rank() <
            ctx_->pred(static_cast<size_t>(nlj_primary)).rank()) {
      nlj_primary = static_cast<int>(p);
    }
  }

  struct Variant {
    plan::JoinMethod method;
    int primary;  // Conjunct index, -1 for cross product.
  };
  std::vector<Variant> variants;
  variants.push_back({plan::JoinMethod::kNestLoop, nlj_primary});
  for (size_t p : cheap_equijoins) {
    variants.push_back({plan::JoinMethod::kMerge, static_cast<int>(p)});
    variants.push_back({plan::JoinMethod::kHash, static_cast<int>(p)});
    // Index nested loops needs an index on the inner join column.
    const expr::PredicateInfo& pred = ctx_->pred(p);
    const std::string& inner_col =
        pred.left_table == alias ? pred.left_column : pred.right_column;
    const std::string& inner_tab =
        pred.left_table == alias ? pred.left_table : pred.right_table;
    if (inner_tab == alias && table->HasIndex(inner_col)) {
      variants.push_back(
          {plan::JoinMethod::kIndexNestLoop, static_cast<int>(p)});
    }
  }

  // Inner access plans per variant: the memoized base candidates, except
  // index nested loops which probes the bare table.
  const std::vector<CandidatePlan>& inner_bases = base_cands_[table_index];

  std::vector<CandidatePlan> local;
  for (const Variant& variant : variants) {
    const bool inlj = variant.method == plan::JoinMethod::kIndexNestLoop;
    const size_t inner_count = inlj ? 1 : inner_bases.size();
    for (size_t ib = 0; ib < inner_count; ++ib) {
      plan::PlanPtr outer = left.plan->Clone();
      plan::PlanPtr inner;
      std::vector<expr::PredicateInfo> floating;

      if (inlj) {
        inner = plan::MakeSeqScan(alias, table_name);
        // Index probes retrieve raw tuples; every selection on the inner
        // is necessarily evaluated after the probe, i.e. above the join.
        for (size_t p : ctx_->SingleTablePreds(table_index)) {
          if (roles_[p] != PredRole::kInPlan) continue;
          floating.push_back(ctx_->pred(p));
        }
      } else {
        inner = inner_bases[ib].plan->Clone();
      }

      expr::PredicateInfo primary;
      if (variant.primary >= 0) {
        primary = ctx_->pred(static_cast<size_t>(variant.primary));
      }
      for (size_t p : applicable) {
        if (static_cast<int>(p) == variant.primary) continue;
        floating.push_back(ctx_->pred(p));  // Secondary join predicates.
      }

      plan::PlanPtr join = plan::MakeJoin(variant.method, std::move(outer),
                                          std::move(inner), primary);
      PPP_RETURN_IF_ERROR(ctx_->cost().Annotate(join.get()));
      if (ctx_->trace() != nullptr && ctx_->cost().TransferApplies(*join)) {
        // The executor will push this hash join's build side into the probe
        // side as a Bloom filter; the model prices the probe stream as
        // pre-filtered (JoinStream side-0 selectivity = 1).
        ctx_->trace()->Add("transfer.plan", primary.expr->ToString(),
                           {join->est_cost});
      }

      bool unpruneable = left.unpruneable;
      if (opts_.placement == EnumOptions::Placement::kRanked) {
        // Montage hoists from the inner input first (§5.2), then the outer.
        bool remains = false;
        if (!inlj) {
          PPP_ASSIGN_OR_RETURN(const bool inner_remains,
                               HoistByRank(join.get(), 1, &floating));
          remains = remains || inner_remains;
        }
        PPP_ASSIGN_OR_RETURN(const bool outer_remains,
                             HoistByRank(join.get(), 0, &floating));
        remains = remains || outer_remains;
        if (opts_.retain_unpruneable && remains) unpruneable = true;
      }

      plan::PlanPtr full = AttachFilters(std::move(join), std::move(floating));
      PPP_RETURN_IF_ERROR(ctx_->cost().Annotate(full.get()));
      local.push_back({std::move(full), unpruneable});
    }
  }

  if (!opts_.prune) {
    // Exhaustive mode explores every join order and predicate interleaving;
    // keeping every join-method variant as well would multiply the space by
    // 4^joins for no placement insight, so only the cheapest method variant
    // of this (left, table) combination is retained.
    auto best = std::min_element(
        local.begin(), local.end(),
        [](const CandidatePlan& a, const CandidatePlan& b) {
          return a.plan->est_cost < b.plan->est_cost;
        });
    if (best != local.end()) {
      Offer(std::move(*best), out);
    }
    return common::Status::OK();
  }

  for (CandidatePlan& cand : local) {
    Offer(std::move(cand), out);
  }
  return common::Status::OK();
}

common::Status JoinEnumerator::CombineBushy(
    const CandidatePlan& outer, TableSet outer_tables,
    const CandidatePlan& inner, TableSet inner_tables,
    std::vector<CandidatePlan>* out) {
  PPP_DCHECK(opts_.placement == EnumOptions::Placement::kOmitted);
  const TableSet result_tables = outer_tables | inner_tables;

  std::vector<size_t> applicable;
  for (size_t p = 0; p < ctx_->num_preds(); ++p) {
    if (roles_[p] != PredRole::kInPlan) continue;
    const TableSet pt = ctx_->PredTables(p);
    if ((pt & ~result_tables) != 0) continue;
    if ((pt & outer_tables) == 0 || (pt & inner_tables) == 0) continue;
    applicable.push_back(p);
  }

  int nlj_primary = -1;
  std::vector<size_t> cheap_equijoins;
  for (size_t p : applicable) {
    const expr::PredicateInfo& pred = ctx_->pred(p);
    if (pred.is_simple_equijoin && !pred.is_expensive()) {
      cheap_equijoins.push_back(p);
    }
    if (nlj_primary < 0 ||
        pred.rank() < ctx_->pred(static_cast<size_t>(nlj_primary)).rank()) {
      nlj_primary = static_cast<int>(p);
    }
  }

  struct Variant {
    plan::JoinMethod method;
    int primary;
  };
  std::vector<Variant> variants;
  variants.push_back({plan::JoinMethod::kNestLoop, nlj_primary});
  for (size_t p : cheap_equijoins) {
    variants.push_back({plan::JoinMethod::kMerge, static_cast<int>(p)});
    variants.push_back({plan::JoinMethod::kHash, static_cast<int>(p)});
  }

  std::vector<CandidatePlan> local;
  for (const Variant& variant : variants) {
    expr::PredicateInfo primary;
    if (variant.primary >= 0) {
      primary = ctx_->pred(static_cast<size_t>(variant.primary));
    }
    std::vector<expr::PredicateInfo> floating;
    for (size_t p : applicable) {
      if (static_cast<int>(p) == variant.primary) continue;
      floating.push_back(ctx_->pred(p));
    }
    plan::PlanPtr join =
        plan::MakeJoin(variant.method, outer.plan->Clone(),
                       inner.plan->Clone(), primary);
    if (ctx_->trace() != nullptr && ctx_->cost().TransferApplies(*join)) {
      ctx_->trace()->Add("transfer.plan", primary.expr->ToString() + " (bushy)");
    }
    plan::PlanPtr full = AttachFilters(std::move(join), std::move(floating));
    PPP_RETURN_IF_ERROR(ctx_->cost().Annotate(full.get()));
    local.push_back({std::move(full), outer.unpruneable || inner.unpruneable});
  }

  if (!opts_.prune) {
    auto best = std::min_element(
        local.begin(), local.end(),
        [](const CandidatePlan& a, const CandidatePlan& b) {
          return a.plan->est_cost < b.plan->est_cost;
        });
    if (best != local.end()) Offer(std::move(*best), out);
    return common::Status::OK();
  }
  for (CandidatePlan& cand : local) {
    Offer(std::move(cand), out);
  }
  return common::Status::OK();
}

common::Status JoinEnumerator::CombineWithVirtual(
    const CandidatePlan& left, size_t pred,
    std::vector<CandidatePlan>* out) {
  plan::PlanPtr plan =
      plan::MakeFilter(left.plan->Clone(), ctx_->pred(pred));
  PPP_RETURN_IF_ERROR(ctx_->cost().Annotate(plan.get()));
  // Offer handles the no-prune mode itself (counted push, no dominance).
  Offer({std::move(plan), left.unpruneable}, out);
  return common::Status::OK();
}

void JoinEnumerator::Offer(CandidatePlan cand,
                           std::vector<CandidatePlan>* plans) const {
  ++dp_stats_.subplans_generated;
  if (!opts_.prune) {
    plans->push_back(std::move(cand));
    return;
  }
  auto dominates = [](const CandidatePlan& a, const CandidatePlan& b) {
    if (a.plan->est_cost > b.plan->est_cost) return false;
    // A plan with no useful order is dominated by any cheaper plan; an
    // ordered plan only by an equally-ordered one.
    return !b.plan->est_order.has_value() ||
           a.plan->est_order == b.plan->est_order;
  };
  obs::OptTrace* trace = ctx_->trace();
  bool dominated = false;
  for (const CandidatePlan& existing : *plans) {
    if (dominates(existing, cand)) {
      dominated = true;
      break;
    }
  }
  if (dominated) {
    if (!cand.unpruneable) {
      ++dp_stats_.subplans_pruned;
      if (trace != nullptr) {
        trace->Add("dp.prune", cand.plan->Signature(),
                   {cand.plan->est_cost});
      }
      return;
    }
    // §4.4: an expensive predicate is still below a join in this subplan,
    // so Predicate Migration may yet improve it — exempt from pruning.
    ++dp_stats_.unpruneable_retained;
    if (trace != nullptr) {
      trace->Add("dp.keep.unpruneable", cand.plan->Signature(),
                 {cand.plan->est_cost});
    }
  } else if (cand.plan->est_order.has_value()) {
    // An interesting order earns retention whenever a cheaper (or equal)
    // plan already exists — the classic System R justification.
    for (const CandidatePlan& existing : *plans) {
      if (existing.plan->est_cost <= cand.plan->est_cost) {
        ++dp_stats_.order_keeps;
        if (trace != nullptr) {
          trace->Add("dp.keep.order",
                     cand.plan->Signature() + " order=" +
                         *cand.plan->est_order,
                     {cand.plan->est_cost});
        }
        break;
      }
    }
  }
  plans->erase(
      std::remove_if(plans->begin(), plans->end(),
                     [&](const CandidatePlan& existing) {
                       return !existing.unpruneable &&
                              dominates(cand, existing);
                     }),
      plans->end());
  plans->push_back(std::move(cand));
}

common::Result<std::vector<CandidatePlan>> JoinEnumerator::Run() {
  dp_stats_ = DpStats();
  const size_t num_tables = ctx_->num_tables();
  const size_t num_elems = num_tables + virtual_preds_.size();
  if (num_elems > 22) {
    return common::Status::ResourceExhausted(
        "DP universe of " + std::to_string(num_elems) +
        " elements is too large");
  }

  const ElemSet full = (ElemSet{1} << num_elems) - 1;
  std::vector<std::vector<CandidatePlan>> memo(full + 1);

  base_cands_.clear();
  base_cands_.resize(num_tables);
  for (size_t i = 0; i < num_tables; ++i) {
    PPP_ASSIGN_OR_RETURN(base_cands_[i], BaseCandidates(i));
    for (const CandidatePlan& cand : base_cands_[i]) {
      memo[ElemSet{1} << i].push_back(
          {cand.plan->Clone(), cand.unpruneable});
    }
  }

  // Subsets in increasing popcount order.
  std::vector<ElemSet> by_size;
  by_size.reserve(full);
  for (ElemSet set = 1; set <= full; ++set) by_size.push_back(set);
  std::sort(by_size.begin(), by_size.end(), [](ElemSet a, ElemSet b) {
    const int pa = std::popcount(a);
    const int pb = std::popcount(b);
    return pa != pb ? pa < pb : a < b;
  });

  // One child span per DP level (popcount of the subset being built), so a
  // trace shows where enumeration time goes as the lattice widens.
  const bool traced = obs::SpanTracer::Global().enabled();
  int current_level = -1;
  std::optional<obs::Span> level_span;
  for (ElemSet set : by_size) {
    if (std::popcount(set) < 2 || !Feasible(set)) continue;
    if (traced && std::popcount(set) != current_level) {
      current_level = std::popcount(set);
      level_span.emplace("optimize", "dp.level");
      level_span->AddArg("level", std::to_string(current_level));
    }
    for (size_t e = 0; e < num_elems; ++e) {
      if (!((set >> e) & 1)) continue;
      const ElemSet left = set & ~(ElemSet{1} << e);
      if (left == 0 || !Feasible(left)) continue;
      if (!IsTableElem(e)) {
        const size_t p = virtual_preds_[e - num_tables];
        const TableSet needed = ctx_->PredTables(p);
        if ((needed & TablePart(left)) != needed) continue;
        for (const CandidatePlan& cand : memo[left]) {
          PPP_RETURN_IF_ERROR(CombineWithVirtual(cand, p, &memo[set]));
        }
      } else {
        for (const CandidatePlan& cand : memo[left]) {
          PPP_RETURN_IF_ERROR(
              CombineWithTable(cand, TablePart(left), e, &memo[set]));
        }
      }
    }

    if (opts_.bushy) {
      // Composite-inner splits (single-element inners were covered above).
      for (ElemSet left = (set - 1) & set; left != 0;
           left = (left - 1) & set) {
        const ElemSet right = set & ~left;
        if (std::popcount(right) < 2) continue;
        if (!Feasible(left) || !Feasible(right)) continue;
        if (TablePart(left) == 0 || TablePart(right) == 0) continue;
        for (const CandidatePlan& outer : memo[left]) {
          for (const CandidatePlan& inner : memo[right]) {
            PPP_RETURN_IF_ERROR(CombineBushy(outer, TablePart(left), inner,
                                             TablePart(right), &memo[set]));
          }
        }
      }
    }
  }
  level_span.reset();

  plans_retained_ = 0;
  for (const std::vector<CandidatePlan>& entry : memo) {
    plans_retained_ += entry.size();
  }
  dp_stats_.subplans_retained = plans_retained_;
  if (ctx_->trace() != nullptr) {
    ctx_->trace()->Add("dp.summary", dp_stats_.ToString());
  }

  if (memo[full].empty()) {
    return common::Status::Internal("enumeration produced no plan");
  }
  return std::move(memo[full]);
}

}  // namespace ppp::optimizer
