#include "optimizer/algorithm.h"

#include "common/string_util.h"

namespace ppp::optimizer {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kPushDown:
      return "PushDown";
    case Algorithm::kPullUp:
      return "PullUp";
    case Algorithm::kPullRank:
      return "PullRank";
    case Algorithm::kMigration:
      return "PredicateMigration";
    case Algorithm::kLdl:
      return "LDL";
    case Algorithm::kLdlBushy:
      return "LDL-Bushy";
    case Algorithm::kExhaustive:
      return "Exhaustive";
  }
  return "?";
}

EnumOptions OptionsFor(Algorithm algorithm) {
  EnumOptions opts;
  switch (algorithm) {
    case Algorithm::kPushDown:
      opts.placement = EnumOptions::Placement::kAtBase;
      break;
    case Algorithm::kPullUp:
      opts.placement = EnumOptions::Placement::kOmitted;
      break;
    case Algorithm::kPullRank:
      opts.placement = EnumOptions::Placement::kRanked;
      break;
    case Algorithm::kMigration:
      opts.placement = EnumOptions::Placement::kRanked;
      opts.retain_unpruneable = true;
      break;
    case Algorithm::kLdl:
      opts.placement = EnumOptions::Placement::kOmitted;
      opts.virtual_selections = true;
      break;
    case Algorithm::kLdlBushy:
      opts.placement = EnumOptions::Placement::kOmitted;
      opts.virtual_selections = true;
      opts.bushy = true;
      break;
    case Algorithm::kExhaustive:
      opts.placement = EnumOptions::Placement::kOmitted;
      opts.virtual_selections = true;
      opts.prune = false;
      break;
  }
  return opts;
}

std::string DpStats::ToString() const {
  return common::StringPrintf(
      "generated=%llu pruned=%llu retained=%llu unpruneable=%llu "
      "order_keeps=%llu",
      static_cast<unsigned long long>(subplans_generated),
      static_cast<unsigned long long>(subplans_pruned),
      static_cast<unsigned long long>(subplans_retained),
      static_cast<unsigned long long>(unpruneable_retained),
      static_cast<unsigned long long>(order_keeps));
}

}  // namespace ppp::optimizer
