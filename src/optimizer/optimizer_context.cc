#include "optimizer/optimizer_context.h"

#include "common/string_util.h"
#include "obs/profiler.h"

namespace ppp::optimizer {

common::Result<std::unique_ptr<OptimizerContext>> OptimizerContext::Build(
    const catalog::Catalog* catalog, const plan::QuerySpec& spec,
    const cost::CostParams& params) {
  auto ctx = std::unique_ptr<OptimizerContext>(new OptimizerContext());
  ctx->catalog_ = catalog;
  ctx->spec_ = spec;

  if (spec.tables.empty()) {
    return common::Status::InvalidArgument("query has no FROM clause");
  }
  if (spec.tables.size() > 32) {
    return common::Status::InvalidArgument(
        "at most 32 tables are supported per query");
  }
  for (const plan::TableRef& ref : spec.tables) {
    if (ctx->binding_.count(ref.alias) > 0) {
      return common::Status::InvalidArgument("duplicate alias " + ref.alias);
    }
    PPP_ASSIGN_OR_RETURN(catalog::Table * table,
                         catalog->GetTable(ref.table_name));
    ctx->binding_[ref.alias] = table;
  }

  ctx->cost_ = std::make_unique<cost::CostModel>(catalog, ctx->binding_,
                                                 params);

  expr::PredicateAnalyzer analyzer(catalog, ctx->binding_);
  if (params.use_feedback) {
    analyzer.set_feedback(&obs::PredicateFeedbackStore::Global());
  }
  analyzer.set_use_stats(params.use_collected_stats);
  ctx->single_table_preds_.resize(spec.tables.size());
  for (const expr::ExprPtr& conjunct : spec.conjuncts) {
    PPP_ASSIGN_OR_RETURN(expr::PredicateInfo info,
                         analyzer.Analyze(conjunct));
    TableSet set = 0;
    for (const std::string& alias : info.tables) {
      const int bit = ctx->AliasIndex(alias);
      if (bit < 0) {
        return common::Status::NotFound("predicate " + conjunct->ToString() +
                                        " references unknown alias " + alias);
      }
      set |= TableSet{1} << bit;
    }
    const size_t index = ctx->preds_.size();
    ctx->preds_.push_back(std::move(info));
    ctx->pred_tables_.push_back(set);
    if (ctx->preds_[index].tables.size() == 1) {
      const int bit = ctx->AliasIndex(*ctx->preds_[index].tables.begin());
      ctx->single_table_preds_[static_cast<size_t>(bit)].push_back(index);
    }
  }
  return ctx;
}

int OptimizerContext::AliasIndex(const std::string& alias) const {
  for (size_t i = 0; i < spec_.tables.size(); ++i) {
    if (spec_.tables[i].alias == alias) return static_cast<int>(i);
  }
  return -1;
}

bool OptimizerContext::Connected(TableSet left, TableSet right) const {
  for (size_t p = 0; p < preds_.size(); ++p) {
    const TableSet tables = pred_tables_[p];
    if ((tables & left) != 0 && (tables & right) != 0 &&
        (tables & ~(left | right)) == 0) {
      return true;
    }
  }
  return false;
}

std::string OptimizerContext::TableSetToString(TableSet set) const {
  std::vector<std::string> names;
  for (size_t i = 0; i < spec_.tables.size(); ++i) {
    if ((set >> i) & 1) names.push_back(spec_.tables[i].alias);
  }
  return "{" + common::Join(names, ",") + "}";
}

}  // namespace ppp::optimizer
