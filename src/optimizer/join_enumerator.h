#ifndef PPP_OPTIMIZER_JOIN_ENUMERATOR_H_
#define PPP_OPTIMIZER_JOIN_ENUMERATOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/status.h"
#include "optimizer/algorithm.h"
#include "optimizer/optimizer_context.h"
#include "plan/plan_node.h"

namespace ppp::optimizer {

/// A subplan retained in the dynamic-programming memo.
struct CandidatePlan {
  plan::PlanPtr plan;
  /// True when the subplan contains an expensive predicate that some join
  /// decided not to pull up (§4.4); such subplans are exempt from pruning
  /// so Predicate Migration can later pull the predicate over a join group.
  bool unpruneable = false;
};

/// The System R dynamic-programming join enumerator, shared by every
/// algorithm in the paper:
///
///  * PushDown / PullRank place expensive selections at the base and (for
///    PullRank) hoist them above joins by rank as joins are constructed.
///  * PullUp omits expensive selections entirely; the caller pastes them
///    onto the final plans.
///  * Predicate Migration runs PullRank placement plus unpruneable-subplan
///    retention.
///  * LDL / Exhaustive add expensive predicates to the DP universe as
///    virtual relations (§3.1); Exhaustive additionally disables pruning.
///
/// Plans are left-deep (each join's inner input is a single base relation),
/// matching Montage. Returned plans are fully cost-annotated.
class JoinEnumerator {
 public:
  JoinEnumerator(const OptimizerContext* ctx, EnumOptions opts);

  /// Runs the DP and returns all retained plans covering the whole query.
  common::Result<std::vector<CandidatePlan>> Run();

  /// Predicates the enumerator deliberately left out of the plans (PullUp
  /// mode); the caller must paste them on top, rank ordered.
  const std::vector<size_t>& omitted_preds() const { return omitted_; }

  /// Total number of subplans retained across all memo entries in the last
  /// Run() — the plan-space-growth metric of ablation A3.
  size_t plans_retained() const { return plans_retained_; }

  /// Full DP counters of the last Run(): offers, prunes, unpruneable and
  /// interesting-order retentions.
  const DpStats& dp_stats() const { return dp_stats_; }

 private:
  using ElemSet = uint64_t;

  /// Predicate roles decided up front.
  enum class PredRole {
    kInPlan,    // Placed by the enumerator (base filter / join / secondary).
    kOmitted,   // PullUp: pasted on top by the caller.
    kVirtual,   // LDL/Exhaustive: an element of the DP universe.
  };

  bool IsTableElem(size_t elem) const { return elem < ctx_->num_tables(); }
  TableSet TablePart(ElemSet set) const {
    return static_cast<TableSet>(set &
                                 ((ElemSet{1} << ctx_->num_tables()) - 1));
  }
  /// A set is feasible iff every virtual element's tables are present.
  bool Feasible(ElemSet set) const;

  common::Result<std::vector<CandidatePlan>> BaseCandidates(
      size_t table_index) const;

  /// Builds all join candidates of (left ⋈ table e) and offers them to the
  /// memo entry for `result_set`.
  common::Status CombineWithTable(const CandidatePlan& left,
                                  TableSet left_tables, size_t table_index,
                                  std::vector<CandidatePlan>* out);

  /// Applies virtual element (predicate) `p` on top of `left`.
  common::Status CombineWithVirtual(const CandidatePlan& left, size_t pred,
                                    std::vector<CandidatePlan>* out);

  /// Bushy combination: joins two composite subplans (no index nested
  /// loops, no hoisting — used by the kOmitted placements only).
  common::Status CombineBushy(const CandidatePlan& outer,
                              TableSet outer_tables,
                              const CandidatePlan& inner,
                              TableSet inner_tables,
                              std::vector<CandidatePlan>* out);

  /// PullRank hoisting: pops expensive filters off the top of `join`'s
  /// child `side` while their rank exceeds the join's stream rank,
  /// re-annotating between pops. Popped predicates are appended to
  /// `floating`. Returns true if any expensive filter *remains* below.
  common::Result<bool> HoistByRank(
      plan::PlanNode* join, int side,
      std::vector<expr::PredicateInfo>* floating) const;

  /// Wraps `plan` in Filter nodes for `floating`, lowest rank first.
  static plan::PlanPtr AttachFilters(
      plan::PlanPtr plan, std::vector<expr::PredicateInfo> floating);

  /// Inserts `cand` into `plans` under the pruning rules: keep the cheapest
  /// plan, the cheapest plan per interesting order, and (always) every
  /// unpruneable plan. With pruning off, keeps everything.
  void Offer(CandidatePlan cand, std::vector<CandidatePlan>* plans) const;

  /// True if the subtree contains an expensive Filter node.
  static bool HasExpensiveFilter(const plan::PlanNode& node);

  const OptimizerContext* ctx_;
  EnumOptions opts_;
  std::vector<PredRole> roles_;
  std::vector<size_t> virtual_preds_;  // pred index per virtual element.
  std::vector<size_t> omitted_;
  std::vector<std::vector<CandidatePlan>> base_cands_;  // Per table.
  size_t plans_retained_ = 0;
  /// Offer() is called from const enumeration paths; the counters are pure
  /// telemetry.
  mutable DpStats dp_stats_;
};

}  // namespace ppp::optimizer

#endif  // PPP_OPTIMIZER_JOIN_ENUMERATOR_H_
