#ifndef PPP_OPTIMIZER_ALGORITHM_H_
#define PPP_OPTIMIZER_ALGORITHM_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace ppp::optimizer {

/// The predicate placement algorithms of the paper (Table 1).
enum class Algorithm {
  /// Selection pushdown with rank-ordering of selections ("PushDown+",
  /// §4.1). Optimal for single-table queries; can be arbitrarily bad when
  /// expensive selections sit under selective joins.
  kPushDown,
  /// All expensive selections pulled to the top of every subplan (§4.2).
  /// Equivalent to optimizing without them and pasting them on top, rank
  /// ordered.
  kPullUp,
  /// Rank-based pullup decided one join at a time (§4.3). Optimal for
  /// single-join queries; misses multi-join group pullups.
  kPullRank,
  /// Predicate Migration (§4.4): PullRank during enumeration with
  /// unpruneable-subplan retention, then the series-parallel algorithm
  /// with parallel chains applied to every root-to-leaf stream of each
  /// retained plan.
  kMigration,
  /// The LDL algorithm (§3.1): expensive selections become joins with
  /// virtual relations; a left-deep join orderer places them, forcing
  /// over-eager pullup from inner inputs.
  kLdl,
  /// LDL over bushy plan trees — the fix §3.1 sketches ("A System R
  /// optimizer can be modified to explore the space of bushy trees"):
  /// selections-as-virtual-relations can then stay on inner subtrees,
  /// recovering the Figure 1 optimum at extra enumeration cost.
  kLdlBushy,
  /// Exhaustive enumeration over join orders and predicate interleavings
  /// (no pruning). Exponential; the reference optimum.
  kExhaustive,
};

const char* AlgorithmName(Algorithm algorithm);

/// Knobs of the shared System R enumerator, derived from Algorithm.
struct EnumOptions {
  /// How expensive selections are placed while enumerating.
  enum class Placement {
    kAtBase,   // PushDown: placed on the scan, never moved.
    kOmitted,  // PullUp / LDL / Exhaustive: not placed by the enumerator.
    kRanked,   // PullRank / Migration: at base, hoisted by rank per join.
  };
  Placement placement = Placement::kAtBase;

  /// Keep subplans containing an expensive predicate that was not pulled
  /// up (§4.4); required by Predicate Migration.
  bool retain_unpruneable = false;

  /// Treat expensive predicates as virtual relations in the DP universe
  /// (LDL / Exhaustive).
  bool virtual_selections = false;

  /// Prune dominated subplans (off for Exhaustive).
  bool prune = true;

  /// Explore bushy join trees (inner inputs may be composite). Default is
  /// left-deep, matching Montage.
  bool bushy = false;
};

EnumOptions OptionsFor(Algorithm algorithm);

/// Counters of one DP enumeration (JoinEnumerator::Run), reported by
/// EXPLAIN ANALYZE and the benches' per-algorithm statistics.
struct DpStats {
  /// Subplans offered to the memo (before pruning).
  uint64_t subplans_generated = 0;
  /// Offers rejected because an existing plan dominated them.
  uint64_t subplans_pruned = 0;
  /// Subplans retained across all memo entries at the end of the run.
  uint64_t subplans_retained = 0;
  /// Dominated offers kept anyway because they contain an expensive
  /// predicate left below a join (§4.4 unpruneable retention).
  uint64_t unpruneable_retained = 0;
  /// Offers kept despite a cheaper plan because they carry an interesting
  /// order no cheaper plan has.
  uint64_t order_keeps = 0;

  std::string ToString() const;
};

}  // namespace ppp::optimizer

#endif  // PPP_OPTIMIZER_ALGORITHM_H_
