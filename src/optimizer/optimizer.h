#ifndef PPP_OPTIMIZER_OPTIMIZER_H_
#define PPP_OPTIMIZER_OPTIMIZER_H_

#include <memory>

#include "catalog/catalog.h"
#include "common/status.h"
#include "cost/cost_params.h"
#include "optimizer/algorithm.h"
#include "plan/plan_node.h"
#include "plan/query_spec.h"

namespace ppp::obs {
class OptTrace;
}  // namespace ppp::obs

namespace ppp::optimizer {

/// Outcome of one optimization: the chosen plan plus the bookkeeping the
/// paper's experiments report.
struct OptimizeResult {
  plan::PlanPtr plan;  // Annotated; includes a Project when selected.
  double est_cost = 0.0;
  /// Subplans retained across the DP memo (plan-space growth, ablation A3).
  size_t plans_retained = 0;
  /// Final full-query candidates considered (1 unless unpruneable plans or
  /// interesting orders survived).
  size_t final_candidates = 0;
  /// Fixpoint rounds in which Predicate Migration moved a predicate.
  int migration_rounds = 0;
  /// Full DP enumeration counters (offers, prunes, retentions).
  DpStats dp_stats;
};

/// Facade over the placement algorithms: builds the optimizer context,
/// runs the appropriate enumerator configuration, applies the
/// per-algorithm post-pass (PullUp pasting, Predicate Migration), and
/// returns the cheapest plan.
class Optimizer {
 public:
  explicit Optimizer(const catalog::Catalog* catalog,
                     cost::CostParams params = {})
      : catalog_(catalog), params_(params) {}

  /// Optimizes `spec` under `algorithm`. `trace`, when non-null, records
  /// the enumerator's pruning decisions, PullRank hoists, and Predicate
  /// Migration steps.
  common::Result<OptimizeResult> Optimize(
      const plan::QuerySpec& spec, Algorithm algorithm,
      obs::OptTrace* trace = nullptr) const;

  const cost::CostParams& params() const { return params_; }

 private:
  const catalog::Catalog* catalog_;
  cost::CostParams params_;
};

}  // namespace ppp::optimizer

#endif  // PPP_OPTIMIZER_OPTIMIZER_H_
