#include "storage/heap_file.h"

#include <cstring>

#include "common/logging.h"
#include "storage/page.h"

namespace ppp::storage {

namespace {

constexpr size_t kHeaderSize = 4;   // slot_count + free_end.
constexpr size_t kSlotSize = 4;     // offset + length.

uint16_t ReadU16(const Page& page, size_t offset) {
  uint16_t v;
  std::memcpy(&v, page.bytes() + offset, sizeof(v));
  return v;
}

void WriteU16(Page* page, size_t offset, uint16_t v) {
  std::memcpy(page->bytes() + offset, &v, sizeof(v));
}

uint16_t SlotCount(const Page& page) { return ReadU16(page, 0); }
uint16_t FreeEnd(const Page& page) { return ReadU16(page, 2); }

void InitPage(Page* page) {
  WriteU16(page, 0, 0);
  WriteU16(page, 2, static_cast<uint16_t>(kPageSize));
}

/// Bytes available for one more record (slot + payload) on this page.
size_t FreeSpace(const Page& page) {
  const size_t used_front = kHeaderSize + SlotCount(page) * kSlotSize;
  const size_t free_end = FreeEnd(page);
  if (free_end < used_front) return 0;
  return free_end - used_front;
}

}  // namespace

size_t HeapFile::MaxRecordSize() {
  return kPageSize - kHeaderSize - kSlotSize;
}

common::Result<RecordId> HeapFile::Insert(const std::string& record) {
  if (record.size() + kSlotSize > MaxRecordSize() + kSlotSize) {
    return common::Status::InvalidArgument(
        "record of " + std::to_string(record.size()) +
        " bytes exceeds page capacity");
  }

  // Try the last page; heap files append, earlier pages are full(ish).
  PageId page_id = kInvalidPageId;
  Page* page = nullptr;
  if (!pages_.empty()) {
    page_id = pages_.back();
    page = pool_->FetchPage(page_id);
    if (FreeSpace(*page) < record.size() + kSlotSize) {
      pool_->UnpinPage(page_id, false);
      page = nullptr;
    }
  }
  if (page == nullptr) {
    page_id = pool_->NewPage(&page);
    InitPage(page);
    pages_.push_back(page_id);
  }

  const uint16_t slot = SlotCount(*page);
  const uint16_t free_end = FreeEnd(*page);
  const uint16_t record_offset =
      static_cast<uint16_t>(free_end - record.size());
  std::memcpy(page->bytes() + record_offset, record.data(), record.size());
  WriteU16(page, kHeaderSize + slot * kSlotSize, record_offset);
  WriteU16(page, kHeaderSize + slot * kSlotSize + 2,
           static_cast<uint16_t>(record.size()));
  WriteU16(page, 0, static_cast<uint16_t>(slot + 1));
  WriteU16(page, 2, record_offset);
  pool_->UnpinPage(page_id, /*dirty=*/true);

  ++num_records_;
  return RecordId{page_id, slot};
}

common::Result<std::string> HeapFile::Read(RecordId rid) const {
  PageGuard guard(pool_, rid.page_id);
  const Page& page = *guard.get();
  if (rid.slot >= SlotCount(page)) {
    return common::Status::NotFound("no slot " + std::to_string(rid.slot) +
                                    " on page " + std::to_string(rid.page_id));
  }
  const uint16_t offset = ReadU16(page, kHeaderSize + rid.slot * kSlotSize);
  const uint16_t length =
      ReadU16(page, kHeaderSize + rid.slot * kSlotSize + 2);
  return std::string(reinterpret_cast<const char*>(page.bytes()) + offset,
                     length);
}

bool HeapFile::Iterator::NextView(RecordId* rid, std::string_view* record) {
  while (page_index_ < file_->pages_.size()) {
    const PageId page_id = file_->pages_[page_index_];
    if (!view_guard_.has_value() || view_guard_->page_id() != page_id) {
      view_guard_.emplace(file_->pool_, page_id);
    }
    const Page& page = *view_guard_->get();
    if (slot_ < SlotCount(page)) {
      const uint16_t offset = ReadU16(page, kHeaderSize + slot_ * kSlotSize);
      const uint16_t length =
          ReadU16(page, kHeaderSize + slot_ * kSlotSize + 2);
      *rid = RecordId{page_id, slot_};
      *record = std::string_view(
          reinterpret_cast<const char*>(page.bytes()) + offset, length);
      ++slot_;
      return true;
    }
    ++page_index_;
    slot_ = 0;
    view_guard_.reset();
  }
  view_guard_.reset();
  return false;
}

bool HeapFile::Iterator::Next(RecordId* rid, std::string* record) {
  while (page_index_ < file_->pages_.size()) {
    const PageId page_id = file_->pages_[page_index_];
    PageGuard guard(file_->pool_, page_id);
    const Page& page = *guard.get();
    if (slot_ < SlotCount(page)) {
      const uint16_t offset = ReadU16(page, kHeaderSize + slot_ * kSlotSize);
      const uint16_t length =
          ReadU16(page, kHeaderSize + slot_ * kSlotSize + 2);
      *rid = RecordId{page_id, slot_};
      record->assign(
          reinterpret_cast<const char*>(page.bytes()) + offset, length);
      ++slot_;
      return true;
    }
    ++page_index_;
    slot_ = 0;
  }
  return false;
}

}  // namespace ppp::storage
