#include "storage/disk_manager.h"

#include "common/logging.h"

namespace ppp::storage {

PageId DiskManager::AllocatePage() {
  pages_.push_back(std::make_unique<Page>());
  return static_cast<PageId>(pages_.size() - 1);
}

void DiskManager::ReadPage(PageId page_id, Page* out) const {
  PPP_CHECK(page_id < pages_.size()) << "read of unallocated page " << page_id;
  *out = *pages_[page_id];
}

void DiskManager::WritePage(PageId page_id, const Page& page) {
  PPP_CHECK(page_id < pages_.size())
      << "write of unallocated page " << page_id;
  *pages_[page_id] = page;
}

}  // namespace ppp::storage
