#ifndef PPP_STORAGE_IO_STATS_H_
#define PPP_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace ppp::storage {

/// Counters for physical page traffic, maintained by the BufferPool.
///
/// Reads are classified as sequential (page id exactly one past the
/// previously read page) or random; the paper's expensive-function costs
/// are denominated in *random* I/Os, so experiment harnesses convert these
/// counters into charged time via cost::CostParams.
struct IoStats {
  uint64_t sequential_reads = 0;
  uint64_t random_reads = 0;
  uint64_t writes = 0;
  uint64_t buffer_hits = 0;

  uint64_t TotalReads() const { return sequential_reads + random_reads; }

  void Reset() { *this = IoStats(); }

  std::string ToString() const {
    return "seq_reads=" + std::to_string(sequential_reads) +
           " rand_reads=" + std::to_string(random_reads) +
           " writes=" + std::to_string(writes) +
           " hits=" + std::to_string(buffer_hits);
  }
};

}  // namespace ppp::storage

#endif  // PPP_STORAGE_IO_STATS_H_
