#ifndef PPP_STORAGE_DISK_MANAGER_H_
#define PPP_STORAGE_DISK_MANAGER_H_

#include <memory>
#include <vector>

#include "storage/page.h"
#include "storage/record_id.h"

namespace ppp::storage {

/// A simulated disk: a growable array of pages held in memory.
///
/// The paper ran against real SunOS disks; here the disk is simulated and
/// all timing comes from I/O *counts* (see IoStats), which is exactly the
/// relative-measurement methodology the paper itself uses for expensive
/// functions. Pages are stable in memory once allocated.
class DiskManager {
 public:
  DiskManager() = default;

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a fresh zeroed page and returns its id. Ids are dense and
  /// increase monotonically, so consecutively allocated pages are
  /// "physically adjacent" for sequential-read classification.
  PageId AllocatePage();

  /// Copies page `page_id` into `*out`. Asserts the id is valid.
  void ReadPage(PageId page_id, Page* out) const;

  /// Overwrites page `page_id` with `page`.
  void WritePage(PageId page_id, const Page& page);

  size_t NumPages() const { return pages_.size(); }

 private:
  std::vector<std::unique_ptr<Page>> pages_;
};

}  // namespace ppp::storage

#endif  // PPP_STORAGE_DISK_MANAGER_H_
