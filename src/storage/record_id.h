#ifndef PPP_STORAGE_RECORD_ID_H_
#define PPP_STORAGE_RECORD_ID_H_

#include <cstdint>
#include <string>

namespace ppp::storage {

/// Identifies one page in the DiskManager's page space.
using PageId = uint32_t;

inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Physical address of a record: (page, slot). Orderable so B-tree entries
/// with duplicate keys have a deterministic total order.
struct RecordId {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool operator==(const RecordId& other) const {
    return page_id == other.page_id && slot == other.slot;
  }
  bool operator!=(const RecordId& other) const { return !(*this == other); }
  bool operator<(const RecordId& other) const {
    if (page_id != other.page_id) return page_id < other.page_id;
    return slot < other.slot;
  }

  /// Packs into 48 meaningful bits for storage inside index entries.
  uint64_t Pack() const {
    return (static_cast<uint64_t>(page_id) << 16) | slot;
  }
  static RecordId Unpack(uint64_t packed) {
    RecordId rid;
    rid.page_id = static_cast<PageId>(packed >> 16);
    rid.slot = static_cast<uint16_t>(packed & 0xFFFFu);
    return rid;
  }

  std::string ToString() const {
    return "(" + std::to_string(page_id) + "," + std::to_string(slot) + ")";
  }
};

}  // namespace ppp::storage

#endif  // PPP_STORAGE_RECORD_ID_H_
