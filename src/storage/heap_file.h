#ifndef PPP_STORAGE_HEAP_FILE_H_
#define PPP_STORAGE_HEAP_FILE_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/record_id.h"

namespace ppp::storage {

/// An unordered file of variable-length records in slotted pages.
///
/// Page layout:
///   [u16 slot_count][u16 free_end][slot 0][slot 1]... | free ... |records]
/// where each slot is {u16 offset, u16 length} and record bytes grow down
/// from the end of the page. The engine's workload is load-then-query, so
/// HeapFile supports insert, point read, and full scan (no delete/update).
class HeapFile {
 public:
  explicit HeapFile(BufferPool* pool) : pool_(pool) {}

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  /// Appends a record; returns its address. Fails with InvalidArgument if
  /// the record cannot fit in an empty page.
  common::Result<RecordId> Insert(const std::string& record);

  /// Reads the record at `rid`. Fails with NotFound on a bad address.
  common::Result<std::string> Read(RecordId rid) const;

  size_t NumRecords() const { return num_records_; }
  size_t NumPages() const { return pages_.size(); }
  const std::vector<PageId>& pages() const { return pages_; }

  /// Forward scan over all records in physical order. The iterator pins one
  /// page at a time, so the underlying file must outlive it and must not be
  /// mutated during iteration.
  class Iterator {
   public:
    explicit Iterator(const HeapFile* file) : file_(file) {}

    /// Moves transfer the scan position but drop the cached page pin
    /// (PageGuard is not assignable); NextView() re-pins lazily.
    Iterator(Iterator&& other) noexcept
        : file_(other.file_),
          page_index_(other.page_index_),
          slot_(other.slot_) {
      other.view_guard_.reset();
    }
    Iterator& operator=(Iterator&& other) noexcept {
      file_ = other.file_;
      page_index_ = other.page_index_;
      slot_ = other.slot_;
      view_guard_.reset();
      other.view_guard_.reset();
      return *this;
    }

    /// Advances to the next record; returns false at end of file.
    bool Next(RecordId* rid, std::string* record);

    /// Zero-copy advance for tight decode loops (the columnar scan path):
    /// `record` views bytes inside the current page, which stays pinned
    /// until the next NextView() call or the iterator's destruction —
    /// one buffer-pool fetch per page instead of one per record. The view
    /// is invalidated by the next NextView().
    bool NextView(RecordId* rid, std::string_view* record);

   private:
    const HeapFile* file_;
    size_t page_index_ = 0;
    uint16_t slot_ = 0;
    /// Pin held across NextView() calls; empty on the copying Next() path.
    std::optional<PageGuard> view_guard_;
  };

  Iterator Scan() const { return Iterator(this); }

 private:
  friend class Iterator;

  /// Maximum record size storable in an empty page.
  static size_t MaxRecordSize();

  BufferPool* pool_;
  std::vector<PageId> pages_;
  size_t num_records_ = 0;
};

}  // namespace ppp::storage

#endif  // PPP_STORAGE_HEAP_FILE_H_
