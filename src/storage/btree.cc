#include "storage/btree.h"

#include <cstring>

#include "common/logging.h"
#include "storage/page.h"

namespace ppp::storage {

// Node layout (both kinds):
//   [u8 is_leaf][u8 pad][u16 count][u32 next_leaf]   -- 8-byte header
// Leaf entries, stride 16:      {i64 key, u64 rid}
// Internal: [u32 leftmost_child] then entries, stride 20:
//   {i64 key, u64 rid, u32 child}
// An internal entry's (key, rid) is the composite separator: all entries in
// `child` are >= it, all entries in the previous child are < it.

namespace {

constexpr size_t kHeader = 8;
constexpr size_t kLeafEntrySize = 16;
constexpr size_t kInternalEntrySize = 20;
constexpr size_t kInternalEntriesOffset = kHeader + 4;  // After leftmost.

// Nodes hold capacity+1 entries momentarily (insert, then split), so one
// slot of physical headroom is reserved out of each page.
constexpr size_t kLeafCapacity = (kPageSize - kHeader) / kLeafEntrySize - 1;
constexpr size_t kInternalCapacity =
    (kPageSize - kInternalEntriesOffset) / kInternalEntrySize - 1;

template <typename T>
T Load(const Page& page, size_t offset) {
  T v;
  std::memcpy(&v, page.bytes() + offset, sizeof(v));
  return v;
}

template <typename T>
void Store(Page* page, size_t offset, T v) {
  std::memcpy(page->bytes() + offset, &v, sizeof(v));
}

bool IsLeaf(const Page& page) { return Load<uint8_t>(page, 0) != 0; }
uint16_t Count(const Page& page) { return Load<uint16_t>(page, 2); }
void SetCount(Page* page, uint16_t c) { Store<uint16_t>(page, 2, c); }
PageId NextLeaf(const Page& page) { return Load<uint32_t>(page, 4); }
void SetNextLeaf(Page* page, PageId id) { Store<uint32_t>(page, 4, id); }

struct LeafEntry {
  int64_t key;
  uint64_t rid;
};

LeafEntry GetLeafEntry(const Page& page, size_t i) {
  const size_t off = kHeader + i * kLeafEntrySize;
  return {Load<int64_t>(page, off), Load<uint64_t>(page, off + 8)};
}

void SetLeafEntry(Page* page, size_t i, LeafEntry e) {
  const size_t off = kHeader + i * kLeafEntrySize;
  Store<int64_t>(page, off, e.key);
  Store<uint64_t>(page, off + 8, e.rid);
}

struct InternalEntry {
  int64_t key;
  uint64_t rid;
  PageId child;
};

PageId LeftmostChild(const Page& page) { return Load<uint32_t>(page, kHeader); }
void SetLeftmostChild(Page* page, PageId id) {
  Store<uint32_t>(page, kHeader, id);
}

InternalEntry GetInternalEntry(const Page& page, size_t i) {
  const size_t off = kInternalEntriesOffset + i * kInternalEntrySize;
  return {Load<int64_t>(page, off), Load<uint64_t>(page, off + 8),
          Load<uint32_t>(page, off + 16)};
}

void SetInternalEntry(Page* page, size_t i, InternalEntry e) {
  const size_t off = kInternalEntriesOffset + i * kInternalEntrySize;
  Store<int64_t>(page, off, e.key);
  Store<uint64_t>(page, off + 8, e.rid);
  Store<uint32_t>(page, off + 16, e.child);
}

/// Composite comparison: -1 / 0 / +1 of (k1,r1) vs (k2,r2).
int CompareComposite(int64_t k1, uint64_t r1, int64_t k2, uint64_t r2) {
  if (k1 != k2) return k1 < k2 ? -1 : 1;
  if (r1 != r2) return r1 < r2 ? -1 : 1;
  return 0;
}

/// First index in the leaf whose entry is >= (key, rid). Binary search.
size_t LeafLowerBound(const Page& page, int64_t key, uint64_t rid) {
  size_t lo = 0;
  size_t hi = Count(page);
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    const LeafEntry e = GetLeafEntry(page, mid);
    if (CompareComposite(e.key, e.rid, key, rid) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// The child of an internal node that covers composite (key, rid): the
/// child of the last separator <= (key, rid), or the leftmost child.
size_t InternalChildIndex(const Page& page, int64_t key, uint64_t rid) {
  // Returns index into [0, count]: 0 means leftmost child, i>0 means
  // entry i-1's child.
  size_t lo = 0;
  size_t hi = Count(page);
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    const InternalEntry e = GetInternalEntry(page, mid);
    if (CompareComposite(e.key, e.rid, key, rid) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

PageId ChildAt(const Page& page, size_t index) {
  if (index == 0) return LeftmostChild(page);
  return GetInternalEntry(page, index - 1).child;
}

}  // namespace

PageId BTree::AllocateNode(bool leaf) {
  Page* page = nullptr;
  const PageId id = pool_->NewPage(&page);
  Store<uint8_t>(page, 0, leaf ? 1 : 0);
  SetCount(page, 0);
  SetNextLeaf(page, kInvalidPageId);
  pool_->UnpinPage(id, /*dirty=*/true);
  ++num_pages_;
  return id;
}

void BTree::Insert(int64_t key, RecordId rid) {
  if (root_ == kInvalidPageId) {
    root_ = AllocateNode(/*leaf=*/true);
  }
  SplitResult split = InsertRec(root_, key, rid.Pack());
  if (split.split) {
    const PageId new_root = AllocateNode(/*leaf=*/false);
    PageGuard guard(pool_, new_root);
    SetLeftmostChild(guard.get(), root_);
    SetInternalEntry(guard.get(), 0,
                     {split.sep_key, split.sep_rid, split.new_page});
    SetCount(guard.get(), 1);
    guard.MarkDirty();
    root_ = new_root;
  }
  ++num_entries_;
}

BTree::SplitResult BTree::InsertRec(PageId node, int64_t key, uint64_t rid) {
  PageGuard guard(pool_, node);
  Page* page = guard.get();

  if (IsLeaf(*page)) {
    const size_t pos = LeafLowerBound(*page, key, rid);
    const size_t count = Count(*page);
    // Shift right to open a hole. memmove over the contiguous entry array.
    std::memmove(page->bytes() + kHeader + (pos + 1) * kLeafEntrySize,
                 page->bytes() + kHeader + pos * kLeafEntrySize,
                 (count - pos) * kLeafEntrySize);
    SetLeafEntry(page, pos, {key, rid});
    SetCount(page, static_cast<uint16_t>(count + 1));
    guard.MarkDirty();

    if (count + 1 <= kLeafCapacity) return {};

    // Split: move the upper half to a new right sibling.
    const size_t total = count + 1;
    const size_t keep = total / 2;
    const PageId right_id = AllocateNode(/*leaf=*/true);
    PageGuard right_guard(pool_, right_id);
    Page* right = right_guard.get();
    for (size_t i = keep; i < total; ++i) {
      SetLeafEntry(right, i - keep, GetLeafEntry(*page, i));
    }
    SetCount(right, static_cast<uint16_t>(total - keep));
    SetNextLeaf(right, NextLeaf(*page));
    SetCount(page, static_cast<uint16_t>(keep));
    SetNextLeaf(page, right_id);
    right_guard.MarkDirty();

    const LeafEntry sep = GetLeafEntry(*right, 0);
    return {true, sep.key, sep.rid, right_id};
  }

  // Internal node.
  const size_t child_index = InternalChildIndex(*page, key, rid);
  const PageId child = ChildAt(*page, child_index);
  guard.Release();  // Unpin during the recursive descent.

  SplitResult child_split = InsertRec(child, key, rid);
  if (!child_split.split) return {};

  PageGuard guard2(pool_, node);
  page = guard2.get();
  const size_t count = Count(*page);
  // The new separator goes at position child_index (it is > all separators
  // routed left of the child and < those right of it).
  std::memmove(
      page->bytes() + kInternalEntriesOffset +
          (child_index + 1) * kInternalEntrySize,
      page->bytes() + kInternalEntriesOffset +
          child_index * kInternalEntrySize,
      (count - child_index) * kInternalEntrySize);
  SetInternalEntry(page, child_index,
                   {child_split.sep_key, child_split.sep_rid,
                    child_split.new_page});
  SetCount(page, static_cast<uint16_t>(count + 1));
  guard2.MarkDirty();

  if (count + 1 <= kInternalCapacity) return {};

  // Split the internal node; the middle separator moves up.
  const size_t total = count + 1;
  const size_t mid = total / 2;
  const InternalEntry up = GetInternalEntry(*page, mid);
  const PageId right_id = AllocateNode(/*leaf=*/false);
  PageGuard right_guard(pool_, right_id);
  Page* right = right_guard.get();
  SetLeftmostChild(right, up.child);
  for (size_t i = mid + 1; i < total; ++i) {
    SetInternalEntry(right, i - mid - 1, GetInternalEntry(*page, i));
  }
  SetCount(right, static_cast<uint16_t>(total - mid - 1));
  SetCount(page, static_cast<uint16_t>(mid));
  right_guard.MarkDirty();

  return {true, up.key, up.rid, right_id};
}

PageId BTree::FindLeaf(int64_t key, uint64_t rid) const {
  PageId node = root_;
  while (true) {
    PageGuard guard(pool_, node);
    const Page& page = *guard.get();
    if (IsLeaf(page)) return node;
    node = ChildAt(page, InternalChildIndex(page, key, rid));
  }
}

std::vector<RecordId> BTree::Lookup(int64_t key) const {
  return LookupRange(key, key);
}

std::vector<RecordId> BTree::LookupRange(int64_t lo, int64_t hi) const {
  std::vector<RecordId> out;
  if (root_ == kInvalidPageId || lo > hi) return out;
  PageId leaf = FindLeaf(lo, /*rid=*/0);
  while (leaf != kInvalidPageId) {
    PageGuard guard(pool_, leaf);
    const Page& page = *guard.get();
    const size_t count = Count(page);
    size_t i = LeafLowerBound(page, lo, /*rid=*/0);
    for (; i < count; ++i) {
      const LeafEntry e = GetLeafEntry(page, i);
      if (e.key > hi) return out;
      out.push_back(RecordId::Unpack(e.rid));
    }
    leaf = NextLeaf(page);
  }
  return out;
}

int BTree::Height() const {
  if (root_ == kInvalidPageId) return 0;
  int height = 1;
  PageId node = root_;
  while (true) {
    PageGuard guard(pool_, node);
    const Page& page = *guard.get();
    if (IsLeaf(page)) return height;
    node = LeftmostChild(page);
    ++height;
  }
}

}  // namespace ppp::storage
