#ifndef PPP_STORAGE_BUFFER_POOL_H_
#define PPP_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/record_id.h"

namespace ppp::storage {

/// A fixed-capacity LRU buffer pool over a DiskManager.
///
/// All page access in the engine goes through FetchPage/UnpinPage, so the
/// pool's IoStats are a complete record of physical page traffic. Misses
/// are classified sequential vs random by adjacency to the previous missed
/// page, mirroring how a disk arm would behave for a table scan.
///
/// Thread-safe: a single mutex guards the page table, frames, and stats,
/// so a background ANALYZE can scan a table while queries run. Pinned
/// page *contents* are not further synchronized — the engine only writes
/// pages single-threaded (loads, index builds), and concurrent readers of
/// immutable heap pages need no coordination.
class BufferPool {
 public:
  /// `capacity` is the number of page frames. The Montage experiments used
  /// 32 MB of memory against a 110 MB database; workloads here pick a
  /// capacity that similarly cannot hold the working set.
  BufferPool(DiskManager* disk, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  /// Returns a pinned in-pool frame for `page_id`, reading it from disk on
  /// a miss (possibly evicting an unpinned page). Aborts if every frame is
  /// pinned — that is an engine bug, not an expected runtime condition.
  Page* FetchPage(PageId page_id);

  /// Releases one pin; `dirty` marks the frame for write-back on eviction.
  void UnpinPage(PageId page_id, bool dirty);

  /// Allocates a new page on disk and returns it pinned via `*out`.
  PageId NewPage(Page** out);

  /// Writes back every dirty frame.
  void FlushAll();

  /// Evicts every unpinned frame (flushing dirty ones). Used between
  /// experiment runs so each query starts cold, as the paper's repeated
  /// single-query measurements would.
  void EvictAll();

  /// Snapshot of the I/O counters (copied under the pool mutex so a
  /// concurrent fetch can't tear it).
  IoStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.Reset();
  }

  size_t capacity() const { return frames_.size(); }

 private:
  struct Frame {
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    uint64_t lru_tick = 0;
    Page page;
  };

  /// Returns the index of a free or evictable frame; flushes the victim if
  /// dirty. Aborts when all frames are pinned. Caller holds mu_.
  size_t FindVictim();

  /// Caller holds mu_.
  void RecordMissRead(PageId page_id);

  mutable std::mutex mu_;
  DiskManager* disk_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> page_table_;
  IoStats stats_;
  uint64_t tick_ = 0;
  PageId last_missed_page_ = kInvalidPageId;
};

/// RAII pin guard: fetches on construction, unpins on destruction.
class PageGuard {
 public:
  PageGuard(BufferPool* pool, PageId page_id)
      : pool_(pool), page_id_(page_id), page_(pool->FetchPage(page_id)) {}

  /// Adopts an already-pinned page (e.g. from BufferPool::NewPage).
  PageGuard(BufferPool* pool, PageId page_id, Page* page)
      : pool_(pool), page_id_(page_id), page_(page) {}

  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept
      : pool_(other.pool_),
        page_id_(other.page_id_),
        page_(other.page_),
        dirty_(other.dirty_) {
    other.page_ = nullptr;
  }

  Page* get() { return page_; }
  const Page* get() const { return page_; }
  PageId page_id() const { return page_id_; }

  /// Marks the page for write-back when the guard releases.
  void MarkDirty() { dirty_ = true; }

  /// Unpins early (idempotent).
  void Release() {
    if (page_ != nullptr) {
      pool_->UnpinPage(page_id_, dirty_);
      page_ = nullptr;
    }
  }

 private:
  BufferPool* pool_;
  PageId page_id_;
  Page* page_;
  bool dirty_ = false;
};

}  // namespace ppp::storage

#endif  // PPP_STORAGE_BUFFER_POOL_H_
