#ifndef PPP_STORAGE_BTREE_H_
#define PPP_STORAGE_BTREE_H_

#include <cstdint>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/record_id.h"

namespace ppp::storage {

/// A paged B+-tree mapping int64 keys to RecordIds, with duplicates.
///
/// Entries are totally ordered by the composite (key, rid), and internal
/// separators carry the full composite, so lookups for a duplicated key
/// descend directly to the leftmost matching leaf. Every node access goes
/// through the BufferPool, so index probes incur the same (counted) I/O
/// that the paper's cost model charges for "probing the index (typically
/// 3 I/Os or less)".
///
/// The benchmark schema indexes integer attributes only, so keys are
/// int64; the catalog enforces that indexed columns have INT64 type.
class BTree {
 public:
  explicit BTree(BufferPool* pool) : pool_(pool) {}

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts one entry. Duplicate (key, rid) pairs are stored once each;
  /// inserting the exact same pair twice stores it twice (callers do not).
  void Insert(int64_t key, RecordId rid);

  /// All record ids whose key equals `key`, in rid order.
  std::vector<RecordId> Lookup(int64_t key) const;

  /// All record ids with lo <= key <= hi, in (key, rid) order.
  std::vector<RecordId> LookupRange(int64_t lo, int64_t hi) const;

  size_t NumEntries() const { return num_entries_; }

  /// Number of pages this index has allocated.
  size_t NumPages() const { return num_pages_; }

  /// Levels in the tree (1 = a single leaf). 0 when empty.
  int Height() const;

  bool empty() const { return root_ == kInvalidPageId; }

 private:
  struct SplitResult {
    bool split = false;
    int64_t sep_key = 0;    // Composite separator: first entry of the new
    uint64_t sep_rid = 0;   // right sibling.
    PageId new_page = kInvalidPageId;
  };

  PageId AllocateNode(bool leaf);
  SplitResult InsertRec(PageId node, int64_t key, uint64_t rid);

  /// Descends to the leaf that could contain the composite (key, rid).
  PageId FindLeaf(int64_t key, uint64_t rid) const;

  BufferPool* pool_;
  PageId root_ = kInvalidPageId;
  size_t num_entries_ = 0;
  size_t num_pages_ = 0;
};

}  // namespace ppp::storage

#endif  // PPP_STORAGE_BTREE_H_
