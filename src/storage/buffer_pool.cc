#include "storage/buffer_pool.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace ppp::storage {

namespace {
// Process-wide I/O-class counters, mirroring the per-pool stats_ so a
// metrics snapshot sees all pools at once. Pointers from the registry are
// stable for the process lifetime.
obs::Counter* HitCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("storage.buffer_pool.hits");
  return c;
}
obs::Counter* SeqReadCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "storage.buffer_pool.sequential_reads");
  return c;
}
obs::Counter* RandReadCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "storage.buffer_pool.random_reads");
  return c;
}
obs::Counter* WriteCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("storage.buffer_pool.writes");
  return c;
}
}  // namespace

BufferPool::BufferPool(DiskManager* disk, size_t capacity) : disk_(disk) {
  PPP_CHECK(capacity > 0);
  frames_.resize(capacity);
  page_table_.reserve(capacity);
}

BufferPool::~BufferPool() { FlushAll(); }

Page* BufferPool::FetchPage(PageId page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  ++tick_;
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    Frame& frame = frames_[it->second];
    ++frame.pin_count;
    frame.lru_tick = tick_;
    ++stats_.buffer_hits;
    HitCounter()->Increment();
    return &frame.page;
  }
  const size_t idx = FindVictim();
  Frame& frame = frames_[idx];
  frame.page_id = page_id;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.lru_tick = tick_;
  disk_->ReadPage(page_id, &frame.page);
  RecordMissRead(page_id);
  page_table_[page_id] = idx;
  return &frame.page;
}

void BufferPool::UnpinPage(PageId page_id, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(page_id);
  PPP_CHECK(it != page_table_.end()) << "unpin of unmapped page " << page_id;
  Frame& frame = frames_[it->second];
  PPP_CHECK(frame.pin_count > 0) << "unpin of unpinned page " << page_id;
  --frame.pin_count;
  frame.dirty = frame.dirty || dirty;
}

PageId BufferPool::NewPage(Page** out) {
  std::lock_guard<std::mutex> lock(mu_);
  ++tick_;
  const PageId page_id = disk_->AllocatePage();
  const size_t idx = FindVictim();
  Frame& frame = frames_[idx];
  frame.page_id = page_id;
  frame.pin_count = 1;
  frame.dirty = true;  // Fresh pages must reach disk even if never modified
                       // again, or a later miss would read stale zeroes.
  frame.lru_tick = tick_;
  frame.page = Page();
  page_table_[page_id] = idx;
  *out = &frame.page;
  return page_id;
}

void BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& frame : frames_) {
    if (frame.page_id != kInvalidPageId && frame.dirty) {
      disk_->WritePage(frame.page_id, frame.page);
      frame.dirty = false;
      ++stats_.writes;
      WriteCounter()->Increment();
    }
  }
}

void BufferPool::EvictAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& frame : frames_) {
    if (frame.page_id == kInvalidPageId || frame.pin_count > 0) continue;
    if (frame.dirty) {
      disk_->WritePage(frame.page_id, frame.page);
      ++stats_.writes;
      WriteCounter()->Increment();
    }
    page_table_.erase(frame.page_id);
    frame = Frame();
  }
  last_missed_page_ = kInvalidPageId;
}

size_t BufferPool::FindVictim() {
  size_t victim = frames_.size();
  uint64_t oldest = UINT64_MAX;
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& frame = frames_[i];
    if (frame.page_id == kInvalidPageId) return i;  // Free frame.
    if (frame.pin_count == 0 && frame.lru_tick < oldest) {
      oldest = frame.lru_tick;
      victim = i;
    }
  }
  PPP_CHECK(victim < frames_.size())
      << "buffer pool exhausted: all " << frames_.size() << " frames pinned";
  Frame& frame = frames_[victim];
  if (frame.dirty) {
    disk_->WritePage(frame.page_id, frame.page);
    ++stats_.writes;
    WriteCounter()->Increment();
  }
  page_table_.erase(frame.page_id);
  frame = Frame();
  return victim;
}

void BufferPool::RecordMissRead(PageId page_id) {
  if (last_missed_page_ != kInvalidPageId &&
      page_id == last_missed_page_ + 1) {
    ++stats_.sequential_reads;
    SeqReadCounter()->Increment();
  } else {
    ++stats_.random_reads;
    RandReadCounter()->Increment();
  }
  last_missed_page_ = page_id;
}

}  // namespace ppp::storage
