#ifndef PPP_STORAGE_PAGE_H_
#define PPP_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

namespace ppp::storage {

/// Page size in bytes. The paper's tuples are 100 bytes wide, so a page
/// holds roughly 38 tuples after slot overhead — matching the "several
/// dozen tuples per block" regime Montage ran in.
inline constexpr size_t kPageSize = 4096;

/// A raw fixed-size page buffer. Interpretation (slotted data page, B-tree
/// node) is layered on top by HeapFile / BTree.
struct Page {
  std::array<uint8_t, kPageSize> data;

  Page() { data.fill(0); }

  uint8_t* bytes() { return data.data(); }
  const uint8_t* bytes() const { return data.data(); }
};

}  // namespace ppp::storage

#endif  // PPP_STORAGE_PAGE_H_
