#ifndef PPP_PLAN_PLAN_NODE_H_
#define PPP_PLAN_PLAN_NODE_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "expr/predicate.h"
#include "types/row_schema.h"
#include "types/value.h"

namespace ppp::plan {

enum class PlanKind {
  kSeqScan,
  kIndexScan,
  kFilter,
  kJoin,
  kSort,
  kMaterialize,
  kProject,
  kAggregate,
};

/// One aggregate in a kAggregate node's output.
struct AggregateItem {
  enum class Op { kCount, kSum, kAvg, kMin, kMax };
  Op op = Op::kCount;
  expr::ExprPtr arg;  // Null for COUNT(*).
  std::string name;   // Output column name.
};

enum class JoinMethod {
  kNestLoop,       // Block nested loops, inner rescanned (materialized).
  kIndexNestLoop,  // Inner must be a base-table scan with a usable index.
  kMerge,          // Requires both inputs sorted on the join columns.
  kHash,           // Build on inner, probe with outer.
};

const char* PlanKindName(PlanKind kind);
const char* JoinMethodName(JoinMethod method);

/// A physical plan node. Plans are mutable trees with unique ownership:
/// the placement algorithms (PullUp, Predicate Migration, ...) literally
/// move Filter nodes up and down these trees, which is the paper's whole
/// subject.
///
/// Cost/cardinality annotations are filled by cost::CostAnnotator and are
/// in random-I/O units; they become stale whenever the tree is mutated and
/// must be recomputed before being read.
struct PlanNode {
  PlanKind kind;

  // kSeqScan / kIndexScan: the scanned range variable.
  std::string alias;
  std::string table_name;

  // kIndexScan: equality probe `alias.index_column = index_key`, or —
  // when index_is_range — the inclusive key range [index_lo, index_hi].
  // Either way the output is ordered on the index column.
  std::string index_column;
  types::Value index_key;
  bool index_is_range = false;
  int64_t index_lo = 0;
  int64_t index_hi = 0;

  // kFilter: the applied conjunct. kJoin: the *primary* join predicate
  // (secondary join predicates are Filter nodes above the join).
  expr::PredicateInfo predicate;

  // kJoin.
  JoinMethod join_method = JoinMethod::kNestLoop;

  // kSort: qualified "alias.column" sort key.
  std::string sort_column;

  // kProject.
  std::vector<expr::ExprPtr> projections;
  std::vector<std::string> projection_names;

  // kAggregate: hash aggregation on `group_columns` (qualified
  // "alias.column" names; empty = one global group), computing
  // `aggregates`. Output columns: the group columns, then the aggregates,
  // sorted by group key for determinism.
  std::vector<std::string> group_columns;
  std::vector<AggregateItem> aggregates;

  // Children: 0 for scans, 1 for filter/sort/materialize/project, 2 for
  // joins (outer first).
  std::vector<std::unique_ptr<PlanNode>> children;

  // ---- Annotations (filled by cost::CostAnnotator) ----
  double est_rows = 0.0;
  double est_cost = 0.0;   // Cumulative, random-I/O units.
  double est_width = 0.0;  // Average output row bytes.
  std::optional<std::string> est_order;  // Qualified column or nullopt.
  /// Portion of est_cost charged for expensive-predicate evaluation (used
  /// to model rescans under predicate caching, where UDF work repeats for
  /// free but I/O does not).
  double est_udf_cost = 0.0;
  /// Cardinality assuming every *expensive* predicate below passes all
  /// tuples — the pessimistic `{R}` estimate of paper §5.2 (ablation A4).
  double est_rows_noexp = 0.0;

  std::unique_ptr<PlanNode> Clone() const;

  /// Multi-line indented tree rendering, with annotations when present.
  std::string ToString() const;

  /// This node's single line of ToString() (description + annotations, no
  /// indent or newline) — the unit EXPLAIN renders per plan node.
  std::string LineString() const;

  /// Single-line structural signature (no annotations), for tests.
  std::string Signature() const;

  /// FNV-1a of Signature(): a stable structural fingerprint (shape and
  /// placement, no cost annotations). The query log groups rows by it, so
  /// a placement flip under identical SQL is visible as a fingerprint
  /// change.
  uint64_t Fingerprint() const;

  /// All scan aliases under (and including) this node.
  std::vector<std::string> CollectAliases() const;

 private:
  void AppendTo(std::string* out, int indent) const;
};

using PlanPtr = std::unique_ptr<PlanNode>;

// -- Factories --------------------------------------------------------------

PlanPtr MakeSeqScan(std::string alias, std::string table_name);
PlanPtr MakeIndexScan(std::string alias, std::string table_name,
                      std::string index_column, types::Value key,
                      expr::PredicateInfo predicate);
PlanPtr MakeIndexRangeScan(std::string alias, std::string table_name,
                           std::string index_column, int64_t lo, int64_t hi,
                           expr::PredicateInfo predicate);
PlanPtr MakeFilter(PlanPtr input, expr::PredicateInfo predicate);
PlanPtr MakeJoin(JoinMethod method, PlanPtr outer, PlanPtr inner,
                 expr::PredicateInfo primary);
PlanPtr MakeSort(PlanPtr input, std::string sort_column);
PlanPtr MakeMaterialize(PlanPtr input);
PlanPtr MakeProject(PlanPtr input, std::vector<expr::ExprPtr> projections,
                    std::vector<std::string> names);
PlanPtr MakeAggregate(PlanPtr input, std::vector<std::string> group_columns,
                      std::vector<AggregateItem> aggregates);

const char* AggregateOpName(AggregateItem::Op op);

/// Maps an aggregate function name (case-insensitive) to its op;
/// nullopt for non-aggregates.
std::optional<AggregateItem::Op> AggregateOpFromName(const std::string& name);

// -- Generic (parameterized) plans ------------------------------------------
//
// A plan compiled from a prepared statement carries expr::Expr::param_slot
// annotations on the constants that came from parameter slots. EXECUTE
// substitutes fresh values into a clone of that plan instead of re-running
// the optimizer — placement and join order are reused; per-literal
// selectivities stay frozen at their prepare-time estimates (the standard
// generic-plan trade-off).

/// Adds every parameter slot appearing in the tree's expressions (filter
/// and join predicates, projections, aggregate arguments) to `out`.
void CollectPlanParamSlots(const PlanNode& plan, std::set<int>* out);

/// True iff fresh values can be substituted into `plan` safely: no index
/// scan bakes a slot-carrying constant into its probe key (index_key /
/// index_lo / index_hi are materialized at optimize time and cannot be
/// rebound), and the plan's expressions cover exactly slots 1..num_params
/// (a slot swallowed by a subquery-rewrite closure or constant folding is
/// invisible to substitution, so partial coverage means "replan").
bool PlanIsParameterizable(const PlanNode& plan, size_t num_params);

/// Deep copy of `plan` with every slot-carrying constant rebound to
/// values[slot - 1]; nullptr when PlanIsParameterizable fails. Cost and
/// selectivity annotations are copied as-is.
PlanPtr CloneWithParams(const PlanNode& plan,
                        const std::vector<types::Value>& values);

}  // namespace ppp::plan

#endif  // PPP_PLAN_PLAN_NODE_H_
