#ifndef PPP_PLAN_QUERY_SPEC_H_
#define PPP_PLAN_QUERY_SPEC_H_

#include <string>
#include <vector>

#include "expr/expr.h"

namespace ppp::plan {

/// One FROM-clause entry: `table_name [AS] alias`.
struct TableRef {
  std::string alias;
  std::string table_name;
};

/// A bound, analyzed SELECT query: the form the optimizer consumes.
/// Produced by the parser (parser::ParseSelect + Bind) or constructed
/// directly by tests and benchmarks.
struct QuerySpec {
  std::vector<TableRef> tables;
  /// WHERE clause, already split into conjuncts.
  std::vector<expr::ExprPtr> conjuncts;
  /// SELECT list; empty means SELECT *.
  std::vector<expr::ExprPtr> select_list;
  std::vector<std::string> select_names;

  /// SELECT DISTINCT: deduplicate the output rows (planned as a grouping
  /// with no aggregates).
  bool distinct = false;

  /// GROUP BY columns, qualified "alias.column". Non-empty (or aggregate
  /// calls in the select list) makes this an aggregate query.
  std::vector<std::string> group_by;

  /// HAVING predicate over group columns and aggregates; may be null.
  expr::ExprPtr having;

  /// Required output order: qualified "alias.column" (ascending), or
  /// empty. The optimizer prefers interestingly-ordered plans (index
  /// scans, merge joins) that satisfy it for free.
  std::string order_by;

  std::string ToString() const;
};

}  // namespace ppp::plan

#endif  // PPP_PLAN_QUERY_SPEC_H_
