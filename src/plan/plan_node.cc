#include "plan/plan_node.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace ppp::plan {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kSeqScan:
      return "SeqScan";
    case PlanKind::kIndexScan:
      return "IndexScan";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kJoin:
      return "Join";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kMaterialize:
      return "Materialize";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kAggregate:
      return "Aggregate";
  }
  return "?";
}

const char* AggregateOpName(AggregateItem::Op op) {
  switch (op) {
    case AggregateItem::Op::kCount:
      return "count";
    case AggregateItem::Op::kSum:
      return "sum";
    case AggregateItem::Op::kAvg:
      return "avg";
    case AggregateItem::Op::kMin:
      return "min";
    case AggregateItem::Op::kMax:
      return "max";
  }
  return "?";
}

const char* JoinMethodName(JoinMethod method) {
  switch (method) {
    case JoinMethod::kNestLoop:
      return "NestLoop";
    case JoinMethod::kIndexNestLoop:
      return "IndexNestLoop";
    case JoinMethod::kMerge:
      return "Merge";
    case JoinMethod::kHash:
      return "Hash";
  }
  return "?";
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto copy = std::make_unique<PlanNode>();
  copy->kind = kind;
  copy->alias = alias;
  copy->table_name = table_name;
  copy->index_column = index_column;
  copy->index_key = index_key;
  copy->index_is_range = index_is_range;
  copy->index_lo = index_lo;
  copy->index_hi = index_hi;
  copy->predicate = predicate;
  copy->join_method = join_method;
  copy->sort_column = sort_column;
  copy->projections = projections;
  copy->projection_names = projection_names;
  copy->group_columns = group_columns;
  copy->aggregates = aggregates;
  copy->est_rows = est_rows;
  copy->est_cost = est_cost;
  copy->est_width = est_width;
  copy->est_order = est_order;
  copy->est_udf_cost = est_udf_cost;
  copy->est_rows_noexp = est_rows_noexp;
  for (const std::unique_ptr<PlanNode>& child : children) {
    copy->children.push_back(child->Clone());
  }
  return copy;
}

void PlanNode::AppendTo(std::string* out, int indent) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(LineString());
  out->append("\n");
  for (const std::unique_ptr<PlanNode>& child : children) {
    child->AppendTo(out, indent + 1);
  }
}

std::string PlanNode::LineString() const {
  std::string line;
  std::string* out = &line;
  switch (kind) {
    case PlanKind::kSeqScan:
      out->append("SeqScan(" + alias + ":" + table_name + ")");
      break;
    case PlanKind::kIndexScan:
      if (index_is_range) {
        out->append("IndexRangeScan(" + alias + ":" + table_name + " " +
                    index_column + " in [" + std::to_string(index_lo) +
                    "," + std::to_string(index_hi) + "])");
      } else {
        out->append("IndexScan(" + alias + ":" + table_name + " " +
                    index_column + "=" + index_key.ToString() + ")");
      }
      break;
    case PlanKind::kFilter:
      out->append("Filter[" + predicate.expr->ToString() + "]");
      break;
    case PlanKind::kJoin:
      out->append(std::string(JoinMethodName(join_method)) + "Join[" +
                  (predicate.expr != nullptr ? predicate.expr->ToString()
                                             : "true") +
                  "]");
      break;
    case PlanKind::kSort:
      out->append("Sort(" + sort_column + ")");
      break;
    case PlanKind::kMaterialize:
      out->append("Materialize");
      break;
    case PlanKind::kProject: {
      std::vector<std::string> cols;
      cols.reserve(projections.size());
      for (const expr::ExprPtr& p : projections) {
        cols.push_back(p->ToString());
      }
      out->append("Project(" + common::Join(cols, ", ") + ")");
      break;
    }
    case PlanKind::kAggregate: {
      std::vector<std::string> parts = group_columns;
      for (const AggregateItem& a : aggregates) {
        parts.push_back(std::string(AggregateOpName(a.op)) + "(" +
                        (a.arg != nullptr ? a.arg->ToString() : "*") + ")");
      }
      out->append("Aggregate(" + common::Join(parts, ", ") + ")");
      break;
    }
  }
  if (est_rows > 0 || est_cost > 0) {
    out->append(common::StringPrintf("  {rows=%.4g cost=%.6g", est_rows,
                                     est_cost));
    if (est_order.has_value()) out->append(" order=" + *est_order);
    out->append("}");
  }
  // Provenance of the node's predicate estimates: which tier of the
  // feedback > stats > declared ladder produced them.
  if (predicate.expr != nullptr &&
      (kind == PlanKind::kFilter || kind == PlanKind::kJoin ||
       kind == PlanKind::kIndexScan)) {
    out->append(common::StringPrintf(
        "  [sel=%.4g~%s cost=%.3g~%s]", predicate.selectivity,
        expr::StatSourceName(predicate.selectivity_source),
        predicate.cost_per_tuple,
        expr::StatSourceName(predicate.cost_source)));
  }
  return line;
}

std::string PlanNode::ToString() const {
  std::string out;
  AppendTo(&out, 0);
  return out;
}

std::string PlanNode::Signature() const {
  switch (kind) {
    case PlanKind::kSeqScan:
      return alias;
    case PlanKind::kIndexScan:
      return "idx(" + alias + "." + index_column + ")";
    case PlanKind::kFilter:
      return "F[" + predicate.expr->ToString() + "](" +
             children[0]->Signature() + ")";
    case PlanKind::kJoin:
      return std::string(JoinMethodName(join_method)) + "(" +
             children[0]->Signature() + "," + children[1]->Signature() + ")";
    case PlanKind::kSort:
      return "sort<" + sort_column + ">(" + children[0]->Signature() + ")";
    case PlanKind::kMaterialize:
      return "mat(" + children[0]->Signature() + ")";
    case PlanKind::kProject:
      return "proj(" + children[0]->Signature() + ")";
    case PlanKind::kAggregate:
      return "agg(" + children[0]->Signature() + ")";
  }
  return "?";
}

uint64_t PlanNode::Fingerprint() const {
  return common::Fnv1aHash(Signature());
}

std::vector<std::string> PlanNode::CollectAliases() const {
  std::vector<std::string> out;
  if (kind == PlanKind::kSeqScan || kind == PlanKind::kIndexScan) {
    out.push_back(alias);
  }
  for (const std::unique_ptr<PlanNode>& child : children) {
    std::vector<std::string> sub = child->CollectAliases();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

void CollectPlanParamSlots(const PlanNode& plan, std::set<int>* out) {
  if (plan.predicate.expr != nullptr) {
    expr::CollectParamSlots(plan.predicate.expr, out);
  }
  for (const expr::ExprPtr& p : plan.projections) {
    expr::CollectParamSlots(p, out);
  }
  for (const AggregateItem& a : plan.aggregates) {
    expr::CollectParamSlots(a.arg, out);
  }
  for (const std::unique_ptr<PlanNode>& child : plan.children) {
    CollectPlanParamSlots(*child, out);
  }
}

namespace {

bool IndexScansParamFree(const PlanNode& node) {
  if (node.kind == PlanKind::kIndexScan && node.predicate.expr != nullptr) {
    std::set<int> slots;
    expr::CollectParamSlots(node.predicate.expr, &slots);
    if (!slots.empty()) return false;
  }
  for (const std::unique_ptr<PlanNode>& child : node.children) {
    if (!IndexScansParamFree(*child)) return false;
  }
  return true;
}

void SubstituteNodeParams(PlanNode* node,
                          const std::vector<types::Value>& values) {
  if (node->predicate.expr != nullptr) {
    node->predicate.expr = expr::SubstituteParams(node->predicate.expr,
                                                  values);
  }
  for (expr::ExprPtr& p : node->projections) {
    p = expr::SubstituteParams(p, values);
  }
  for (AggregateItem& a : node->aggregates) {
    a.arg = expr::SubstituteParams(a.arg, values);
  }
  for (std::unique_ptr<PlanNode>& child : node->children) {
    SubstituteNodeParams(child.get(), values);
  }
}

}  // namespace

bool PlanIsParameterizable(const PlanNode& plan, size_t num_params) {
  if (!IndexScansParamFree(plan)) return false;
  std::set<int> slots;
  CollectPlanParamSlots(plan, &slots);
  if (slots.size() != num_params) return false;
  int expected = 1;
  for (int s : slots) {
    if (s != expected) return false;
    ++expected;
  }
  return true;
}

PlanPtr CloneWithParams(const PlanNode& plan,
                        const std::vector<types::Value>& values) {
  if (!PlanIsParameterizable(plan, values.size())) return nullptr;
  PlanPtr copy = plan.Clone();
  SubstituteNodeParams(copy.get(), values);
  return copy;
}

std::optional<AggregateItem::Op> AggregateOpFromName(
    const std::string& name) {
  const std::string lower = common::ToLower(name);
  if (lower == "count") return AggregateItem::Op::kCount;
  if (lower == "sum") return AggregateItem::Op::kSum;
  if (lower == "avg") return AggregateItem::Op::kAvg;
  if (lower == "min") return AggregateItem::Op::kMin;
  if (lower == "max") return AggregateItem::Op::kMax;
  return std::nullopt;
}

PlanPtr MakeSeqScan(std::string alias, std::string table_name) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kSeqScan;
  node->alias = std::move(alias);
  node->table_name = std::move(table_name);
  return node;
}

PlanPtr MakeIndexScan(std::string alias, std::string table_name,
                      std::string index_column, types::Value key,
                      expr::PredicateInfo predicate) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kIndexScan;
  node->alias = std::move(alias);
  node->table_name = std::move(table_name);
  node->index_column = std::move(index_column);
  node->index_key = std::move(key);
  node->predicate = std::move(predicate);
  return node;
}

PlanPtr MakeIndexRangeScan(std::string alias, std::string table_name,
                           std::string index_column, int64_t lo, int64_t hi,
                           expr::PredicateInfo predicate) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kIndexScan;
  node->alias = std::move(alias);
  node->table_name = std::move(table_name);
  node->index_column = std::move(index_column);
  node->index_is_range = true;
  node->index_lo = lo;
  node->index_hi = hi;
  node->predicate = std::move(predicate);
  return node;
}

PlanPtr MakeFilter(PlanPtr input, expr::PredicateInfo predicate) {
  PPP_CHECK(input != nullptr);
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kFilter;
  node->predicate = std::move(predicate);
  node->children.push_back(std::move(input));
  return node;
}

PlanPtr MakeJoin(JoinMethod method, PlanPtr outer, PlanPtr inner,
                 expr::PredicateInfo primary) {
  PPP_CHECK(outer != nullptr && inner != nullptr);
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kJoin;
  node->join_method = method;
  node->predicate = std::move(primary);
  node->children.push_back(std::move(outer));
  node->children.push_back(std::move(inner));
  return node;
}

PlanPtr MakeSort(PlanPtr input, std::string sort_column) {
  PPP_CHECK(input != nullptr);
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kSort;
  node->sort_column = std::move(sort_column);
  node->children.push_back(std::move(input));
  return node;
}

PlanPtr MakeMaterialize(PlanPtr input) {
  PPP_CHECK(input != nullptr);
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kMaterialize;
  node->children.push_back(std::move(input));
  return node;
}

PlanPtr MakeProject(PlanPtr input, std::vector<expr::ExprPtr> projections,
                    std::vector<std::string> names) {
  PPP_CHECK(input != nullptr);
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kProject;
  node->projections = std::move(projections);
  node->projection_names = std::move(names);
  node->children.push_back(std::move(input));
  return node;
}

PlanPtr MakeAggregate(PlanPtr input, std::vector<std::string> group_columns,
                      std::vector<AggregateItem> aggregates) {
  PPP_CHECK(input != nullptr);
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kAggregate;
  node->group_columns = std::move(group_columns);
  node->aggregates = std::move(aggregates);
  node->children.push_back(std::move(input));
  return node;
}

}  // namespace ppp::plan
