#include "plan/query_spec.h"

#include "common/string_util.h"

namespace ppp::plan {

std::string QuerySpec::ToString() const {
  std::string out = "SELECT ";
  if (select_list.empty()) {
    out += "*";
  } else {
    std::vector<std::string> cols;
    cols.reserve(select_list.size());
    for (const expr::ExprPtr& e : select_list) cols.push_back(e->ToString());
    out += common::Join(cols, ", ");
  }
  out += " FROM ";
  std::vector<std::string> froms;
  froms.reserve(tables.size());
  for (const TableRef& t : tables) {
    froms.push_back(t.table_name == t.alias ? t.table_name
                                            : t.table_name + " " + t.alias);
  }
  out += common::Join(froms, ", ");
  if (!conjuncts.empty()) {
    std::vector<std::string> preds;
    preds.reserve(conjuncts.size());
    for (const expr::ExprPtr& e : conjuncts) preds.push_back(e->ToString());
    out += " WHERE " + common::Join(preds, " AND ");
  }
  if (!order_by.empty()) out += " ORDER BY " + order_by;
  return out;
}

}  // namespace ppp::plan
