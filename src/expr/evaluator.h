#ifndef PPP_EXPR_EVALUATOR_H_
#define PPP_EXPR_EVALUATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/function_registry.h"
#include "common/sharded_memo.h"
#include "common/status.h"
#include "expr/expr.h"
#include "types/row_schema.h"
#include "types/tuple.h"

namespace ppp::expr {

/// Per-function memo table: the [Jhi88] alternative to whole-predicate
/// caching that §5.1 contrasts with Montage's design. Keyed on
/// (function, serialized arguments); FIFO eviction when bounded. Backed by
/// a sharded, thread-safe memo so the batch executor's workers can share
/// one cache, with the same adaptive self-disable as the predicate cache.
class FunctionCache {
 public:
  struct Options {
    size_t max_entries = 0;  // 0 = unbounded.
    size_t shards = 1;
    bool adaptive = false;
    uint64_t probe_window = 512;

    bool operator==(const Options&) const = default;
  };

  FunctionCache();

  /// Applies `options`; drops existing entries only when they changed, so
  /// repeated executions under the same configuration keep their memo.
  void Configure(const Options& options);

  /// Returns the memoized result, running `compute` at most once per
  /// distinct key (concurrent probers of an in-flight key wait).
  types::Value GetOrCompute(const std::string& key,
                            const std::function<types::Value()>& compute) {
    return memo_.GetOrCompute(key, compute);
  }

  /// True once the adaptive policy disabled this cache (zero hits in the
  /// first probe_window probes); callers then invoke functions directly.
  bool disabled() const { return memo_.disabled(); }

  size_t entries() const { return memo_.entries(); }
  uint64_t hits() const { return memo_.hits(); }
  uint64_t evictions() const { return memo_.evictions(); }

 private:
  Options options_;
  common::ShardedMemo<types::Value> memo_;
};

/// Mutable per-query evaluation state: the UDF invocation counters that the
/// measurement harness converts into charged time (paper §2), plus the
/// optional function-level cache. Owned by the executor; shared by every
/// operator of one plan execution.
struct EvalContext {
  /// function name -> number of invocations so far.
  std::unordered_map<std::string, uint64_t> invocation_counts;

  /// Non-null enables function-result caching during evaluation.
  FunctionCache* function_cache = nullptr;

  uint64_t InvocationsOf(const std::string& function) const {
    auto it = invocation_counts.find(function);
    return it == invocation_counts.end() ? 0 : it->second;
  }
};

/// An expression compiled against a RowSchema: column references are
/// resolved to tuple indexes and function names to FunctionDef pointers, so
/// evaluation does no lookups.
class BoundExpr {
 public:
  /// Compiles `expr` against `schema`. Fails if a column cannot be resolved
  /// (or is ambiguous) or a function is not registered.
  static common::Result<std::unique_ptr<BoundExpr>> Bind(
      const ExprPtr& expr, const types::RowSchema& schema,
      const catalog::FunctionRegistry& functions);

  /// Evaluates on one tuple. UDF invocations are tallied into `ctx`.
  types::Value Eval(const types::Tuple& tuple, EvalContext* ctx) const;

  /// Eval specialized for predicates: NULL and non-true map to false.
  bool EvalBool(const types::Tuple& tuple, EvalContext* ctx) const;

  const Expr& expr() const { return *expr_; }

  /// Tuple indexes of all column references in the tree, in depth-first
  /// order (used as the predicate-cache key projection).
  const std::vector<size_t>& column_indexes() const {
    return column_indexes_;
  }

 private:
  BoundExpr() = default;

  ExprPtr expr_;
  // Parallel compiled node data, indexed by depth-first position.
  size_t column_index_ = 0;                        // kColumnRef.
  const catalog::FunctionDef* function_ = nullptr;  // kFunctionCall.
  std::vector<std::unique_ptr<BoundExpr>> children_;
  std::vector<size_t> column_indexes_;
};

}  // namespace ppp::expr

#endif  // PPP_EXPR_EVALUATOR_H_
