#ifndef PPP_EXPR_EXPR_H_
#define PPP_EXPR_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "types/value.h"

namespace ppp::expr {

enum class ExprKind {
  kColumnRef,
  kConstant,
  kComparison,
  kArithmetic,
  kFunctionCall,
  kAnd,
  kOr,
  kNot,
  kInSubquery,
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv };

const char* CompareOpSymbol(CompareOp op);
const char* ArithOpSymbol(ArithOp op);

class Expr;
/// Expression nodes are immutable and shared; plans, predicates and the
/// parser all alias subtrees freely.
using ExprPtr = std::shared_ptr<const Expr>;

/// The body of an `x IN (SELECT out FROM ... WHERE ...)` predicate — a
/// minimal mirror of plan::QuerySpec that can live below the plan layer.
/// The paper treats such (especially correlated) subqueries as the
/// original expensive predicates (§1, §5.1); the binder rewrites them into
/// cacheable expensive-function predicates.
struct SubquerySpec {
  /// FROM clause: (alias, table name) pairs.
  std::vector<std::pair<std::string, std::string>> tables;
  /// WHERE conjuncts; column refs may name outer aliases (correlation).
  std::vector<ExprPtr> conjuncts;
  /// The single SELECT item.
  ExprPtr output;
};

/// An immutable scalar expression tree node.
///
/// A single class with a kind tag (rather than a class hierarchy) keeps
/// construction, printing and recursive analysis in one place; the tree is
/// tiny compared to the data it filters.
class Expr {
 public:
  ExprKind kind;

  // kColumnRef. `table` is the range-variable name; may be empty until
  // name resolution qualifies it.
  std::string table;
  std::string column;

  // kConstant.
  types::Value constant;
  /// kConstant only: 1-based prepared-statement slot this constant was
  /// bound from, or -1 for a plain literal. Structural equality ignores it
  /// (a bound parameter compares like the literal it carries); the
  /// serving layer's generic-plan substitution rewrites exactly the
  /// constants that carry a slot.
  int param_slot = -1;

  // kComparison / kArithmetic.
  CompareOp compare_op = CompareOp::kEq;
  ArithOp arith_op = ArithOp::kAdd;

  // kFunctionCall.
  std::string function_name;

  // kInSubquery: children[0] is the needle expression.
  std::shared_ptr<const SubquerySpec> subquery;

  // Operands (2 for binary nodes, 1 for NOT, n for calls).
  std::vector<ExprPtr> children;

  /// SQL-ish rendering: "t3.u1", "costly100(t3.u1)", "(a = b AND p(c))".
  std::string ToString() const;

  /// Adds every referenced range-variable name to `out`.
  void CollectTables(std::set<std::string>* out) const;
  std::set<std::string> ReferencedTables() const;

  /// Appends every column reference in the tree (depth-first).
  void CollectColumnRefs(std::vector<const Expr*>* out) const;

  /// Appends every function call in the tree (depth-first).
  void CollectFunctionCalls(std::vector<const Expr*>* out) const;

  /// Deep structural equality.
  bool Equals(const Expr& other) const;
};

// -- Factory helpers -------------------------------------------------------

ExprPtr Col(std::string table, std::string column);
ExprPtr Const(types::Value v);
/// A constant bound from prepared-statement parameter slot `slot`
/// (1-based). Behaves exactly like Const(v) everywhere except under
/// SubstituteParams, which rebinds it.
ExprPtr ParamConst(types::Value v, int slot);
ExprPtr Int(int64_t v);
ExprPtr Cmp(CompareOp op, ExprPtr left, ExprPtr right);
ExprPtr Eq(ExprPtr left, ExprPtr right);
ExprPtr Arith(ArithOp op, ExprPtr left, ExprPtr right);
ExprPtr Call(std::string function, std::vector<ExprPtr> args);
ExprPtr And(ExprPtr left, ExprPtr right);
ExprPtr Or(ExprPtr left, ExprPtr right);
ExprPtr Not(ExprPtr child);
ExprPtr InSubquery(ExprPtr needle,
                   std::shared_ptr<const SubquerySpec> subquery);

/// Splits nested ANDs into a flat conjunct list (the WHERE-clause form the
/// optimizer works with).
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr);

/// Rebuilds a single expression from conjuncts (nullptr if empty).
ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts);

/// Rewrites every slot-carrying constant (see Expr::param_slot) to
/// values[slot - 1], sharing unchanged subtrees. Slots outside `values`
/// are left untouched. Does not descend into kInSubquery specs — a
/// parameter captured by a subquery closure cannot be rebound, which the
/// plan-level parameterizability check detects by slot coverage.
ExprPtr SubstituteParams(const ExprPtr& expr,
                         const std::vector<types::Value>& values);

/// Adds every param_slot present in the tree to `out` (kInSubquery specs
/// included, so pre-rewrite coverage checks see captured slots too).
void CollectParamSlots(const ExprPtr& expr, std::set<int>* out);

}  // namespace ppp::expr

#endif  // PPP_EXPR_EXPR_H_
