#include "expr/expr.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace ppp::expr {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithOpSymbol(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kColumnRef:
      return table.empty() ? column : table + "." + column;
    case ExprKind::kConstant:
      return constant.ToString();
    case ExprKind::kComparison:
      return children[0]->ToString() + " " + CompareOpSymbol(compare_op) +
             " " + children[1]->ToString();
    case ExprKind::kArithmetic:
      return "(" + children[0]->ToString() + " " + ArithOpSymbol(arith_op) +
             " " + children[1]->ToString() + ")";
    case ExprKind::kFunctionCall: {
      std::vector<std::string> args;
      args.reserve(children.size());
      for (const ExprPtr& c : children) args.push_back(c->ToString());
      return function_name + "(" + common::Join(args, ", ") + ")";
    }
    case ExprKind::kAnd:
      return "(" + children[0]->ToString() + " AND " +
             children[1]->ToString() + ")";
    case ExprKind::kOr:
      return "(" + children[0]->ToString() + " OR " +
             children[1]->ToString() + ")";
    case ExprKind::kNot:
      return "NOT (" + children[0]->ToString() + ")";
    case ExprKind::kInSubquery: {
      std::string from;
      std::string where;
      if (subquery != nullptr) {
        std::vector<std::string> tables;
        for (const auto& [alias, name] : subquery->tables) {
          tables.push_back(alias == name ? name : name + " " + alias);
        }
        from = common::Join(tables, ", ");
        std::vector<std::string> preds;
        for (const ExprPtr& c : subquery->conjuncts) {
          preds.push_back(c->ToString());
        }
        where = preds.empty() ? "" : " WHERE " + common::Join(preds, " AND ");
      }
      return children[0]->ToString() + " IN (SELECT " +
             (subquery != nullptr && subquery->output != nullptr
                  ? subquery->output->ToString()
                  : "?") +
             " FROM " + from + where + ")";
    }
  }
  return "?";
}

void Expr::CollectTables(std::set<std::string>* out) const {
  if (kind == ExprKind::kColumnRef) {
    out->insert(table);
    return;
  }
  if (kind == ExprKind::kInSubquery) {
    // The node references its needle's tables plus any *correlated* outer
    // tables inside the subquery (inner aliases shadow).
    children[0]->CollectTables(out);
    if (subquery != nullptr) {
      std::set<std::string> inner_aliases;
      for (const auto& [alias, name] : subquery->tables) {
        inner_aliases.insert(alias);
      }
      std::set<std::string> inner_refs;
      for (const ExprPtr& c : subquery->conjuncts) {
        c->CollectTables(&inner_refs);
      }
      if (subquery->output != nullptr) {
        subquery->output->CollectTables(&inner_refs);
      }
      for (const std::string& t : inner_refs) {
        if (inner_aliases.count(t) == 0) out->insert(t);
      }
    }
    return;
  }
  for (const ExprPtr& c : children) c->CollectTables(out);
}

std::set<std::string> Expr::ReferencedTables() const {
  std::set<std::string> out;
  CollectTables(&out);
  return out;
}

void Expr::CollectColumnRefs(std::vector<const Expr*>* out) const {
  if (kind == ExprKind::kColumnRef) {
    out->push_back(this);
    return;
  }
  for (const ExprPtr& c : children) c->CollectColumnRefs(out);
}

void Expr::CollectFunctionCalls(std::vector<const Expr*>* out) const {
  if (kind == ExprKind::kFunctionCall) out->push_back(this);
  for (const ExprPtr& c : children) c->CollectFunctionCalls(out);
}

bool Expr::Equals(const Expr& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case ExprKind::kColumnRef:
      return table == other.table && column == other.column;
    case ExprKind::kConstant:
      if (constant.type() != other.constant.type()) return false;
      return constant == other.constant;
    case ExprKind::kComparison:
      if (compare_op != other.compare_op) return false;
      break;
    case ExprKind::kArithmetic:
      if (arith_op != other.arith_op) return false;
      break;
    case ExprKind::kFunctionCall:
      if (function_name != other.function_name) return false;
      break;
    case ExprKind::kInSubquery:
      // Structural subquery comparison is not needed anywhere; identity of
      // the spec object is the practical notion of equality.
      if (subquery != other.subquery) return false;
      break;
    default:
      break;
  }
  if (children.size() != other.children.size()) return false;
  for (size_t i = 0; i < children.size(); ++i) {
    if (!children[i]->Equals(*other.children[i])) return false;
  }
  return true;
}

namespace {
std::shared_ptr<Expr> Make(ExprKind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}
}  // namespace

ExprPtr Col(std::string table, std::string column) {
  auto e = Make(ExprKind::kColumnRef);
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr Const(types::Value v) {
  auto e = Make(ExprKind::kConstant);
  e->constant = std::move(v);
  return e;
}

ExprPtr ParamConst(types::Value v, int slot) {
  auto e = Make(ExprKind::kConstant);
  e->constant = std::move(v);
  e->param_slot = slot;
  return e;
}

ExprPtr Int(int64_t v) { return Const(types::Value(v)); }

ExprPtr Cmp(CompareOp op, ExprPtr left, ExprPtr right) {
  PPP_CHECK(left != nullptr && right != nullptr);
  auto e = Make(ExprKind::kComparison);
  e->compare_op = op;
  e->children = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Eq(ExprPtr left, ExprPtr right) {
  return Cmp(CompareOp::kEq, std::move(left), std::move(right));
}

ExprPtr Arith(ArithOp op, ExprPtr left, ExprPtr right) {
  PPP_CHECK(left != nullptr && right != nullptr);
  auto e = Make(ExprKind::kArithmetic);
  e->arith_op = op;
  e->children = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Call(std::string function, std::vector<ExprPtr> args) {
  auto e = Make(ExprKind::kFunctionCall);
  e->function_name = std::move(function);
  e->children = std::move(args);
  return e;
}

ExprPtr And(ExprPtr left, ExprPtr right) {
  PPP_CHECK(left != nullptr && right != nullptr);
  auto e = Make(ExprKind::kAnd);
  e->children = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Or(ExprPtr left, ExprPtr right) {
  PPP_CHECK(left != nullptr && right != nullptr);
  auto e = Make(ExprKind::kOr);
  e->children = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Not(ExprPtr child) {
  PPP_CHECK(child != nullptr);
  auto e = Make(ExprKind::kNot);
  e->children = {std::move(child)};
  return e;
}

ExprPtr InSubquery(ExprPtr needle,
                   std::shared_ptr<const SubquerySpec> subquery) {
  PPP_CHECK(needle != nullptr && subquery != nullptr);
  auto e = Make(ExprKind::kInSubquery);
  e->children = {std::move(needle)};
  e->subquery = std::move(subquery);
  return e;
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  if (expr == nullptr) return out;
  if (expr->kind == ExprKind::kAnd) {
    for (const ExprPtr& c : expr->children) {
      std::vector<ExprPtr> sub = SplitConjuncts(c);
      out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
  }
  out.push_back(expr);
  return out;
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return nullptr;
  ExprPtr acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = And(acc, conjuncts[i]);
  }
  return acc;
}

ExprPtr SubstituteParams(const ExprPtr& expr,
                         const std::vector<types::Value>& values) {
  if (expr == nullptr) return expr;
  if (expr->kind == ExprKind::kConstant) {
    const int slot = expr->param_slot;
    if (slot < 1 || static_cast<size_t>(slot) > values.size()) return expr;
    return ParamConst(values[static_cast<size_t>(slot) - 1], slot);
  }
  if (expr->children.empty()) return expr;
  bool changed = false;
  std::vector<ExprPtr> children;
  children.reserve(expr->children.size());
  for (const ExprPtr& child : expr->children) {
    ExprPtr replaced = SubstituteParams(child, values);
    changed = changed || replaced != child;
    children.push_back(std::move(replaced));
  }
  if (!changed) return expr;
  auto copy = std::make_shared<Expr>(*expr);
  copy->children = std::move(children);
  return copy;
}

void CollectParamSlots(const ExprPtr& expr, std::set<int>* out) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kConstant && expr->param_slot >= 1) {
    out->insert(expr->param_slot);
  }
  if (expr->kind == ExprKind::kInSubquery && expr->subquery != nullptr) {
    CollectParamSlots(expr->subquery->output, out);
    for (const ExprPtr& c : expr->subquery->conjuncts) {
      CollectParamSlots(c, out);
    }
  }
  for (const ExprPtr& c : expr->children) CollectParamSlots(c, out);
}

}  // namespace ppp::expr
