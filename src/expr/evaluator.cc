#include "expr/evaluator.h"

#include <chrono>
#include <optional>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/span.h"

namespace ppp::expr {

FunctionCache::FunctionCache() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  common::ShardedMemo<types::Value>::Listener listener;
  listener.on_hit = [counter = registry.GetCounter(
                         "expr.function_cache.hits")] {
    counter->Increment();
  };
  listener.on_miss = [counter = registry.GetCounter(
                          "expr.function_cache.misses")] {
    counter->Increment();
  };
  listener.on_eviction = [counter = registry.GetCounter(
                              "expr.function_cache.evictions")] {
    counter->Increment();
  };
  listener.on_disable = [counter = registry.GetCounter(
                             "expr.function_cache.disables")] {
    counter->Increment();
  };
  listener.on_contention = [counter = registry.GetCounter(
                                "expr.function_cache.shard_contention")] {
    counter->Increment();
  };
  memo_.set_listener(std::move(listener));
}

void FunctionCache::Configure(const Options& options) {
  if (options == options_) return;
  options_ = options;
  common::ShardedMemo<types::Value>::Options memo;
  memo.max_entries = options.max_entries;
  memo.shards = options.shards == 0 ? 1 : options.shards;
  memo.adaptive = options.adaptive;
  memo.probe_window = options.probe_window;
  memo_.Reset(memo);
}

common::Result<std::unique_ptr<BoundExpr>> BoundExpr::Bind(
    const ExprPtr& expr, const types::RowSchema& schema,
    const catalog::FunctionRegistry& functions) {
  if (expr == nullptr) {
    return common::Status::InvalidArgument("cannot bind null expression");
  }
  auto bound = std::unique_ptr<BoundExpr>(new BoundExpr());
  bound->expr_ = expr;

  if (expr->kind == ExprKind::kColumnRef) {
    const std::optional<size_t> index =
        schema.FindColumn(expr->table, expr->column);
    if (!index.has_value()) {
      return common::Status::NotFound(
          "column " + expr->ToString() + " not found (or ambiguous) in [" +
          schema.ToString() + "]");
    }
    bound->column_index_ = *index;
    bound->column_indexes_.push_back(*index);
    return bound;
  }

  if (expr->kind == ExprKind::kInSubquery) {
    return common::Status::InvalidArgument(
        "IN-subquery must be rewritten into a predicate function before "
        "execution (see subquery::RewriteSubqueries): " + expr->ToString());
  }
  if (expr->kind == ExprKind::kFunctionCall) {
    PPP_ASSIGN_OR_RETURN(bound->function_,
                         functions.Lookup(expr->function_name));
  }

  for (const ExprPtr& child : expr->children) {
    PPP_ASSIGN_OR_RETURN(std::unique_ptr<BoundExpr> bound_child,
                         Bind(child, schema, functions));
    bound->column_indexes_.insert(bound->column_indexes_.end(),
                                  bound_child->column_indexes_.begin(),
                                  bound_child->column_indexes_.end());
    bound->children_.push_back(std::move(bound_child));
  }
  return bound;
}

types::Value BoundExpr::Eval(const types::Tuple& tuple,
                             EvalContext* ctx) const {
  switch (expr_->kind) {
    case ExprKind::kColumnRef:
      return tuple.Get(column_index_);
    case ExprKind::kConstant:
      return expr_->constant;
    case ExprKind::kComparison: {
      const types::Value left = children_[0]->Eval(tuple, ctx);
      const types::Value right = children_[1]->Eval(tuple, ctx);
      if (left.is_null() || right.is_null()) return types::Value::Null();
      const int c = left.Compare(right);
      switch (expr_->compare_op) {
        case CompareOp::kEq:
          return types::Value(c == 0);
        case CompareOp::kNe:
          return types::Value(c != 0);
        case CompareOp::kLt:
          return types::Value(c < 0);
        case CompareOp::kLe:
          return types::Value(c <= 0);
        case CompareOp::kGt:
          return types::Value(c > 0);
        case CompareOp::kGe:
          return types::Value(c >= 0);
      }
      return types::Value::Null();
    }
    case ExprKind::kArithmetic: {
      const types::Value left = children_[0]->Eval(tuple, ctx);
      const types::Value right = children_[1]->Eval(tuple, ctx);
      if (left.is_null() || right.is_null()) return types::Value::Null();
      // Integer arithmetic stays integral; anything else goes to double.
      if (left.type() == types::TypeId::kInt64 &&
          right.type() == types::TypeId::kInt64 &&
          expr_->arith_op != ArithOp::kDiv) {
        const int64_t a = left.AsInt64();
        const int64_t b = right.AsInt64();
        switch (expr_->arith_op) {
          case ArithOp::kAdd:
            return types::Value(a + b);
          case ArithOp::kSub:
            return types::Value(a - b);
          case ArithOp::kMul:
            return types::Value(a * b);
          case ArithOp::kDiv:
            break;
        }
      }
      const double a = left.AsNumeric();
      const double b = right.AsNumeric();
      switch (expr_->arith_op) {
        case ArithOp::kAdd:
          return types::Value(a + b);
        case ArithOp::kSub:
          return types::Value(a - b);
        case ArithOp::kMul:
          return types::Value(a * b);
        case ArithOp::kDiv:
          if (b == 0) return types::Value::Null();
          return types::Value(a / b);
      }
      return types::Value::Null();
    }
    case ExprKind::kFunctionCall: {
      std::vector<types::Value> args;
      args.reserve(children_.size());
      for (const std::unique_ptr<BoundExpr>& child : children_) {
        args.push_back(child->Eval(tuple, ctx));
      }
      // Per-function memoization ([Jhi88] / §5.1 alternative): key on the
      // function name plus serialized argument values. The invocation tally
      // happens inside the memo's compute callback, so under the batch
      // executor each actual invocation lands in exactly one worker's
      // per-worker EvalContext and merged totals stay exact.
      static obs::Counter* invocation_counter =
          obs::MetricsRegistry::Global().GetCounter("expr.udf.invocations");
      auto invoke = [&]() -> types::Value {
        if (ctx != nullptr) {
          ++ctx->invocation_counts[function_->name];
        }
        invocation_counter->Increment();
        obs::PredicateProfiler& profiler = obs::PredicateProfiler::Global();
        const bool spans_on = obs::SpanTracer::Global().enabled() &&
                              function_->cost_per_call > 0;
        if (!profiler.enabled() && !spans_on) return function_->impl(args);
        // Per-invocation span only for declared-expensive functions (cheap
        // comparators would swamp the trace); the profiler sees every call.
        std::optional<obs::Span> span;
        if (spans_on) span.emplace("udf", function_->name);
        const auto start = std::chrono::steady_clock::now();
        types::Value result = function_->impl(args);
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        if (profiler.enabled()) {
          // Distinct-input selectivity per §5.1: keyed on the serialized
          // argument tuple, the same identity the predicate cache uses.
          std::optional<bool> passed;
          std::string input_key;
          if (function_->return_type == types::TypeId::kBool) {
            passed = !result.is_null() && result.AsBool();
            input_key = types::Tuple(args).Serialize();
          }
          profiler.Record(function_->name, seconds, input_key, passed);
        }
        return result;
      };
      FunctionCache* cache =
          (ctx != nullptr && function_->cacheable) ? ctx->function_cache
                                                   : nullptr;
      if (cache == nullptr || cache->disabled()) {
        return invoke();
      }
      const std::string key =
          function_->name + "\x1f" + types::Tuple(args).Serialize();
      return cache->GetOrCompute(key, invoke);
    }
    case ExprKind::kAnd: {
      // SQL three-valued logic: false dominates NULL.
      const types::Value left = children_[0]->Eval(tuple, ctx);
      if (!left.is_null() && !left.AsBool()) return types::Value(false);
      const types::Value right = children_[1]->Eval(tuple, ctx);
      if (!right.is_null() && !right.AsBool()) return types::Value(false);
      if (left.is_null() || right.is_null()) return types::Value::Null();
      return types::Value(true);
    }
    case ExprKind::kOr: {
      const types::Value left = children_[0]->Eval(tuple, ctx);
      if (!left.is_null() && left.AsBool()) return types::Value(true);
      const types::Value right = children_[1]->Eval(tuple, ctx);
      if (!right.is_null() && right.AsBool()) return types::Value(true);
      if (left.is_null() || right.is_null()) return types::Value::Null();
      return types::Value(false);
    }
    case ExprKind::kNot: {
      const types::Value v = children_[0]->Eval(tuple, ctx);
      if (v.is_null()) return types::Value::Null();
      return types::Value(!v.AsBool());
    }
    case ExprKind::kInSubquery:
      // Unreachable: Bind rejects unrewritten subqueries.
      return types::Value::Null();
  }
  return types::Value::Null();
}

bool BoundExpr::EvalBool(const types::Tuple& tuple, EvalContext* ctx) const {
  const types::Value v = Eval(tuple, ctx);
  if (v.is_null()) return false;
  if (v.type() == types::TypeId::kBool) return v.AsBool();
  // Non-boolean predicate results (e.g. a bare int) follow C semantics.
  return v.AsNumeric() != 0;
}

}  // namespace ppp::expr
