#include "expr/predicate.h"

#include <algorithm>
#include <optional>

#include "common/string_util.h"
#include "obs/profiler.h"
#include "stats/estimator.h"

namespace ppp::expr {

namespace {
constexpr double kDefaultEqSelectivity = 0.1;    // System R magic number.
constexpr double kDefaultRangeSelectivity = 1.0 / 3.0;

StatSource MaxSource(StatSource a, StatSource b) {
  return static_cast<uint8_t>(a) >= static_cast<uint8_t>(b) ? a : b;
}
}  // namespace

const char* StatSourceName(StatSource source) {
  switch (source) {
    case StatSource::kDeclared: return "decl";
    case StatSource::kStats: return "stats";
    case StatSource::kFeedback: return "feedback";
  }
  return "decl";
}

std::string PredicateInfo::ToString() const {
  return common::StringPrintf(
      "{%s | tables=%zu cost=%.3g sel=%.4g rank=%.4g%s}",
      expr->ToString().c_str(), tables.size(), cost_per_tuple, selectivity,
      rank(), is_simple_equijoin ? " equijoin" : "");
}

common::Result<PredicateInfo> PredicateAnalyzer::Analyze(
    const ExprPtr& expr) const {
  if (expr == nullptr) {
    return common::Status::InvalidArgument("cannot analyze null predicate");
  }
  PredicateInfo info;
  info.expr = expr;
  info.tables = expr->ReferencedTables();

  for (const std::string& table : info.tables) {
    if (binding_.count(table) == 0) {
      return common::Status::NotFound("predicate " + expr->ToString() +
                                      " references unbound alias " + table);
    }
  }

  PPP_ASSIGN_OR_RETURN(const Estimate sel, EstimateSelectivity(*expr));
  info.selectivity = sel.value;
  info.selectivity_source = sel.source;
  PPP_ASSIGN_OR_RETURN(const Estimate cost, EstimateCost(*expr));
  info.cost_per_tuple = cost.value;
  info.cost_source = cost.source;

  // Simple equi-join detection: `a.c1 = b.c2`, two distinct aliases.
  if (expr->kind == ExprKind::kComparison &&
      expr->compare_op == CompareOp::kEq &&
      expr->children[0]->kind == ExprKind::kColumnRef &&
      expr->children[1]->kind == ExprKind::kColumnRef &&
      expr->children[0]->table != expr->children[1]->table) {
    info.is_simple_equijoin = true;
    info.left_table = expr->children[0]->table;
    info.left_column = expr->children[0]->column;
    info.right_table = expr->children[1]->table;
    info.right_column = expr->children[1]->column;
    StatSource ignored = StatSource::kDeclared;
    info.left_distinct = EffectiveDistinctOf(*expr->children[0], &ignored);
    info.right_distinct = EffectiveDistinctOf(*expr->children[1], &ignored);
  }

  // Distinct input bindings: product of per-column distinct counts over the
  // deduplicated column refs, clamped by the cross product of cardinalities.
  std::vector<const Expr*> refs;
  expr->CollectColumnRefs(&refs);
  std::set<std::string> seen;
  double distinct_product = 1.0;
  for (const Expr* ref : refs) {
    const std::string key = ref->table + "." + ref->column;
    if (!seen.insert(key).second) continue;
    StatSource ignored = StatSource::kDeclared;
    const int64_t d = std::max<int64_t>(1, EffectiveDistinctOf(*ref, &ignored));
    distinct_product *= static_cast<double>(d);
  }
  double card_product = 1.0;
  for (const std::string& table : info.tables) {
    card_product *=
        static_cast<double>(std::max<int64_t>(1, CardinalityOf(table)));
  }
  info.input_distinct_values = static_cast<int64_t>(
      std::min(distinct_product, std::max(card_product, 1.0)));
  info.input_base_rows = std::max(card_product, 1.0);

  return info;
}

common::Result<PredicateAnalyzer::Estimate>
PredicateAnalyzer::EstimateSelectivity(const Expr& expr) const {
  switch (expr.kind) {
    case ExprKind::kConstant:
      if (expr.constant.type() == types::TypeId::kBool) {
        return Estimate{expr.constant.AsBool() ? 1.0 : 0.0,
                        StatSource::kDeclared};
      }
      return Estimate{1.0, StatSource::kDeclared};
    case ExprKind::kColumnRef:
      // A bare boolean column; no stats on truth rate.
      return Estimate{0.5, StatSource::kDeclared};
    case ExprKind::kFunctionCall: {
      PPP_ASSIGN_OR_RETURN(const catalog::FunctionDef* def,
                           catalog_->functions().Lookup(expr.function_name));
      if (def->return_type != types::TypeId::kBool) {
        return Estimate{1.0, StatSource::kDeclared};
      }
      if (feedback_ != nullptr) {
        const std::optional<obs::FeedbackEntry> fb =
            feedback_->Lookup(expr.function_name);
        if (fb.has_value() && fb->has_selectivity) {
          return Estimate{fb->selectivity, StatSource::kFeedback};
        }
      }
      // UDF truth rates are opaque to column statistics: the ladder for
      // functions is feedback > declared, with no stats tier.
      return Estimate{def->selectivity, StatSource::kDeclared};
    }
    case ExprKind::kAnd: {
      PPP_ASSIGN_OR_RETURN(const Estimate a,
                           EstimateSelectivity(*expr.children[0]));
      PPP_ASSIGN_OR_RETURN(const Estimate b,
                           EstimateSelectivity(*expr.children[1]));
      return Estimate{a.value * b.value, MaxSource(a.source, b.source)};
    }
    case ExprKind::kOr: {
      PPP_ASSIGN_OR_RETURN(const Estimate a,
                           EstimateSelectivity(*expr.children[0]));
      PPP_ASSIGN_OR_RETURN(const Estimate b,
                           EstimateSelectivity(*expr.children[1]));
      return Estimate{a.value + b.value - a.value * b.value,
                      MaxSource(a.source, b.source)};
    }
    case ExprKind::kNot: {
      PPP_ASSIGN_OR_RETURN(const Estimate a,
                           EstimateSelectivity(*expr.children[0]));
      return Estimate{1.0 - a.value, a.source};
    }
    case ExprKind::kArithmetic:
      return Estimate{1.0, StatSource::kDeclared};
    case ExprKind::kInSubquery:
      // Unrewritten IN predicate: System R's default membership guess.
      return Estimate{0.5, StatSource::kDeclared};
    case ExprKind::kComparison:
      return ComparisonSelectivity(expr);
  }
  return Estimate{kDefaultRangeSelectivity, StatSource::kDeclared};
}

PredicateAnalyzer::Estimate PredicateAnalyzer::ComparisonSelectivity(
    const Expr& expr) const {
  const Expr& left = *expr.children[0];
  const Expr& right = *expr.children[1];
  const bool left_col = left.kind == ExprKind::kColumnRef;
  const bool right_col = right.kind == ExprKind::kColumnRef;
  const bool left_const = left.kind == ExprKind::kConstant;
  const bool right_const = right.kind == ExprKind::kConstant;

  switch (expr.compare_op) {
    case CompareOp::kEq: {
      if (left_col && right_col && left.table != right.table) {
        // Join: 1 / max(ndv) under containment; NDV through the ladder.
        StatSource source = StatSource::kDeclared;
        const int64_t d1 = EffectiveDistinctOf(left, &source);
        const int64_t d2 = EffectiveDistinctOf(right, &source);
        const int64_t d = std::max<int64_t>({d1, d2, 1});
        return {1.0 / static_cast<double>(d), source};
      }
      const Expr* col = left_col ? &left : (right_col ? &right : nullptr);
      const Expr* cst = right_const ? &right : (left_const ? &left : nullptr);
      if (col != nullptr && cst != nullptr) {
        std::shared_ptr<const stats::TableStatistics> hold;
        const stats::ColumnDistribution* dist = DistributionOf(*col, &hold);
        if (dist != nullptr) {
          const std::optional<double> est =
              stats::EstimateEquals(*dist, cst->constant);
          if (est.has_value()) return {*est, StatSource::kStats};
        }
        const int64_t d = std::max<int64_t>(1, StatsOf(*col).num_distinct);
        return {1.0 / static_cast<double>(d), StatSource::kDeclared};
      }
      return {kDefaultEqSelectivity, StatSource::kDeclared};
    }
    case CompareOp::kNe: {
      // 1 - eq selectivity, reusing the cases above.
      Expr eq = expr;
      eq.compare_op = CompareOp::kEq;
      const Estimate s = ComparisonSelectivity(eq);
      return {1.0 - s.value, s.source};
    }
    case CompareOp::kLt:
    case CompareOp::kLe:
    case CompareOp::kGt:
    case CompareOp::kGe: {
      const Expr* col = left_col ? &left : (right_col ? &right : nullptr);
      const Expr* cst = right_const ? &right : (left_const ? &left : nullptr);
      if (col == nullptr || cst == nullptr) {
        return {kDefaultRangeSelectivity, StatSource::kDeclared};
      }
      const bool col_on_left = (col == &left);
      std::shared_ptr<const stats::TableStatistics> hold;
      const stats::ColumnDistribution* dist = DistributionOf(*col, &hold);
      if (dist != nullptr) {
        // `c <op> col` is `col <flipped-op> c`; strictness is preserved.
        stats::RangeOp rop = stats::RangeOp::kLt;
        switch (expr.compare_op) {
          case CompareOp::kLt:
            rop = col_on_left ? stats::RangeOp::kLt : stats::RangeOp::kGt;
            break;
          case CompareOp::kLe:
            rop = col_on_left ? stats::RangeOp::kLe : stats::RangeOp::kGe;
            break;
          case CompareOp::kGt:
            rop = col_on_left ? stats::RangeOp::kGt : stats::RangeOp::kLt;
            break;
          case CompareOp::kGe:
            rop = col_on_left ? stats::RangeOp::kGe : stats::RangeOp::kLe;
            break;
          default:
            break;
        }
        const std::optional<double> est =
            stats::EstimateRange(*dist, rop, cst->constant);
        if (est.has_value()) return {*est, StatSource::kStats};
      }
      if (cst->constant.type() != types::TypeId::kInt64) {
        return {kDefaultRangeSelectivity, StatSource::kDeclared};
      }
      const catalog::ColumnStats stats = StatsOf(*col);
      if (stats.max_value <= stats.min_value) {
        return {kDefaultRangeSelectivity, StatSource::kDeclared};
      }
      const double lo = static_cast<double>(stats.min_value);
      const double hi = static_cast<double>(stats.max_value);
      const double c = static_cast<double>(cst->constant.AsInt64());
      double frac = (c - lo) / (hi - lo);  // P(col < c) under uniformity.
      const bool less = (expr.compare_op == CompareOp::kLt ||
                         expr.compare_op == CompareOp::kLe);
      // `col < c` keeps frac; `col > c` keeps 1 - frac; constant-on-left
      // flips the direction.
      if (less != col_on_left) frac = 1.0 - frac;
      return {std::clamp(frac, 0.0, 1.0), StatSource::kDeclared};
    }
  }
  return {kDefaultRangeSelectivity, StatSource::kDeclared};
}

common::Result<PredicateAnalyzer::Estimate> PredicateAnalyzer::EstimateCost(
    const Expr& expr) const {
  std::vector<const Expr*> calls;
  expr.CollectFunctionCalls(&calls);
  Estimate cost{0.0, StatSource::kDeclared};
  for (const Expr* call : calls) {
    PPP_ASSIGN_OR_RETURN(const catalog::FunctionDef* def,
                         catalog_->functions().Lookup(call->function_name));
    if (feedback_ != nullptr) {
      const std::optional<obs::FeedbackEntry> fb =
          feedback_->Lookup(call->function_name);
      if (fb.has_value()) {
        cost.value += fb->cost_per_call;
        cost.source = StatSource::kFeedback;
        continue;
      }
    }
    cost.value += def->cost_per_call;
  }
  return cost;
}

catalog::ColumnStats PredicateAnalyzer::StatsOf(
    const Expr& column_ref) const {
  auto it = binding_.find(column_ref.table);
  if (it == binding_.end() || it->second == nullptr) return {};
  return it->second->GetColumnStats(column_ref.column);
}

const stats::ColumnDistribution* PredicateAnalyzer::DistributionOf(
    const Expr& column_ref,
    std::shared_ptr<const stats::TableStatistics>* hold) const {
  if (!use_stats_) return nullptr;
  auto it = binding_.find(column_ref.table);
  if (it == binding_.end() || it->second == nullptr) return nullptr;
  *hold = it->second->collected_stats();
  if (*hold == nullptr) return nullptr;
  return (*hold)->Find(column_ref.column);
}

int64_t PredicateAnalyzer::CardinalityOf(const std::string& alias) const {
  auto it = binding_.find(alias);
  if (it == binding_.end() || it->second == nullptr) return 0;
  return it->second->NumTuples();
}

int64_t PredicateAnalyzer::EffectiveDistinctOf(const Expr& column_ref,
                                               StatSource* source) const {
  std::shared_ptr<const stats::TableStatistics> hold;
  const stats::ColumnDistribution* dist = DistributionOf(column_ref, &hold);
  if (dist != nullptr && dist->ndv > 0.0) {
    *source = MaxSource(*source, StatSource::kStats);
    return static_cast<int64_t>(dist->ndv + 0.5);
  }
  return StatsOf(column_ref).num_distinct;
}

}  // namespace ppp::expr
