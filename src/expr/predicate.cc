#include "expr/predicate.h"

#include <algorithm>
#include <optional>

#include "common/string_util.h"
#include "obs/profiler.h"

namespace ppp::expr {

namespace {
constexpr double kDefaultEqSelectivity = 0.1;    // System R magic number.
constexpr double kDefaultRangeSelectivity = 1.0 / 3.0;
}  // namespace

std::string PredicateInfo::ToString() const {
  return common::StringPrintf(
      "{%s | tables=%zu cost=%.3g sel=%.4g rank=%.4g%s}",
      expr->ToString().c_str(), tables.size(), cost_per_tuple, selectivity,
      rank(), is_simple_equijoin ? " equijoin" : "");
}

common::Result<PredicateInfo> PredicateAnalyzer::Analyze(
    const ExprPtr& expr) const {
  if (expr == nullptr) {
    return common::Status::InvalidArgument("cannot analyze null predicate");
  }
  PredicateInfo info;
  info.expr = expr;
  info.tables = expr->ReferencedTables();

  for (const std::string& table : info.tables) {
    if (binding_.count(table) == 0) {
      return common::Status::NotFound("predicate " + expr->ToString() +
                                      " references unbound alias " + table);
    }
  }

  PPP_ASSIGN_OR_RETURN(info.selectivity, EstimateSelectivity(*expr));
  PPP_ASSIGN_OR_RETURN(info.cost_per_tuple, EstimateCost(*expr));

  // Simple equi-join detection: `a.c1 = b.c2`, two distinct aliases.
  if (expr->kind == ExprKind::kComparison &&
      expr->compare_op == CompareOp::kEq &&
      expr->children[0]->kind == ExprKind::kColumnRef &&
      expr->children[1]->kind == ExprKind::kColumnRef &&
      expr->children[0]->table != expr->children[1]->table) {
    info.is_simple_equijoin = true;
    info.left_table = expr->children[0]->table;
    info.left_column = expr->children[0]->column;
    info.right_table = expr->children[1]->table;
    info.right_column = expr->children[1]->column;
    info.left_distinct = StatsOf(*expr->children[0]).num_distinct;
    info.right_distinct = StatsOf(*expr->children[1]).num_distinct;
  }

  // Distinct input bindings: product of per-column distinct counts over the
  // deduplicated column refs, clamped by the cross product of cardinalities.
  std::vector<const Expr*> refs;
  expr->CollectColumnRefs(&refs);
  std::set<std::string> seen;
  double distinct_product = 1.0;
  for (const Expr* ref : refs) {
    const std::string key = ref->table + "." + ref->column;
    if (!seen.insert(key).second) continue;
    const int64_t d = std::max<int64_t>(1, StatsOf(*ref).num_distinct);
    distinct_product *= static_cast<double>(d);
  }
  double card_product = 1.0;
  for (const std::string& table : info.tables) {
    card_product *=
        static_cast<double>(std::max<int64_t>(1, CardinalityOf(table)));
  }
  info.input_distinct_values = static_cast<int64_t>(
      std::min(distinct_product, std::max(card_product, 1.0)));
  info.input_base_rows = std::max(card_product, 1.0);

  return info;
}

common::Result<double> PredicateAnalyzer::EstimateSelectivity(
    const Expr& expr) const {
  switch (expr.kind) {
    case ExprKind::kConstant:
      if (expr.constant.type() == types::TypeId::kBool) {
        return expr.constant.AsBool() ? 1.0 : 0.0;
      }
      return 1.0;
    case ExprKind::kColumnRef:
      // A bare boolean column; no stats on truth rate.
      return 0.5;
    case ExprKind::kFunctionCall: {
      PPP_ASSIGN_OR_RETURN(const catalog::FunctionDef* def,
                           catalog_->functions().Lookup(expr.function_name));
      if (def->return_type != types::TypeId::kBool) return 1.0;
      if (feedback_ != nullptr) {
        const std::optional<obs::FeedbackEntry> fb =
            feedback_->Lookup(expr.function_name);
        if (fb.has_value() && fb->has_selectivity) return fb->selectivity;
      }
      return def->selectivity;
    }
    case ExprKind::kAnd: {
      PPP_ASSIGN_OR_RETURN(const double a,
                           EstimateSelectivity(*expr.children[0]));
      PPP_ASSIGN_OR_RETURN(const double b,
                           EstimateSelectivity(*expr.children[1]));
      return a * b;
    }
    case ExprKind::kOr: {
      PPP_ASSIGN_OR_RETURN(const double a,
                           EstimateSelectivity(*expr.children[0]));
      PPP_ASSIGN_OR_RETURN(const double b,
                           EstimateSelectivity(*expr.children[1]));
      return a + b - a * b;
    }
    case ExprKind::kNot: {
      PPP_ASSIGN_OR_RETURN(const double a,
                           EstimateSelectivity(*expr.children[0]));
      return 1.0 - a;
    }
    case ExprKind::kArithmetic:
      return 1.0;
    case ExprKind::kInSubquery:
      // Unrewritten IN predicate: System R's default membership guess.
      return 0.5;
    case ExprKind::kComparison:
      break;  // Handled below.
  }

  const Expr& left = *expr.children[0];
  const Expr& right = *expr.children[1];
  const bool left_col = left.kind == ExprKind::kColumnRef;
  const bool right_col = right.kind == ExprKind::kColumnRef;
  const bool left_const = left.kind == ExprKind::kConstant;
  const bool right_const = right.kind == ExprKind::kConstant;

  switch (expr.compare_op) {
    case CompareOp::kEq: {
      if (left_col && right_col && left.table != right.table) {
        const int64_t d1 = StatsOf(left).num_distinct;
        const int64_t d2 = StatsOf(right).num_distinct;
        const int64_t d = std::max<int64_t>({d1, d2, 1});
        return 1.0 / static_cast<double>(d);
      }
      if (left_col && right_const) {
        const int64_t d = std::max<int64_t>(1, StatsOf(left).num_distinct);
        return 1.0 / static_cast<double>(d);
      }
      if (right_col && left_const) {
        const int64_t d = std::max<int64_t>(1, StatsOf(right).num_distinct);
        return 1.0 / static_cast<double>(d);
      }
      return kDefaultEqSelectivity;
    }
    case CompareOp::kNe: {
      // 1 - eq selectivity, reusing the cases above.
      Expr eq = expr;
      eq.compare_op = CompareOp::kEq;
      PPP_ASSIGN_OR_RETURN(const double s, EstimateSelectivity(eq));
      return 1.0 - s;
    }
    case CompareOp::kLt:
    case CompareOp::kLe:
    case CompareOp::kGt:
    case CompareOp::kGe: {
      // Range fraction when we know the column's domain and the constant.
      const Expr* col = left_col ? &left : (right_col ? &right : nullptr);
      const Expr* cst = right_const ? &right : (left_const ? &left : nullptr);
      if (col == nullptr || cst == nullptr ||
          cst->constant.type() != types::TypeId::kInt64) {
        return kDefaultRangeSelectivity;
      }
      const catalog::ColumnStats stats = StatsOf(*col);
      if (stats.max_value <= stats.min_value) return kDefaultRangeSelectivity;
      const double lo = static_cast<double>(stats.min_value);
      const double hi = static_cast<double>(stats.max_value);
      const double c = static_cast<double>(cst->constant.AsInt64());
      double frac = (c - lo) / (hi - lo);  // P(col < c) under uniformity.
      const bool col_on_left = (col == &left);
      const bool less = (expr.compare_op == CompareOp::kLt ||
                         expr.compare_op == CompareOp::kLe);
      // `col < c` keeps frac; `col > c` keeps 1 - frac; constant-on-left
      // flips the direction.
      if (less != col_on_left) frac = 1.0 - frac;
      return std::clamp(frac, 0.0, 1.0);
    }
  }
  return kDefaultRangeSelectivity;
}

common::Result<double> PredicateAnalyzer::EstimateCost(
    const Expr& expr) const {
  std::vector<const Expr*> calls;
  expr.CollectFunctionCalls(&calls);
  double cost = 0.0;
  for (const Expr* call : calls) {
    PPP_ASSIGN_OR_RETURN(const catalog::FunctionDef* def,
                         catalog_->functions().Lookup(call->function_name));
    if (feedback_ != nullptr) {
      const std::optional<obs::FeedbackEntry> fb =
          feedback_->Lookup(call->function_name);
      if (fb.has_value()) {
        cost += fb->cost_per_call;
        continue;
      }
    }
    cost += def->cost_per_call;
  }
  return cost;
}

catalog::ColumnStats PredicateAnalyzer::StatsOf(
    const Expr& column_ref) const {
  auto it = binding_.find(column_ref.table);
  if (it == binding_.end() || it->second == nullptr) return {};
  return it->second->GetColumnStats(column_ref.column);
}

int64_t PredicateAnalyzer::CardinalityOf(const std::string& alias) const {
  auto it = binding_.find(alias);
  if (it == binding_.end() || it->second == nullptr) return 0;
  return it->second->NumTuples();
}

}  // namespace ppp::expr
