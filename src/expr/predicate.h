#ifndef PPP_EXPR_PREDICATE_H_
#define PPP_EXPR_PREDICATE_H_

#include <limits>
#include <map>
#include <set>
#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "expr/expr.h"

namespace ppp::obs {
class PredicateFeedbackStore;
}  // namespace ppp::obs

namespace ppp::expr {

/// Maps range-variable names (FROM-clause aliases) to their base tables.
using TableBinding = std::map<std::string, const catalog::Table*>;

/// Where an estimate came from, ordered by trust: runtime feedback beats
/// collected ANALYZE statistics beats declared catalog defaults. A
/// composite predicate reports the strongest tier any part of it used.
enum class StatSource : uint8_t {
  kDeclared = 0,
  kStats = 1,
  kFeedback = 2,
};

/// "decl" | "stats" | "feedback" — the tags EXPLAIN prints.
const char* StatSourceName(StatSource source);

/// Optimizer-facing summary of one WHERE-clause conjunct: which tables it
/// touches, what it costs per tuple, how selective it is, and — for simple
/// equi-joins — the join-column statistics the per-input selectivity model
/// of paper §3.2 needs.
struct PredicateInfo {
  ExprPtr expr;
  std::set<std::string> tables;

  /// Cost per invocation in random-I/O units: the sum of the costs of all
  /// function calls in the conjunct. Zero for "traditional simple
  /// predicates", which the paper treats as free.
  double cost_per_tuple = 0.0;

  /// Estimated fraction of input (cross-product for joins) tuples passing.
  double selectivity = 1.0;

  /// Provenance of selectivity / cost_per_tuple (see StatSource).
  StatSource selectivity_source = StatSource::kDeclared;
  StatSource cost_source = StatSource::kDeclared;

  /// Set when the conjunct has the exact form `a.c1 = b.c2` with a != b.
  bool is_simple_equijoin = false;
  std::string left_table;
  std::string left_column;
  std::string right_table;
  std::string right_column;
  /// Distinct-value counts of the join columns (for §5.1's value-based
  /// selectivities under predicate caching).
  int64_t left_distinct = 0;
  int64_t right_distinct = 0;

  /// Number of distinct bindings of all input columns of this predicate
  /// (upper bound: product of per-column distinct counts, clamped by the
  /// cross product of the referenced tables' cardinalities). This is the
  /// maximum number of evaluations a predicate cache can be charged for.
  int64_t input_distinct_values = 0;

  /// Cross product of the referenced tables' cardinalities: the stream
  /// size at which all `input_distinct_values` bindings appear. Streams
  /// reduced below this see proportionally fewer distinct bindings
  /// (Yao's formula, used by the cost model).
  double input_base_rows = 0.0;

  bool is_join() const { return tables.size() >= 2; }
  bool is_expensive() const { return cost_per_tuple > 0.0; }

  /// The paper's rank metric, (selectivity - 1) / cost. Free predicates
  /// have rank -infinity: they are always applied first.
  double rank() const {
    if (cost_per_tuple <= 0.0) {
      return -std::numeric_limits<double>::infinity();
    }
    return (selectivity - 1.0) / cost_per_tuple;
  }

  std::string ToString() const;
};

/// Derives PredicateInfo from expressions using catalog statistics.
/// Implements System R-style selectivity rules [SAC+79]:
///   col = const        -> 1/distinct(col)
///   col1 = col2 (join) -> 1/max(distinct(col1), distinct(col2))
///   col < const        -> fraction of the known range, else 1/3
///   boolean UDF        -> declared selectivity
///   AND / OR / NOT     -> independence combinations
class PredicateAnalyzer {
 public:
  PredicateAnalyzer(const catalog::Catalog* catalog, TableBinding binding)
      : catalog_(catalog), binding_(std::move(binding)) {}

  /// Analyzes one conjunct. Fails if it references an unbound table alias
  /// or an unregistered function.
  common::Result<PredicateInfo> Analyze(const ExprPtr& expr) const;

  const TableBinding& binding() const { return binding_; }

  /// When set, function cost/selectivity come from the feedback store's
  /// observed values (falling back to the catalog declaration for
  /// functions never profiled). This is the calibration path: re-analyzing
  /// the same conjuncts with feedback yields observed ranks.
  void set_feedback(const obs::PredicateFeedbackStore* feedback) {
    feedback_ = feedback;
  }

  /// When false, collected ANALYZE statistics are ignored and column
  /// selectivities come from declared catalog stats only (the pre-stats
  /// behaviour; CostParams::use_collected_stats wires this).
  void set_use_stats(bool on) { use_stats_ = on; }

 private:
  /// An estimate plus the provenance tier it came from.
  struct Estimate {
    double value = 0.0;
    StatSource source = StatSource::kDeclared;
  };

  common::Result<Estimate> EstimateSelectivity(const Expr& expr) const;
  common::Result<Estimate> EstimateCost(const Expr& expr) const;
  Estimate ComparisonSelectivity(const Expr& expr) const;

  /// Statistics of a column reference; zeros if unknown.
  catalog::ColumnStats StatsOf(const Expr& column_ref) const;
  /// Collected distribution of a column reference, or nullptr before
  /// ANALYZE (or when stats are disabled). The returned pointer lives as
  /// long as `hold`.
  const stats::ColumnDistribution* DistributionOf(
      const Expr& column_ref,
      std::shared_ptr<const stats::TableStatistics>* hold) const;
  /// Distinct count through the provenance ladder; sets *source to kStats
  /// when a collected NDV answered.
  int64_t EffectiveDistinctOf(const Expr& column_ref,
                              StatSource* source) const;
  int64_t CardinalityOf(const std::string& alias) const;

  const catalog::Catalog* catalog_;
  TableBinding binding_;
  const obs::PredicateFeedbackStore* feedback_ = nullptr;
  bool use_stats_ = true;
};

}  // namespace ppp::expr

#endif  // PPP_EXPR_PREDICATE_H_
