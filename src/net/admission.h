#ifndef PPP_NET_ADMISSION_H_
#define PPP_NET_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>

#include "common/status.h"

namespace ppp::net {

/// Bounded per-server admission queue with per-session fair dequeue.
///
/// Producers (connection readers) Enqueue one task per statement, keyed by
/// session; consumers (the worker pool) Dequeue in round-robin order
/// across sessions, at most one task per session in flight at a time
/// (serve::Session is single-threaded by contract) and at most
/// `max_inflight` tasks running overall. A full queue sheds instead of
/// blocking — Enqueue returns false and the caller answers ERR — and a
/// task queued longer than the timeout is handed back with `timed_out`
/// set so the worker can answer ERR without running the statement.
///
/// Counters: serve.admission.{queued,shed,timeouts}; queue-wait time is
/// recorded as a "queue_wait" span per dequeued task when tracing is on.
class AdmissionQueue {
 public:
  struct Options {
    /// Maximum tasks running concurrently (the worker-pool width).
    size_t max_inflight = 4;
    /// Maximum tasks waiting across all sessions before Enqueue sheds.
    size_t queue_depth = 64;
    /// Queue-wait ceiling; 0 disables timeouts.
    double queue_timeout_seconds = 10.0;
  };

  /// `timed_out` is true when the task expired in the queue — the worker
  /// must answer without executing.
  using Task = std::function<void(bool timed_out)>;

  struct Ticket {
    Task task;
    uint64_t session_key = 0;
    bool timed_out = false;
    double queue_wait_seconds = 0.0;
  };

  explicit AdmissionQueue(const Options& options);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// False = shed (queue full or shutting down); the task is NOT retained.
  bool Enqueue(uint64_t session_key, Task task);

  /// Blocks for the next runnable (or expired) task; nullopt once the
  /// queue is shut down and drained. After running a non-timed-out ticket
  /// the worker MUST call Finish(ticket.session_key).
  std::optional<Ticket> Dequeue();

  /// Releases `session_key`'s in-flight slot.
  void Finish(uint64_t session_key);

  /// Stops admissions; queued tasks still drain through Dequeue (the
  /// graceful-drain half: new work sheds, accepted work finishes).
  void Shutdown();

  size_t queued() const;
  bool shutdown() const;
  uint64_t total_queued() const { return stat_queued_.load(); }
  uint64_t total_shed() const { return stat_shed_.load(); }
  uint64_t total_timeouts() const { return stat_timeouts_.load(); }

 private:
  struct Item {
    Task task;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
  };

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Per-session FIFOs plus the round-robin rotation of sessions that have
  /// queued work. A session in `inflight_` is skipped until Finish.
  std::map<uint64_t, std::deque<Item>> queues_;
  std::deque<uint64_t> rotation_;
  std::set<uint64_t> inflight_;
  size_t running_ = 0;
  size_t total_waiting_ = 0;
  bool shutdown_ = false;
  std::atomic<uint64_t> stat_queued_{0};
  std::atomic<uint64_t> stat_shed_{0};
  std::atomic<uint64_t> stat_timeouts_{0};
};

}  // namespace ppp::net

#endif  // PPP_NET_ADMISSION_H_
