#ifndef PPP_NET_WIRE_H_
#define PPP_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "types/row_schema.h"
#include "types/tuple.h"

namespace ppp::net {

/// The wire protocol is a length-prefixed line protocol: every frame is a
/// 4-byte big-endian payload length followed by that many payload bytes.
/// Payloads are tagged text lines — binary-safe, since ROW frames carry
/// serialized tuples after their tag.
///
/// Requests:   QUERY <sql> | PREPARE <name> AS <sql> | EXECUTE <name>(..)
///             | PING | METRICS | CLOSE | SHUTDOWN
/// Responses:  OK <k>=<v>... | ROW <tuple bytes> | ERR <message>
///             | METRICS <json>
///
/// A statement response is zero or more ROW frames terminated by exactly
/// one OK (carrying the schema and counters) or ERR frame. PING, METRICS,
/// CLOSE and SHUTDOWN answer with a single frame.

/// Hard ceiling on a declared payload length; a peer declaring more is
/// malformed (protects the server from one 4 GB allocation).
inline constexpr uint32_t kMaxFrameBytes = 4u << 20;

/// 4-byte big-endian length + payload.
std::string EncodeFrame(std::string_view payload);

/// Strict incremental frame decoder. Feed() buffers arbitrary byte chunks
/// and appends every completed payload to `out`; a declared length above
/// the limit returns InvalidArgument and poisons the parser (the stream
/// offset is lost, so the connection must be dropped — the server survives
/// by closing only that connection). All other byte sequences are merely
/// incomplete, never fatal: resynchronization is the length prefix itself.
class FrameParser {
 public:
  explicit FrameParser(size_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Consumes `n` bytes, appending completed frame payloads to `out`.
  common::Status Feed(const char* data, size_t n,
                      std::vector<std::string>* out);

  /// Bytes buffered toward the next (incomplete) frame.
  size_t buffered() const { return buf_.size(); }

  bool poisoned() const { return poisoned_; }

  /// Forgets buffered bytes and clears the poison flag (a fresh stream).
  void Reset();

 private:
  size_t max_frame_bytes_;
  std::string buf_;
  bool poisoned_ = false;
};

/// First whitespace-delimited word of `payload`, uppercased, with the
/// remainder (trimmed of leading whitespace) in `*rest`.
std::string SplitVerb(const std::string& payload, std::string* rest);

/// "t3.a:INT64,t3.b:STRING" — the schema text carried in an OK frame.
std::string EncodeSchema(const types::RowSchema& schema);

/// Parses EncodeSchema output back into a RowSchema.
common::Result<types::RowSchema> DecodeSchema(const std::string& text);

/// "ROW " + Tuple::Serialize() (binary-safe inside the frame).
std::string EncodeRowPayload(const types::Tuple& tuple);

/// Parses a ROW frame payload (including the tag) back into a tuple.
common::Result<types::Tuple> DecodeRowPayload(const std::string& payload);

/// Key=value accessor over an OK payload ("OK rows=3 cols=2 ...");
/// returns the empty string when the key is absent.
std::string OkField(const std::string& payload, const std::string& key);

}  // namespace ppp::net

#endif  // PPP_NET_WIRE_H_
