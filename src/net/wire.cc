#include "net/wire.h"

#include <cctype>

#include "common/string_util.h"

namespace ppp::net {

std::string EncodeFrame(std::string_view payload) {
  const uint32_t n = static_cast<uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xff));
  out.push_back(static_cast<char>((n >> 16) & 0xff));
  out.push_back(static_cast<char>((n >> 8) & 0xff));
  out.push_back(static_cast<char>(n & 0xff));
  out.append(payload);
  return out;
}

common::Status FrameParser::Feed(const char* data, size_t n,
                                 std::vector<std::string>* out) {
  if (poisoned_) {
    return common::Status::InvalidArgument(
        "frame parser poisoned by an earlier protocol violation");
  }
  buf_.append(data, n);
  while (buf_.size() >= 4) {
    const auto* b = reinterpret_cast<const unsigned char*>(buf_.data());
    const uint32_t len = (static_cast<uint32_t>(b[0]) << 24) |
                         (static_cast<uint32_t>(b[1]) << 16) |
                         (static_cast<uint32_t>(b[2]) << 8) |
                         static_cast<uint32_t>(b[3]);
    if (len > max_frame_bytes_) {
      poisoned_ = true;
      return common::Status::InvalidArgument(common::StringPrintf(
          "declared frame length %u exceeds limit %zu",
          len, max_frame_bytes_));
    }
    if (buf_.size() < 4 + static_cast<size_t>(len)) break;
    out->push_back(buf_.substr(4, len));
    buf_.erase(0, 4 + static_cast<size_t>(len));
  }
  return common::Status::OK();
}

void FrameParser::Reset() {
  buf_.clear();
  poisoned_ = false;
}

std::string SplitVerb(const std::string& payload, std::string* rest) {
  size_t pos = 0;
  while (pos < payload.size() &&
         std::isspace(static_cast<unsigned char>(payload[pos]))) {
    ++pos;
  }
  std::string verb;
  while (pos < payload.size() &&
         !std::isspace(static_cast<unsigned char>(payload[pos]))) {
    verb.push_back(static_cast<char>(
        std::toupper(static_cast<unsigned char>(payload[pos]))));
    ++pos;
  }
  while (pos < payload.size() &&
         std::isspace(static_cast<unsigned char>(payload[pos]))) {
    ++pos;
  }
  if (rest != nullptr) *rest = payload.substr(pos);
  return verb;
}

std::string EncodeSchema(const types::RowSchema& schema) {
  std::string out;
  for (const types::ColumnInfo& col : schema.columns()) {
    if (!out.empty()) out.push_back(',');
    out += col.table + "." + col.name + ":" + types::TypeIdName(col.type);
  }
  return out;
}

namespace {

common::Result<types::TypeId> TypeIdFromName(const std::string& name) {
  for (const types::TypeId id :
       {types::TypeId::kNull, types::TypeId::kInt64, types::TypeId::kDouble,
        types::TypeId::kString, types::TypeId::kBool}) {
    if (name == types::TypeIdName(id)) return id;
  }
  return common::Status::InvalidArgument("unknown type name '" + name + "'");
}

}  // namespace

common::Result<types::RowSchema> DecodeSchema(const std::string& text) {
  std::vector<types::ColumnInfo> columns;
  if (text.empty()) return types::RowSchema(std::move(columns));
  for (const std::string& part : common::Split(text, ',')) {
    const size_t colon = part.rfind(':');
    const size_t dot = part.find('.');
    if (colon == std::string::npos || dot == std::string::npos ||
        dot > colon) {
      return common::Status::InvalidArgument("malformed schema column '" +
                                             part + "'");
    }
    types::ColumnInfo col;
    col.table = part.substr(0, dot);
    col.name = part.substr(dot + 1, colon - dot - 1);
    PPP_ASSIGN_OR_RETURN(col.type, TypeIdFromName(part.substr(colon + 1)));
    columns.push_back(std::move(col));
  }
  return types::RowSchema(std::move(columns));
}

std::string EncodeRowPayload(const types::Tuple& tuple) {
  return "ROW " + tuple.Serialize();
}

common::Result<types::Tuple> DecodeRowPayload(const std::string& payload) {
  if (payload.size() < 4 || payload.compare(0, 4, "ROW ") != 0) {
    return common::Status::InvalidArgument("not a ROW payload");
  }
  return types::Tuple::Deserialize(payload.substr(4));
}

std::string OkField(const std::string& payload, const std::string& key) {
  // Fields are space-separated `key=value` pairs after the tag; the schema
  // field is last and contains no spaces, so this split is unambiguous.
  const std::string needle = " " + key + "=";
  const size_t at = payload.find(needle);
  if (at == std::string::npos) return "";
  const size_t start = at + needle.size();
  const size_t end = payload.find(' ', start);
  return payload.substr(start,
                        end == std::string::npos ? end : end - start);
}

}  // namespace ppp::net
