#ifndef PPP_NET_SERVER_H_
#define PPP_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/thread_pool.h"
#include "net/admission.h"
#include "net/wire.h"
#include "serve/session.h"
#include "workload/database.h"

namespace ppp::net {

/// TCP front-end over serve::SessionManager: each accepted connection gets
/// one serve::Session, statements arrive as length-prefixed frames (see
/// wire.h), and execution is brokered by an AdmissionQueue feeding a
/// common::ThreadPool of `workers` statement executors. Responses are
/// written as one atomic buffer per statement (ROW frames then the
/// terminal OK/ERR), so concurrent out-of-band answers — load-shed and
/// queue-timeout ERRs — never interleave inside another statement's rows.
///
/// Shutdown is a drain: stop accepting connections, shed newly arriving
/// statements, finish everything already admitted, flush the responses,
/// then close. Triggered by RequestShutdown() (the SIGINT path in
/// examples/ppp_server.cpp) or a SHUTDOWN frame from any client.
class Server {
 public:
  struct Options {
    /// TCP port; 0 binds an ephemeral port (read it back via port()).
    int port = 0;
    /// Statement-executor threads == max concurrently running statements.
    size_t workers = 4;
    /// Admission-queue depth across all sessions; beyond it, shed.
    size_t queue_depth = 64;
    /// Queue-wait ceiling before a statement is answered ERR; 0 = never.
    double queue_timeout_seconds = 10.0;
    size_t max_frame_bytes = kMaxFrameBytes;
  };

  /// Options with PPP_PORT / PPP_MAX_INFLIGHT / PPP_QUEUE_DEPTH /
  /// PPP_QUEUE_TIMEOUT applied over the defaults.
  static Options OptionsFromEnv();

  /// `db` and `manager` must outlive the server. Registers the
  /// ppp_connections system table on the database's catalog.
  Server(workload::Database* db, serve::SessionManager* manager,
         const Options& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept/worker threads.
  common::Status Start();

  /// The bound port (resolves option port 0 to the kernel's choice).
  int port() const { return port_; }

  /// Begins the graceful drain; returns immediately. Idempotent.
  void RequestShutdown();

  /// Blocks until the drain completes and every thread is joined.
  void Wait();

  /// RequestShutdown() + Wait().
  void Stop();

  const AdmissionQueue& admission() const { return *queue_; }
  uint64_t connections_accepted() const;

  /// Server-side registry the ppp_connections provider resolves through;
  /// public only because the provider lives at namespace scope.
  struct Shared;

 private:
  struct Connection;

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  /// Handles one decoded frame payload from `conn`; returns false when the
  /// connection should close (CLOSE frame or write failure).
  bool HandleFrame(const std::shared_ptr<Connection>& conn,
                   const std::string& payload);
  void RunStatement(const std::shared_ptr<Connection>& conn,
                    const std::string& statement, bool timed_out);

  workload::Database* db_;
  serve::SessionManager* manager_;
  Options options_;
  std::unique_ptr<AdmissionQueue> queue_;
  std::shared_ptr<Shared> shared_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool joined_ = false;
  std::thread accept_thread_;
  std::thread dispatch_thread_;
  std::unique_ptr<common::ThreadPool> pool_;
  std::mutex lifecycle_mu_;  // Serializes Start/Wait bookkeeping.
};

}  // namespace ppp::net

#endif  // PPP_NET_SERVER_H_
