#include "net/admission.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/span.h"

namespace ppp::net {

namespace {

obs::Counter* QueuedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "serve.admission.queued");
  return c;
}

obs::Counter* ShedCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "serve.admission.shed");
  return c;
}

obs::Counter* TimeoutCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "serve.admission.timeouts");
  return c;
}

}  // namespace

AdmissionQueue::AdmissionQueue(const Options& options) : options_(options) {}

bool AdmissionQueue::Enqueue(uint64_t session_key, Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || total_waiting_ >= options_.queue_depth) {
      ++stat_shed_;
      ShedCounter()->Increment();
      return false;
    }
    Item item;
    item.task = std::move(task);
    item.enqueued = std::chrono::steady_clock::now();
    if (options_.queue_timeout_seconds > 0) {
      item.deadline =
          item.enqueued + std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(
                                  options_.queue_timeout_seconds));
      item.has_deadline = true;
    }
    auto& q = queues_[session_key];
    if (q.empty()) rotation_.push_back(session_key);
    q.push_back(std::move(item));
    ++total_waiting_;
    ++stat_queued_;
  }
  QueuedCounter()->Increment();
  cv_.notify_one();
  return true;
}

std::optional<AdmissionQueue::Ticket> AdmissionQueue::Dequeue() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();

    // Expired items are handed back immediately (any session, ahead of the
    // fairness rotation) so their connections get a timely ERR; they do not
    // occupy an in-flight slot because the worker will not execute them.
    std::optional<std::chrono::steady_clock::time_point> earliest_deadline;
    for (auto it = queues_.begin(); it != queues_.end(); ++it) {
      auto& q = it->second;
      if (q.empty()) continue;
      Item& front = q.front();
      if (!front.has_deadline) continue;
      if (front.deadline <= now) {
        Ticket ticket;
        ticket.task = std::move(front.task);
        ticket.session_key = it->first;
        ticket.timed_out = true;
        ticket.queue_wait_seconds =
            std::chrono::duration<double>(now - front.enqueued).count();
        q.pop_front();
        --total_waiting_;
        ++stat_timeouts_;
        if (q.empty()) {
          for (auto rit = rotation_.begin(); rit != rotation_.end(); ++rit) {
            if (*rit == it->first) {
              rotation_.erase(rit);
              break;
            }
          }
          queues_.erase(it);
        }
        lock.unlock();
        TimeoutCounter()->Increment();
        return ticket;
      }
      if (!earliest_deadline || front.deadline < *earliest_deadline) {
        earliest_deadline = front.deadline;
      }
    }

    // Fair pick: first session in the rotation that is not already
    // in flight, provided a run slot is free. The chosen session rotates
    // to the back so every session advances one statement per lap.
    if (running_ < options_.max_inflight) {
      for (size_t i = 0; i < rotation_.size(); ++i) {
        const uint64_t key = rotation_.front();
        rotation_.pop_front();
        auto it = queues_.find(key);
        if (it == queues_.end() || it->second.empty()) {
          queues_.erase(key);
          continue;  // Stale rotation entry; drop it.
        }
        if (inflight_.count(key) > 0) {
          rotation_.push_back(key);
          continue;
        }
        Item& front = it->second.front();
        Ticket ticket;
        ticket.task = std::move(front.task);
        ticket.session_key = key;
        ticket.queue_wait_seconds =
            std::chrono::duration<double>(now - front.enqueued).count();
        it->second.pop_front();
        --total_waiting_;
        if (it->second.empty()) {
          queues_.erase(it);
        } else {
          rotation_.push_back(key);
        }
        inflight_.insert(key);
        ++running_;
        lock.unlock();
        auto& tracer = obs::SpanTracer::Global();
        if (tracer.enabled()) {
          obs::SpanEvent event;
          event.name = "queue_wait";
          event.cat = "net";
          event.dur_us =
              static_cast<uint64_t>(ticket.queue_wait_seconds * 1e6);
          event.ts_us = tracer.NowMicros() - event.dur_us;
          tracer.Record(std::move(event));
        }
        return ticket;
      }
    }

    if (shutdown_ && total_waiting_ == 0) return std::nullopt;

    if (earliest_deadline) {
      cv_.wait_until(lock, *earliest_deadline);
    } else {
      cv_.wait(lock);
    }
  }
}

void AdmissionQueue::Finish(uint64_t session_key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(session_key);
    if (running_ > 0) --running_;
  }
  cv_.notify_all();
}

void AdmissionQueue::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

size_t AdmissionQueue::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_waiting_;
}

bool AdmissionQueue::shutdown() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

}  // namespace ppp::net
