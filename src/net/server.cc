#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/table.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace ppp::net {

namespace {

constexpr int kPollMillis = 100;

obs::Counter* ConnectionsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "serve.net.connections");
  return c;
}

obs::Counter* FramesCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "serve.net.frames");
  return c;
}

obs::Counter* ProtocolErrorsCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "serve.net.protocol_errors");
  return c;
}

/// Writes all of `data`, tolerating short writes; MSG_NOSIGNAL so a peer
/// that vanished yields EPIPE instead of killing the process.
bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

size_t EnvSize(const char* name, size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const long long v = std::atoll(raw);
  return v > 0 ? static_cast<size_t>(v) : fallback;
}

}  // namespace

/// Connection state machine, exported as the `state` column of
/// ppp_connections. A connection is "queued"/"running" while its latest
/// statement is; with one session per connection and per-session FIFO
/// admission, at most one statement is past admission at a time.
enum class ConnState : int { kIdle = 0, kQueued, kRunning, kClosed };

struct Server::Connection {
  uint64_t conn_id = 0;
  int fd = -1;
  std::string remote;
  std::unique_ptr<serve::Session> session;
  std::mutex write_mu;  // One statement response = one atomic write.
  std::atomic<int> state{static_cast<int>(ConnState::kIdle)};
  std::atomic<bool> closed{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> queued{0};
  std::atomic<uint64_t> shed{0};
  std::thread reader;
};

/// The server half visible to the ppp_connections provider; held by
/// shared_ptr so the provider (registered on the catalog, which outlives
/// the server) degrades to zero rows after the server is destroyed.
struct Server::Shared {
  std::mutex mu;
  std::map<uint64_t, std::shared_ptr<Connection>> conns;
  uint64_t next_conn_id = 1;
  uint64_t accepted = 0;
};

namespace {

const char* ConnStateName(int state) {
  switch (static_cast<ConnState>(state)) {
    case ConnState::kIdle:
      return "idle";
    case ConnState::kQueued:
      return "queued";
    case ConnState::kRunning:
      return "running";
    case ConnState::kClosed:
      return "closed";
  }
  return "unknown";
}

/// catalog → live Server::Shared, mirroring the serve-layer pattern: the
/// system table is registered once per catalog and re-resolves through
/// this registry, so a server restarted over the same database transparently
/// re-binds ppp_connections to the new server's connections.
std::mutex g_servers_mu;
std::map<const catalog::Catalog*, std::weak_ptr<Server::Shared>>&
ServerRegistry() {
  static auto* registry =
      new std::map<const catalog::Catalog*, std::weak_ptr<Server::Shared>>();
  return *registry;
}

std::shared_ptr<Server::Shared> SharedFor(const catalog::Catalog* catalog) {
  std::lock_guard<std::mutex> lock(g_servers_mu);
  auto it = ServerRegistry().find(catalog);
  if (it == ServerRegistry().end()) return nullptr;
  return it->second.lock();
}

void RegisterConnectionsTable(catalog::Catalog* catalog) {
  using types::TypeId;
  const catalog::Catalog* key = catalog;
  auto rows_fn = [key]() -> common::Result<std::vector<types::Tuple>> {
    std::vector<types::Tuple> rows;
    const std::shared_ptr<Server::Shared> shared = SharedFor(key);
    if (shared == nullptr) return rows;
    std::lock_guard<std::mutex> lock(shared->mu);
    for (const auto& [id, conn] : shared->conns) {
      rows.emplace_back(std::vector<types::Value>{
          types::Value(static_cast<int64_t>(conn->conn_id)),
          types::Value(static_cast<int64_t>(
              conn->session != nullptr ? conn->session->id() : 0)),
          types::Value(conn->remote),
          types::Value(std::string(ConnStateName(conn->state.load()))),
          types::Value(static_cast<int64_t>(conn->queries.load())),
          types::Value(static_cast<int64_t>(conn->queued.load())),
          types::Value(static_cast<int64_t>(conn->shed.load()))});
    }
    return rows;
  };
  auto r = catalog->RegisterSystemTable(std::make_unique<catalog::Table>(
      "ppp_connections",
      std::vector<catalog::ColumnDef>{{"conn_id", TypeId::kInt64},
                                      {"session_id", TypeId::kInt64},
                                      {"remote", TypeId::kString},
                                      {"state", TypeId::kString},
                                      {"queries", TypeId::kInt64},
                                      {"queued", TypeId::kInt64},
                                      {"shed", TypeId::kInt64}},
      rows_fn, [key] {
        const std::shared_ptr<Server::Shared> shared = SharedFor(key);
        if (shared == nullptr) return int64_t{0};
        std::lock_guard<std::mutex> lock(shared->mu);
        return static_cast<int64_t>(shared->conns.size());
      }));
  (void)r;  // AlreadyExists when a second server binds the same database.
}

}  // namespace

Server::Options Server::OptionsFromEnv() {
  Options options;
  options.port = static_cast<int>(EnvSize("PPP_PORT", 0));
  options.workers = EnvSize("PPP_MAX_INFLIGHT", options.workers);
  options.queue_depth = EnvSize("PPP_QUEUE_DEPTH", options.queue_depth);
  const char* timeout = std::getenv("PPP_QUEUE_TIMEOUT");
  if (timeout != nullptr && *timeout != '\0') {
    options.queue_timeout_seconds = std::atof(timeout);
  }
  return options;
}

Server::Server(workload::Database* db, serve::SessionManager* manager,
               const Options& options)
    : db_(db), manager_(manager), options_(options) {
  if (options_.workers == 0) options_.workers = 1;
  AdmissionQueue::Options queue_options;
  queue_options.max_inflight = options_.workers;
  queue_options.queue_depth = options_.queue_depth;
  queue_options.queue_timeout_seconds = options_.queue_timeout_seconds;
  queue_ = std::make_unique<AdmissionQueue>(queue_options);
  shared_ = std::make_shared<Shared>();
  {
    std::lock_guard<std::mutex> lock(g_servers_mu);
    ServerRegistry()[&db_->catalog()] = shared_;
  }
  RegisterConnectionsTable(&db_->catalog());
}

Server::~Server() {
  Stop();
  std::lock_guard<std::mutex> lock(g_servers_mu);
  auto it = ServerRegistry().find(&db_->catalog());
  if (it != ServerRegistry().end() && it->second.lock() == shared_) {
    ServerRegistry().erase(it);
  }
}

common::Status Server::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) {
    return common::Status::InvalidArgument("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return common::Status::Internal(
        common::StringPrintf("socket(): %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const common::Status status = common::Status::Internal(
        common::StringPrintf("bind(port %d): %s", options_.port,
                             std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) < 0) {
    const common::Status status = common::Status::Internal(
        common::StringPrintf("listen(): %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  // The worker pool drains the admission queue until Shutdown; Run blocks
  // (the dispatcher participates as one worker), so it gets its own thread.
  pool_ = std::make_unique<common::ThreadPool>(options_.workers - 1);
  dispatch_thread_ = std::thread([this] {
    pool_->Run(options_.workers, [this](size_t) {
      for (;;) {
        std::optional<AdmissionQueue::Ticket> ticket = queue_->Dequeue();
        if (!ticket.has_value()) return;
        ticket->task(ticket->timed_out);
        if (!ticket->timed_out) queue_->Finish(ticket->session_key);
      }
    });
  });
  started_ = true;
  return common::Status::OK();
}

void Server::AcceptLoop() {
  for (;;) {
    if (draining_.load()) break;
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;  // Timeout (re-check drain flag) or EINTR.
    sockaddr_in peer;
    socklen_t peer_len = sizeof(peer);
    const int fd =
        ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    char ip[INET_ADDRSTRLEN] = "?";
    ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip));
    conn->remote =
        common::StringPrintf("%s:%u", ip, ntohs(peer.sin_port));
    conn->session = manager_->CreateSession();
    {
      std::lock_guard<std::mutex> lock(shared_->mu);
      conn->conn_id = shared_->next_conn_id++;
      shared_->conns[conn->conn_id] = conn;
      ++shared_->accepted;
    }
    ConnectionsCounter()->Increment();
    conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void Server::ReaderLoop(std::shared_ptr<Connection> conn) {
  FrameParser parser(options_.max_frame_bytes);
  std::vector<std::string> payloads;
  char buf[64 * 1024];
  bool alive = true;
  while (alive && !conn->closed.load()) {
    if (stopping_.load()) break;
    pollfd pfd;
    pfd.fd = conn->fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) break;  // Peer closed.
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    payloads.clear();
    const common::Status status =
        parser.Feed(buf, static_cast<size_t>(n), &payloads);
    // Frames decoded before the violation still run; then the connection
    // (and only this connection) is dropped — the protocol offers no way
    // to resynchronize inside a poisoned stream.
    for (const std::string& payload : payloads) {
      FramesCounter()->Increment();
      if (!HandleFrame(conn, payload)) {
        alive = false;
        break;
      }
    }
    if (!status.ok()) {
      ProtocolErrorsCounter()->Increment();
      std::lock_guard<std::mutex> lock(conn->write_mu);
      SendAll(conn->fd, EncodeFrame("ERR " + status.message()));
      break;
    }
  }
  conn->closed.store(true);
  conn->state.store(static_cast<int>(ConnState::kClosed));
}

bool Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                         const std::string& payload) {
  std::string rest;
  const std::string verb = SplitVerb(payload, &rest);
  if (verb == "PING") {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    return SendAll(conn->fd, EncodeFrame("OK pong"));
  }
  if (verb == "METRICS") {
    const std::string json =
        obs::MetricsRegistry::Global().Snapshot().ToJson();
    std::lock_guard<std::mutex> lock(conn->write_mu);
    return SendAll(conn->fd, EncodeFrame("METRICS " + json));
  }
  if (verb == "CLOSE") {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    SendAll(conn->fd, EncodeFrame("OK bye"));
    return false;
  }
  if (verb == "SHUTDOWN") {
    {
      std::lock_guard<std::mutex> lock(conn->write_mu);
      SendAll(conn->fd, EncodeFrame("OK draining"));
    }
    RequestShutdown();
    return true;
  }
  std::string statement;
  if (verb == "QUERY") {
    statement = rest;  // The payload after the verb is the SQL.
  } else if (verb == "PREPARE" || verb == "EXECUTE") {
    statement = payload;  // Session::Execute parses these verbs itself.
  } else {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    return SendAll(conn->fd,
                   EncodeFrame("ERR unknown request verb '" + verb + "'"));
  }
  if (statement.empty()) {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    return SendAll(conn->fd, EncodeFrame("ERR empty statement"));
  }
  conn->state.store(static_cast<int>(ConnState::kQueued));
  conn->queued.fetch_add(1);
  const bool admitted = queue_->Enqueue(
      conn->session->id(),
      [this, conn, statement](bool timed_out) {
        RunStatement(conn, statement, timed_out);
      });
  if (!admitted) {
    conn->shed.fetch_add(1);
    conn->state.store(static_cast<int>(ConnState::kIdle));
    const char* why = queue_->shutdown() ? "server is draining"
                                         : "admission queue full";
    std::lock_guard<std::mutex> lock(conn->write_mu);
    return SendAll(conn->fd, EncodeFrame(common::StringPrintf(
                                 "ERR load shed: %s (queue depth %zu)", why,
                                 options_.queue_depth)));
  }
  return true;
}

void Server::RunStatement(const std::shared_ptr<Connection>& conn,
                          const std::string& statement, bool timed_out) {
  if (timed_out) {
    conn->state.store(static_cast<int>(ConnState::kIdle));
    std::lock_guard<std::mutex> lock(conn->write_mu);
    SendAll(conn->fd,
            EncodeFrame(common::StringPrintf(
                "ERR admission timeout: queued longer than %.1fs",
                options_.queue_timeout_seconds)));
    return;
  }
  conn->state.store(static_cast<int>(ConnState::kRunning));
  conn->queries.fetch_add(1);
  common::Result<serve::QueryResult> result =
      conn->session->Execute(statement);
  std::string response;
  if (!result.ok()) {
    response = EncodeFrame("ERR " + result.status().message());
  } else {
    const serve::QueryResult& r = *result;
    for (const types::Tuple& row : r.rows) {
      response += EncodeFrame(EncodeRowPayload(row));
    }
    std::string ok = common::StringPrintf(
        "OK rows=%zu cols=%zu hit=%d generic=%d optimize_us=%lld "
        "execute_us=%lld session=%llu",
        r.rows.size(), r.schema.NumColumns(), r.plan_cache_hit ? 1 : 0,
        r.generic_plan ? 1 : 0,
        static_cast<long long>(r.optimize_seconds * 1e6),
        static_cast<long long>(r.execute_seconds * 1e6),
        static_cast<unsigned long long>(conn->session->id()));
    if (r.analyzed_tables > 0) {
      ok += common::StringPrintf(" analyzed=%zu", r.analyzed_tables);
    }
    if (!r.prepared_name.empty()) ok += " prepared=" + r.prepared_name;
    ok += " schema=" + EncodeSchema(r.schema);
    response += EncodeFrame(ok);
  }
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    SendAll(conn->fd, response);
  }
  conn->state.store(static_cast<int>(ConnState::kIdle));
}

void Server::RequestShutdown() {
  draining_.store(true);
  queue_->Shutdown();
}

void Server::Wait() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!started_ || joined_) return;
  accept_thread_.join();
  // Workers exit once the queue is drained — every admitted statement has
  // run and its response has been flushed to the socket.
  dispatch_thread_.join();
  pool_.reset();
  stopping_.store(true);
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> shared_lock(shared_->mu);
    for (auto& [id, conn] : shared_->conns) conns.push_back(conn);
  }
  for (auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
    conn->session.reset();  // Retires the ppp_sessions row to inactive.
    conn->state.store(static_cast<int>(ConnState::kClosed));
  }
  joined_ = true;
}

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!started_ || joined_) return;
  }
  RequestShutdown();
  Wait();
}

uint64_t Server::connections_accepted() const {
  std::lock_guard<std::mutex> lock(shared_->mu);
  return shared_->accepted;
}

}  // namespace ppp::net
