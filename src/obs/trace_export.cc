#include "obs/trace_export.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>

#include "common/string_util.h"

namespace ppp::obs {

namespace {

using common::JsonEscape;

std::string NumberToJson(double v) {
  if (!std::isfinite(v)) return "0";
  return common::StringPrintf("%.17g", v);
}

// ---- Minimal JSON reader, sufficient for the trace schema ----------------

/// A parsed JSON value. Objects keep insertion order; lookups are linear,
/// which is fine for the handful of keys a trace event carries.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  common::Result<JsonValue> Parse() {
    PPP_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  common::Status Error(const std::string& message) const {
    return common::Status::InvalidArgument(
        "JSON error at offset " + std::to_string(pos_) + ": " + message);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  common::Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  common::Result<JsonValue> ParseObject() {
    JsonValue out;
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    if (Consume('}')) return out;
    while (true) {
      SkipSpace();
      PPP_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      if (!Consume(':')) return Error("expected ':' in object");
      PPP_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      out.object.emplace_back(std::move(key.string), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return out;
      return Error("expected ',' or '}' in object");
    }
  }

  common::Result<JsonValue> ParseArray() {
    JsonValue out;
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    if (Consume(']')) return out;
    while (true) {
      PPP_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      out.array.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return out;
      return Error("expected ',' or ']' in array");
    }
  }

  common::Result<JsonValue> ParseString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected string");
    }
    ++pos_;
    JsonValue out;
    out.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.string += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.string += '"';
          break;
        case '\\':
          out.string += '\\';
          break;
        case '/':
          out.string += '/';
          break;
        case 'n':
          out.string += '\n';
          break;
        case 't':
          out.string += '\t';
          break;
        case 'r':
          out.string += '\r';
          break;
        case 'b':
          out.string += '\b';
          break;
        case 'f':
          out.string += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape");
            }
          }
          // The exporter only emits \u00xx control escapes; decode those
          // exactly and map anything wider to '?' (never produced here).
          out.string += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  common::Result<JsonValue> ParseBool() {
    JsonValue out;
    out.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      out.boolean = true;
      pos_ += 4;
      return out;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.boolean = false;
      pos_ += 5;
      return out;
    }
    return Error("expected boolean");
  }

  common::Result<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") != 0) return Error("expected null");
    pos_ += 4;
    return JsonValue{};
  }

  common::Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected number");
    JsonValue out;
    out.kind = JsonValue::Kind::kNumber;
    try {
      out.number = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return Error("bad number");
    }
    return out;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

common::Result<double> NumberField(const JsonValue& event,
                                   const std::string& key) {
  const JsonValue* v = event.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
    return common::Status::InvalidArgument("trace event missing numeric \"" +
                                           key + "\"");
  }
  return v->number;
}

common::Result<std::string> StringField(const JsonValue& event,
                                        const std::string& key) {
  const JsonValue* v = event.Find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kString) {
    return common::Status::InvalidArgument("trace event missing string \"" +
                                           key + "\"");
  }
  return v->string;
}

}  // namespace

std::string ToChromeTraceJson(const std::vector<SpanEvent>& events,
                              uint64_t dropped_events) {
  // `otherData` is Chrome's free-form metadata object; the dropped count
  // rides there so a capped trace still records how much it lost.
  std::string out = "{\"displayTimeUnit\": \"ms\", \"otherData\": "
                    "{\"droppedEvents\": \"" +
                    std::to_string(dropped_events) +
                    "\"}, \"traceEvents\": [\n";
  for (size_t i = 0; i < events.size(); ++i) {
    const SpanEvent& e = events[i];
    out += "  {\"name\": \"" + JsonEscape(e.name) + "\", \"cat\": \"" +
           JsonEscape(e.cat) + "\", \"ph\": \"X\", \"ts\": " +
           NumberToJson(e.ts_us) + ", \"dur\": " + NumberToJson(e.dur_us) +
           ", \"pid\": 1, \"tid\": " + std::to_string(e.tid);
    if (!e.args.empty()) {
      out += ", \"args\": {";
      for (size_t a = 0; a < e.args.size(); ++a) {
        if (a > 0) out += ", ";
        out += "\"" + JsonEscape(e.args[a].first) + "\": \"" +
               JsonEscape(e.args[a].second) + "\"";
      }
      out += "}";
    }
    out += "}";
    if (i + 1 < events.size()) out += ",";
    out += "\n";
  }
  out += "]}\n";
  return out;
}

common::Status WriteChromeTrace(const std::string& path,
                                const std::vector<SpanEvent>& events,
                                uint64_t dropped_events) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return common::Status::Internal("cannot open " + path + " for writing");
  }
  out << ToChromeTraceJson(events, dropped_events);
  out.close();
  if (out.fail()) return common::Status::Internal("failed writing " + path);
  return common::Status::OK();
}

common::Result<ParsedTrace> ParseChromeTraceFull(const std::string& json) {
  JsonReader reader(json);
  PPP_ASSIGN_OR_RETURN(JsonValue root, reader.Parse());
  if (root.kind != JsonValue::Kind::kObject) {
    return common::Status::InvalidArgument("trace root must be an object");
  }
  ParsedTrace parsed;
  const JsonValue* other = root.Find("otherData");
  if (other != nullptr && other->kind == JsonValue::Kind::kObject) {
    const JsonValue* dropped = other->Find("droppedEvents");
    if (dropped != nullptr && dropped->kind == JsonValue::Kind::kString) {
      try {
        parsed.dropped_events = std::stoull(dropped->string);
      } catch (...) {
        return common::Status::InvalidArgument(
            "otherData.droppedEvents is not a count: " + dropped->string);
      }
    }
  }
  const JsonValue* trace_events = root.Find("traceEvents");
  if (trace_events == nullptr ||
      trace_events->kind != JsonValue::Kind::kArray) {
    return common::Status::InvalidArgument(
        "trace is missing the \"traceEvents\" array");
  }
  std::vector<SpanEvent> out;
  out.reserve(trace_events->array.size());
  for (const JsonValue& entry : trace_events->array) {
    if (entry.kind != JsonValue::Kind::kObject) {
      return common::Status::InvalidArgument("trace event must be an object");
    }
    std::string phase;
    PPP_ASSIGN_OR_RETURN(phase, StringField(entry, "ph"));
    if (phase != "X") continue;  // Only complete events are spans.
    SpanEvent e;
    PPP_ASSIGN_OR_RETURN(e.name, StringField(entry, "name"));
    PPP_ASSIGN_OR_RETURN(e.cat, StringField(entry, "cat"));
    PPP_ASSIGN_OR_RETURN(e.ts_us, NumberField(entry, "ts"));
    PPP_ASSIGN_OR_RETURN(e.dur_us, NumberField(entry, "dur"));
    PPP_ASSIGN_OR_RETURN(const double tid, NumberField(entry, "tid"));
    e.tid = static_cast<int>(tid);
    const JsonValue* args = entry.Find("args");
    if (args != nullptr) {
      if (args->kind != JsonValue::Kind::kObject) {
        return common::Status::InvalidArgument("event args must be an object");
      }
      for (const auto& [key, value] : args->object) {
        if (value.kind != JsonValue::Kind::kString) {
          return common::Status::InvalidArgument(
              "event arg values must be strings");
        }
        e.args.emplace_back(key, value.string);
      }
    }
    out.push_back(std::move(e));
  }
  parsed.events = std::move(out);
  return parsed;
}

common::Result<std::vector<SpanEvent>> ParseChromeTrace(
    const std::string& json) {
  PPP_ASSIGN_OR_RETURN(ParsedTrace parsed, ParseChromeTraceFull(json));
  return std::move(parsed.events);
}

common::Status ValidateSpanNesting(const std::vector<SpanEvent>& events) {
  // Group per thread, sort by start ascending (longer span first on ties:
  // the parent opened before — or at the same clock reading as — the
  // child), then sweep with a stack of open interval ends.
  std::vector<const SpanEvent*> sorted;
  sorted.reserve(events.size());
  for (const SpanEvent& e : events) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const SpanEvent* a, const SpanEvent* b) {
              if (a->tid != b->tid) return a->tid < b->tid;
              if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
              return a->dur_us > b->dur_us;
            });
  constexpr double kEpsilonUs = 1e-3;  // Float rounding only; same clock.
  int tid = 0;
  std::vector<double> open_ends;
  for (const SpanEvent* e : sorted) {
    if (open_ends.empty() || e->tid != tid) {
      open_ends.clear();
      tid = e->tid;
    }
    const double start = e->ts_us;
    const double end = e->ts_us + e->dur_us;
    while (!open_ends.empty() && open_ends.back() <= start + kEpsilonUs) {
      open_ends.pop_back();
    }
    if (!open_ends.empty() && end > open_ends.back() + kEpsilonUs) {
      return common::Status::Internal(common::StringPrintf(
          "span \"%s\" [%.3f, %.3f] overlaps the end of its enclosing span "
          "(%.3f) on tid %d",
          e->name.c_str(), start, end, open_ends.back(), e->tid));
    }
    open_ends.push_back(end);
  }
  return common::Status::OK();
}

}  // namespace ppp::obs
