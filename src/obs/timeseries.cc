#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace ppp::obs {

TimeSeries::TimeSeries() : epoch_(std::chrono::steady_clock::now()) {}

TimeSeries& TimeSeries::Global() {
  static TimeSeries* store = new TimeSeries();
  return *store;
}

int64_t TimeSeries::CurrentBucket() const {
  return static_cast<int64_t>(std::floor(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    epoch_)
          .count()));
}

void TimeSeries::Sample() {
  SampleAt(MetricsRegistry::Global().SnapshotCounters(),
           std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
               .count());
}

void TimeSeries::SampleAt(const std::map<std::string, uint64_t>& counters,
                          double now_seconds) {
  const int64_t bucket = static_cast<int64_t>(std::floor(now_seconds));
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, value] : counters) {
    Series& series = series_[name];
    if (!series.has_baseline) {
      // First sighting: the counter's prior history predates the window,
      // so it baselines without crediting a delta.
      series.last_value = value;
      series.has_baseline = true;
      TrimLocked(&series, bucket);
      continue;
    }
    // ResetAll() between bench phases moves counters backwards; rebaseline
    // rather than crediting a bogus wrapped delta.
    const double delta =
        value >= series.last_value
            ? static_cast<double>(value - series.last_value)
            : 0.0;
    series.last_value = value;
    if (delta > 0.0) {
      if (!series.buckets.empty() && series.buckets.back().first == bucket) {
        series.buckets.back().second += delta;
      } else {
        series.buckets.emplace_back(bucket, delta);
      }
    }
    TrimLocked(&series, bucket);
  }
}

void TimeSeries::TrimLocked(Series* series, int64_t now_bucket) {
  const int64_t oldest =
      now_bucket - static_cast<int64_t>(window_buckets_) + 1;
  while (!series->buckets.empty() && series->buckets.front().first < oldest) {
    series->buckets.pop_front();
  }
}

std::vector<TimeSeriesPoint> TimeSeries::Snapshot() const {
  std::vector<TimeSeriesPoint> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, series] : series_) {
    if (series.buckets.empty()) continue;
    double total = 0.0;
    for (const auto& [bucket, delta] : series.buckets) total += delta;
    // Percentiles over the contiguous bucket range [first, last]: stored
    // deltas plus implicit zeros for idle seconds in between.
    const int64_t first = series.buckets.front().first;
    const int64_t last = series.buckets.back().first;
    const size_t span = static_cast<size_t>(last - first + 1);
    std::vector<double> rates;
    rates.reserve(span);
    size_t i = 0;
    for (int64_t b = first; b <= last; ++b) {
      if (i < series.buckets.size() && series.buckets[i].first == b) {
        rates.push_back(series.buckets[i].second);
        ++i;
      } else {
        rates.push_back(0.0);
      }
    }
    std::sort(rates.begin(), rates.end());
    const auto nearest_rank = [&rates](double p) {
      const size_t rank = static_cast<size_t>(
          std::ceil(p / 100.0 * static_cast<double>(rates.size())));
      return rates[rank == 0 ? 0 : rank - 1];
    };
    const double p50 = nearest_rank(50.0);
    const double p99 = nearest_rank(99.0);
    for (const auto& [bucket, delta] : series.buckets) {
      TimeSeriesPoint point;
      point.name = name;
      point.bucket = bucket;
      point.delta = delta;
      point.window_total = total;
      point.rate_p50 = p50;
      point.rate_p99 = p99;
      out.push_back(std::move(point));
    }
  }
  return out;
}

void TimeSeries::set_window_buckets(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  window_buckets_ = std::max<size_t>(n, 1);
}

void TimeSeries::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
}

}  // namespace ppp::obs
