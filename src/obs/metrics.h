#ifndef PPP_OBS_METRICS_H_
#define PPP_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ppp::obs {

/// Monotonically increasing event count (cache hits, page reads, UDF
/// invocations). Relaxed atomic: the batch executor's worker threads bump
/// counters concurrently, and the paper's measurement methodology is exact
/// event counting, so increments must not be lost. Reads are only taken at
/// snapshot points (no ordering needed with other memory).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, plan-space sizes).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) { value_.fetch_add(d, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Sample distribution with exact percentiles up to a cap. Keeps raw
/// samples until kSampleCap, then switches to reservoir sampling
/// (Algorithm R, fixed seed) so a long-running shell's memory stays
/// bounded; count/sum/min/max remain exact scalars throughout, and
/// samples_capped() reports when percentiles became estimates.
/// Mutex-guarded: histograms are observed from worker threads (batch fill,
/// shard waits) but never on per-tuple paths.
class Histogram {
 public:
  /// Raw samples retained for exact percentiles; beyond this the reservoir
  /// keeps a uniform subset of the stream.
  static constexpr size_t kSampleCap = 4096;

  void Observe(double v);

  size_t count() const;
  double sum() const;
  double min() const;
  double max() const;
  /// Percentile by nearest-rank over the retained samples; exact below
  /// kSampleCap, a reservoir estimate past it. `p` in [0, 100]. Returns 0
  /// when empty.
  double Percentile(double p) const;
  /// True once Observe() has been called more than kSampleCap times.
  bool samples_capped() const;

  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<double> samples_;
  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  /// xorshift64 state for reservoir replacement; fixed seed keeps runs
  /// reproducible.
  uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;
};

/// Point-in-time copy of every registered metric, detached from the
/// registry so it can be exported or diffed without racing live updates.
struct MetricsSnapshot {
  struct HistogramSummary {
    size_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    /// Percentiles are reservoir estimates, not exact (see Histogram).
    bool samples_capped = false;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;

  /// One `name value` line per metric, sorted by name.
  std::string ToText() const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string ToJson() const;
};

/// Name -> metric map. Metric objects are stable once created (node-based
/// map), so hot paths look a pointer up once and increment through it.
/// Registration and snapshotting take the registry mutex; updates through
/// cached metric pointers are lock-free (atomics) or per-metric locked
/// (histograms) and never touch the map.
class MetricsRegistry {
 public:
  /// The process-wide registry used by the engine's built-in
  /// instrumentation (buffer pool, UDF evaluator, predicate caches, DP
  /// enumerator).
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Counters only, skipping the per-histogram percentile sorts. Cheap
  /// enough to take twice around every query: the query log's exact
  /// per-query counts are deltas of two of these.
  std::map<std::string, uint64_t> SnapshotCounters() const;

  /// Zeroes every metric (keeps registrations, so cached pointers stay
  /// valid). Benches call this between phases to get per-phase deltas.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Observes elapsed wall-clock seconds into a histogram on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ppp::obs

#endif  // PPP_OBS_METRICS_H_
