#ifndef PPP_OBS_PLAN_AUDIT_H_
#define PPP_OBS_PLAN_AUDIT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ppp::obs {

/// Cardinality q-error of one plan node: max(est/actual, actual/est), with
/// both sides clamped to >= 1 row so empty operators (and optimizer zero
/// estimates) never divide by zero or report an infinite error. 1.0 means
/// the estimate was perfect; the value is symmetric in over- and
/// under-estimation, the standard metric of the selectivity-estimation
/// literature.
double CardinalityQError(double est_rows, uint64_t actual_rows);

/// One operator of one executed plan, recorded by the executor's close-time
/// audit walk. Pairs the optimizer's estimate with the executed operator's
/// actuals, so a mis-estimate is attributable to the exact node (and hence
/// predicate or join) that produced it — the per-operator attribution the
/// global q-error histogram loses.
struct OperatorAuditRecord {
  uint64_t query_id = 0;
  /// Root-to-node child indexes, dot-joined ("0" = root, "0.1.0" = first
  /// child of the root's second child). Lexicographically stable within a
  /// query, and joinable against EXPLAIN output by eye.
  std::string path;
  /// Physical operator description (Operator::Describe()).
  std::string op;
  double est_rows = 0.0;      ///< Optimizer cardinality estimate.
  uint64_t actual_rows = 0;   ///< Rows the operator actually produced.
  /// CardinalityQError(est_rows, actual_rows); 0 when the node carried no
  /// estimate (est_rows == 0, e.g. plans never cost-annotated).
  double qerror = 0.0;
  /// Inclusive wall time of the operator's subtree (open + next), seconds.
  double inclusive_seconds = 0.0;
  /// Inclusive UDF invocations of the operator's subtree (delta of the
  /// global expr.udf.invocations counter around this operator's calls).
  uint64_t udf_invocations = 0;
};

/// Process-wide bounded ring of OperatorAuditRecords, the backing store of
/// the ppp_operator_audit system table. On by default; PPP_PLAN_AUDIT=0
/// disables the audit walk (and with it the per-query q-error feed).
/// Thread-safe with the same contract as QueryLog: appended by whichever
/// thread closes an executor, snapshotted by concurrent introspection scans.
class PlanAudit {
 public:
  /// Rings hold operators, not queries; a 16-operator plan still leaves
  /// room for hundreds of recent queries at this default.
  static constexpr size_t kDefaultCapacity = 8192;

  /// The ring every executor records into. Standalone instances are legal
  /// (tests build private rings); the engine only touches Global().
  static PlanAudit& Global();

  PlanAudit();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Appends one record; past capacity the oldest record is overwritten
  /// (counted in evicted()). No-op while disabled.
  void Append(OperatorAuditRecord record);

  /// All retained records, oldest first.
  std::vector<OperatorAuditRecord> Snapshot() const;

  /// The most recent `n` records, oldest first.
  std::vector<OperatorAuditRecord> Tail(size_t n) const;

  size_t size() const;
  /// Records ever appended (including since-evicted ones).
  uint64_t total() const { return total_.load(std::memory_order_relaxed); }
  /// Records overwritten by ring wraparound.
  uint64_t evicted() const {
    return evicted_.load(std::memory_order_relaxed);
  }

  /// Shrinks or grows the ring; shrinking keeps the newest records.
  void set_capacity(size_t n);
  size_t capacity() const;

  /// Drops all retained records and zeroes total/evicted.
  void Clear();

 private:
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> evicted_{0};
  mutable std::mutex mu_;
  /// Ring storage: `ring_[(head_ + i) % ring_.size()]` for i in [0, size_)
  /// walks oldest to newest.
  std::vector<OperatorAuditRecord> ring_;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace ppp::obs

#endif  // PPP_OBS_PLAN_AUDIT_H_
