#ifndef PPP_OBS_TRACE_EXPORT_H_
#define PPP_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/span.h"

namespace ppp::obs {

/// Serializes spans as Chrome trace-event JSON ("X" complete events with
/// microsecond ts/dur), the format chrome://tracing and Perfetto load
/// directly: {"traceEvents": [{"name": ..., "cat": ..., "ph": "X", ...}]}.
/// `dropped_events` (spans lost to the tracer's buffer cap) is recorded in
/// the top-level "otherData" metadata so it survives a round-trip.
std::string ToChromeTraceJson(const std::vector<SpanEvent>& events,
                              uint64_t dropped_events = 0);

/// Writes ToChromeTraceJson(events, dropped_events) to `path`.
common::Status WriteChromeTrace(const std::string& path,
                                const std::vector<SpanEvent>& events,
                                uint64_t dropped_events = 0);

/// A parsed trace: the spans plus the metadata the exporter wrote.
struct ParsedTrace {
  std::vector<SpanEvent> events;
  uint64_t dropped_events = 0;
};

/// Parses Chrome trace-event JSON produced by ToChromeTraceJson back into
/// events (phase-"X" entries only) and metadata. Strict enough to prove the
/// export is well-formed JSON with the expected schema; tests round-trip
/// through it.
common::Result<ParsedTrace> ParseChromeTraceFull(const std::string& json);

/// Events-only convenience wrapper around ParseChromeTraceFull.
common::Result<std::vector<SpanEvent>> ParseChromeTrace(
    const std::string& json);

/// Checks that spans nest strictly per thread: for any two spans on the
/// same tid, their intervals are either disjoint or one contains the
/// other. RAII spans guarantee this by construction; the check guards the
/// exporter (and any future non-RAII recorder) in tests.
common::Status ValidateSpanNesting(const std::vector<SpanEvent>& events);

}  // namespace ppp::obs

#endif  // PPP_OBS_TRACE_EXPORT_H_
