#ifndef PPP_OBS_TRACE_EXPORT_H_
#define PPP_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/span.h"

namespace ppp::obs {

/// Serializes spans as Chrome trace-event JSON ("X" complete events with
/// microsecond ts/dur), the format chrome://tracing and Perfetto load
/// directly: {"traceEvents": [{"name": ..., "cat": ..., "ph": "X", ...}]}.
std::string ToChromeTraceJson(const std::vector<SpanEvent>& events);

/// Writes ToChromeTraceJson(events) to `path`.
common::Status WriteChromeTrace(const std::string& path,
                                const std::vector<SpanEvent>& events);

/// Parses Chrome trace-event JSON produced by ToChromeTraceJson back into
/// events (phase-"X" entries only). Strict enough to prove the export is
/// well-formed JSON with the expected schema; tests round-trip through it.
common::Result<std::vector<SpanEvent>> ParseChromeTrace(
    const std::string& json);

/// Checks that spans nest strictly per thread: for any two spans on the
/// same tid, their intervals are either disjoint or one contains the
/// other. RAII spans guarantee this by construction; the check guards the
/// exporter (and any future non-RAII recorder) in tests.
common::Status ValidateSpanNesting(const std::vector<SpanEvent>& events);

}  // namespace ppp::obs

#endif  // PPP_OBS_TRACE_EXPORT_H_
