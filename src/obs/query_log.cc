#include "obs/query_log.h"

#include <algorithm>
#include <cstdlib>

namespace ppp::obs {

namespace {

bool EnvDisabled(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] == '0' && value[1] == '\0';
}

}  // namespace

const char* StatsTierName(StatsTier tier) {
  switch (tier) {
    case StatsTier::kDeclared:
      return "declared";
    case StatsTier::kStats:
      return "stats";
    case StatsTier::kFeedback:
      return "feedback";
  }
  return "declared";
}

QueryLog::QueryLog() {
  ring_.resize(kDefaultCapacity);
  enabled_.store(!EnvDisabled("PPP_QUERY_LOG"), std::memory_order_relaxed);
}

QueryLog& QueryLog::Global() {
  static QueryLog* log = new QueryLog();
  return *log;
}

void QueryLog::Append(QueryLogRecord record) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return;
  if (size_ == ring_.size()) {
    // Full: the slot at head_ holds the oldest record; overwrite it and
    // advance the ring.
    ring_[head_] = std::move(record);
    head_ = (head_ + 1) % ring_.size();
    evicted_.fetch_add(1, std::memory_order_relaxed);
  } else {
    ring_[(head_ + size_) % ring_.size()] = std::move(record);
    ++size_;
  }
  total_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<QueryLogRecord> QueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryLogRecord> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<QueryLogRecord> QueryLog::Tail(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t count = std::min(n, size_);
  std::vector<QueryLogRecord> out;
  out.reserve(count);
  for (size_t i = size_ - count; i < size_; ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

size_t QueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

void QueryLog::set_capacity(size_t n) {
  n = std::max<size_t>(n, 1);
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryLogRecord> fresh(n);
  const size_t keep = std::min(size_, n);
  for (size_t i = 0; i < keep; ++i) {
    fresh[i] = std::move(ring_[(head_ + (size_ - keep) + i) % ring_.size()]);
  }
  ring_ = std::move(fresh);
  head_ = 0;
  size_ = keep;
}

size_t QueryLog::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void QueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (QueryLogRecord& r : ring_) r = QueryLogRecord{};
  head_ = 0;
  size_ = 0;
  total_.store(0, std::memory_order_relaxed);
  evicted_.store(0, std::memory_order_relaxed);
}

}  // namespace ppp::obs
