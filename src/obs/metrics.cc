#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace ppp::obs {

namespace {

/// %.17g keeps doubles round-trippable; trims to the short form for the
/// common integral case.
std::string NumberToString(double v) {
  if (!std::isfinite(v)) return v > 0 ? "1e308" : (v < 0 ? "-1e308" : "0");
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  return common::StringPrintf("%.17g", v);
}

}  // namespace

using common::JsonEscape;

void Histogram::Observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  count_ += 1;
  sum_ += v;
  if (count_ == 1) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  if (samples_.size() < kSampleCap) {
    samples_.push_back(v);
    return;
  }
  // Algorithm R: keep sample i with probability kSampleCap / count. The
  // xorshift64 step is cheap enough to run under the lock.
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  const uint64_t slot = rng_state_ % count_;
  if (slot < kSampleCap) samples_[slot] = v;
}

size_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

bool Histogram::samples_capped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ > kSampleCap;
}

double Histogram::Percentile(double p) const {
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.empty()) return 0.0;
    sorted = samples_;
  }
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the smallest sample with at least p% of samples <= it.
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.clear();
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    out += name + " " + NumberToString(value) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    out += common::StringPrintf(
        "%s count=%zu sum=%s min=%s max=%s p50=%s p95=%s p99=%s%s\n",
        name.c_str(), h.count, NumberToString(h.sum).c_str(),
        NumberToString(h.min).c_str(), NumberToString(h.max).c_str(),
        NumberToString(h.p50).c_str(), NumberToString(h.p95).c_str(),
        NumberToString(h.p99).c_str(),
        h.samples_capped ? " samples_capped=1" : "");
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) + "\": " + std::to_string(value);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) + "\": " + NumberToString(value);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) + "\": {\"count\": " +
           std::to_string(h.count) + ", \"sum\": " + NumberToString(h.sum) +
           ", \"min\": " + NumberToString(h.min) +
           ", \"max\": " + NumberToString(h.max) +
           ", \"p50\": " + NumberToString(h.p50) +
           ", \"p95\": " + NumberToString(h.p95) +
           ", \"p99\": " + NumberToString(h.p99) + ", \"samples_capped\": " +
           (h.samples_capped ? "true" : "false") + "}";
  }
  out += "}}";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &counters_[name];
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &gauges_[name];
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &histograms_[name];
}

std::map<std::string, uint64_t> MetricsRegistry::SnapshotCounters() const {
  std::map<std::string, uint64_t> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) out[name] = c.value();
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g.value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramSummary s;
    s.count = h.count();
    s.sum = h.sum();
    s.min = h.min();
    s.max = h.max();
    s.p50 = h.Percentile(50);
    s.p95 = h.Percentile(95);
    s.p99 = h.Percentile(99);
    s.samples_capped = h.samples_capped();
    snap.histograms[name] = s;
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.Reset();
  for (auto& [name, g] : gauges_) g.Reset();
  for (auto& [name, h] : histograms_) h.Reset();
}

ScopedTimer::~ScopedTimer() {
  if (hist_ != nullptr) {
    hist_->Observe(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count());
  }
}

}  // namespace ppp::obs
