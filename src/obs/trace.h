#ifndef PPP_OBS_TRACE_H_
#define PPP_OBS_TRACE_H_

#include <string>
#include <string_view>
#include <vector>

namespace ppp::obs {

/// One recorded optimizer decision: a dotted label ("dp.prune",
/// "migration.groups"), free-text detail, and an optional numeric payload
/// (e.g. the composed group ranks along a stream).
struct TraceEntry {
  int depth = 0;
  std::string label;
  std::string detail;
  std::vector<double> values;
};

/// Append-only sink for optimizer decisions, threaded through
/// OptimizerContext. Null pointer = tracing off; every producer guards on
/// that, so the untraced path costs one branch.
///
/// Push/Pop give entries a nesting depth used by the indented text dump;
/// when `echo` is set, entries are also emitted live through
/// PPP_LOG(Trace).
class OptTrace {
 public:
  void Add(std::string label, std::string detail,
           std::vector<double> values = {});

  /// Opens a nested scope: records an entry, then indents until Pop().
  void Push(std::string label, std::string detail = "");
  void Pop();

  const std::vector<TraceEntry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  void Clear();

  /// All entries whose label equals `label`, in recording order.
  std::vector<const TraceEntry*> Find(std::string_view label) const;

  /// Indented, human-readable dump.
  std::string ToText() const;
  /// JSON array of {depth, label, detail, values} objects. Non-finite
  /// values are emitted as null.
  std::string ToJson() const;

  void set_echo(bool echo) { echo_ = echo; }

 private:
  std::vector<TraceEntry> entries_;
  int depth_ = 0;
  bool echo_ = false;
};

}  // namespace ppp::obs

#endif  // PPP_OBS_TRACE_H_
