#include "obs/profiler.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace ppp::obs {

bool RankDriftExceeds(double est_rank, double obs_rank, double threshold) {
  const double magnitude =
      std::max(std::fabs(est_rank), std::fabs(obs_rank));
  if (magnitude == 0.0) return false;
  return std::fabs(obs_rank - est_rank) / magnitude > threshold;
}

PredicateProfiler& PredicateProfiler::Global() {
  static PredicateProfiler* profiler = new PredicateProfiler();
  return *profiler;
}

double PredicateProfiler::seconds_per_io() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seconds_per_io_;
}

void PredicateProfiler::set_seconds_per_io(double s) {
  std::lock_guard<std::mutex> lock(mu_);
  seconds_per_io_ = s;
}

double PredicateProfiler::drift_threshold() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drift_threshold_;
}

void PredicateProfiler::set_drift_threshold(double t) {
  std::lock_guard<std::mutex> lock(mu_);
  drift_threshold_ = t;
}

void PredicateProfiler::Record(const std::string& function, double seconds,
                               const std::string& input_key,
                               std::optional<bool> passed) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[function];
  e.invocations += 1;
  e.wall_seconds += seconds;
  if (!passed.has_value()) return;
  e.has_selectivity = true;
  if (e.inputs_capped && e.seen.count(input_key) == 0) return;
  const bool inserted = e.seen.insert(input_key).second;
  if (inserted) {
    e.distinct_inputs += 1;
    if (*passed) e.distinct_passes += 1;
    if (e.seen.size() >= kMaxDistinctInputs) e.inputs_capped = true;
  }
}

PredicateProfile PredicateProfiler::ToProfile(const std::string& name,
                                              const Entry& e) const {
  PredicateProfile p;
  p.function = name;
  p.invocations = e.invocations;
  p.wall_seconds = e.wall_seconds;
  p.distinct_inputs = e.distinct_inputs;
  p.distinct_passes = e.distinct_passes;
  p.has_selectivity = e.has_selectivity;
  p.inputs_capped = e.inputs_capped;
  return p;
}

std::optional<PredicateProfile> PredicateProfiler::Get(
    const std::string& function) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(function);
  if (it == entries_.end()) return std::nullopt;
  return ToProfile(it->first, it->second);
}

std::vector<PredicateProfile> PredicateProfiler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PredicateProfile> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back(ToProfile(name, entry));
  }
  return out;
}

void PredicateProfiler::RecordTransfer(const std::string& site,
                                       uint64_t probed, uint64_t passed,
                                       bool killed, double measured_fpr) {
  std::lock_guard<std::mutex> lock(mu_);
  TransferProfile& t = transfers_[site];
  t.site = site;
  t.queries += 1;
  t.probed += probed;
  t.passed += passed;
  if (killed) t.kills += 1;
  if (measured_fpr >= 0.0) t.last_fpr = measured_fpr;
}

std::optional<TransferProfile> PredicateProfiler::GetTransfer(
    const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = transfers_.find(site);
  if (it == transfers_.end()) return std::nullopt;
  return it->second;
}

std::vector<TransferProfile> PredicateProfiler::TransferSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TransferProfile> out;
  out.reserve(transfers_.size());
  for (const auto& [site, profile] : transfers_) {
    out.push_back(profile);
  }
  return out;
}

std::string PredicateProfiler::ReportText() const {
  const std::vector<PredicateProfile> profiles = Snapshot();
  const double spio = seconds_per_io();
  if (profiles.empty()) return "no function invocations profiled\n";
  std::string out = common::StringPrintf(
      "%-24s %10s %12s %12s %10s %10s\n", "function", "calls", "mean_ms",
      "cost_ios", "distinct", "obs_sel");
  for (const PredicateProfile& p : profiles) {
    std::string sel = "-";
    if (p.has_selectivity && p.distinct_inputs > 0) {
      sel = common::StringPrintf("%.4f%s", p.ObservedSelectivity(0.0),
                                 p.inputs_capped ? "*" : "");
    }
    out += common::StringPrintf(
        "%-24s %10llu %12.4f %12.2f %10llu %10s\n", p.function.c_str(),
        static_cast<unsigned long long>(p.invocations),
        p.mean_seconds() * 1e3, p.ObservedCostIos(spio),
        static_cast<unsigned long long>(p.distinct_inputs), sel.c_str());
  }
  out += common::StringPrintf("(cost_ios assumes %.0fus per random I/O)\n",
                              spio * 1e6);
  const std::vector<TransferProfile> transfers = TransferSnapshot();
  if (!transfers.empty()) {
    out += common::StringPrintf("%-32s %8s %12s %10s %8s %10s\n", "transfer",
                                "queries", "probed", "pass_rate", "kills",
                                "fpr");
    for (const TransferProfile& t : transfers) {
      std::string fpr = "-";
      if (t.last_fpr >= 0.0) {
        fpr = common::StringPrintf("%.4f", t.last_fpr);
      }
      out += common::StringPrintf(
          "%-32s %8llu %12llu %10.4f %8llu %10s\n", t.site.c_str(),
          static_cast<unsigned long long>(t.queries),
          static_cast<unsigned long long>(t.probed), t.PassRate(),
          static_cast<unsigned long long>(t.kills), fpr.c_str());
    }
  }
  return out;
}

void PredicateProfiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  transfers_.clear();
}

PredicateFeedbackStore& PredicateFeedbackStore::Global() {
  static PredicateFeedbackStore* store = new PredicateFeedbackStore();
  return *store;
}

void PredicateFeedbackStore::Update(const std::string& function,
                                    const FeedbackEntry& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[function] = entry;
}

std::optional<FeedbackEntry> PredicateFeedbackStore::Lookup(
    const std::string& function) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(function);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

size_t PredicateFeedbackStore::AbsorbProfiles(const PredicateProfiler& profiler,
                                              uint64_t min_invocations) {
  const std::vector<PredicateProfile> profiles = profiler.Snapshot();
  const double spio = profiler.seconds_per_io();
  size_t absorbed = 0;
  for (const PredicateProfile& p : profiles) {
    if (p.invocations < min_invocations) continue;
    FeedbackEntry entry;
    entry.cost_per_call = p.ObservedCostIos(spio);
    entry.has_selectivity = p.has_selectivity && p.distinct_inputs > 0;
    if (entry.has_selectivity) {
      entry.selectivity = p.ObservedSelectivity(0.5);
    }
    entry.samples = p.invocations;
    Update(p.function, entry);
    ++absorbed;
  }
  return absorbed;
}

void PredicateFeedbackStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

size_t PredicateFeedbackStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace ppp::obs
