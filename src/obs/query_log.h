#ifndef PPP_OBS_QUERY_LOG_H_
#define PPP_OBS_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ppp::obs {

/// How much the optimizer trusted its selectivity/cost inputs for a plan:
/// the *weakest* source among the plan's predicates (a single declared-only
/// guess taints the whole plan's provenance). Ordered from weakest to
/// strongest, matching the provenance ladder feedback > stats > declared.
enum class StatsTier : int {
  kDeclared = 0,  // Catalog declarations only.
  kStats = 1,     // ANALYZE histograms/MCVs/NDV sketches.
  kFeedback = 2,  // Profiled observed costs and selectivities.
};

/// Lowercase name ("declared", "stats", "feedback") for display and the
/// ppp_query_log system table.
const char* StatsTierName(StatsTier tier);

/// One completed query, recorded at executor close time. Counter-valued
/// fields are exact per-query deltas of the global MetricsRegistry taken
/// around execution (see DESIGN §7), so concurrent instrumentation in the
/// same process never bleeds across records within one single-query engine.
struct QueryLogRecord {
  uint64_t query_id = 0;
  /// Serving-layer session that ran the query (0 outside the serve layer,
  /// e.g. direct bench/test ExecutePlan calls).
  uint64_t session_id = 0;
  /// FNV-1a of the bound QuerySpec's canonical text — the normalized query,
  /// stable across literal formatting but not across constants.
  uint64_t text_hash = 0;
  /// FNV-1a of the plan's structural signature (shape + placement), so
  /// repeated runs of one query group by plan.
  uint64_t plan_fingerprint = 0;
  std::string algorithm;
  double wall_seconds = 0.0;
  double optimize_seconds = 0.0;
  double execute_seconds = 0.0;
  uint64_t rows_in = 0;   // Tuples produced by leaf scans.
  uint64_t rows_out = 0;  // Tuples returned to the caller.
  uint64_t udf_invocations = 0;    // expr.udf.invocations delta.
  uint64_t cache_hits = 0;         // expr.function_cache.hits delta.
  uint64_t transfer_pruned = 0;    // exec.transfer.pruned delta.
  /// Predicates whose observed rank drifted past the profiler threshold.
  uint64_t drift_flags = 0;
  StatsTier stats_tier = StatsTier::kDeclared;
  /// 1 s time-series bucket (TimeSeries clock) the query finished in;
  /// equi-joins ppp_query_log against ppp_metrics_window.
  int64_t bucket = 0;
  /// PlanHistory verdicts for this execution: the plan's fingerprint
  /// differed from this text_hash's previous plan (plan_changed), and the
  /// changed-to plan was established as measurably slower (plan_regressed).
  bool plan_changed = false;
  bool plan_regressed = false;
};

/// Process-wide bounded ring of QueryLogRecords, the backing store of the
/// ppp_query_log system table. On by default; PPP_QUERY_LOG=0 (or \log off
/// in the shell) disables appends. Thread-safe: records are appended from
/// whichever thread closes the executor, and snapshots are taken by
/// concurrent introspection scans.
class QueryLog {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  /// The log every executor records into. Standalone instances are legal
  /// (tests build private rings); the engine only ever touches Global().
  static QueryLog& Global();

  QueryLog();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Issues the next query id (1, 2, ...). Ids are issued even while
  /// disabled so spans stay correlatable across a \log off window.
  uint64_t NextQueryId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Appends one record; past capacity the oldest record is overwritten
  /// (counted in evicted()). No-op while disabled.
  void Append(QueryLogRecord record);

  /// All retained records, oldest first.
  std::vector<QueryLogRecord> Snapshot() const;

  /// The most recent `n` records, oldest first.
  std::vector<QueryLogRecord> Tail(size_t n) const;

  size_t size() const;
  /// Records ever appended (including since-evicted ones).
  uint64_t total() const { return total_.load(std::memory_order_relaxed); }
  /// Records overwritten by ring wraparound.
  uint64_t evicted() const {
    return evicted_.load(std::memory_order_relaxed);
  }

  /// Shrinks or grows the ring; shrinking keeps the newest records.
  void set_capacity(size_t n);
  size_t capacity() const;

  /// Drops all retained records and zeroes total/evicted. Query ids keep
  /// increasing (they are identities, not positions).
  void Clear();

 private:
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> next_id_{0};
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> evicted_{0};
  mutable std::mutex mu_;
  /// Ring storage: `ring_[(head_ + i) % ring_.size()]` for i in [0, size_)
  /// walks oldest to newest.
  std::vector<QueryLogRecord> ring_;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace ppp::obs

#endif  // PPP_OBS_QUERY_LOG_H_
