#include "obs/trace.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace ppp::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string ValuesToText(const std::vector<double>& values) {
  if (values.empty()) return "";
  std::vector<std::string> parts;
  parts.reserve(values.size());
  for (const double v : values) {
    parts.push_back(common::StringPrintf("%.6g", v));
  }
  return " [" + common::Join(parts, " ") + "]";
}

}  // namespace

void OptTrace::Add(std::string label, std::string detail,
                   std::vector<double> values) {
  TraceEntry entry;
  entry.depth = depth_;
  entry.label = std::move(label);
  entry.detail = std::move(detail);
  entry.values = std::move(values);
  if (echo_) {
    PPP_LOG(Trace) << entry.label << ": " << entry.detail
                   << ValuesToText(entry.values);
  }
  entries_.push_back(std::move(entry));
}

void OptTrace::Push(std::string label, std::string detail) {
  Add(std::move(label), std::move(detail));
  ++depth_;
}

void OptTrace::Pop() {
  if (depth_ > 0) --depth_;
}

void OptTrace::Clear() {
  entries_.clear();
  depth_ = 0;
}

std::vector<const TraceEntry*> OptTrace::Find(std::string_view label) const {
  std::vector<const TraceEntry*> out;
  for (const TraceEntry& entry : entries_) {
    if (entry.label == label) out.push_back(&entry);
  }
  return out;
}

std::string OptTrace::ToText() const {
  std::string out;
  for (const TraceEntry& entry : entries_) {
    out.append(static_cast<size_t>(entry.depth) * 2, ' ');
    out += entry.label;
    if (!entry.detail.empty()) out += ": " + entry.detail;
    out += ValuesToText(entry.values);
    out += "\n";
  }
  return out;
}

std::string OptTrace::ToJson() const {
  std::string out = "[";
  for (size_t i = 0; i < entries_.size(); ++i) {
    const TraceEntry& entry = entries_[i];
    if (i > 0) out += ", ";
    out += "{\"depth\": " + std::to_string(entry.depth) + ", \"label\": \"" +
           JsonEscape(entry.label) + "\", \"detail\": \"" +
           JsonEscape(entry.detail) + "\", \"values\": [";
    for (size_t v = 0; v < entry.values.size(); ++v) {
      if (v > 0) out += ", ";
      out += std::isfinite(entry.values[v])
                 ? common::StringPrintf("%.17g", entry.values[v])
                 : std::string("null");
    }
    out += "]}";
  }
  out += "]";
  return out;
}

}  // namespace ppp::obs
