#ifndef PPP_OBS_TIMESERIES_H_
#define PPP_OBS_TIMESERIES_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ppp::obs {

/// One (counter, 1 s bucket) cell of the sliding window, with the rollups
/// the ppp_metrics_window system table exposes per row. `delta` is the
/// counter's increase attributed to `bucket`; the rollup columns repeat the
/// series-wide aggregates over the window (denormalized so a plain SELECT
/// reads them without window functions, which the engine does not have).
struct TimeSeriesPoint {
  std::string name;
  int64_t bucket = 0;        // Seconds since the store's epoch.
  double delta = 0.0;        // Counter increase in this bucket.
  double window_total = 0.0; // Sum of deltas across the window.
  double rate_p50 = 0.0;     // Median per-second delta over the window.
  double rate_p99 = 0.0;     // 99th-percentile per-second delta.
};

/// Sliding-window aggregation of MetricsRegistry counters into fixed 1 s
/// buckets. There is no background thread: Sample() is called at query
/// close (and by \metrics in the shell), diffing each counter against its
/// last sampled value and crediting the delta to the current bucket.
/// Buckets older than the window fall off the front. Percentiles are
/// nearest-rank over every bucket between the oldest retained and the
/// newest (gaps count as zero-rate seconds — an idle engine's p50 is 0).
class TimeSeries {
 public:
  static constexpr size_t kDefaultWindowBuckets = 120;

  /// The store Sample() and the ppp_metrics_window table share.
  /// Standalone instances are legal (tests exercise SampleAt in
  /// isolation); the engine only ever touches Global().
  static TimeSeries& Global();

  TimeSeries();

  /// Diffs the global registry's counters against the previous sample and
  /// credits the deltas to the current bucket.
  void Sample();

  /// Test seam: samples an explicit counter map at an explicit time
  /// (seconds since epoch). `Sample()` is this with the real registry and
  /// the real clock.
  void SampleAt(const std::map<std::string, uint64_t>& counters,
                double now_seconds);

  /// Every (counter, bucket) cell currently in the window, with rollups.
  /// Ordered by name then bucket.
  std::vector<TimeSeriesPoint> Snapshot() const;

  /// The bucket a sample taken now would land in.
  int64_t CurrentBucket() const;

  void set_window_buckets(size_t n);

  /// Forgets all buckets and baselines; the next Sample() restarts deltas
  /// from the counters' current values rather than re-crediting history.
  void Clear();

 private:
  struct Series {
    uint64_t last_value = 0;
    bool has_baseline = false;
    /// (bucket, delta), ascending by bucket; only touched buckets stored.
    std::deque<std::pair<int64_t, double>> buckets;
  };

  void TrimLocked(Series* series, int64_t now_bucket);

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::map<std::string, Series> series_;
  size_t window_buckets_ = kDefaultWindowBuckets;
};

}  // namespace ppp::obs

#endif  // PPP_OBS_TIMESERIES_H_
