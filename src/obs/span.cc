#include "obs/span.h"

#include <cstdlib>

namespace ppp::obs {

namespace {

bool EnvEnabled(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

std::atomic<int> next_thread_id{0};

// Per-thread query/session attribution (see SpanTracer::set_current_ids).
thread_local uint64_t tls_query_id = 0;
thread_local uint64_t tls_session_id = 0;

}  // namespace

int CurrentThreadId() {
  thread_local const int id =
      next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

SpanTracer::SpanTracer() : epoch_(std::chrono::steady_clock::now()) {
  enabled_.store(EnvEnabled("PPP_TRACE_SPANS"), std::memory_order_relaxed);
}

SpanTracer& SpanTracer::Global() {
  static SpanTracer* tracer = new SpanTracer();
  return *tracer;
}

double SpanTracer::NowMicros() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

uint64_t SpanTracer::current_query_id() { return tls_query_id; }

uint64_t SpanTracer::current_session_id() { return tls_session_id; }

void SpanTracer::set_current_ids(uint64_t query_id, uint64_t session_id) {
  tls_query_id = query_id;
  tls_session_id = session_id;
}

void SpanTracer::Record(SpanEvent event) {
  if (tls_query_id != 0) {
    event.args.emplace_back("query_id", std::to_string(tls_query_id));
  }
  if (tls_session_id != 0) {
    event.args.emplace_back("session_id", std::to_string(tls_session_id));
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<SpanEvent> SpanTracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t SpanTracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void SpanTracer::set_max_events(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  max_events_ = n;
}

void SpanTracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

Span::Span(std::string_view cat, std::string_view name) {
  SpanTracer& tracer = SpanTracer::Global();
  if (!tracer.enabled()) return;  // The one branch paid when tracing is off.
  tracer_ = &tracer;
  start_ = std::chrono::steady_clock::now();
  // ts and dur derive from the same clock read, so a child's ts + dur can
  // never exceed its enclosing span's — nesting stays strict in the export.
  event_.ts_us = std::chrono::duration<double, std::micro>(
                     start_ - tracer.epoch())
                     .count();
  event_.name.assign(name.data(), name.size());
  event_.cat.assign(cat.data(), cat.size());
  event_.tid = CurrentThreadId();
}

Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_),
      event_(std::move(other.event_)),
      start_(other.start_) {
  other.tracer_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    event_ = std::move(other.event_);
    start_ = other.start_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::AddArg(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  event_.args.emplace_back(std::string(key), std::string(value));
}

void Span::End() {
  if (tracer_ == nullptr) return;
  event_.dur_us = std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
  tracer_->Record(std::move(event_));
  tracer_ = nullptr;
}

}  // namespace ppp::obs
