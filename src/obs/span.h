#ifndef PPP_OBS_SPAN_H_
#define PPP_OBS_SPAN_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ppp::obs {

/// One completed span: a named wall-clock interval on one thread.
/// Timestamps are microseconds since the tracer's epoch (steady clock), the
/// unit Chrome's trace-event format uses. Nesting is implicit: spans on the
/// same thread close in LIFO order (they are RAII scopes), so an event's
/// parent is the enclosing interval with the same tid.
struct SpanEvent {
  std::string name;
  std::string cat;
  double ts_us = 0.0;
  double dur_us = 0.0;
  int tid = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// Small dense id of the calling thread (0 for the first thread that asks,
/// then 1, 2, ...). Stable for the thread's lifetime; used as the Chrome
/// trace `tid` so per-worker execute spans land on distinct tracks.
int CurrentThreadId();

/// Process-wide collector of SpanEvents for the per-query lifecycle trace
/// (parse → bind → rewrite → optimize → execute). Off by default; enabled
/// by the PPP_TRACE_SPANS environment variable or \spans in the shell.
/// When off, instrumented sites pay exactly one relaxed atomic load.
///
/// The event buffer is bounded: past max_events() new spans are counted in
/// dropped() instead of stored, so a long shell session cannot grow without
/// limit.
class SpanTracer {
 public:
  /// The tracer every built-in instrumentation site records into.
  static SpanTracer& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Microseconds since this tracer's construction (steady clock).
  double NowMicros() const;

  /// The instant ts_us values are measured from.
  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

  /// Appends one finished span (thread-safe); drops it when the buffer is
  /// at max_events().
  void Record(SpanEvent event);

  /// Query/session ids stamped onto every span recorded while nonzero (as
  /// "query_id" / "session_id" args), correlating a trace with its
  /// ppp_query_log row and session. Thread-local, not global: concurrent
  /// sessions run queries simultaneously, so each thread carries its own
  /// attribution. Parallel-eval workers inherit the coordinator's ids
  /// explicitly (parallel_eval installs a QueryIdScope inside the worker
  /// lambda). Set via QueryIdScope.
  static uint64_t current_query_id();
  static uint64_t current_session_id();
  static void set_current_ids(uint64_t query_id, uint64_t session_id);

  std::vector<SpanEvent> Snapshot() const;
  size_t size() const;
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  void set_max_events(size_t n);
  void Clear();

 private:
  SpanTracer();

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> dropped_{0};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
  size_t max_events_ = 1u << 20;
};

/// RAII span over the global tracer: construction checks the enabled flag
/// (the only cost when tracing is off), destruction records the completed
/// interval. Movable so spans can live in std::optional; not copyable.
class Span {
 public:
  Span(std::string_view cat, std::string_view name);
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;

  /// False when the tracer was disabled at construction (no-op span).
  bool active() const { return tracer_ != nullptr; }

  void AddArg(std::string_view key, std::string_view value);

  /// Closes the span now (idempotent; the destructor calls it).
  void End();

 private:
  SpanTracer* tracer_ = nullptr;
  SpanEvent event_;
  std::chrono::steady_clock::time_point start_;
};

/// RAII scope that stamps the calling thread with a query id (and
/// optionally a session id) for the duration of one query's lifecycle
/// (optimize + execute), restoring the previous ids on exit so nested
/// scopes (introspection queries issued from inside a bench loop) unwind
/// correctly. Thread-local, so concurrent sessions don't clobber each
/// other's attribution.
class QueryIdScope {
 public:
  explicit QueryIdScope(uint64_t query_id, uint64_t session_id = 0)
      : previous_query_(SpanTracer::current_query_id()),
        previous_session_(SpanTracer::current_session_id()) {
    SpanTracer::set_current_ids(query_id, session_id);
  }
  ~QueryIdScope() {
    SpanTracer::set_current_ids(previous_query_, previous_session_);
  }

  QueryIdScope(const QueryIdScope&) = delete;
  QueryIdScope& operator=(const QueryIdScope&) = delete;

 private:
  uint64_t previous_query_;
  uint64_t previous_session_;
};

}  // namespace ppp::obs

#endif  // PPP_OBS_SPAN_H_
