#ifndef PPP_OBS_PLAN_HISTORY_H_
#define PPP_OBS_PLAN_HISTORY_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace ppp::obs {

/// Aggregated execution history of one plan of one normalized query:
/// (text_hash, plan_fingerprint) is the key, everything else accumulates
/// across that plan's executions. The backing row of ppp_plan_history.
struct PlanHistoryEntry {
  uint64_t text_hash = 0;
  uint64_t plan_fingerprint = 0;
  uint64_t executions = 0;
  double wall_mean = 0.0;  ///< Mean wall seconds over all executions.
  /// Nearest-rank p95 over the most recent kWallSamples walls (exact until
  /// the per-entry sample ring wraps).
  double wall_p95 = 0.0;
  uint64_t total_invocations = 0;  ///< Summed UDF invocations.
  double max_qerror = 0.0;  ///< Worst per-operator q-error ever audited.
  uint64_t first_query_id = 0;
  uint64_t last_query_id = 0;
  /// True when this plan displaced a different fingerprint for the same
  /// text_hash (a plan change — typically after ANALYZE or calibration).
  bool plan_changed = false;
  /// True once this plan was flagged measurably slower than the plan it
  /// displaced (see PlanHistory regression detection).
  bool regressed = false;
};

/// What one Record() call concluded, for the query-log flags and the
/// plan.changed / plan.regressed counters. Both flags fire on transitions
/// only: plan_changed on the execution where the fingerprint flipped,
/// plan_regressed on the execution where the slowdown was first established.
struct PlanOutcome {
  bool plan_changed = false;
  bool plan_regressed = false;
  /// Established mean of the displaced plan when plan_regressed fired
  /// (diagnostic; 0 otherwise).
  double prior_wall_mean = 0.0;
};

/// Per-query-hash plan execution history with plan-change and regression
/// detection — the estimate→execution feedback signal the serving layer's
/// plan cache will consume for invalidation.
///
/// Detection rules:
///  * plan change: a Record() whose fingerprint differs from the same
///    text_hash's previous fingerprint (including flips back to a plan
///    seen before).
///  * plan regression: a changed-to plan whose mean wall time, once both it
///    and the plan it displaced have >= warmup_executions executions,
///    exceeds the displaced plan's mean by more than regression_factor.
///    Flagged once per (plan, displacement); a faster new plan never flags.
///
/// Bounded: beyond max_entries the entry with the oldest last_query_id is
/// evicted. Thread-safe under one mutex; Record() runs once per query at
/// executor close, never on per-tuple paths.
class PlanHistory {
 public:
  static constexpr size_t kDefaultMaxEntries = 1024;
  /// Wall samples retained per entry for the p95 (ring, newest wins).
  static constexpr size_t kWallSamples = 128;
  static constexpr uint64_t kDefaultWarmupExecutions = 3;
  static constexpr double kDefaultRegressionFactor = 1.5;

  /// The history every executor records into. Standalone instances are
  /// legal (tests build private ones); the engine only touches Global().
  /// PPP_PLAN_HISTORY=0 starts it disabled (the kill-switch).
  static PlanHistory& Global();

  PlanHistory();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Executions either plan needs before a mean is "established" and the
  /// regression check may fire.
  void set_warmup_executions(uint64_t n) { warmup_executions_ = n; }
  uint64_t warmup_executions() const { return warmup_executions_; }

  /// Mean-wall ratio (new / displaced) above which a changed-to plan is
  /// flagged regressed.
  void set_regression_factor(double f) { regression_factor_ = f; }
  double regression_factor() const { return regression_factor_; }

  void set_max_entries(size_t n) { max_entries_ = n == 0 ? 1 : n; }
  size_t max_entries() const { return max_entries_; }

  /// Folds one execution into the (text_hash, fingerprint) entry and runs
  /// the change/regression detection. No-op (all-false outcome) while
  /// disabled or when text_hash is 0 (callers without query-log hints).
  PlanOutcome Record(uint64_t text_hash, uint64_t plan_fingerprint,
                     double wall_seconds, uint64_t udf_invocations,
                     double max_qerror, uint64_t query_id);

  /// All entries ordered by first_query_id (stable discovery order), with
  /// wall_mean / wall_p95 computed.
  std::vector<PlanHistoryEntry> Snapshot() const;

  /// Distinct plans recorded for `text_hash` (0 when unseen).
  size_t PlansFor(uint64_t text_hash) const;

  /// True when the (text_hash, fingerprint) plan has been flagged
  /// regressed. Plan caches consult this on probe so a regression verdict
  /// retires the cached plan instead of replaying it forever.
  bool Regressed(uint64_t text_hash, uint64_t fingerprint) const;

  size_t size() const;
  uint64_t changed_total() const {
    return changed_total_.load(std::memory_order_relaxed);
  }
  uint64_t regressed_total() const {
    return regressed_total_.load(std::memory_order_relaxed);
  }

  /// Drops every entry and zeroes the change/regression totals.
  void Clear();

 private:
  struct Entry {
    PlanHistoryEntry row;
    double wall_sum = 0.0;
    /// Most recent walls, ring-ordered; row.wall_p95 derives from these.
    std::vector<double> walls;
    size_t wall_next = 0;
    /// Fingerprint this plan displaced at its most recent change; 0 when
    /// this plan never displaced another.
    uint64_t displaced_fingerprint = 0;
  };

  static uint64_t Key(uint64_t text_hash, uint64_t fingerprint);
  void EvictOldestLocked();
  static double P95Locked(const Entry& entry);

  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> changed_total_{0};
  std::atomic<uint64_t> regressed_total_{0};
  uint64_t warmup_executions_ = kDefaultWarmupExecutions;
  double regression_factor_ = kDefaultRegressionFactor;
  size_t max_entries_ = kDefaultMaxEntries;

  mutable std::mutex mu_;
  /// Key(text_hash, fingerprint) -> entry.
  std::unordered_map<uint64_t, Entry> entries_;
  /// text_hash -> fingerprint of its most recently executed plan.
  std::unordered_map<uint64_t, uint64_t> current_plan_;
};

}  // namespace ppp::obs

#endif  // PPP_OBS_PLAN_HISTORY_H_
