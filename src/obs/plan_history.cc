#include "obs/plan_history.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

namespace ppp::obs {

namespace {

bool EnvDisabled(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] == '0' && value[1] == '\0';
}

}  // namespace

PlanHistory::PlanHistory() {
  enabled_.store(!EnvDisabled("PPP_PLAN_HISTORY"), std::memory_order_relaxed);
}

PlanHistory& PlanHistory::Global() {
  static PlanHistory* history = new PlanHistory();
  return *history;
}

uint64_t PlanHistory::Key(uint64_t text_hash, uint64_t fingerprint) {
  // FNV-1a fold of the pair; collisions would only merge two histories, and
  // at 64 bits over ~1k live entries they are not a practical concern.
  uint64_t h = 1469598103934665603ULL;
  for (uint64_t v : {text_hash, fingerprint}) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

PlanOutcome PlanHistory::Record(uint64_t text_hash, uint64_t plan_fingerprint,
                                double wall_seconds,
                                uint64_t udf_invocations, double max_qerror,
                                uint64_t query_id) {
  PlanOutcome outcome;
  if (!enabled() || text_hash == 0) return outcome;
  std::lock_guard<std::mutex> lock(mu_);

  auto [current_it, first_plan] =
      current_plan_.try_emplace(text_hash, plan_fingerprint);
  const uint64_t previous_fingerprint = current_it->second;
  const bool changed = !first_plan && previous_fingerprint != plan_fingerprint;
  current_it->second = plan_fingerprint;

  const uint64_t key = Key(text_hash, plan_fingerprint);
  auto [it, inserted] = entries_.try_emplace(key);
  Entry& entry = it->second;
  if (inserted) {
    entry.row.text_hash = text_hash;
    entry.row.plan_fingerprint = plan_fingerprint;
    entry.row.first_query_id = query_id;
  }
  if (changed) {
    outcome.plan_changed = true;
    changed_total_.fetch_add(1, std::memory_order_relaxed);
    entry.row.plan_changed = true;
    entry.displaced_fingerprint = previous_fingerprint;
    // A fresh displacement restarts regression detection: the plan must
    // prove slower than *this* predecessor, not one it displaced earlier.
    entry.row.regressed = false;
  }

  ++entry.row.executions;
  entry.wall_sum += wall_seconds;
  if (entry.walls.size() < kWallSamples) {
    entry.walls.push_back(wall_seconds);
  } else {
    entry.walls[entry.wall_next] = wall_seconds;
    entry.wall_next = (entry.wall_next + 1) % kWallSamples;
  }
  entry.row.total_invocations += udf_invocations;
  entry.row.max_qerror = std::max(entry.row.max_qerror, max_qerror);
  entry.row.last_query_id = query_id;

  if (!entry.row.regressed && entry.displaced_fingerprint != 0 &&
      entry.row.executions >= warmup_executions_) {
    auto prior = entries_.find(Key(text_hash, entry.displaced_fingerprint));
    if (prior != entries_.end() &&
        prior->second.row.executions >= warmup_executions_) {
      const double prior_mean =
          prior->second.wall_sum /
          static_cast<double>(prior->second.row.executions);
      const double mean =
          entry.wall_sum / static_cast<double>(entry.row.executions);
      if (prior_mean > 0.0 && mean > prior_mean * regression_factor_) {
        entry.row.regressed = true;
        outcome.plan_regressed = true;
        outcome.prior_wall_mean = prior_mean;
        regressed_total_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  while (entries_.size() > max_entries_) EvictOldestLocked();
  return outcome;
}

void PlanHistory::EvictOldestLocked() {
  auto oldest = entries_.end();
  uint64_t oldest_id = std::numeric_limits<uint64_t>::max();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.row.last_query_id < oldest_id) {
      oldest_id = it->second.row.last_query_id;
      oldest = it;
    }
  }
  if (oldest == entries_.end()) return;
  auto current = current_plan_.find(oldest->second.row.text_hash);
  if (current != current_plan_.end() &&
      current->second == oldest->second.row.plan_fingerprint) {
    current_plan_.erase(current);
  }
  entries_.erase(oldest);
}

double PlanHistory::P95Locked(const Entry& entry) {
  if (entry.walls.empty()) return 0.0;
  std::vector<double> sorted(entry.walls);
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: ceil(0.95 * n) as a 1-based rank.
  const size_t rank = (sorted.size() * 95 + 99) / 100;
  return sorted[std::min(rank, sorted.size()) - 1];
}

std::vector<PlanHistoryEntry> PlanHistory::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PlanHistoryEntry> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    (void)key;
    PlanHistoryEntry row = entry.row;
    row.wall_mean = entry.row.executions == 0
                        ? 0.0
                        : entry.wall_sum /
                              static_cast<double>(entry.row.executions);
    row.wall_p95 = P95Locked(entry);
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const PlanHistoryEntry& a, const PlanHistoryEntry& b) {
              if (a.first_query_id != b.first_query_id) {
                return a.first_query_id < b.first_query_id;
              }
              return a.plan_fingerprint < b.plan_fingerprint;
            });
  return out;
}

size_t PlanHistory::PlansFor(uint64_t text_hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const auto& [key, entry] : entries_) {
    (void)key;
    if (entry.row.text_hash == text_hash) ++count;
  }
  return count;
}

bool PlanHistory::Regressed(uint64_t text_hash, uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(Key(text_hash, fingerprint));
  if (it == entries_.end()) return false;
  return it->second.row.regressed;
}

size_t PlanHistory::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void PlanHistory::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  current_plan_.clear();
  changed_total_.store(0, std::memory_order_relaxed);
  regressed_total_.store(0, std::memory_order_relaxed);
}

}  // namespace ppp::obs
