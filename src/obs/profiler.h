#ifndef PPP_OBS_PROFILER_H_
#define PPP_OBS_PROFILER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

namespace ppp::obs {

/// Aggregated runtime observations for one expensive function, collected by
/// the expression evaluator as queries execute.
///
/// Two derived numbers matter for placement (the paper's §4 rank metric is
/// (selectivity - 1) / cost):
///   - observed cost: mean wall seconds per invocation, converted into the
///     cost model's random-I/O units via seconds_per_io;
///   - observed selectivity: pass fraction over *distinct* input bindings,
///     matching the §5.1 caching semantics in which each distinct value is
///     evaluated once regardless of how many tuples carry it.
struct PredicateProfile {
  std::string function;
  uint64_t invocations = 0;
  double wall_seconds = 0.0;
  /// Distinct input tuples seen / how many of them passed. Only populated
  /// for boolean (predicate) functions; has_selectivity is false otherwise.
  uint64_t distinct_inputs = 0;
  uint64_t distinct_passes = 0;
  bool has_selectivity = false;
  /// True when the distinct-input tracking set hit its cap and stopped
  /// admitting new values; the selectivity is then a (still unbiased-ish)
  /// estimate over the first values seen rather than an exact count.
  bool inputs_capped = false;

  double mean_seconds() const {
    return invocations > 0 ? wall_seconds / static_cast<double>(invocations)
                           : 0.0;
  }

  /// Mean per-invocation cost in the cost model's units (random I/Os).
  double ObservedCostIos(double seconds_per_io) const {
    return seconds_per_io > 0.0 ? mean_seconds() / seconds_per_io : 0.0;
  }

  double ObservedSelectivity(double fallback) const {
    if (!has_selectivity || distinct_inputs == 0) return fallback;
    return static_cast<double>(distinct_passes) /
           static_cast<double>(distinct_inputs);
  }
};

/// Aggregated observations for one predicate-transfer site (a transferred
/// Bloom filter identified by its "probe.col <- build.col" label),
/// accumulated across every query that ran the transfer.
struct TransferProfile {
  std::string site;
  uint64_t queries = 0;
  uint64_t probed = 0;
  uint64_t passed = 0;
  /// Queries in which the runtime kill switch disabled the filter.
  uint64_t kills = 0;
  /// Most recent measured false-positive rate; < 0 when never observed.
  double last_fpr = -1.0;

  double PassRate() const {
    return probed > 0
               ? static_cast<double>(passed) / static_cast<double>(probed)
               : 1.0;
  }
};

/// True when the observed rank disagrees with the estimated rank by more
/// than `threshold`, measured as relative difference |obs - est| over the
/// larger magnitude (ranks are negative; a sign flip always exceeds any
/// threshold < 2).
bool RankDriftExceeds(double est_rank, double obs_rank, double threshold);

/// Process-wide collector of per-function runtime profiles. The evaluator
/// calls Record() for every user-function invocation; EXPLAIN ANALYZE and
/// the feedback store read the aggregates back.
///
/// On by default: the per-invocation overhead is a clock read and a map
/// update, negligible next to an expensive predicate's own work (and the
/// functions recorded here are exactly the ones worth profiling).
class PredicateProfiler {
 public:
  static PredicateProfiler& Global();

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Seconds of wall time equal to one unit of cost-model random I/O; used
  /// to convert observed wall cost into catalog cost units. The default
  /// 1e-4 (100us) matches a commodity-disk random read.
  double seconds_per_io() const;
  void set_seconds_per_io(double s);

  /// Relative rank disagreement beyond which EXPLAIN ANALYZE prints DRIFT.
  double drift_threshold() const;
  void set_drift_threshold(double t);

  /// Records one invocation of `function` taking `seconds` of wall time.
  /// For boolean predicates, `input_key` is a serialized form of the
  /// argument tuple and `passed` the outcome; each distinct key contributes
  /// once to the distinct-selectivity counts. Pass nullopt for non-boolean
  /// functions.
  void Record(const std::string& function, double seconds,
              const std::string& input_key, std::optional<bool> passed);

  std::optional<PredicateProfile> Get(const std::string& function) const;
  std::vector<PredicateProfile> Snapshot() const;

  /// Records one query's worth of counters for a transfer site (called by
  /// ExecutePlan at end of query, so the cross-query aggregates here stay
  /// in step with the per-function profiles above).
  void RecordTransfer(const std::string& site, uint64_t probed,
                      uint64_t passed, bool killed, double measured_fpr);
  std::vector<TransferProfile> TransferSnapshot() const;

  /// The cross-query aggregate for one transfer site (nullopt when the
  /// site was never recorded). The executor's cross-query kill memory
  /// consults this before building a Bloom filter.
  std::optional<TransferProfile> GetTransfer(const std::string& site) const;

  /// Human-readable table of every profiled function (the shell's \profile).
  std::string ReportText() const;

  void Reset();

 private:
  PredicateProfiler() = default;

  struct Entry {
    uint64_t invocations = 0;
    double wall_seconds = 0.0;
    std::unordered_set<std::string> seen;
    uint64_t distinct_inputs = 0;
    uint64_t distinct_passes = 0;
    bool has_selectivity = false;
    bool inputs_capped = false;
  };

  PredicateProfile ToProfile(const std::string& name, const Entry& e) const;

  bool enabled_ = true;
  mutable std::mutex mu_;
  double seconds_per_io_ = 1e-4;
  double drift_threshold_ = 0.5;
  std::map<std::string, Entry> entries_;
  std::map<std::string, TransferProfile> transfers_;

  /// Cap on distinct input keys remembered per function (memory bound).
  static constexpr size_t kMaxDistinctInputs = 65536;
};

/// One calibrated estimate the optimizer can consume in place of the static
/// catalog numbers. Cost is in the cost model's random-I/O units.
struct FeedbackEntry {
  double cost_per_call = 0.0;
  double selectivity = 0.5;
  bool has_selectivity = false;
  uint64_t samples = 0;
};

/// Observed cost/selectivity per function, fed from PredicateProfiler by
/// AbsorbProfiles() (the \calibrate path) and consumed by PredicateAnalyzer
/// when CostParams::use_feedback is set.
class PredicateFeedbackStore {
 public:
  static PredicateFeedbackStore& Global();

  void Update(const std::string& function, const FeedbackEntry& entry);
  std::optional<FeedbackEntry> Lookup(const std::string& function) const;

  /// Converts every profile with at least `min_invocations` recorded calls
  /// into a feedback entry. Returns how many functions were calibrated.
  size_t AbsorbProfiles(const PredicateProfiler& profiler,
                        uint64_t min_invocations = 1);

  void Clear();
  size_t size() const;

 private:
  PredicateFeedbackStore() = default;

  mutable std::mutex mu_;
  std::map<std::string, FeedbackEntry> entries_;
};

}  // namespace ppp::obs

#endif  // PPP_OBS_PROFILER_H_
