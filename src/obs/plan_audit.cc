#include "obs/plan_audit.h"

#include <algorithm>
#include <cstdlib>

namespace ppp::obs {

namespace {

bool EnvDisabled(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] == '0' && value[1] == '\0';
}

}  // namespace

double CardinalityQError(double est_rows, uint64_t actual_rows) {
  const double est = std::max(1.0, est_rows);
  const double actual = std::max(1.0, static_cast<double>(actual_rows));
  return std::max(est / actual, actual / est);
}

PlanAudit::PlanAudit() {
  ring_.resize(kDefaultCapacity);
  enabled_.store(!EnvDisabled("PPP_PLAN_AUDIT"), std::memory_order_relaxed);
}

PlanAudit& PlanAudit::Global() {
  static PlanAudit* audit = new PlanAudit();
  return *audit;
}

void PlanAudit::Append(OperatorAuditRecord record) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return;
  if (size_ == ring_.size()) {
    ring_[head_] = std::move(record);
    head_ = (head_ + 1) % ring_.size();
    evicted_.fetch_add(1, std::memory_order_relaxed);
  } else {
    ring_[(head_ + size_) % ring_.size()] = std::move(record);
    ++size_;
  }
  total_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<OperatorAuditRecord> PlanAudit::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<OperatorAuditRecord> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<OperatorAuditRecord> PlanAudit::Tail(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t count = std::min(n, size_);
  std::vector<OperatorAuditRecord> out;
  out.reserve(count);
  for (size_t i = size_ - count; i < size_; ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

size_t PlanAudit::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

void PlanAudit::set_capacity(size_t n) {
  n = std::max<size_t>(n, 1);
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<OperatorAuditRecord> fresh(n);
  const size_t keep = std::min(size_, n);
  for (size_t i = 0; i < keep; ++i) {
    fresh[i] = std::move(ring_[(head_ + (size_ - keep) + i) % ring_.size()]);
  }
  ring_ = std::move(fresh);
  head_ = 0;
  size_ = keep;
}

size_t PlanAudit::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void PlanAudit::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (OperatorAuditRecord& r : ring_) r = OperatorAuditRecord{};
  head_ = 0;
  size_ = 0;
  total_.store(0, std::memory_order_relaxed);
  evicted_.store(0, std::memory_order_relaxed);
}

}  // namespace ppp::obs
