#include "subquery/rewrite.h"

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "obs/span.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "parser/parser.h"
#include "parser/binder.h"

namespace ppp::subquery {

namespace {

using ColumnKey = std::pair<std::string, std::string>;  // (table, column).

/// Column refs in the subquery body that name tables outside the
/// subquery's own FROM list, i.e. the correlation parameters, in
/// deterministic (depth-first, deduplicated) order.
std::vector<ColumnKey> CollectCorrelated(const expr::SubquerySpec& spec) {
  std::set<std::string> inner_aliases;
  for (const auto& [alias, table] : spec.tables) inner_aliases.insert(alias);

  std::vector<ColumnKey> out;
  std::set<ColumnKey> seen;
  auto visit = [&](const expr::ExprPtr& e) {
    if (e == nullptr) return;
    std::vector<const expr::Expr*> refs;
    e->CollectColumnRefs(&refs);
    for (const expr::Expr* ref : refs) {
      if (inner_aliases.count(ref->table) > 0) continue;
      const ColumnKey key{ref->table, ref->column};
      if (seen.insert(key).second) out.push_back(key);
    }
  };
  visit(spec.output);
  for (const expr::ExprPtr& conjunct : spec.conjuncts) visit(conjunct);
  return out;
}

/// Replaces correlated column refs with constants.
expr::ExprPtr Substitute(const expr::ExprPtr& e,
                         const std::map<ColumnKey, types::Value>& params) {
  if (e == nullptr) return e;
  if (e->kind == expr::ExprKind::kColumnRef) {
    auto it = params.find({e->table, e->column});
    if (it != params.end()) return expr::Const(it->second);
    return e;
  }
  if (e->children.empty()) return e;
  auto copy = std::make_shared<expr::Expr>(*e);
  for (expr::ExprPtr& child : copy->children) {
    child = Substitute(child, params);
  }
  return copy;
}

/// Builds the executable QuerySpec of one subquery instantiation.
plan::QuerySpec InstantiateSpec(const expr::SubquerySpec& spec,
                                const std::map<ColumnKey, types::Value>& params) {
  plan::QuerySpec inner;
  for (const auto& [alias, table] : spec.tables) {
    inner.tables.push_back({alias, table});
  }
  for (const expr::ExprPtr& conjunct : spec.conjuncts) {
    inner.conjuncts.push_back(Substitute(conjunct, params));
  }
  inner.select_list.push_back(Substitute(spec.output, params));
  inner.select_names.push_back("v");
  return inner;
}

/// Shared state of one synthesized subquery predicate: executes the
/// subquery per distinct correlated binding and memoizes the value sets.
struct SubqueryRuntime {
  catalog::Catalog* catalog = nullptr;
  std::shared_ptr<const expr::SubquerySpec> spec;
  std::vector<ColumnKey> correlated;
  std::map<std::string, std::set<types::Value>> memo;

  common::Result<const std::set<types::Value>*> ValueSet(
      const std::vector<types::Value>& args) {
    std::vector<types::Value> binding(args.begin() + 1, args.end());
    const std::string key = types::Tuple(binding).Serialize();
    auto it = memo.find(key);
    if (it != memo.end()) return &it->second;

    std::map<ColumnKey, types::Value> params;
    for (size_t i = 0; i < correlated.size(); ++i) {
      params[correlated[i]] = args[i + 1];
    }
    plan::QuerySpec inner = InstantiateSpec(*spec, params);
    optimizer::Optimizer opt(catalog, {});
    PPP_ASSIGN_OR_RETURN(optimizer::OptimizeResult result,
                         opt.Optimize(inner, optimizer::Algorithm::kPushDown));
    exec::ExecContext ctx;
    ctx.catalog = catalog;
    for (const plan::TableRef& ref : inner.tables) {
      PPP_ASSIGN_OR_RETURN(catalog::Table * table,
                           catalog->GetTable(ref.table_name));
      ctx.binding[ref.alias] = table;
    }
    PPP_ASSIGN_OR_RETURN(std::vector<types::Tuple> rows,
                         exec::ExecutePlan(*result.plan, &ctx, nullptr));
    std::set<types::Value> values;
    for (const types::Tuple& row : rows) {
      if (!row.Get(0).is_null()) values.insert(row.Get(0));
    }
    auto [inserted, ok] = memo.emplace(key, std::move(values));
    return &inserted->second;
  }
};

/// Optimizer-facing cost of one subquery evaluation: the estimated cost of
/// the subquery plan with correlation parameters bound to a placeholder.
double EstimateSubqueryCost(const expr::SubquerySpec& spec,
                            const std::vector<ColumnKey>& correlated,
                            catalog::Catalog* catalog) {
  std::map<ColumnKey, types::Value> params;
  for (const ColumnKey& key : correlated) {
    params[key] = types::Value(int64_t{0});
  }
  plan::QuerySpec inner = InstantiateSpec(spec, params);
  optimizer::Optimizer opt(catalog, {});
  auto result = opt.Optimize(inner, optimizer::Algorithm::kPushDown);
  if (!result.ok()) return 25.0;  // Conservative default.
  return std::max(1.0, result->est_cost);
}

std::string FreshFunctionName(const catalog::Catalog& catalog) {
  for (int i = 1;; ++i) {
    const std::string name = "__subq" + std::to_string(i);
    if (!catalog.functions().Contains(name)) return name;
  }
}

common::Result<expr::ExprPtr> RewriteExpr(const expr::ExprPtr& e,
                                          catalog::Catalog* catalog) {
  if (e == nullptr) return e;
  if (e->kind != expr::ExprKind::kInSubquery) {
    if (e->children.empty()) return e;
    auto copy = std::make_shared<expr::Expr>(*e);
    for (expr::ExprPtr& child : copy->children) {
      PPP_ASSIGN_OR_RETURN(child, RewriteExpr(child, catalog));
    }
    return expr::ExprPtr(std::move(copy));
  }

  // Rewrite nested subqueries inside this one first, so the runtime spec
  // contains only executable predicates.
  auto spec = std::make_shared<expr::SubquerySpec>();
  spec->tables = e->subquery->tables;
  PPP_ASSIGN_OR_RETURN(spec->output,
                       RewriteExpr(e->subquery->output, catalog));
  for (const expr::ExprPtr& conjunct : e->subquery->conjuncts) {
    PPP_ASSIGN_OR_RETURN(expr::ExprPtr rewritten,
                         RewriteExpr(conjunct, catalog));
    spec->conjuncts.push_back(std::move(rewritten));
  }
  PPP_ASSIGN_OR_RETURN(expr::ExprPtr needle,
                       RewriteExpr(e->children[0], catalog));

  auto runtime = std::make_shared<SubqueryRuntime>();
  runtime->catalog = catalog;
  runtime->correlated = CollectCorrelated(*spec);
  runtime->spec = spec;

  catalog::FunctionDef def;
  const std::string fn_name = FreshFunctionName(*catalog);
  def.name = fn_name;
  def.cost_per_call =
      EstimateSubqueryCost(*spec, runtime->correlated, catalog);
  def.selectivity = 0.5;  // System R's IN-membership default.
  def.return_type = types::TypeId::kBool;
  def.cacheable = true;
  // The subquery does real, metered I/O when invoked; cost_per_call is an
  // optimizer estimate, not a bill.
  def.charge_invocations = false;
  // The impl executes nested plans through the shared buffer pool and
  // memoizes in SubqueryRuntime — coordinator-thread only.
  def.parallel_safe = false;
  def.impl = [runtime](const std::vector<types::Value>& args) {
    if (args.empty() || args[0].is_null()) return types::Value(false);
    auto values = runtime->ValueSet(args);
    if (!values.ok()) {
      PPP_LOG(Error) << "subquery execution failed: "
                     << values.status().ToString();
      return types::Value();
    }
    return types::Value((*values)->count(args[0]) > 0);
  };
  PPP_RETURN_IF_ERROR(catalog->functions().Register(std::move(def)));

  std::vector<expr::ExprPtr> call_args;
  call_args.push_back(std::move(needle));
  for (const ColumnKey& key : runtime->correlated) {
    call_args.push_back(expr::Col(key.first, key.second));
  }
  return expr::Call(fn_name, std::move(call_args));
}

}  // namespace

common::Status RewriteSubqueries(plan::QuerySpec* spec,
                                 catalog::Catalog* catalog) {
  for (expr::ExprPtr& conjunct : spec->conjuncts) {
    PPP_ASSIGN_OR_RETURN(conjunct, RewriteExpr(conjunct, catalog));
  }
  for (expr::ExprPtr& item : spec->select_list) {
    PPP_ASSIGN_OR_RETURN(item, RewriteExpr(item, catalog));
  }
  return common::Status::OK();
}

namespace {

common::Result<plan::QuerySpec> BindRewriteParsed(
    parser::ParsedSelect parsed, catalog::Catalog* catalog,
    std::optional<obs::Span>* span, bool traced) {
  if (traced) span->emplace("frontend", "bind");
  PPP_ASSIGN_OR_RETURN(plan::QuerySpec spec,
                       parser::BindSelect(parsed, *catalog));
  if (traced) span->emplace("frontend", "rewrite");
  PPP_RETURN_IF_ERROR(RewriteSubqueries(&spec, catalog));
  return spec;
}

}  // namespace

common::Result<plan::QuerySpec> ParseBindRewrite(const std::string& sql,
                                                 catalog::Catalog* catalog) {
  const bool traced = obs::SpanTracer::Global().enabled();
  std::optional<obs::Span> span;
  if (traced) span.emplace("frontend", "parse");
  PPP_ASSIGN_OR_RETURN(parser::ParsedSelect parsed, parser::ParseSelect(sql));
  return BindRewriteParsed(std::move(parsed), catalog, &span, traced);
}

common::Result<plan::QuerySpec> ParseBindRewrite(
    const std::string& sql, const std::vector<types::Value>& params,
    catalog::Catalog* catalog) {
  const bool traced = obs::SpanTracer::Global().enabled();
  std::optional<obs::Span> span;
  if (traced) span.emplace("frontend", "parse");
  PPP_ASSIGN_OR_RETURN(parser::ParsedSelect parsed,
                       parser::ParseSelect(sql, params));
  return BindRewriteParsed(std::move(parsed), catalog, &span, traced);
}

}  // namespace ppp::subquery
