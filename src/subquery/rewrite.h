#ifndef PPP_SUBQUERY_REWRITE_H_
#define PPP_SUBQUERY_REWRITE_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "plan/query_spec.h"
#include "types/value.h"

namespace ppp::subquery {

/// Rewrites every `x IN (SELECT ...)` predicate in `spec` into a call to a
/// synthesized expensive boolean function registered on `catalog` — the
/// paper's treatment of (correlated) SQL subqueries as expensive
/// selections (§1, §5.1).
///
/// The synthesized function:
///  * takes the needle value plus one argument per correlated outer
///    column, so the §5.1 predicate cache is keyed on exactly the outer
///    bindings — the paper's `(student.mother, student.dept)` example;
///  * declares a per-call cost equal to the optimizer's estimate for the
///    subquery (the placement algorithms then weigh it like any expensive
///    predicate);
///  * executes the subquery against the live database on invocation,
///    memoizing the produced value set per correlated binding. Its real
///    I/O is counted by the buffer pool, so charge_invocations is false
///    (no double billing).
common::Status RewriteSubqueries(plan::QuerySpec* spec,
                                 catalog::Catalog* catalog);

/// Convenience: parse + bind + rewrite subqueries.
common::Result<plan::QuerySpec> ParseBindRewrite(const std::string& sql,
                                                 catalog::Catalog* catalog);

/// ParseBindRewrite over a parameterized statement: `$n` placeholders in
/// `sql` become slot-carrying constants bound to params[n - 1] (see
/// parser::ParseSelect's parameterized overload).
common::Result<plan::QuerySpec> ParseBindRewrite(
    const std::string& sql, const std::vector<types::Value>& params,
    catalog::Catalog* catalog);

}  // namespace ppp::subquery

#endif  // PPP_SUBQUERY_REWRITE_H_
