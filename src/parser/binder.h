#ifndef PPP_PARSER_BINDER_H_
#define PPP_PARSER_BINDER_H_

#include "catalog/catalog.h"
#include "common/status.h"
#include "parser/parser.h"
#include "plan/query_spec.h"

namespace ppp::parser {

/// Resolves a ParsedSelect against the catalog:
///  * every FROM table must exist and aliases must be unique;
///  * unqualified column references are qualified by searching the FROM
///    tables (ambiguity is an error);
///  * function calls must be registered;
///  * the WHERE clause is split into conjuncts.
common::Result<plan::QuerySpec> BindSelect(const ParsedSelect& parsed,
                                           const catalog::Catalog& catalog);

/// Convenience: parse + bind.
common::Result<plan::QuerySpec> ParseAndBind(const std::string& sql,
                                             const catalog::Catalog& catalog);

}  // namespace ppp::parser

#endif  // PPP_PARSER_BINDER_H_
