#ifndef PPP_PARSER_PARSER_H_
#define PPP_PARSER_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"
#include "plan/query_spec.h"

namespace ppp::parser {

/// A parsed but unbound SELECT statement: column references may lack table
/// qualifiers and nothing has been checked against the catalog.
struct ParsedSelect {
  bool select_star = false;
  bool distinct = false;
  std::vector<expr::ExprPtr> select_list;
  std::vector<std::string> select_names;
  std::vector<plan::TableRef> tables;
  expr::ExprPtr where;     // May be null.
  std::vector<expr::ExprPtr> group_by;  // Column refs; may be empty.
  expr::ExprPtr having;    // May be null; may contain aggregates.
  expr::ExprPtr order_by;  // Single column ref, ascending; may be null.
};

/// Parses the SQL subset the paper's queries use:
///
///   SELECT * | expr [AS name], ...
///   FROM table [alias], ...
///   [WHERE <boolean expression>]
///
/// Expressions support AND/OR/NOT, comparisons (= <> < <= > >=),
/// arithmetic (+ - * /), integer/float/string literals, qualified and
/// unqualified column references, and function calls.
common::Result<ParsedSelect> ParseSelect(const std::string& sql);

/// ParseSelect over a parameterized statement: every `$n` placeholder
/// becomes a slot-carrying constant (expr::ParamConst) bound to
/// params[n - 1]. Rejects `$n` with n outside `params`. The plain
/// ParseSelect rejects `$n` entirely, so placeholders cannot leak into
/// unprepared statements.
common::Result<ParsedSelect> ParseSelect(
    const std::string& sql, const std::vector<types::Value>& params);

/// What the statement asks for: run the query, show its plan, run it and
/// show the plan annotated with actuals, or collect table statistics.
enum class StatementKind {
  kSelect,
  kExplain,         // EXPLAIN SELECT ...
  kExplainAnalyze,  // EXPLAIN ANALYZE SELECT ...
  kAnalyze,         // ANALYZE [table [, table]...]
  kPrepare,         // PREPARE name AS SELECT ... $n ...
  kExecute,         // EXECUTE name (literal, ...)
};

struct ParsedStatement {
  StatementKind kind = StatementKind::kSelect;
  ParsedSelect select;
  /// For kAnalyze: the tables to collect statistics for; empty means every
  /// table in the catalog.
  std::vector<std::string> analyze_tables;
  /// For kPrepare: the statement name and its raw SELECT body (everything
  /// after AS, unparsed — the serving layer normalizes and plans it).
  std::string prepare_name;
  std::string prepare_body;
  /// For kExecute: the statement name and the literal argument values in
  /// slot order.
  std::string execute_name;
  std::vector<types::Value> execute_params;
};

/// Strips a leading `EXPLAIN [ANALYZE]` prefix (case-insensitive) from
/// `sql`, storing the remaining statement in `*rest` and returning the
/// statement kind. Purely lexical, so callers that bind and rewrite SQL
/// themselves (the shell) can reuse their pipeline on `*rest`.
StatementKind StripExplain(const std::string& sql, std::string* rest);

/// ParseSelect plus the EXPLAIN / EXPLAIN ANALYZE prefix.
common::Result<ParsedStatement> ParseStatement(const std::string& sql);

}  // namespace ppp::parser

#endif  // PPP_PARSER_PARSER_H_
