#include "parser/binder.h"

#include <map>

#include "common/string_util.h"
#include <set>
#include <vector>

namespace ppp::parser {

namespace {

using Scope = std::map<std::string, const catalog::Table*>;

/// Aggregate functions are resolved by the planner, not the UDF registry.
bool IsAggregateName(const std::string& name) {
  const std::string lower = common::ToLower(name);
  static const char* kAggregates[] = {"count", "sum", "avg", "min", "max"};
  for (const char* agg : kAggregates) {
    if (lower == agg) return true;
  }
  return false;
}

/// True if the tree contains an aggregate call.
bool ContainsAggregate(const expr::ExprPtr& e) {
  if (e == nullptr) return false;
  if (e->kind == expr::ExprKind::kFunctionCall &&
      IsAggregateName(e->function_name)) {
    return true;
  }
  for (const expr::ExprPtr& child : e->children) {
    if (ContainsAggregate(child)) return true;
  }
  return false;
}

/// Rewrites an expression, qualifying bare column references and checking
/// qualified ones and function calls against the catalog. `scopes` is
/// ordered innermost-first: a correlated subquery resolves names against
/// its own FROM list before falling back to the enclosing query's.
common::Result<expr::ExprPtr> Qualify(const expr::ExprPtr& e,
                                      const std::vector<const Scope*>& scopes,
                                      const catalog::Catalog& catalog) {
  if (e->kind == expr::ExprKind::kColumnRef) {
    if (!e->table.empty()) {
      for (const Scope* scope : scopes) {
        auto it = scope->find(e->table);
        if (it == scope->end()) continue;
        if (!it->second->FindColumn(e->column).has_value()) {
          return common::Status::NotFound("no column " + e->column +
                                          " in table " + it->second->name());
        }
        return e;
      }
      return common::Status::NotFound("unknown table alias " + e->table);
    }
    for (const Scope* scope : scopes) {
      std::string found_alias;
      for (const auto& [alias, table] : *scope) {
        if (table->FindColumn(e->column).has_value()) {
          if (!found_alias.empty()) {
            return common::Status::InvalidArgument("ambiguous column " +
                                                   e->column);
          }
          found_alias = alias;
        }
      }
      if (!found_alias.empty()) return expr::Col(found_alias, e->column);
    }
    return common::Status::NotFound("no table has column " + e->column);
  }

  if (e->kind == expr::ExprKind::kFunctionCall &&
      !IsAggregateName(e->function_name) &&
      !catalog.functions().Contains(e->function_name)) {
    return common::Status::NotFound("unknown function " + e->function_name);
  }

  if (e->kind == expr::ExprKind::kInSubquery) {
    // Bind the needle in the enclosing scopes, the subquery body with the
    // subquery's own scope innermost.
    if (e->subquery == nullptr || e->subquery->output == nullptr) {
      return common::Status::InvalidArgument("malformed IN subquery");
    }
    Scope inner;
    auto bound_spec = std::make_shared<expr::SubquerySpec>();
    for (const auto& [alias, table_name] : e->subquery->tables) {
      PPP_ASSIGN_OR_RETURN(catalog::Table * table,
                           catalog.GetTable(table_name));
      if (!inner.emplace(alias, table).second) {
        return common::Status::InvalidArgument(
            "duplicate alias in subquery: " + alias);
      }
      bound_spec->tables.emplace_back(alias, table_name);
    }
    std::vector<const Scope*> sub_scopes;
    sub_scopes.push_back(&inner);
    sub_scopes.insert(sub_scopes.end(), scopes.begin(), scopes.end());

    PPP_ASSIGN_OR_RETURN(expr::ExprPtr needle,
                         Qualify(e->children[0], scopes, catalog));
    PPP_ASSIGN_OR_RETURN(bound_spec->output,
                         Qualify(e->subquery->output, sub_scopes, catalog));
    for (const expr::ExprPtr& conjunct : e->subquery->conjuncts) {
      PPP_ASSIGN_OR_RETURN(expr::ExprPtr bound,
                           Qualify(conjunct, sub_scopes, catalog));
      bound_spec->conjuncts.push_back(std::move(bound));
    }
    return expr::InSubquery(std::move(needle), std::move(bound_spec));
  }

  if (e->children.empty()) return e;

  auto copy = std::make_shared<expr::Expr>(*e);
  for (expr::ExprPtr& child : copy->children) {
    PPP_ASSIGN_OR_RETURN(child, Qualify(child, scopes, catalog));
  }
  return expr::ExprPtr(std::move(copy));
}

}  // namespace

common::Result<plan::QuerySpec> BindSelect(const ParsedSelect& parsed,
                                           const catalog::Catalog& catalog) {
  if (parsed.tables.empty()) {
    return common::Status::InvalidArgument("FROM clause is empty");
  }
  Scope scope;
  plan::QuerySpec spec;
  for (const plan::TableRef& ref : parsed.tables) {
    PPP_ASSIGN_OR_RETURN(catalog::Table * table,
                         catalog.GetTable(ref.table_name));
    if (!scope.emplace(ref.alias, table).second) {
      return common::Status::InvalidArgument("duplicate alias " + ref.alias);
    }
    spec.tables.push_back(ref);
  }
  const std::vector<const Scope*> scopes = {&scope};

  if (!parsed.select_star) {
    for (size_t i = 0; i < parsed.select_list.size(); ++i) {
      PPP_ASSIGN_OR_RETURN(expr::ExprPtr bound,
                           Qualify(parsed.select_list[i], scopes, catalog));
      spec.select_list.push_back(std::move(bound));
      spec.select_names.push_back(parsed.select_names[i]);
    }
  }

  if (parsed.where != nullptr) {
    PPP_ASSIGN_OR_RETURN(expr::ExprPtr where,
                         Qualify(parsed.where, scopes, catalog));
    spec.conjuncts = expr::SplitConjuncts(where);
    for (const expr::ExprPtr& conjunct : spec.conjuncts) {
      if (ContainsAggregate(conjunct)) {
        return common::Status::InvalidArgument(
            "aggregate functions are not allowed in WHERE");
      }
    }
  }
  spec.distinct = parsed.distinct;
  for (const expr::ExprPtr& group : parsed.group_by) {
    PPP_ASSIGN_OR_RETURN(expr::ExprPtr bound,
                         Qualify(group, scopes, catalog));
    spec.group_by.push_back(bound->table + "." + bound->column);
  }
  if (parsed.having != nullptr) {
    PPP_ASSIGN_OR_RETURN(spec.having, Qualify(parsed.having, scopes, catalog));
  }
  if (parsed.order_by != nullptr) {
    PPP_ASSIGN_OR_RETURN(expr::ExprPtr order,
                         Qualify(parsed.order_by, scopes, catalog));
    spec.order_by = order->table + "." + order->column;
  }
  return spec;
}

common::Result<plan::QuerySpec> ParseAndBind(const std::string& sql,
                                             const catalog::Catalog& catalog) {
  PPP_ASSIGN_OR_RETURN(ParsedSelect parsed, ParseSelect(sql));
  return BindSelect(parsed, catalog);
}

}  // namespace ppp::parser
