#include "parser/normalize.h"

#include <cctype>

#include "common/string_util.h"

namespace ppp::parser {

namespace {

/// Keywords uppercased in the canonical text. Identifiers (table, column,
/// function names) keep their spelling: the engine treats them
/// case-sensitively, so folding them would merge distinct queries.
bool IsKeyword(const std::string& upper) {
  static const char* kKeywords[] = {
      "SELECT", "DISTINCT", "FROM",  "WHERE", "AND",   "OR",
      "NOT",    "AS",       "GROUP", "BY",    "HAVING", "ORDER",
      "EXPLAIN", "ANALYZE", "ASC",   "DESC",  "NULL",  "TRUE",
      "FALSE",  "IN",       "EXISTS", "LIMIT",
  };
  for (const char* k : kKeywords) {
    if (upper == k) return true;
  }
  return false;
}

std::string ToUpper(const std::string& text) {
  std::string out = text;
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

void AppendToken(std::string* out, const std::string& token) {
  if (!out->empty()) out->push_back(' ');
  out->append(token);
}

}  // namespace

common::Result<NormalizedQuery> NormalizeSql(const std::string& sql) {
  NormalizedQuery out;
  size_t pos = 0;
  // Mirrors the parser's lexer rules (identifier / number / string /
  // operator) so anything that parses also normalizes.
  while (true) {
    while (pos < sql.size() &&
           std::isspace(static_cast<unsigned char>(sql[pos]))) {
      ++pos;
    }
    if (pos >= sql.size()) break;
    const char c = sql[pos];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const size_t start = pos;
      while (pos < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[pos])) ||
              sql[pos] == '_')) {
        ++pos;
      }
      std::string word = sql.substr(start, pos - start);
      const std::string upper = ToUpper(word);
      if (IsKeyword(upper)) word = upper;
      AppendToken(&out.text, word);
      AppendToken(&out.family_text, word);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const size_t start = pos;
      while (pos < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[pos])) ||
              sql[pos] == '.')) {
        ++pos;
      }
      const std::string literal = sql.substr(start, pos - start);
      AppendToken(&out.text, literal);
      out.params.push_back(literal);
      out.param_kinds.push_back(literal.find('.') == std::string::npos
                                    ? ParamKind::kInt
                                    : ParamKind::kFloat);
      AppendToken(&out.family_text,
                  "$" + std::to_string(out.params.size()));
      continue;
    }
    if (c == '$') {
      // Explicit placeholder: becomes a hole slot in both texts so that a
      // PREPARE body lands on the same family as the literal-carrying
      // statements it generalizes.
      const size_t start = ++pos;
      while (pos < sql.size() &&
             std::isdigit(static_cast<unsigned char>(sql[pos]))) {
        ++pos;
      }
      if (pos == start) {
        return common::Status::ParseError(
            "'$' must be followed by a parameter number in normalization");
      }
      const std::string digits = sql.substr(start, pos - start);
      const size_t expected = out.params.size() + 1;
      if (digits != std::to_string(expected)) {
        return common::Status::ParseError(common::StringPrintf(
            "placeholder $%s out of order: expected $%zu (slots must be "
            "numbered in order of appearance)",
            digits.c_str(), expected));
      }
      out.params.emplace_back();
      out.param_kinds.push_back(ParamKind::kHole);
      out.has_placeholders = true;
      const std::string token = "$" + digits;
      AppendToken(&out.text, token);
      AppendToken(&out.family_text, token);
      continue;
    }
    if (c == '\'') {
      const size_t start = ++pos;
      while (pos < sql.size() && sql[pos] != '\'') ++pos;
      if (pos >= sql.size()) {
        return common::Status::ParseError(
            "unterminated string literal in normalization");
      }
      const std::string literal = sql.substr(start, pos - start);
      ++pos;
      AppendToken(&out.text, "'" + literal + "'");
      out.params.push_back(literal);
      out.param_kinds.push_back(ParamKind::kString);
      AppendToken(&out.family_text,
                  "$" + std::to_string(out.params.size()));
      continue;
    }
    static const char* kTwoChar[] = {"<=", ">=", "<>", "!="};
    bool matched = false;
    for (const char* op : kTwoChar) {
      if (sql.compare(pos, 2, op) == 0) {
        AppendToken(&out.text, op);
        AppendToken(&out.family_text, op);
        pos += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kOneChar = "(),.*=<>+-/;";
    if (kOneChar.find(c) != std::string::npos) {
      // Statement-terminating semicolons are formatting, not identity.
      if (c == ';') {
        ++pos;
        continue;
      }
      const std::string op(1, c);
      AppendToken(&out.text, op);
      AppendToken(&out.family_text, op);
      ++pos;
      continue;
    }
    return common::Status::ParseError(
        common::StringPrintf("unexpected character '%c' at offset %zu in "
                             "normalization",
                             c, pos));
  }
  out.text_hash = common::Fnv1aHash(out.text);
  out.family_hash = common::Fnv1aHash(out.family_text);
  return out;
}

}  // namespace ppp::parser
