#include "parser/parser.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace ppp::parser {

namespace {

enum class TokenKind {
  kIdent,
  kInteger,
  kFloat,
  kString,
  kParam,  // $n placeholder; text is the slot number's digits.
  kSymbol,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // Uppercased for idents? No: raw; keywords matched
                     // case-insensitively.
  size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  common::Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      if (pos_ >= input_.size()) {
        out.push_back({TokenKind::kEnd, "", pos_});
        return out;
      }
      const char c = input_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        const size_t start = pos_;
        while (pos_ < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
                input_[pos_] == '_')) {
          ++pos_;
        }
        out.push_back(
            {TokenKind::kIdent, input_.substr(start, pos_ - start), start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        const size_t start = pos_;
        bool is_float = false;
        while (pos_ < input_.size() &&
               (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
                input_[pos_] == '.')) {
          if (input_[pos_] == '.') {
            // "3.x" where x is not a digit would be a qualified name on a
            // number — reject below via float parse.
            is_float = true;
          }
          ++pos_;
        }
        out.push_back({is_float ? TokenKind::kFloat : TokenKind::kInteger,
                       input_.substr(start, pos_ - start), start});
        continue;
      }
      if (c == '\'') {
        const size_t start = ++pos_;
        while (pos_ < input_.size() && input_[pos_] != '\'') ++pos_;
        if (pos_ >= input_.size()) {
          return common::Status::ParseError("unterminated string literal");
        }
        out.push_back(
            {TokenKind::kString, input_.substr(start, pos_ - start), start});
        ++pos_;
        continue;
      }
      if (c == '$') {
        const size_t at = pos_;
        const size_t start = ++pos_;
        while (pos_ < input_.size() &&
               std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
          ++pos_;
        }
        if (pos_ == start) {
          return common::Status::ParseError(common::StringPrintf(
              "'$' must be followed by a parameter number at offset %zu",
              at));
        }
        out.push_back(
            {TokenKind::kParam, input_.substr(start, pos_ - start), at});
        continue;
      }
      // Multi-char operators first.
      static const char* kTwoChar[] = {"<=", ">=", "<>", "!="};
      bool matched = false;
      for (const char* op : kTwoChar) {
        if (input_.compare(pos_, 2, op) == 0) {
          out.push_back({TokenKind::kSymbol, op, pos_});
          pos_ += 2;
          matched = true;
          break;
        }
      }
      if (matched) continue;
      static const std::string kOneChar = "(),.*=<>+-/;";
      if (kOneChar.find(c) != std::string::npos) {
        out.push_back({TokenKind::kSymbol, std::string(1, c), pos_});
        ++pos_;
        continue;
      }
      return common::Status::ParseError(
          common::StringPrintf("unexpected character '%c' at offset %zu", c,
                               pos_));
    }
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& input_;
  size_t pos_ = 0;
};

class Parser {
 public:
  /// `params`, when non-null, supplies the value bound to each `$n`
  /// placeholder (slot n reads params[n - 1]); null rejects placeholders.
  explicit Parser(std::vector<Token> tokens,
                  const std::vector<types::Value>* params = nullptr)
      : tokens_(std::move(tokens)), params_(params) {}

  common::Result<ParsedSelect> Select() {
    PPP_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    ParsedSelect out;
    if (PeekKeyword("DISTINCT")) {
      Advance();
      out.distinct = true;
    }
    if (PeekSymbol("*")) {
      Advance();
      out.select_star = true;
    } else {
      while (true) {
        PPP_ASSIGN_OR_RETURN(expr::ExprPtr e, Expression());
        std::string name = e->ToString();
        if (PeekKeyword("AS")) {
          Advance();
          PPP_ASSIGN_OR_RETURN(name, Identifier());
        } else if (Peek().kind == TokenKind::kIdent &&
                   !IsKeyword(Peek().text)) {
          PPP_ASSIGN_OR_RETURN(name, Identifier());
        }
        out.select_list.push_back(std::move(e));
        out.select_names.push_back(std::move(name));
        if (!PeekSymbol(",")) break;
        Advance();
      }
    }

    PPP_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    while (true) {
      PPP_ASSIGN_OR_RETURN(std::string table, Identifier());
      std::string alias = table;
      if (PeekKeyword("AS")) {
        Advance();
        PPP_ASSIGN_OR_RETURN(alias, Identifier());
      } else if (Peek().kind == TokenKind::kIdent && !IsKeyword(Peek().text)) {
        PPP_ASSIGN_OR_RETURN(alias, Identifier());
      }
      out.tables.push_back({alias, table});
      if (!PeekSymbol(",")) break;
      Advance();
    }

    if (PeekKeyword("WHERE")) {
      Advance();
      PPP_ASSIGN_OR_RETURN(out.where, Expression());
    }
    if (PeekKeyword("GROUP")) {
      Advance();
      PPP_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        PPP_ASSIGN_OR_RETURN(expr::ExprPtr col, Primary());
        if (col->kind != expr::ExprKind::kColumnRef) {
          return common::Status::ParseError(
              "GROUP BY supports column references only");
        }
        out.group_by.push_back(std::move(col));
        if (!PeekSymbol(",")) break;
        Advance();
      }
    }
    if (PeekKeyword("HAVING")) {
      Advance();
      PPP_ASSIGN_OR_RETURN(out.having, Expression());
    }
    if (PeekKeyword("ORDER")) {
      Advance();
      PPP_RETURN_IF_ERROR(ExpectKeyword("BY"));
      PPP_ASSIGN_OR_RETURN(out.order_by, Primary());
      if (out.order_by->kind != expr::ExprKind::kColumnRef) {
        return common::Status::ParseError(
            "ORDER BY supports a single column reference");
      }
      if (PeekKeyword("ASC")) Advance();
    }
    if (PeekSymbol(";")) Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return common::Status::ParseError("trailing input after statement: '" +
                                        Peek().text + "'");
    }
    return out;
  }

 private:
  static bool IsKeyword(const std::string& word) {
    const std::string upper = Upper(word);
    static const char* kKeywords[] = {
        "SELECT", "FROM", "WHERE", "AND",   "OR",       "NOT",
        "AS",     "IN",   "ORDER", "BY",    "ASC",      "GROUP",
        "HAVING", "DISTINCT", "EXPLAIN", "ANALYZE"};
    for (const char* k : kKeywords) {
      if (upper == k) return true;
    }
    return false;
  }

  static std::string Upper(const std::string& s) {
    std::string out = s;
    for (char& c : out) c = static_cast<char>(std::toupper(c));
    return out;
  }

  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool PeekKeyword(const std::string& kw) const {
    return Peek().kind == TokenKind::kIdent && Upper(Peek().text) == kw;
  }
  bool PeekSymbol(const std::string& sym) const {
    return Peek().kind == TokenKind::kSymbol && Peek().text == sym;
  }
  common::Status ExpectKeyword(const std::string& kw) {
    if (!PeekKeyword(kw)) {
      return common::Status::ParseError("expected " + kw + ", found '" +
                                        Peek().text + "'");
    }
    Advance();
    return common::Status::OK();
  }
  common::Status ExpectSymbol(const std::string& sym) {
    if (!PeekSymbol(sym)) {
      return common::Status::ParseError("expected '" + sym + "', found '" +
                                        Peek().text + "'");
    }
    Advance();
    return common::Status::OK();
  }
  common::Result<std::string> Identifier() {
    if (Peek().kind != TokenKind::kIdent) {
      return common::Status::ParseError("expected identifier, found '" +
                                        Peek().text + "'");
    }
    std::string text = Peek().text;
    Advance();
    return text;
  }

  common::Result<expr::ExprPtr> Expression() { return OrExpr(); }

  common::Result<expr::ExprPtr> OrExpr() {
    PPP_ASSIGN_OR_RETURN(expr::ExprPtr left, AndExpr());
    while (PeekKeyword("OR")) {
      Advance();
      PPP_ASSIGN_OR_RETURN(expr::ExprPtr right, AndExpr());
      left = expr::Or(std::move(left), std::move(right));
    }
    return left;
  }

  common::Result<expr::ExprPtr> AndExpr() {
    PPP_ASSIGN_OR_RETURN(expr::ExprPtr left, NotExpr());
    while (PeekKeyword("AND")) {
      Advance();
      PPP_ASSIGN_OR_RETURN(expr::ExprPtr right, NotExpr());
      left = expr::And(std::move(left), std::move(right));
    }
    return left;
  }

  common::Result<expr::ExprPtr> NotExpr() {
    if (PeekKeyword("NOT")) {
      Advance();
      PPP_ASSIGN_OR_RETURN(expr::ExprPtr child, NotExpr());
      return expr::Not(std::move(child));
    }
    return CmpExpr();
  }

  /// `SELECT expr FROM t [a], ... [WHERE ...]` — the body of an IN
  /// subquery (single output column).
  common::Result<std::shared_ptr<const expr::SubquerySpec>> Subselect() {
    PPP_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    auto spec = std::make_shared<expr::SubquerySpec>();
    PPP_ASSIGN_OR_RETURN(spec->output, Expression());
    PPP_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    while (true) {
      PPP_ASSIGN_OR_RETURN(std::string table, Identifier());
      std::string alias = table;
      if (PeekKeyword("AS")) {
        Advance();
        PPP_ASSIGN_OR_RETURN(alias, Identifier());
      } else if (Peek().kind == TokenKind::kIdent && !IsKeyword(Peek().text)) {
        PPP_ASSIGN_OR_RETURN(alias, Identifier());
      }
      spec->tables.emplace_back(alias, table);
      if (!PeekSymbol(",")) break;
      Advance();
    }
    if (PeekKeyword("WHERE")) {
      Advance();
      PPP_ASSIGN_OR_RETURN(expr::ExprPtr where, Expression());
      spec->conjuncts = expr::SplitConjuncts(where);
    }
    return std::shared_ptr<const expr::SubquerySpec>(std::move(spec));
  }

  common::Result<expr::ExprPtr> CmpExpr() {
    PPP_ASSIGN_OR_RETURN(expr::ExprPtr left, AddExpr());
    if (PeekKeyword("IN")) {
      Advance();
      PPP_RETURN_IF_ERROR(ExpectSymbol("("));
      PPP_ASSIGN_OR_RETURN(auto subquery, Subselect());
      PPP_RETURN_IF_ERROR(ExpectSymbol(")"));
      return expr::InSubquery(std::move(left), std::move(subquery));
    }
    struct OpMap {
      const char* sym;
      expr::CompareOp op;
    };
    static const OpMap kOps[] = {
        {"<=", expr::CompareOp::kLe}, {">=", expr::CompareOp::kGe},
        {"<>", expr::CompareOp::kNe}, {"!=", expr::CompareOp::kNe},
        {"=", expr::CompareOp::kEq},  {"<", expr::CompareOp::kLt},
        {">", expr::CompareOp::kGt},
    };
    for (const OpMap& m : kOps) {
      if (PeekSymbol(m.sym)) {
        Advance();
        PPP_ASSIGN_OR_RETURN(expr::ExprPtr right, AddExpr());
        return expr::Cmp(m.op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  common::Result<expr::ExprPtr> AddExpr() {
    PPP_ASSIGN_OR_RETURN(expr::ExprPtr left, MulExpr());
    while (PeekSymbol("+") || PeekSymbol("-")) {
      const expr::ArithOp op =
          Peek().text == "+" ? expr::ArithOp::kAdd : expr::ArithOp::kSub;
      Advance();
      PPP_ASSIGN_OR_RETURN(expr::ExprPtr right, MulExpr());
      left = expr::Arith(op, std::move(left), std::move(right));
    }
    return left;
  }

  common::Result<expr::ExprPtr> MulExpr() {
    PPP_ASSIGN_OR_RETURN(expr::ExprPtr left, Primary());
    while (PeekSymbol("*") || PeekSymbol("/")) {
      const expr::ArithOp op =
          Peek().text == "*" ? expr::ArithOp::kMul : expr::ArithOp::kDiv;
      Advance();
      PPP_ASSIGN_OR_RETURN(expr::ExprPtr right, Primary());
      left = expr::Arith(op, std::move(left), std::move(right));
    }
    return left;
  }

  common::Result<expr::ExprPtr> Primary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInteger: {
        const int64_t v = std::stoll(t.text);
        Advance();
        return expr::Const(types::Value(v));
      }
      case TokenKind::kFloat: {
        const double v = std::stod(t.text);
        Advance();
        return expr::Const(types::Value(v));
      }
      case TokenKind::kString: {
        std::string v = t.text;
        Advance();
        return expr::Const(types::Value(std::move(v)));
      }
      case TokenKind::kParam: {
        if (params_ == nullptr) {
          return common::Status::ParseError(
              "parameter $" + t.text + " outside a prepared statement");
        }
        const long slot = std::strtol(t.text.c_str(), nullptr, 10);
        if (slot < 1 || static_cast<size_t>(slot) > params_->size()) {
          return common::Status::ParseError(common::StringPrintf(
              "parameter $%s out of range (%zu bound)", t.text.c_str(),
              params_->size()));
        }
        Advance();
        return expr::ParamConst((*params_)[static_cast<size_t>(slot) - 1],
                                static_cast<int>(slot));
      }
      case TokenKind::kSymbol:
        if (t.text == "(") {
          Advance();
          PPP_ASSIGN_OR_RETURN(expr::ExprPtr e, Expression());
          PPP_RETURN_IF_ERROR(ExpectSymbol(")"));
          return e;
        }
        if (t.text == "-") {
          Advance();
          PPP_ASSIGN_OR_RETURN(expr::ExprPtr e, Primary());
          return expr::Arith(expr::ArithOp::kSub, expr::Int(0), std::move(e));
        }
        break;
      case TokenKind::kIdent: {
        if (IsKeyword(t.text)) break;
        PPP_ASSIGN_OR_RETURN(std::string first, Identifier());
        if (PeekSymbol("(")) {
          Advance();
          std::vector<expr::ExprPtr> args;
          if (PeekSymbol("*")) {
            // COUNT(*)-style call: zero arguments.
            Advance();
            PPP_RETURN_IF_ERROR(ExpectSymbol(")"));
            return expr::Call(std::move(first), {});
          }
          if (!PeekSymbol(")")) {
            while (true) {
              PPP_ASSIGN_OR_RETURN(expr::ExprPtr arg, Expression());
              args.push_back(std::move(arg));
              if (!PeekSymbol(",")) break;
              Advance();
            }
          }
          PPP_RETURN_IF_ERROR(ExpectSymbol(")"));
          return expr::Call(std::move(first), std::move(args));
        }
        if (PeekSymbol(".")) {
          Advance();
          PPP_ASSIGN_OR_RETURN(std::string column, Identifier());
          return expr::Col(std::move(first), std::move(column));
        }
        return expr::Col("", std::move(first));  // Unqualified; bound later.
      }
      case TokenKind::kEnd:
        break;
    }
    return common::Status::ParseError("unexpected token '" + t.text +
                                      "' in expression");
  }

  std::vector<Token> tokens_;
  const std::vector<types::Value>* params_ = nullptr;
  size_t pos_ = 0;
};

}  // namespace

common::Result<ParsedSelect> ParseSelect(const std::string& sql) {
  Lexer lexer(sql);
  PPP_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Select();
}

common::Result<ParsedSelect> ParseSelect(
    const std::string& sql, const std::vector<types::Value>& params) {
  Lexer lexer(sql);
  PPP_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), &params);
  return parser.Select();
}

namespace {

/// If `sql` starts (at `*pos`, after whitespace) with `word` as a whole
/// identifier, case-insensitively, advances `*pos` past it.
bool ConsumeWord(const std::string& sql, size_t* pos, const char* word) {
  size_t i = *pos;
  while (i < sql.size() && std::isspace(static_cast<unsigned char>(sql[i]))) {
    ++i;
  }
  size_t w = 0;
  size_t j = i;
  while (word[w] != '\0' && j < sql.size() &&
         std::toupper(static_cast<unsigned char>(sql[j])) == word[w]) {
    ++w;
    ++j;
  }
  if (word[w] != '\0') return false;
  if (j < sql.size() &&
      (std::isalnum(static_cast<unsigned char>(sql[j])) || sql[j] == '_')) {
    return false;  // Longer identifier, e.g. "explainer".
  }
  *pos = j;
  return true;
}

}  // namespace

StatementKind StripExplain(const std::string& sql, std::string* rest) {
  size_t pos = 0;
  if (!ConsumeWord(sql, &pos, "EXPLAIN")) {
    *rest = sql;
    return StatementKind::kSelect;
  }
  const StatementKind kind = ConsumeWord(sql, &pos, "ANALYZE")
                                 ? StatementKind::kExplainAnalyze
                                 : StatementKind::kExplain;
  *rest = sql.substr(pos);
  return kind;
}

namespace {

void SkipSpace(const std::string& sql, size_t* pos) {
  while (*pos < sql.size() &&
         std::isspace(static_cast<unsigned char>(sql[*pos]))) {
    ++*pos;
  }
}

/// Reads an identifier ([A-Za-z_][A-Za-z0-9_]*) at *pos; empty if none.
std::string ReadIdentifier(const std::string& sql, size_t* pos) {
  SkipSpace(sql, pos);
  size_t start = *pos;
  if (start < sql.size() &&
      (std::isalpha(static_cast<unsigned char>(sql[start])) ||
       sql[start] == '_')) {
    size_t end = start + 1;
    while (end < sql.size() &&
           (std::isalnum(static_cast<unsigned char>(sql[end])) ||
            sql[end] == '_')) {
      ++end;
    }
    *pos = end;
    return sql.substr(start, end - start);
  }
  return "";
}

}  // namespace

common::Result<ParsedStatement> ParseStatement(const std::string& sql) {
  ParsedStatement out;
  size_t pos = 0;
  if (ConsumeWord(sql, &pos, "ANALYZE")) {
    // ANALYZE [table [, table]...] [;] — no table list means all tables.
    out.kind = StatementKind::kAnalyze;
    SkipSpace(sql, &pos);
    if (pos < sql.size() && sql[pos] != ';') {
      // A comma commits to another name, so a dangling comma is an error.
      while (true) {
        const std::string table = ReadIdentifier(sql, &pos);
        if (table.empty()) {
          return common::Status::InvalidArgument(
              "expected table name in ANALYZE at '" + sql.substr(pos) + "'");
        }
        out.analyze_tables.push_back(table);
        SkipSpace(sql, &pos);
        if (pos < sql.size() && sql[pos] == ',') {
          ++pos;
          continue;
        }
        break;
      }
    }
    SkipSpace(sql, &pos);
    if (pos < sql.size() && sql[pos] == ';') {
      ++pos;
      SkipSpace(sql, &pos);
    }
    if (pos != sql.size()) {
      return common::Status::InvalidArgument(
          "unexpected trailing input in ANALYZE: '" + sql.substr(pos) + "'");
    }
    return out;
  }
  if (ConsumeWord(sql, &pos, "PREPARE")) {
    // PREPARE name AS SELECT ... — the body stays raw: the serving layer
    // normalizes it (assigning literal and $n slots in one numbering) and
    // compiles the generic plan on first EXECUTE.
    out.kind = StatementKind::kPrepare;
    out.prepare_name = ReadIdentifier(sql, &pos);
    if (out.prepare_name.empty()) {
      return common::Status::ParseError(
          "expected statement name after PREPARE");
    }
    if (!ConsumeWord(sql, &pos, "AS")) {
      return common::Status::ParseError(
          "expected AS after PREPARE " + out.prepare_name);
    }
    SkipSpace(sql, &pos);
    out.prepare_body = sql.substr(pos);
    while (!out.prepare_body.empty() &&
           (out.prepare_body.back() == ';' ||
            std::isspace(static_cast<unsigned char>(out.prepare_body.back())))) {
      out.prepare_body.pop_back();
    }
    if (out.prepare_body.empty()) {
      return common::Status::ParseError(
          "empty body in PREPARE " + out.prepare_name);
    }
    return out;
  }
  if (ConsumeWord(sql, &pos, "EXECUTE")) {
    // EXECUTE name (literal, ...) [;] — arguments are constants only.
    out.kind = StatementKind::kExecute;
    out.execute_name = ReadIdentifier(sql, &pos);
    if (out.execute_name.empty()) {
      return common::Status::ParseError(
          "expected statement name after EXECUTE");
    }
    const std::string args_text = sql.substr(pos);
    Lexer lexer_rest(args_text);
    PPP_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer_rest.Tokenize());
    size_t i = 0;
    auto peek = [&]() -> const Token& {
      return tokens[std::min(i, tokens.size() - 1)];
    };
    auto is_symbol = [&](const char* sym) {
      return peek().kind == TokenKind::kSymbol && peek().text == sym;
    };
    if (!is_symbol("(")) {
      return common::Status::ParseError(
          "expected '(' after EXECUTE " + out.execute_name);
    }
    ++i;
    if (!is_symbol(")")) {
      while (true) {
        bool negate = false;
        if (is_symbol("-")) {
          negate = true;
          ++i;
        }
        const Token& t = peek();
        switch (t.kind) {
          case TokenKind::kInteger: {
            const int64_t v = static_cast<int64_t>(std::stoll(t.text));
            out.execute_params.emplace_back(negate ? -v : v);
            break;
          }
          case TokenKind::kFloat:
            out.execute_params.emplace_back(
                negate ? -std::stod(t.text) : std::stod(t.text));
            break;
          case TokenKind::kString:
            if (negate) {
              return common::Status::ParseError(
                  "cannot negate a string argument in EXECUTE");
            }
            out.execute_params.emplace_back(t.text);
            break;
          default:
            return common::Status::ParseError(
                "expected literal argument in EXECUTE, found '" + t.text +
                "'");
        }
        ++i;
        if (is_symbol(",")) {
          ++i;
          continue;
        }
        break;
      }
    }
    if (!is_symbol(")")) {
      return common::Status::ParseError(
          "expected ')' closing EXECUTE arguments, found '" + peek().text +
          "'");
    }
    ++i;
    if (is_symbol(";")) ++i;
    if (peek().kind != TokenKind::kEnd) {
      return common::Status::ParseError(
          "unexpected trailing input in EXECUTE: '" + peek().text + "'");
    }
    return out;
  }
  std::string rest;
  out.kind = StripExplain(sql, &rest);
  PPP_ASSIGN_OR_RETURN(out.select, ParseSelect(rest));
  return out;
}

}  // namespace ppp::parser
