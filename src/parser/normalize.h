#ifndef PPP_PARSER_NORMALIZE_H_
#define PPP_PARSER_NORMALIZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace ppp::parser {

/// A SQL statement in canonical form, the serving layer's cache identity.
///
/// `text` is the statement re-serialized one-token-per-space with keywords
/// uppercased and literals kept inline: two spellings of the same query
/// ("select *  from t3" / "SELECT * FROM t3") normalize identically, while
/// different constants stay distinct — required, because a compiled plan
/// embeds its literals (a plan for `u10 < 5` must not serve `u10 < 9`).
///
/// `family_text` additionally replaces every literal with a $n parameter
/// slot and `params` carries the extracted literals in slot order. Queries
/// differing only in constants share a family — the observability grouping
/// (ppp_plan_cache rows carry the family hash) and the natural key for a
/// future parameterized-plan cache.
/// Lexical class of an extracted literal (or of an explicit `$n`
/// placeholder, which carries no literal at all — a "hole" to be bound at
/// EXECUTE time).
enum class ParamKind { kInt, kFloat, kString, kHole };

struct NormalizedQuery {
  std::string text;
  std::string family_text;
  std::vector<std::string> params;
  /// One entry per `params` slot, classifying how it was spelled.
  std::vector<ParamKind> param_kinds;
  /// True when the statement contained explicit `$n` placeholders (a
  /// PREPARE body rather than a directly executable statement).
  bool has_placeholders = false;
  uint64_t text_hash = 0;    ///< Fnv1aHash(text).
  uint64_t family_hash = 0;  ///< Fnv1aHash(family_text).
};

/// Canonicalizes one SQL statement (purely lexical — no catalog access, no
/// binding). Errors only on lexer-level malformations (unterminated
/// strings, illegal characters); anything token-legal normalizes, with
/// deeper validation left to the parser proper.
///
/// Explicit `$n` placeholders interleave with inline literals in one
/// left-to-right slot numbering, and must already be numbered in order of
/// appearance ($k is legal only as slot k) — mixed or out-of-order
/// numbering is a parse error rather than a silent renumbering.
common::Result<NormalizedQuery> NormalizeSql(const std::string& sql);

}  // namespace ppp::parser

#endif  // PPP_PARSER_NORMALIZE_H_
