#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "storage/page.h"

namespace ppp::cost {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Qualified join column of `join`'s child on `side`, or "" when the
/// primary predicate is not a simple equi-join (or absent).
std::string JoinColumnOnSide(const plan::PlanNode& join, int side) {
  const expr::PredicateInfo& pred = join.predicate;
  if (!pred.is_simple_equijoin) return "";
  const std::vector<std::string> aliases =
      join.children[static_cast<size_t>(side)]->CollectAliases();
  for (const std::string& alias : aliases) {
    if (alias == pred.left_table) {
      return pred.left_table + "." + pred.left_column;
    }
    if (alias == pred.right_table) {
      return pred.right_table + "." + pred.right_column;
    }
  }
  return "";
}

/// Distinct count of the join column on `side` of the equi-join, 0 if
/// unknown. `*base_alias` receives the owning range variable.
int64_t JoinDistinctOnSide(const plan::PlanNode& join, int side,
                           std::string* base_alias) {
  const expr::PredicateInfo& pred = join.predicate;
  if (!pred.is_simple_equijoin) return 0;
  const std::vector<std::string> aliases =
      join.children[static_cast<size_t>(side)]->CollectAliases();
  for (const std::string& alias : aliases) {
    if (alias == pred.left_table) {
      if (base_alias != nullptr) *base_alias = alias;
      return pred.left_distinct;
    }
    if (alias == pred.right_table) {
      if (base_alias != nullptr) *base_alias = alias;
      return pred.right_distinct;
    }
  }
  return 0;
}

}  // namespace

double CostModel::PagesFor(double rows, double width) {
  if (rows <= 0) return 0.0;
  return std::max(1.0, std::ceil(rows * width / storage::kPageSize));
}

double CostModel::DistinctInStream(double distinct, double rows,
                                   double base_rows) {
  if (distinct <= 0) return rows;  // No statistics: assume all-new values.
  if (rows <= 0) return 0.0;
  if (base_rows <= 0 || rows >= base_rows) return distinct;
  const double missing_frac = 1.0 - rows / base_rows;
  const double rows_per_value = base_rows / distinct;
  return distinct * (1.0 - std::pow(missing_frac, rows_per_value));
}

double CostModel::SortCost(double pages) const {
  if (pages <= params_.buffer_pages) return 0.0;  // In-memory sort.
  const double runs = std::ceil(pages / params_.buffer_pages);
  const double passes =
      std::max(1.0, std::ceil(std::log(runs) / std::log(params_.sort_fanout)));
  // Each pass writes and re-reads every page.
  return 2.0 * pages * passes * params_.seq_page_io;
}

common::Result<const catalog::Table*> CostModel::ResolveTable(
    const std::string& alias) const {
  auto it = binding_.find(alias);
  if (it == binding_.end() || it->second == nullptr) {
    return common::Status::NotFound("alias " + alias +
                                    " is not bound to a table");
  }
  return it->second;
}

double CostModel::RescanCost(const plan::PlanNode& inner) const {
  const double io = inner.est_cost - inner.est_udf_cost;
  // Re-running the inner pipeline repeats expensive predicate evaluations
  // unless the predicate cache absorbs them (paper §5.1 / footnote 4).
  const double udf = params_.predicate_caching ? 0.0 : inner.est_udf_cost;
  return io + udf;
}

double CostModel::JoinExtraCost(const plan::PlanNode& join, double outer_rows,
                                double inner_rows) const {
  const plan::PlanNode& outer = *join.children[0];
  const plan::PlanNode& inner = *join.children[1];
  const expr::PredicateInfo& pred = join.predicate;
  const double s = pred.expr != nullptr ? pred.selectivity : 1.0;

  double io = 0.0;
  double udf = 0.0;

  switch (join.join_method) {
    case plan::JoinMethod::kNestLoop: {
      // Pipelined nested loops: the inner subtree is re-executed once per
      // outer tuple beyond the first. Its page count does not shrink when
      // expensive selections are pulled up, which is exactly why nested
      // loops fit the linear model (§3.2).
      const double rescans = std::max(0.0, outer_rows - 1.0);
      io += rescans * (inner.est_cost - inner.est_udf_cost);
      if (!params_.predicate_caching) {
        udf += rescans * inner.est_udf_cost;
      }
      if (pred.expr != nullptr && pred.is_expensive()) {
        // Expensive primary join predicate: c_p {R}{S} (§3.2).
        double evals = outer_rows * inner_rows;
        if (params_.predicate_caching && pred.input_distinct_values > 0) {
          evals = std::min(
              evals,
              DistinctInStream(
                  static_cast<double>(pred.input_distinct_values), evals,
                  pred.input_base_rows));
        }
        udf += evals * pred.cost_per_tuple;
      }
      break;
    }
    case plan::JoinMethod::kIndexNestLoop: {
      // Probe per outer tuple, then one random fetch per matching tuple.
      io += outer_rows * params_.index_probe_ios * params_.rand_page_io;
      io += outer_rows * inner_rows * s * params_.rand_page_io;
      break;
    }
    case plan::JoinMethod::kMerge: {
      const double outer_pages = PagesFor(outer_rows, outer.est_width);
      const double inner_pages = PagesFor(inner_rows, inner.est_width);
      const std::string outer_col = JoinColumnOnSide(join, 0);
      const std::string inner_col = JoinColumnOnSide(join, 1);
      if (!outer.est_order.has_value() || outer.est_order != outer_col) {
        io += SortCost(outer_pages);
      }
      if (!inner.est_order.has_value() || inner.est_order != inner_col) {
        io += SortCost(inner_pages);
      }
      break;
    }
    case plan::JoinMethod::kHash: {
      const double outer_pages = PagesFor(outer_rows, outer.est_width);
      const double inner_pages = PagesFor(inner_rows, inner.est_width);
      if (std::min(outer_pages, inner_pages) > params_.buffer_pages) {
        // Grace hash join: partition both sides to disk and re-read.
        io += 2.0 * (outer_pages + inner_pages) * params_.seq_page_io;
      }
      break;
    }
  }
  return io + udf;
}

bool CostModel::TransferApplies(const plan::PlanNode& join) const {
  return params_.predicate_transfer && join.kind == plan::PlanKind::kJoin &&
         join.join_method == plan::JoinMethod::kHash &&
         join.predicate.is_simple_equijoin && !join.predicate.is_expensive();
}

double CostModel::StreamSelectivity(const plan::PlanNode& join,
                                    int side) const {
  const plan::PlanNode& other = *join.children[static_cast<size_t>(1 - side)];
  const expr::PredicateInfo& pred = join.predicate;
  const double s = pred.expr != nullptr ? pred.selectivity : 1.0;
  const bool current = params_.current_cardinality_estimate;
  const double other_rows = current ? other.est_rows : other.est_rows_noexp;

  // Per-input selectivity (§3.2): sel over R = s * {S}. Under predicate
  // caching (§5.1) it is computed on values and bounded by 1. The "global"
  // model of [HS93a] uses the raw cross-product selectivity for both sides.
  if (!params_.per_input_selectivity) {
    return s;
  }
  if (params_.predicate_caching && pred.is_simple_equijoin) {
    std::string other_alias;
    const int64_t other_distinct =
        JoinDistinctOnSide(join, 1 - side, &other_alias);
    double values = other_rows;
    if (other_distinct > 0) {
      // Distinct values of the join column actually present in the other
      // input stream, which selections below may have reduced.
      double base_rows = 0.0;
      auto table = ResolveTable(other_alias);
      if (table.ok()) {
        base_rows = static_cast<double>((*table)->NumTuples());
      }
      values = std::min(values,
                        DistinctInStream(static_cast<double>(other_distinct),
                                         other_rows, base_rows));
    }
    return std::min(1.0, s * values);
  }
  return s * other_rows;
}

JoinStreamInfo CostModel::JoinStream(const plan::PlanNode& join,
                                     int side) const {
  PPP_CHECK(join.kind == plan::PlanKind::kJoin && join.children.size() == 2);
  const plan::PlanNode& self = *join.children[static_cast<size_t>(side)];

  const bool current = params_.current_cardinality_estimate;
  const double self_rows = current ? self.est_rows : self.est_rows_noexp;

  JoinStreamInfo info;
  info.selectivity = StreamSelectivity(join, side);

  // Under predicate transfer the probe (outer) input reaches the join
  // already pre-filtered by the build side's Bloom filter: the join's
  // probe-stream selectivity was spent at the scan, so the join itself is
  // selectivity-neutral for that stream. Its rank becomes >= 0, and no
  // expensive predicate (rank < 0) can profitably hoist above it —
  // post-transfer cardinalities keep UDFs below the transferring join.
  if (side == 0 && TransferApplies(join)) {
    info.selectivity = 1.0;
  }

  // Differential cost per tuple of this input, computed numerically from
  // the join's own cost function. The linear model guarantees this is
  // (nearly) constant in the perturbation size.
  const double outer_rows = current ? join.children[0]->est_rows
                                    : join.children[0]->est_rows_noexp;
  const double inner_rows = current ? join.children[1]->est_rows
                                    : join.children[1]->est_rows_noexp;
  const double base = JoinExtraCost(join, outer_rows, inner_rows);
  const double delta = std::max(1.0, self_rows * 0.01);
  double perturbed;
  if (side == 0) {
    perturbed = JoinExtraCost(join, outer_rows + delta, inner_rows);
  } else {
    perturbed = JoinExtraCost(join, outer_rows, inner_rows + delta);
  }
  info.cost_per_tuple = std::max(0.0, (perturbed - base) / delta);

  if (info.cost_per_tuple < 1e-12) {
    // A free operator has rank -inf if it filters (apply as early as
    // possible) and +inf if it expands (apply as late as possible).
    info.rank = info.selectivity < 1.0 ? -kInf : kInf;
  } else {
    info.rank = (info.selectivity - 1.0) / info.cost_per_tuple;
  }
  return info;
}

common::Status CostModel::Annotate(plan::PlanNode* node) const {
  for (std::unique_ptr<plan::PlanNode>& child : node->children) {
    PPP_RETURN_IF_ERROR(Annotate(child.get()));
  }

  switch (node->kind) {
    case plan::PlanKind::kSeqScan: {
      PPP_ASSIGN_OR_RETURN(const catalog::Table* table,
                           ResolveTable(node->alias));
      const double rows = static_cast<double>(table->NumTuples());
      const double pages = static_cast<double>(table->NumPages());
      node->est_rows = rows;
      node->est_rows_noexp = rows;
      node->est_width =
          rows > 0 ? pages * storage::kPageSize / rows : 100.0;
      node->est_cost = pages * params_.seq_page_io;
      node->est_udf_cost = 0.0;
      node->est_order = std::nullopt;
      break;
    }
    case plan::PlanKind::kIndexScan: {
      PPP_ASSIGN_OR_RETURN(const catalog::Table* table,
                           ResolveTable(node->alias));
      const double card = static_cast<double>(table->NumTuples());
      const double pages = static_cast<double>(table->NumPages());
      const double sel =
          node->predicate.expr != nullptr ? node->predicate.selectivity : 1.0;
      const double rows = card * sel;
      node->est_rows = rows;
      node->est_rows_noexp = rows;
      node->est_width = card > 0 ? pages * storage::kPageSize / card : 100.0;
      // One descent plus one unclustered fetch per matching tuple.
      node->est_cost = params_.index_probe_ios * params_.rand_page_io +
                       rows * params_.rand_page_io;
      node->est_udf_cost = 0.0;
      node->est_order = node->alias + "." + node->index_column;
      break;
    }
    case plan::PlanKind::kFilter: {
      const plan::PlanNode& child = *node->children[0];
      const expr::PredicateInfo& pred = node->predicate;
      double evals = child.est_rows;
      if (params_.predicate_caching && pred.input_distinct_values > 0) {
        evals = std::min(
            evals,
            DistinctInStream(static_cast<double>(pred.input_distinct_values),
                             child.est_rows, pred.input_base_rows));
      }
      // The executor fans expensive-predicate filters across
      // parallel_workers threads; the latency-bound UDF charge divides by
      // the effective parallelism. Cheap predicates and join primaries stay
      // serial (the executor does not parallelize them).
      const double effective_workers =
          pred.is_expensive() ? std::max(1.0, params_.parallel_workers) : 1.0;
      const double udf_charge =
          evals * pred.cost_per_tuple / effective_workers;
      // Cheap predicates are free by default (cpu_tuple_cost = 0, the
      // paper's model); when charged, the vectorized executor's tight
      // column kernels divide the charge by their measured speedup.
      double cpu_charge = 0.0;
      if (!pred.is_expensive() && params_.cpu_tuple_cost > 0.0) {
        const double speedup =
            params_.vectorized ? std::max(1.0, params_.vector_speedup) : 1.0;
        cpu_charge = child.est_rows * params_.cpu_tuple_cost / speedup;
      }
      node->est_rows = child.est_rows * pred.selectivity;
      node->est_rows_noexp = pred.is_expensive()
                                 ? child.est_rows_noexp
                                 : child.est_rows_noexp * pred.selectivity;
      node->est_width = child.est_width;
      node->est_cost = child.est_cost + udf_charge + cpu_charge;
      node->est_udf_cost = child.est_udf_cost + udf_charge;
      node->est_order = child.est_order;
      break;
    }
    case plan::PlanKind::kJoin: {
      if (node->children.size() != 2) {
        return common::Status::Internal("join node must have two children");
      }
      const plan::PlanNode& outer = *node->children[0];
      const plan::PlanNode& inner = *node->children[1];
      const expr::PredicateInfo& pred = node->predicate;
      const double s = pred.expr != nullptr ? pred.selectivity : 1.0;
      const double extra =
          JoinExtraCost(*node, outer.est_rows, inner.est_rows);

      // The UDF share of `extra`: recompute the pieces JoinExtraCost
      // classifies as UDF work.
      double udf_extra = 0.0;
      if (node->join_method == plan::JoinMethod::kNestLoop) {
        const double rescans = std::max(0.0, outer.est_rows - 1.0);
        if (!params_.predicate_caching) {
          udf_extra += rescans * inner.est_udf_cost;
        }
        if (pred.expr != nullptr && pred.is_expensive()) {
          double evals = outer.est_rows * inner.est_rows;
          if (params_.predicate_caching && pred.input_distinct_values > 0) {
            evals = std::min(
                evals,
                DistinctInStream(
                    static_cast<double>(pred.input_distinct_values), evals,
                    pred.input_base_rows));
          }
          udf_extra += evals * pred.cost_per_tuple;
        }
      }

      const bool charges_inner =
          node->join_method != plan::JoinMethod::kIndexNestLoop;

      // Predicate transfer: the build side's Bloom filter prunes the probe
      // (outer) stream down at its scan, so expensive predicates sitting
      // between that scan and this join only ever see the surviving
      // fraction. Credit back the doomed share of the outer subtree's UDF
      // charge (its I/O is unchanged — the scan still reads every page).
      double transfer_credit = 0.0;
      if (TransferApplies(*node) && outer.est_udf_cost > 0.0) {
        const double tsel = StreamSelectivity(*node, 0);
        transfer_credit = outer.est_udf_cost * (1.0 - tsel);
      }

      node->est_rows = outer.est_rows * inner.est_rows * s;
      node->est_rows_noexp = outer.est_rows_noexp * inner.est_rows_noexp * s;
      node->est_width = outer.est_width + inner.est_width;
      node->est_cost = outer.est_cost + (charges_inner ? inner.est_cost : 0.0) +
                       extra - transfer_credit;
      node->est_udf_cost = outer.est_udf_cost +
                           (charges_inner ? inner.est_udf_cost : 0.0) +
                           udf_extra - transfer_credit;
      if (node->join_method == plan::JoinMethod::kMerge) {
        node->est_order = JoinColumnOnSide(*node, 0);
      } else {
        node->est_order = outer.est_order;
      }
      break;
    }
    case plan::PlanKind::kSort: {
      const plan::PlanNode& child = *node->children[0];
      node->est_rows = child.est_rows;
      node->est_rows_noexp = child.est_rows_noexp;
      node->est_width = child.est_width;
      node->est_cost =
          child.est_cost + SortCost(PagesFor(child.est_rows, child.est_width));
      node->est_udf_cost = child.est_udf_cost;
      node->est_order = node->sort_column;
      break;
    }
    case plan::PlanKind::kMaterialize: {
      const plan::PlanNode& child = *node->children[0];
      node->est_rows = child.est_rows;
      node->est_rows_noexp = child.est_rows_noexp;
      node->est_width = child.est_width;
      node->est_cost = child.est_cost +
                       PagesFor(child.est_rows, child.est_width) *
                           params_.seq_page_io;
      node->est_udf_cost = child.est_udf_cost;
      node->est_order = child.est_order;
      break;
    }
    case plan::PlanKind::kProject: {
      const plan::PlanNode& child = *node->children[0];
      node->est_rows = child.est_rows;
      node->est_rows_noexp = child.est_rows_noexp;
      node->est_width = child.est_width;
      node->est_cost = child.est_cost;
      node->est_udf_cost = child.est_udf_cost;
      node->est_order = child.est_order;
      break;
    }
    case plan::PlanKind::kAggregate: {
      const plan::PlanNode& child = *node->children[0];
      // Output cardinality: product of the group columns' distinct counts,
      // clamped by the input cardinality; 1 for a global aggregate.
      double groups = 1.0;
      for (const std::string& qualified : node->group_columns) {
        const size_t dot = qualified.find('.');
        if (dot == std::string::npos) continue;
        auto table = ResolveTable(qualified.substr(0, dot));
        if (!table.ok()) continue;
        const int64_t d = (*table)->EffectiveDistinct(
            qualified.substr(dot + 1), params_.use_collected_stats);
        groups *= static_cast<double>(std::max<int64_t>(1, d));
      }
      node->est_rows = node->group_columns.empty()
                           ? 1.0
                           : std::min(groups, std::max(child.est_rows, 1.0));
      node->est_rows_noexp = node->est_rows;
      node->est_width = 16.0 * static_cast<double>(
          node->group_columns.size() + node->aggregates.size());
      node->est_cost = child.est_cost;  // CPU-only, free in this model.
      node->est_udf_cost = child.est_udf_cost;
      node->est_order = std::nullopt;
      break;
    }
  }
  return common::Status::OK();
}

}  // namespace ppp::cost
