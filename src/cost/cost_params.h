#ifndef PPP_COST_COST_PARAMS_H_
#define PPP_COST_COST_PARAMS_H_

namespace ppp::cost {

/// Knobs of the cost model. All costs are in random-I/O units, the same
/// currency as FunctionDef::cost_per_call, so "costly100 = 100" means one
/// hundred random page reads per invocation exactly as in the paper.
struct CostParams {
  /// Cost of reading one page sequentially / randomly.
  double seq_page_io = 1.0;
  double rand_page_io = 1.0;

  /// Cost of one B-tree descent ("typically 3 I/Os or less", §3.2).
  double index_probe_ios = 3.0;

  /// Pages of working memory available to a sort or hash join before it
  /// must spill. Chosen well below the benchmark table sizes, mirroring the
  /// paper's 32 MB memory vs 110 MB database.
  double buffer_pages = 256.0;

  /// Merge fanout of the external sort.
  double sort_fanout = 8.0;

  /// When true (the Montage model of §3.2), a join node has a *different*
  /// selectivity for each input stream: sel over R = s * {S}. When false,
  /// the "global" cost model of [HS93a] is used (same selectivity `s` for
  /// both inputs) — the model the paper discards as inaccurate. Ablation A1.
  bool per_input_selectivity = true;

  /// When true, rank calculations assume predicate caching (§5.1):
  /// join selectivities are computed on *values* rather than tuples and
  /// clamped at 1, and a Filter is charged for at most one evaluation per
  /// distinct input binding. Must match ExecParams::predicate_caching so
  /// the optimizer models what the executor does. Ablation A2.
  bool predicate_caching = true;

  /// Worker threads the executor may fan an expensive-predicate filter's
  /// batch across (ExecParams::parallel_workers). The model divides a
  /// Filter's per-tuple predicate charge by the effective parallelism:
  /// expensive predicates are latency-bound (their cost is declared in
  /// random-I/O units), so concurrent workers overlap that latency. Join
  /// primaries are not parallelized by the executor and keep full cost.
  double parallel_workers = 1.0;

  /// When true (Montage behaviour, §5.2), `{R}` in per-input selectivities
  /// and differential costs is the *current* planned cardinality, including
  /// expensive selections currently placed below the join — risking
  /// over-eager pullup. When false, expensive selections below are assumed
  /// to pass everything (the under-eager direction). Ablation A4.
  bool current_cardinality_estimate = true;

  /// When true, predicate analysis consults obs::PredicateFeedbackStore for
  /// observed UDF cost/selectivity, overriding the static catalog numbers
  /// for any function that has been profiled (the \calibrate path).
  bool use_feedback = false;

  /// When true, predicate analysis consults collected ANALYZE statistics
  /// (histograms, MCVs, NDV sketches) for column selectivities and join
  /// distinct counts, overriding the declared catalog numbers for any
  /// table that has been analyzed. Sits between feedback and declared in
  /// the provenance ladder: feedback > stats > declared.
  bool use_collected_stats = true;

  /// When true, the model assumes the executor runs predicate transfer
  /// (ExecParams::predicate_transfer — workload::ExecParamsFor keeps the
  /// pair consistent): every hash join on a cheap simple equi-join key
  /// pushes a build-side Bloom filter into its probe-side scan, so the
  /// join's probe-input selectivity is modeled as already applied at the
  /// scan. Expensive predicates on the probe side are then ranked against
  /// post-transfer cardinalities, which keeps them below the join (a
  /// near-free filter has rank ≈ -1/0 — nothing beats it).
  bool predicate_transfer = false;

  /// Per-row CPU charge of evaluating a *cheap* (zero-declared-cost) filter
  /// predicate, in random-I/O units. Zero by default — the paper treats
  /// simple predicates as free, and the default keeps historical plans and
  /// cost assertions unchanged. Set it > 0 to study placement sensitivity
  /// to cheap-predicate CPU (e.g. very wide scans on fast storage).
  double cpu_tuple_cost = 0.0;

  /// Whether the executor runs the columnar fast path
  /// (ExecParams::vectorized — workload::ExecParamsFor keeps the pair
  /// consistent). Vectorized cheap comparisons run ~vector_speedup× faster
  /// than scalar tuple evaluation, so the cheap per-row charge above
  /// divides by it: making cheap predicates cheaper *sharpens* expensive
  /// predicate placement, it never reorders ranks (cheap predicates keep
  /// rank -inf and always apply first).
  bool vectorized = true;

  /// Throughput multiplier of the vectorized cheap-predicate kernels over
  /// scalar evaluation (bench_vector measures ≥5×; 8 is the model default).
  double vector_speedup = 8.0;
};

}  // namespace ppp::cost

#endif  // PPP_COST_COST_PARAMS_H_
