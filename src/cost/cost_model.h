#ifndef PPP_COST_COST_MODEL_H_
#define PPP_COST_COST_MODEL_H_

#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "cost/cost_params.h"
#include "expr/predicate.h"
#include "plan/plan_node.h"

namespace ppp::cost {

/// Per-stream view of a join operator, the quantities every placement
/// algorithm in the paper reasons with: how many of this input's tuples
/// survive the join (selectivity over the input, §3.2), what the join
/// costs per tuple of this input (the "differential" cost), and the
/// resulting rank = (selectivity - 1) / cost.
struct JoinStreamInfo {
  double selectivity = 1.0;
  double cost_per_tuple = 0.0;
  double rank = 0.0;
};

/// The Montage cost model: strictly linear join costs `k{R} + l{S} + m`
/// (with an extra `c_p{R}{S}` term only for expensive primary join
/// predicates), per-input join selectivities, and System R scan costs.
///
/// Annotate() fills est_rows / est_cost / est_width / est_order /
/// est_udf_cost / est_rows_noexp over a plan tree bottom-up; every
/// placement algorithm re-annotates after rewriting a tree.
class CostModel {
 public:
  CostModel(const catalog::Catalog* catalog, expr::TableBinding binding,
            CostParams params)
      : catalog_(catalog), binding_(std::move(binding)), params_(params) {}

  /// Recomputes all annotations of `node`'s subtree. Fails on unresolvable
  /// tables or malformed trees.
  common::Status Annotate(plan::PlanNode* node) const;

  /// Join-local cost of the join node itself (children excluded), given
  /// hypothetical input cardinalities. Used both by Annotate and — with
  /// perturbed cardinalities — to obtain differential per-tuple costs.
  /// `join` must have annotated children (for widths and rescan I/O).
  double JoinExtraCost(const plan::PlanNode& join, double outer_rows,
                       double inner_rows) const;

  /// Selectivity / differential cost / rank of annotated `join` with
  /// respect to input `side` (0 = outer, 1 = inner).
  JoinStreamInfo JoinStream(const plan::PlanNode& join, int side) const;

  /// Rank of a selection predicate: (selectivity - 1) / cost, with
  /// caching-aware cost discounting disabled (the paper ranks selections
  /// on their per-tuple cost).
  double SelectionRank(const expr::PredicateInfo& pred) const {
    return pred.rank();
  }

  /// Number of pages occupied by `rows` tuples of `width` bytes.
  static double PagesFor(double rows, double width);

  /// Expected number of distinct values among `rows` rows drawn from a
  /// population of `base_rows` rows carrying `distinct` distinct values
  /// (Yao's approximation). Equals `distinct` for an unreduced stream —
  /// the refinement that makes §5.1's value-based selectivities track
  /// streams already shrunk by selections and joins.
  static double DistinctInStream(double distinct, double rows,
                                 double base_rows);

  /// Extra I/O to sort `pages` pages (0 if they fit in working memory).
  double SortCost(double pages) const;

  const CostParams& params() const { return params_; }
  const expr::TableBinding& binding() const { return binding_; }

  /// True when `join`, as planned, runs a Bloom-filter predicate transfer
  /// at execution time: transfer is enabled, the join is a hash join, and
  /// its primary is a cheap simple equi-join (mirrors the executor's
  /// BuildExecutor gate; whether a probe-side scan claims the filter is a
  /// runtime detail the model ignores).
  bool TransferApplies(const plan::PlanNode& join) const;

 private:
  common::Result<const catalog::Table*> ResolveTable(
      const std::string& alias) const;

  /// Per-input selectivity of annotated `join` with respect to input
  /// `side`, before any transfer adjustment (the §3.2 "sel over R" term).
  double StreamSelectivity(const plan::PlanNode& join, int side) const;

  /// Cost of re-executing a (pipelined) inner subtree once more: its I/O
  /// cost, plus its UDF cost again unless predicate caching absorbs the
  /// repeats.
  double RescanCost(const plan::PlanNode& inner) const;

  const catalog::Catalog* catalog_;
  expr::TableBinding binding_;
  CostParams params_;
};

}  // namespace ppp::cost

#endif  // PPP_COST_COST_MODEL_H_
