#ifndef PPP_STATS_ESTIMATOR_H_
#define PPP_STATS_ESTIMATOR_H_

#include <optional>

#include "stats/table_stats.h"
#include "types/value.h"

namespace ppp::stats {

/// Direction of a range comparison `column <op> constant`.
enum class RangeOp { kLt, kLe, kGt, kGe };

/// Selectivity of `column = v` over all rows of the table: MCV frequency
/// when v is a known heavy hitter, otherwise the non-MCV mass spread over
/// the remaining distinct values (with the histogram refining the
/// containing bucket). nullopt when the distribution is too thin to say
/// anything (then the caller falls through to declared defaults).
/// Every call bumps the stats.estimator.hit / .miss counters.
std::optional<double> EstimateEquals(const ColumnDistribution& d,
                                     const types::Value& v);

/// Selectivity of `column <op> v` over all rows: MCVs are tested exactly,
/// the histogram contributes interpolated bucket mass, nulls never pass.
/// nullopt when no ordering information was collected.
std::optional<double> EstimateRange(const ColumnDistribution& d, RangeOp op,
                                    const types::Value& v);

/// The paper's §4 per-input join selectivities for R.a = S.b under the
/// containment assumption: |R ⋈ S| = |R||S| / max(ndv_R, ndv_S), reported
/// as fractions of each input.
struct JoinSelectivity {
  double over_left = 1.0;   ///< |R ⋈ S| / |R|, clamped to [0, right_rows].
  double over_right = 1.0;  ///< |R ⋈ S| / |S|, clamped to [0, left_rows].
  double over_cross = 1.0;  ///< |R ⋈ S| / (|R||S|): the flat selectivity.
};
JoinSelectivity EstimateJoinSelectivity(double left_rows, double left_ndv,
                                        double right_rows, double right_ndv);

}  // namespace ppp::stats

#endif  // PPP_STATS_ESTIMATOR_H_
