#include "stats/table_stats.h"

#include <cstdio>

namespace ppp::stats {

std::string TableStatistics::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "rows=%llu sampled=%llu seed=%llu columns=%zu\n",
                static_cast<unsigned long long>(row_count),
                static_cast<unsigned long long>(sample_rows),
                static_cast<unsigned long long>(seed), columns.size());
  std::string out = buf;
  for (const ColumnDistribution& c : columns) {
    std::snprintf(buf, sizeof(buf),
                  "  %s: ndv=%.0f nulls=%llu mcvs=%zu (%.1f%%) buckets=%zu",
                  c.column.c_str(), c.ndv,
                  static_cast<unsigned long long>(c.null_count),
                  c.mcvs.size(), 100.0 * c.mcv_total_frequency,
                  c.histogram.buckets().size());
    out += buf;
    if (c.has_range) {
      out += " range=[" + c.min_value.ToString() + ", " +
             c.max_value.ToString() + "]";
    }
    out += "\n";
  }
  return out;
}

}  // namespace ppp::stats
