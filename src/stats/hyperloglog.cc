#include "stats/hyperloglog.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace ppp::stats {

namespace {

/// SplitMix64 finalizer: full-avalanche mixing of a 64-bit word.
uint64_t Mix64(uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// FNV-1a over raw bytes, then mixed: string hashing with avalanche.
uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return Mix64(h);
}

double AlphaFor(size_t m) {
  switch (m) {
    case 16: return 0.673;
    case 32: return 0.697;
    case 64: return 0.709;
    default: return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

}  // namespace

uint64_t StableValueHash(const types::Value& v) {
  switch (v.type()) {
    case types::TypeId::kNull:
      return Mix64(0);
    case types::TypeId::kInt64:
      return Mix64(static_cast<uint64_t>(v.AsInt64()) ^ 0x1ULL << 62);
    case types::TypeId::kDouble: {
      // Hash numerically equal doubles and ints alike (3.0 == 3), matching
      // Value::operator==.
      const double d = v.AsDouble();
      const auto as_int = static_cast<int64_t>(d);
      if (static_cast<double>(as_int) == d) {
        return Mix64(static_cast<uint64_t>(as_int) ^ 0x1ULL << 62);
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits ^ 0x2ULL << 62);
    }
    case types::TypeId::kString: {
      const std::string& s = v.AsString();
      return HashBytes(s.data(), s.size());
    }
    case types::TypeId::kBool:
      return Mix64(v.AsBool() ? 0x3ULL : 0x4ULL);
  }
  return 0;
}

HyperLogLog::HyperLogLog(int register_bits)
    : register_bits_(std::clamp(register_bits, 4, 18)),
      registers_(size_t{1} << register_bits_, 0) {}

void HyperLogLog::Add(uint64_t hash) {
  ++additions_;
  const size_t index = hash >> (64 - register_bits_);
  // Rank of the first set bit in the remaining 64 - b bits (1-based); a
  // zero remainder gets the maximum rank.
  const uint64_t rest = hash << register_bits_;
  const int rank =
      rest == 0 ? 65 - register_bits_ : std::countl_zero(rest) + 1;
  registers_[index] =
      std::max(registers_[index], static_cast<uint8_t>(rank));
}

double HyperLogLog::Estimate() const {
  const size_t m = registers_.size();
  double inverse_sum = 0.0;
  size_t zeros = 0;
  for (const uint8_t r : registers_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  const double md = static_cast<double>(m);
  double estimate = AlphaFor(m) * md * md / inverse_sum;
  if (estimate <= 2.5 * md && zeros > 0) {
    // Small-range correction: linear counting on empty registers.
    estimate = md * std::log(md / static_cast<double>(zeros));
  }
  return estimate;
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  PPP_CHECK(registers_.size() == other.registers_.size())
      << "cannot merge HLL sketches with different register counts";
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
  additions_ += other.additions_;
}

}  // namespace ppp::stats
