#ifndef PPP_STATS_COLLECTOR_H_
#define PPP_STATS_COLLECTOR_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "stats/table_stats.h"

namespace ppp::catalog {
class Catalog;
class Table;
}  // namespace ppp::catalog

namespace ppp::stats {

/// Tuning knobs of one ANALYZE pass. The defaults are sized for this
/// repo's benchmark tables (thousands to hundreds of thousands of rows):
/// a 16 Ki reservoir covers small tables exactly and keeps the histogram
/// build O(capacity log capacity) on big ones.
struct AnalyzeOptions {
  size_t reservoir_capacity = 16384;
  size_t histogram_buckets = 64;
  size_t mcv_entries = 16;
  int hll_register_bits = 14;
  /// Sampling seed; every run with the same seed and table contents
  /// produces bit-identical statistics.
  uint64_t seed = 0x5EEDB00C;

  /// Defaults above, with `seed` overridden by the PPP_STATS_SEED
  /// environment variable when set (parsed as decimal).
  static AnalyzeOptions Default();
};

/// Scans `table` once and builds its TableStatistics: exact row/null
/// counts and min/max, HyperLogLog NDV per column, and an MCV list plus
/// equi-depth histogram from a per-column reservoir sample (Algorithm R,
/// seeded through common::Random). Emits a stats.build span and bumps
/// stats.analyze.* counters.
common::Result<std::shared_ptr<const TableStatistics>> BuildTableStatistics(
    const catalog::Table& table, const AnalyzeOptions& options);

/// BuildTableStatistics + installs the result on the table (atomically —
/// concurrent readers keep the old snapshot until the swap).
common::Status AnalyzeTable(catalog::Table* table,
                            const AnalyzeOptions& options);

/// ANALYZE every table in the catalog.
common::Status AnalyzeAll(catalog::Catalog* catalog,
                          const AnalyzeOptions& options);

}  // namespace ppp::stats

#endif  // PPP_STATS_COLLECTOR_H_
