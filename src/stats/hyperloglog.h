#ifndef PPP_STATS_HYPERLOGLOG_H_
#define PPP_STATS_HYPERLOGLOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "types/value.h"

namespace ppp::stats {

/// Deterministic 64-bit hash of a Value, equal for numerically equal
/// values (3 == 3.0) and stable across platforms — unlike Value::Hash(),
/// which delegates to std::hash and may differ between standard libraries.
/// All sketches hash through this so ANALYZE results are reproducible
/// run-to-run and machine-to-machine.
uint64_t StableValueHash(const types::Value& v);

/// HyperLogLog distinct-count sketch [Flajolet et al. 2007] with the usual
/// small-range (linear counting) correction. The default 2^14 registers
/// (16 KB) give a standard error of 1.04/sqrt(2^14) ≈ 0.8%, comfortably
/// inside the 5% the estimator tests demand.
class HyperLogLog {
 public:
  /// `register_bits` is log2 of the register count, clamped to [4, 18].
  explicit HyperLogLog(int register_bits = 14);

  void Add(uint64_t hash);
  void AddValue(const types::Value& v) { Add(StableValueHash(v)); }

  /// Estimated number of distinct hashes added.
  double Estimate() const;

  /// Number of Add() calls (not distinct); diagnostic only.
  uint64_t additions() const { return additions_; }

  int register_bits() const { return register_bits_; }

  /// Takes the register-wise maximum with `other` (must have the same
  /// register count), as if every element of `other` had been added here.
  void Merge(const HyperLogLog& other);

 private:
  int register_bits_;
  uint64_t additions_ = 0;
  std::vector<uint8_t> registers_;
};

}  // namespace ppp::stats

#endif  // PPP_STATS_HYPERLOGLOG_H_
