#ifndef PPP_STATS_TABLE_STATS_H_
#define PPP_STATS_TABLE_STATS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "stats/histogram.h"
#include "types/value.h"

namespace ppp::stats {

/// One most-common-value entry: a heavy hitter and the estimated fraction
/// of all (non-null) rows carrying it.
struct MostCommonValue {
  types::Value value;
  double frequency = 0.0;  ///< Fraction of all rows (not of the sample).
};

/// Collected distribution of one column, built by ANALYZE. The pieces
/// follow the PostgreSQL decomposition: exact scalars from the full scan
/// (row/null counts, min/max), an NDV sketch estimate, an MCV list of
/// heavy hitters, and an equi-depth histogram over the sample *excluding*
/// the MCVs (so skew lives in the MCV list and the histogram stays
/// equi-depth over the remainder).
struct ColumnDistribution {
  std::string column;
  types::TypeId type = types::TypeId::kNull;

  // Exact, from the full scan.
  uint64_t row_count = 0;
  uint64_t null_count = 0;
  bool has_range = false;  ///< min/max valid (some non-null value seen).
  types::Value min_value;
  types::Value max_value;

  // Estimated.
  double ndv = 0.0;  ///< HyperLogLog distinct estimate (non-null values).
  std::vector<MostCommonValue> mcvs;
  double mcv_total_frequency = 0.0;  ///< Sum of mcvs[i].frequency.
  EquiDepthHistogram histogram;      ///< Over sampled non-MCV values.
  uint64_t sample_rows = 0;          ///< Reservoir size this was built from.

  double null_fraction() const {
    return row_count == 0 ? 0.0
                          : static_cast<double>(null_count) /
                                static_cast<double>(row_count);
  }
  /// Fraction of all rows not covered by nulls or the MCV list — the mass
  /// the histogram describes.
  double histogram_fraction() const {
    double f = 1.0 - null_fraction() - mcv_total_frequency;
    return f < 0.0 ? 0.0 : f;
  }
};

/// All collected statistics of one table: per-column distributions plus
/// the scan-wide scalars. Immutable after construction — the catalog
/// stores it behind shared_ptr<const TableStatistics> and ANALYZE swaps
/// the whole pointer, so readers never see a half-built state.
struct TableStatistics {
  uint64_t row_count = 0;
  uint64_t sample_rows = 0;  ///< Reservoir capacity actually filled.
  uint64_t seed = 0;         ///< Sampling seed (reproducibility audit).
  std::vector<ColumnDistribution> columns;

  const ColumnDistribution* Find(const std::string& column) const {
    for (const ColumnDistribution& c : columns) {
      if (c.column == column) return &c;
    }
    return nullptr;
  }

  /// Human-readable multi-line summary (shell `\analyze` output).
  std::string ToString() const;
};

}  // namespace ppp::stats

#endif  // PPP_STATS_TABLE_STATS_H_
