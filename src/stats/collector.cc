#include "stats/collector.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/table.h"
#include "common/random.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "stats/histogram.h"
#include "stats/hyperloglog.h"

namespace ppp::stats {

namespace {

/// Per-column accumulator for the single-pass scan.
struct ColumnAccumulator {
  uint64_t null_count = 0;
  uint64_t non_null_count = 0;
  bool has_range = false;
  types::Value min_value;
  types::Value max_value;
  HyperLogLog hll;
  std::vector<types::Value> reservoir;
  common::Random rng;

  ColumnAccumulator(int hll_bits, uint64_t seed) : hll(hll_bits), rng(seed) {}

  void Observe(const types::Value& v, size_t reservoir_capacity) {
    if (v.is_null()) {
      ++null_count;
      return;
    }
    ++non_null_count;
    if (!has_range) {
      min_value = v;
      max_value = v;
      has_range = true;
    } else {
      if (v < min_value) min_value = v;
      if (max_value < v) max_value = v;
    }
    hll.AddValue(v);
    // Algorithm R: the first `capacity` values fill the reservoir; value
    // number k > capacity replaces a random slot with probability
    // capacity/k, leaving every value equally likely to be retained.
    if (reservoir.size() < reservoir_capacity) {
      reservoir.push_back(v);
    } else {
      const uint64_t slot = rng.NextUint64(non_null_count);
      if (slot < reservoir_capacity) reservoir[slot] = v;
    }
  }
};

ColumnDistribution Finalize(ColumnAccumulator* acc, const std::string& name,
                            types::TypeId type, uint64_t row_count,
                            const AnalyzeOptions& options) {
  ColumnDistribution d;
  d.column = name;
  d.type = type;
  d.row_count = row_count;
  d.null_count = acc->null_count;
  d.has_range = acc->has_range;
  d.min_value = acc->min_value;
  d.max_value = acc->max_value;
  d.sample_rows = acc->reservoir.size();
  d.ndv = std::min(acc->hll.Estimate(),
                   static_cast<double>(acc->non_null_count));

  const double sample_n = static_cast<double>(acc->reservoir.size());
  if (sample_n == 0.0) return d;
  const double non_null_fraction = 1.0 - d.null_fraction();

  // MCV list: values appearing at least twice in the sample, top-K by
  // sample count. Ties broken by value order so the list is deterministic.
  std::unordered_map<types::Value, uint64_t, types::ValueHasher> counts;
  for (const types::Value& v : acc->reservoir) ++counts[v];
  std::vector<std::pair<types::Value, uint64_t>> ranked(counts.begin(),
                                                        counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::unordered_map<types::Value, bool, types::ValueHasher> is_mcv;
  for (const auto& [value, count] : ranked) {
    if (d.mcvs.size() >= options.mcv_entries || count < 2) break;
    MostCommonValue mcv;
    mcv.value = value;
    mcv.frequency =
        static_cast<double>(count) / sample_n * non_null_fraction;
    d.mcv_total_frequency += mcv.frequency;
    is_mcv[value] = true;
    d.mcvs.push_back(std::move(mcv));
  }

  // Histogram over the sampled values the MCV list doesn't already cover.
  std::vector<types::Value> rest;
  rest.reserve(acc->reservoir.size());
  for (types::Value& v : acc->reservoir) {
    if (is_mcv.count(v) == 0) rest.push_back(std::move(v));
  }
  d.histogram = EquiDepthHistogram::Build(std::move(rest),
                                          options.histogram_buckets);
  return d;
}

}  // namespace

AnalyzeOptions AnalyzeOptions::Default() {
  AnalyzeOptions options;
  if (const char* env = std::getenv("PPP_STATS_SEED")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env) options.seed = parsed;
  }
  return options;
}

common::Result<std::shared_ptr<const TableStatistics>> BuildTableStatistics(
    const catalog::Table& table, const AnalyzeOptions& options) {
  obs::Span span("stats", "stats.build");
  span.AddArg("table", table.name());

  auto result = std::make_shared<TableStatistics>();
  result->seed = options.seed;

  const std::vector<catalog::ColumnDef>& columns = table.columns();
  std::vector<ColumnAccumulator> accs;
  accs.reserve(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    // Distinct per-column seed streams so adding a column never perturbs
    // another column's sample.
    accs.emplace_back(options.hll_register_bits, options.seed + i * 1000003);
  }

  uint64_t rows = 0;
  storage::HeapFile::Iterator it = table.heap().Scan();
  storage::RecordId rid;
  std::string bytes;
  while (it.Next(&rid, &bytes)) {
    PPP_ASSIGN_OR_RETURN(types::Tuple tuple, types::Tuple::Deserialize(bytes));
    ++rows;
    for (size_t i = 0; i < columns.size(); ++i) {
      accs[i].Observe(tuple.Get(i), options.reservoir_capacity);
    }
  }

  result->row_count = rows;
  result->columns.reserve(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    result->columns.push_back(Finalize(&accs[i], columns[i].name,
                                       columns[i].type, rows, options));
    result->sample_rows =
        std::max(result->sample_rows, result->columns.back().sample_rows);
  }

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.GetCounter("stats.analyze.tables")->Increment();
  metrics.GetCounter("stats.analyze.rows")->Increment(rows);
  return std::shared_ptr<const TableStatistics>(std::move(result));
}

common::Status AnalyzeTable(catalog::Table* table,
                            const AnalyzeOptions& options) {
  if (table->is_system()) {
    // System-table contents change under every query; collected stats
    // would mislead the optimizer. Their estimates stay on the declared
    // tier (row counts still come live from the provider's count hint).
    return common::Status::InvalidArgument(
        "cannot ANALYZE system table " + table->name() +
        ": statistics are pinned to the declared tier");
  }
  PPP_ASSIGN_OR_RETURN(std::shared_ptr<const TableStatistics> stats,
                       BuildTableStatistics(*table, options));
  table->SetCollectedStats(std::move(stats));
  return common::Status::OK();
}

common::Status AnalyzeAll(catalog::Catalog* catalog,
                          const AnalyzeOptions& options) {
  for (const std::string& name : catalog->TableNames()) {
    PPP_ASSIGN_OR_RETURN(catalog::Table * table, catalog->GetTable(name));
    PPP_RETURN_IF_ERROR(AnalyzeTable(table, options));
  }
  return common::Status::OK();
}

}  // namespace ppp::stats
