#ifndef PPP_STATS_HISTOGRAM_H_
#define PPP_STATS_HISTOGRAM_H_

#include <string>
#include <vector>

#include "types/value.h"

namespace ppp::stats {

/// One equi-depth bucket covering the closed range [lo, hi], where lo/hi
/// are actual sample values (buckets are disjoint; gaps between them hold
/// no sampled value). `count` is the number of sample values that landed
/// here and `distinct` how many of them were distinct — the estimator
/// spreads equality mass over `distinct`, not over the value range, so
/// heavy-duplicate columns don't dilute to zero.
struct HistogramBucket {
  types::Value lo;
  types::Value hi;
  uint64_t count = 0;
  uint64_t distinct = 0;
};

/// Equi-depth (equal-frequency) histogram built from a sample. Bucket
/// boundaries never split one value across two buckets: all copies of a
/// value land in the same bucket, which is what gives equi-depth its
/// error bound — any range estimate is off by at most ~2 bucket masses
/// (≈ 2/B of the sampled mass) regardless of skew.
class EquiDepthHistogram {
 public:
  /// Builds from `values`, which need not be sorted (a copy is sorted
  /// internally). Produces at most `max_buckets` buckets; fewer when the
  /// sample has fewer distinct values. Empty input yields an empty
  /// histogram.
  static EquiDepthHistogram Build(std::vector<types::Value> values,
                                  size_t max_buckets);

  bool empty() const { return total_count_ == 0; }
  uint64_t total_count() const { return total_count_; }
  const std::vector<HistogramBucket>& buckets() const { return buckets_; }

  /// Fraction of the histogrammed sample strictly below `v`
  /// (or <= `v` when `inclusive`). In [0, 1].
  double FractionBelow(const types::Value& v, bool inclusive) const;

  /// Fraction of the histogrammed sample equal to `v`: the containing
  /// bucket's mass spread uniformly over its distinct values. In [0, 1].
  double FractionEqual(const types::Value& v) const;

  /// Debug form: [lo..hi]#count/distinct per bucket.
  std::string ToString() const;

 private:
  std::vector<HistogramBucket> buckets_;
  uint64_t total_count_ = 0;
};

}  // namespace ppp::stats

#endif  // PPP_STATS_HISTOGRAM_H_
