#include "stats/estimator.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace ppp::stats {

namespace {

obs::Counter* HitCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("stats.estimator.hit");
  return c;
}

obs::Counter* MissCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("stats.estimator.miss");
  return c;
}

std::optional<double> Miss() {
  MissCounter()->Increment();
  return std::nullopt;
}

double Hit(double sel) {
  HitCounter()->Increment();
  return std::clamp(sel, 0.0, 1.0);
}

bool Satisfies(const types::Value& x, RangeOp op, const types::Value& v) {
  const int c = x.Compare(v);
  switch (op) {
    case RangeOp::kLt: return c < 0;
    case RangeOp::kLe: return c <= 0;
    case RangeOp::kGt: return c > 0;
    case RangeOp::kGe: return c >= 0;
  }
  return false;
}

}  // namespace

std::optional<double> EstimateEquals(const ColumnDistribution& d,
                                     const types::Value& v) {
  if (d.row_count == 0) return Hit(0.0);
  if (v.is_null()) return Hit(0.0);  // `= NULL` never matches.
  if (d.has_range && (v < d.min_value || d.max_value < v)) return Hit(0.0);
  for (const MostCommonValue& mcv : d.mcvs) {
    if (mcv.value == v) return Hit(mcv.frequency);
  }
  // Not a heavy hitter: spread the leftover mass. Prefer the histogram's
  // per-bucket distinct accounting; fall back to NDV when the sample
  // missed the region entirely.
  if (!d.histogram.empty()) {
    const double f = d.histogram.FractionEqual(v);
    if (f > 0.0) return Hit(f * d.histogram_fraction());
  }
  const double remaining_ndv =
      std::max(1.0, d.ndv - static_cast<double>(d.mcvs.size()));
  if (d.ndv <= 0.0) return Miss();
  return Hit(d.histogram_fraction() / remaining_ndv);
}

std::optional<double> EstimateRange(const ColumnDistribution& d, RangeOp op,
                                    const types::Value& v) {
  if (d.row_count == 0) return Hit(0.0);
  if (v.is_null()) return Miss();  // Comparison with NULL: unknown.
  // Constant outside the observed domain decides the predicate outright
  // (modulo nulls, which never pass).
  if (d.has_range) {
    if (Satisfies(d.min_value, op, v) && Satisfies(d.max_value, op, v)) {
      return Hit(1.0 - d.null_fraction());
    }
    if (!Satisfies(d.min_value, op, v) && !Satisfies(d.max_value, op, v)) {
      return Hit(0.0);
    }
  }

  double passing = 0.0;  // Fraction of all rows satisfying the predicate.
  bool informed = false;
  for (const MostCommonValue& mcv : d.mcvs) {
    if (Satisfies(mcv.value, op, v)) passing += mcv.frequency;
    informed = true;
  }
  if (!d.histogram.empty()) {
    const bool less = op == RangeOp::kLt || op == RangeOp::kLe;
    // < / <= read FractionBelow directly; > / >= take the complement of
    // the opposite-inclusiveness bound.
    const double below =
        d.histogram.FractionBelow(v, /*inclusive=*/op == RangeOp::kLe ||
                                         op == RangeOp::kGt);
    const double hist_frac = less ? below : 1.0 - below;
    passing += hist_frac * d.histogram_fraction();
    informed = true;
  } else if (d.has_range && d.min_value.type() != types::TypeId::kString &&
             d.max_value.type() != types::TypeId::kString &&
             !d.min_value.is_null() && d.min_value < d.max_value &&
             (v.type() == types::TypeId::kInt64 ||
              v.type() == types::TypeId::kDouble)) {
    // No histogram (tiny sample): uniform interpolation over the exact
    // collected [min, max], still better than the declared default.
    const double lo = d.min_value.AsNumeric();
    const double hi = d.max_value.AsNumeric();
    double frac = std::clamp((v.AsNumeric() - lo) / (hi - lo), 0.0, 1.0);
    const bool less = op == RangeOp::kLt || op == RangeOp::kLe;
    if (!less) frac = 1.0 - frac;
    passing += frac * d.histogram_fraction();
    informed = true;
  }
  if (!informed) return Miss();
  return Hit(passing);
}

JoinSelectivity EstimateJoinSelectivity(double left_rows, double left_ndv,
                                        double right_rows, double right_ndv) {
  JoinSelectivity s;
  const double d = std::max({left_ndv, right_ndv, 1.0});
  left_rows = std::max(left_rows, 1.0);
  right_rows = std::max(right_rows, 1.0);
  const double join_rows = left_rows * right_rows / d;
  s.over_cross = 1.0 / d;
  // Fan-out per input row; the paper's "selectivity over R" can exceed 1
  // when the other side has duplicates, which is exactly what makes a
  // "free" join non-free (rank flips from -inf to +inf).
  s.over_left = join_rows / left_rows;
  s.over_right = join_rows / right_rows;
  return s;
}

}  // namespace ppp::stats
