#include "stats/histogram.h"

#include <algorithm>
#include <cstdio>

namespace ppp::stats {

namespace {

bool IsNumeric(const types::Value& v) {
  return v.type() == types::TypeId::kInt64 ||
         v.type() == types::TypeId::kDouble;
}

/// Fraction of [lo, hi] lying below v, by linear interpolation for
/// numeric endpoints; 0.5 when the bucket can't be interpolated (strings,
/// single-value buckets).
double InterpolateBelow(const HistogramBucket& b, const types::Value& v) {
  if (IsNumeric(b.lo) && IsNumeric(b.hi) && IsNumeric(v)) {
    const double lo = b.lo.AsNumeric();
    const double hi = b.hi.AsNumeric();
    if (hi > lo) {
      return std::clamp((v.AsNumeric() - lo) / (hi - lo), 0.0, 1.0);
    }
  }
  return 0.5;
}

}  // namespace

EquiDepthHistogram EquiDepthHistogram::Build(
    std::vector<types::Value> values, size_t max_buckets) {
  EquiDepthHistogram h;
  if (values.empty() || max_buckets == 0) return h;
  std::sort(values.begin(), values.end());

  const size_t n = values.size();
  // Equal-frequency target; runs of one value are never split, so a heavy
  // hitter simply overfills its bucket instead of straddling a boundary.
  const size_t depth = std::max<size_t>(1, (n + max_buckets - 1) / max_buckets);

  HistogramBucket current;
  size_t i = 0;
  while (i < n) {
    // The run [i, j) of one distinct value.
    size_t j = i + 1;
    while (j < n && values[j] == values[i]) ++j;
    const uint64_t run = j - i;
    if (current.count == 0) current.lo = values[i];
    current.hi = values[i];
    current.count += run;
    current.distinct += 1;
    if (current.count >= depth) {
      h.buckets_.push_back(std::move(current));
      current = HistogramBucket{};
    }
    i = j;
  }
  if (current.count > 0) h.buckets_.push_back(std::move(current));
  h.total_count_ = n;
  return h;
}

double EquiDepthHistogram::FractionBelow(const types::Value& v,
                                         bool inclusive) const {
  if (empty()) return 0.0;
  double below = 0.0;
  for (const HistogramBucket& b : buckets_) {
    if (b.hi < v) {
      below += static_cast<double>(b.count);
    } else if (v < b.lo || b.lo == v) {
      // v is at or before this bucket's low edge: nothing more below it
      // except, for the at-edge case, interpolated mass (zero).
      break;
    } else {
      below += static_cast<double>(b.count) * InterpolateBelow(b, v);
      break;
    }
  }
  double frac = below / static_cast<double>(total_count_);
  if (inclusive) frac += FractionEqual(v);
  return std::clamp(frac, 0.0, 1.0);
}

double EquiDepthHistogram::FractionEqual(const types::Value& v) const {
  if (empty()) return 0.0;
  for (const HistogramBucket& b : buckets_) {
    if (b.hi < v) continue;
    if (v < b.lo) return 0.0;  // In a gap: the sample never saw v.
    const double share =
        static_cast<double>(b.count) /
        static_cast<double>(std::max<uint64_t>(1, b.distinct));
    return share / static_cast<double>(total_count_);
  }
  return 0.0;
}

std::string EquiDepthHistogram::ToString() const {
  std::string out;
  for (const HistogramBucket& b : buckets_) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "#%llu/%llu ",
                  static_cast<unsigned long long>(b.count),
                  static_cast<unsigned long long>(b.distinct));
    out += "[" + b.lo.ToString() + ".." + b.hi.ToString() + "]" + buf;
  }
  if (!out.empty()) out.pop_back();
  return out;
}

}  // namespace ppp::stats
