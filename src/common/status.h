#ifndef PPP_COMMON_STATUS_H_
#define PPP_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace ppp::common {

/// Error categories used throughout the library. Mirrors the usual
/// database-engine taxonomy: user errors (parse / catalog lookup), internal
/// invariant violations, and resource exhaustion.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kParseError,
  kInternal,
  kNotImplemented,
  kResourceExhausted,
};

/// Returns a stable human-readable name for a status code ("Ok",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value, modeled after absl::Status.
///
/// The library does not use exceptions; every fallible operation returns a
/// Status (or a Result<T>, below). Statuses are cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value-or-error union, modeled after absl::StatusOr<T>.
///
/// Holds either an OK status plus a T, or a non-OK status. Accessing the
/// value of an errored Result aborts in debug builds (assert).
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in functions returning
  /// Result<T>.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT

  /// Implicit from error status: allows `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ppp::common

/// Propagates a non-OK Status from an expression, like absl's macro.
#define PPP_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::ppp::common::Status _ppp_status = (expr);  \
    if (!_ppp_status.ok()) return _ppp_status;   \
  } while (0)

/// Evaluates a Result<T> expression; on error returns its status, otherwise
/// move-assigns the value into `lhs`.
#define PPP_ASSIGN_OR_RETURN(lhs, expr)              \
  PPP_ASSIGN_OR_RETURN_IMPL_(                        \
      PPP_STATUS_MACRO_CONCAT_(_ppp_res, __LINE__), lhs, expr)

#define PPP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define PPP_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define PPP_STATUS_MACRO_CONCAT_(x, y) PPP_STATUS_MACRO_CONCAT_INNER_(x, y)

#endif  // PPP_COMMON_STATUS_H_
