#ifndef PPP_COMMON_STRING_UTIL_H_
#define PPP_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ppp::common {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> Split(std::string_view text, char delim);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// FNV-1a 64-bit hash. Stable across runs and platforms — query-log text
/// hashes and plan fingerprints persist in BENCH json and must compare
/// across processes.
uint64_t Fnv1aHash(std::string_view text);

/// Escapes `text` for embedding inside a JSON string literal: quotes,
/// backslashes, and every control character below 0x20 (\n \t \r \b \f get
/// their short forms, the rest \u00xx). Every JSON emitter in the tree
/// must go through this — a UDF or metric named `f"x` is legal in the
/// catalog and must not corrupt BENCH_*.json or Chrome traces.
std::string JsonEscape(std::string_view text);

}  // namespace ppp::common

#endif  // PPP_COMMON_STRING_UTIL_H_
