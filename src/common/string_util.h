#ifndef PPP_COMMON_STRING_UTIL_H_
#define PPP_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace ppp::common {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> Split(std::string_view text, char delim);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace ppp::common

#endif  // PPP_COMMON_STRING_UTIL_H_
