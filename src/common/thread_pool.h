#ifndef PPP_COMMON_THREAD_POOL_H_
#define PPP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ppp::common {

/// Persistent worker pool for fan-out/join workloads (the batch-at-a-time
/// expensive-predicate evaluator). Threads are spawned once and reused
/// across batches, so the per-batch cost is one wakeup, not a spawn.
///
/// The pool runs one *job* at a time: Run(n, fn) publishes a job of `n`
/// index-addressed tasks, the caller participates as an extra worker, and
/// Run returns when every task finished. Tasks are expected to be chunky
/// (one contiguous slice of a tuple batch each), so claims go through the
/// pool mutex; the tasks themselves run unlocked. Concurrent Run calls
/// serialize, which matches the engine's single-coordinator execution
/// model.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is allowed: Run degenerates to the
  /// caller executing every task inline).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Executes fn(0) .. fn(num_tasks - 1) across the workers plus the
  /// calling thread; returns when all tasks completed. Tasks are claimed
  /// dynamically, so uneven task durations balance. `fn` must not throw.
  void Run(size_t num_tasks, const std::function<void(size_t)>& task);

 private:
  struct Job {
    const std::function<void(size_t)>* task = nullptr;
    size_t num_tasks = 0;
    size_t next_task = 0;   // Guarded by ThreadPool::mu_.
    size_t remaining = 0;   // Guarded by ThreadPool::mu_.
  };

  /// Claims and runs tasks of `job` until none are left; `lock` must hold
  /// mu_ on entry and holds it again on return.
  void WorkOn(Job* job, std::unique_lock<std::mutex>* lock);

  void WorkerLoop();

  std::mutex run_mu_;  // Serializes Run() callers.

  std::mutex mu_;
  std::condition_variable work_cv_;  // Workers: a job arrived / shutdown.
  std::condition_variable done_cv_;  // Run(): the job completed.
  Job* job_ = nullptr;               // Guarded by mu_.
  bool shutdown_ = false;            // Guarded by mu_.
  std::vector<std::thread> threads_;
};

}  // namespace ppp::common

#endif  // PPP_COMMON_THREAD_POOL_H_
