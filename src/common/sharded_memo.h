#ifndef PPP_COMMON_SHARDED_MEMO_H_
#define PPP_COMMON_SHARDED_MEMO_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ppp::common {

/// Thread-safe memo table for the §5.1 predicate/function caches: a
/// hash table keyed on serialized input bindings, split into shards with
/// one mutex each so concurrent probes from the parallel predicate
/// evaluator don't serialize on a single lock.
///
/// Exactness is the design constraint — invocation counts are the paper's
/// measurement currency, so a memoized computation must run **at most once
/// per distinct key** no matter how many workers probe concurrently. A
/// miss installs a *pending* entry before computing; concurrent probes for
/// the same key find the pending entry, count a hit (the serial execution
/// would have hit the completed entry), and wait on the shard's condition
/// variable instead of recomputing. With one worker this degrades to
/// exactly the serial probe/compute/insert sequence.
///
/// Replacement is FIFO per shard by default (the paper: "function or
/// predicate caches can be limited in size, using any of a variety of
/// replacement schemes"); `lru` recency-orders entries instead, so hot
/// bindings survive a bound. Bounds come in two flavours that compose:
/// `max_entries` (count) and `max_bytes` (approximate memory — key bytes
/// plus a fixed per-entry overhead). The adaptive self-disable ("planned
/// for Montage but not implemented", §5.1) is detected online: zero hits
/// in the first `probe_window` probes disables the memo and frees its
/// entries. All follow the serial semantics exactly when single-threaded;
/// under concurrency, bounded caches may evict in a run-dependent order
/// (the unbounded default stays exact).
template <typename V>
class ShardedMemo {
 public:
  struct Options {
    /// Total entry bound across all shards; 0 = unbounded.
    size_t max_entries = 0;
    /// Total (approximate) byte bound across all shards; 0 = unbounded.
    /// Each entry is charged its key size plus kEntryOverhead.
    size_t max_bytes = 0;
    /// Replacement order for bounded memos: FIFO by default, LRU when set
    /// (hits move the entry to the back of the eviction queue).
    bool lru = false;
    size_t shards = 1;
    /// Online self-disable when the first `probe_window` probes all miss.
    bool adaptive = false;
    uint64_t probe_window = 512;
  };

  /// Fixed per-entry charge against max_bytes, approximating the Entry,
  /// the hash-map node, and the eviction-list node.
  static constexpr size_t kEntryOverhead = 64;

  /// Event callbacks, fired outside any per-key wait but possibly under a
  /// shard lock; must be cheap and non-blocking (atomic metric bumps).
  struct Listener {
    std::function<void()> on_hit;
    std::function<void()> on_miss;
    std::function<void()> on_eviction;
    std::function<void()> on_disable;
    /// A probe found its shard mutex already held by another worker.
    std::function<void()> on_contention;
  };

  explicit ShardedMemo(const Options& options = {}) { Reset(options); }

  ShardedMemo(const ShardedMemo&) = delete;
  ShardedMemo& operator=(const ShardedMemo&) = delete;

  /// Drops all entries and counters and applies new options.
  void Reset(const Options& options) {
    options_ = options;
    if (options_.shards == 0) options_.shards = 1;
    shards_ = std::vector<Shard>(options_.shards);
    shard_max_ =
        options_.max_entries == 0
            ? 0
            : (options_.max_entries + options_.shards - 1) / options_.shards;
    shard_max_bytes_ =
        options_.max_bytes == 0
            ? 0
            : (options_.max_bytes + options_.shards - 1) / options_.shards;
    probes_.store(0, std::memory_order_relaxed);
    hits_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
    contended_probes_.store(0, std::memory_order_relaxed);
    disabled_.store(false, std::memory_order_relaxed);
  }

  void set_listener(Listener listener) { listener_ = std::move(listener); }

  const Options& options() const { return options_; }

  /// True once the adaptive policy gave up on this memo. The caller is
  /// expected to stop probing and compute directly (the serial code did
  /// exactly that), so `probes()` freezes at the disabling probe.
  bool disabled() const { return disabled_.load(std::memory_order_acquire); }

  /// Returns the memoized value for `key`, running `compute` at most once
  /// per distinct key. `compute` executes without any shard lock held.
  V GetOrCompute(const std::string& key, const std::function<V()>& compute) {
    const uint64_t probe =
        probes_.fetch_add(1, std::memory_order_relaxed) + 1;
    Shard& shard = shards_[ShardOf(key)];
    std::unique_lock<std::mutex> lock = LockShard(&shard);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      std::shared_ptr<Entry> entry = it->second;
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (listener_.on_hit) listener_.on_hit();
      if (options_.lru && entry->in_order) {
        // Recency-order: a hit moves the entry to the back of the queue.
        shard.order.splice(shard.order.end(), shard.order, entry->order_it);
      }
      // Pending entry: another worker is computing this key right now.
      // Waiting (instead of recomputing) is what keeps invocation counts
      // exact under parallelism.
      while (!entry->ready) shard.cv.wait(lock);
      return entry->value;
    }

    if (listener_.on_miss) listener_.on_miss();
    if (options_.adaptive && probe >= options_.probe_window &&
        hits_.load(std::memory_order_relaxed) == 0) {
      // Every binding so far was distinct: memoization cannot pay here.
      // Free the memory (the footnote-4 swap problem) and stop keying.
      // The disable condition depends only on probe/hit counts, so
      // checking before the compute reproduces the serial decision.
      disabled_.store(true, std::memory_order_release);
      if (listener_.on_disable) listener_.on_disable();
      lock.unlock();
      Clear();
      return compute();
    }

    // Evict from the front (FIFO order, or least-recent under lru) until
    // both bounds admit the new entry. The victim may itself be pending;
    // evicting it is safe (waiters and the computing worker hold the entry
    // via shared_ptr) but a concurrent re-probe of that key recomputes —
    // bounded caches trade exactness for memory, exactly like the serial
    // FIFO thrash.
    const size_t new_bytes = key.size() + kEntryOverhead;
    while (!shard.order.empty() &&
           ((shard_max_ > 0 && shard.map.size() >= shard_max_) ||
            (shard_max_bytes_ > 0 &&
             shard.bytes + new_bytes > shard_max_bytes_))) {
      const std::string& victim = shard.order.front();
      shard.bytes -= victim.size() + kEntryOverhead;
      shard.map.erase(victim);
      shard.order.pop_front();
      evictions_.fetch_add(1, std::memory_order_relaxed);
      if (listener_.on_eviction) listener_.on_eviction();
    }
    auto entry = std::make_shared<Entry>();
    shard.map.emplace(key, entry);
    shard.order.push_back(key);
    entry->order_it = std::prev(shard.order.end());
    entry->in_order = true;
    shard.bytes += new_bytes;
    lock.unlock();

    V value = compute();

    lock.lock();
    entry->value = std::move(value);
    entry->ready = true;
    shard.cv.notify_all();
    return entry->value;
  }

  /// Drops every entry (waiters on pending entries are unaffected: they
  /// hold the entry itself, and the computing worker still publishes).
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.map.clear();
      shard.order.clear();
      shard.bytes = 0;
    }
  }

  size_t entries() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.map.size();
    }
    return total;
  }

  /// Approximate bytes currently charged against max_bytes.
  size_t approx_bytes() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.bytes;
    }
    return total;
  }

  uint64_t probes() const { return probes_.load(std::memory_order_relaxed); }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Probes that found their shard mutex already held — the contention
  /// signal the sharding exists to keep near zero.
  uint64_t contended_probes() const {
    return contended_probes_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    V value{};
    bool ready = false;  // Guarded by the owning shard's mutex.
    /// Position in the shard's eviction queue, valid while in_order (both
    /// guarded by the shard's mutex; an evicted entry is unreachable via
    /// the map, so its stale iterator is never dereferenced).
    typename std::list<std::string>::iterator order_it;
    bool in_order = false;
  };

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<std::string, std::shared_ptr<Entry>> map;
    /// Eviction queue, front = next victim (insertion order, refreshed on
    /// hit under lru).
    std::list<std::string> order;
    /// Approximate bytes charged for the current entries.
    size_t bytes = 0;
  };

  size_t ShardOf(const std::string& key) const {
    return shards_.size() == 1
               ? 0
               : std::hash<std::string>{}(key) % shards_.size();
  }

  std::unique_lock<std::mutex> LockShard(Shard* shard) {
    std::unique_lock<std::mutex> lock(shard->mu, std::try_to_lock);
    if (!lock.owns_lock()) {
      contended_probes_.fetch_add(1, std::memory_order_relaxed);
      if (listener_.on_contention) listener_.on_contention();
      lock.lock();
    }
    return lock;
  }

  Options options_;
  size_t shard_max_ = 0;
  size_t shard_max_bytes_ = 0;
  std::vector<Shard> shards_;
  Listener listener_;
  std::atomic<uint64_t> probes_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> contended_probes_{0};
  std::atomic<bool> disabled_{false};
};

}  // namespace ppp::common

#endif  // PPP_COMMON_SHARDED_MEMO_H_

