#include "common/status.h"

namespace ppp::common {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace ppp::common
