#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace ppp::common {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string StringPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

uint64_t Fnv1aHash(std::string_view text) {
  uint64_t hash = 14695981039346656037ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace ppp::common
