#include "common/thread_pool.h"

namespace ppp::common {

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkOn(Job* job, std::unique_lock<std::mutex>* lock) {
  while (job->next_task < job->num_tasks) {
    const size_t i = job->next_task++;
    const std::function<void(size_t)>* task = job->task;
    lock->unlock();
    (*task)(i);
    lock->lock();
    if (--job->remaining == 0) done_cv_.notify_all();
  }
}

void ThreadPool::Run(size_t num_tasks,
                     const std::function<void(size_t)>& task) {
  if (num_tasks == 0) return;
  if (threads_.empty() || num_tasks == 1) {
    for (size_t i = 0; i < num_tasks; ++i) task(i);
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mu_);
  Job job;
  job.task = &task;
  job.num_tasks = num_tasks;
  job.remaining = num_tasks;

  std::unique_lock<std::mutex> lock(mu_);
  job_ = &job;
  work_cv_.notify_all();
  // The caller is a worker too: with W pool threads, Run gets W + 1
  // executors, so parallel_workers == pool size + 1.
  WorkOn(&job, &lock);
  done_cv_.wait(lock, [&job] { return job.remaining == 0; });
  // Workers only dereference job_ under mu_, so clearing it here (before
  // the stack Job dies) is what makes the Job's lifetime safe.
  job_ = nullptr;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] {
      return shutdown_ ||
             (job_ != nullptr && job_->next_task < job_->num_tasks);
    });
    if (shutdown_) return;
    WorkOn(job_, &lock);
  }
}

}  // namespace ppp::common
