#ifndef PPP_COMMON_RANDOM_H_
#define PPP_COMMON_RANDOM_H_

#include <cstdint>

namespace ppp::common {

/// Deterministic 64-bit PRNG (xorshift128+). All data generation and
/// property tests seed explicitly so experiments are reproducible across
/// platforms, unlike std::mt19937 whose distributions are not portable.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Reseed(seed); }

  /// Re-initializes the internal state from `seed` (any value, including 0).
  void Reseed(uint64_t seed) {
    // SplitMix64 to spread low-entropy seeds over the full state.
    auto next = [&seed]() {
      seed += 0x9E3779B97F4A7C15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      return z ^ (z >> 31);
    };
    s0_ = next();
    s1_ = next();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  /// Uniform over all 64-bit values.
  uint64_t NextUint64() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextUint64(uint64_t bound) { return NextUint64() % bound; }

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt64(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextUint64(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli with probability `p` of returning true.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace ppp::common

#endif  // PPP_COMMON_RANDOM_H_
