#ifndef PPP_COMMON_LOGGING_H_
#define PPP_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace ppp::common {

/// Severity levels for the minimal logging facility. kTrace carries the
/// optimizer's live OptTrace echo and is below kDebug.
enum class LogLevel {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4
};

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kInfo, overridable at startup with the PPP_LOG_LEVEL
/// environment variable (trace|debug|info|warning|error). Not thread-safe
/// by design (set once at startup).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// LogMessage variant that aborts the process after emitting.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  template <typename T>
  FatalLogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows a streamed expression when a check is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Lets a streamed FatalLogMessage appear in a void-typed ternary branch:
/// `&` binds more loosely than `<<`, and returns void.
struct Voidify {
  void operator&(const FatalLogMessage&) {}
  void operator&(const NullStream&) {}
};

}  // namespace internal_logging
}  // namespace ppp::common

#define PPP_LOG(level)                                          \
  ::ppp::common::internal_logging::LogMessage(                  \
      ::ppp::common::LogLevel::k##level, __FILE__, __LINE__)

/// Aborts with a message when `condition` is false. Enabled in all builds:
/// optimizer and storage invariants are cheap relative to I/O.
#define PPP_CHECK(condition)                                      \
  (condition) ? (void)0                                           \
              : ::ppp::common::internal_logging::Voidify() &     \
                    ::ppp::common::internal_logging::FatalLogMessage( \
                        __FILE__, __LINE__, #condition)

#ifndef NDEBUG
#define PPP_DCHECK(condition) PPP_CHECK(condition)
#else
#define PPP_DCHECK(condition)                                \
  true ? (void)0                                             \
       : ::ppp::common::internal_logging::Voidify() &        \
             ::ppp::common::internal_logging::NullStream()
#endif

#endif  // PPP_COMMON_LOGGING_H_
