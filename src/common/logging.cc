#include "common/logging.h"

namespace ppp::common {

namespace {
LogLevel g_log_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_log_level; }
void SetLogLevel(LogLevel level) { g_log_level = level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < g_log_level) return;
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::abort();
}

}  // namespace internal_logging
}  // namespace ppp::common
