#include "common/logging.h"

#include <cctype>

namespace ppp::common {

namespace {

/// PPP_LOG_LEVEL=trace|debug|info|warning|error (case-insensitive; also
/// accepts the single-letter forms used in the output prefix).
LogLevel InitialLogLevel() {
  const char* env = std::getenv("PPP_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  std::string value(env);
  for (char& c : value) c = static_cast<char>(std::tolower(c));
  if (value == "trace" || value == "t") return LogLevel::kTrace;
  if (value == "debug" || value == "d") return LogLevel::kDebug;
  if (value == "info" || value == "i") return LogLevel::kInfo;
  if (value == "warning" || value == "warn" || value == "w") {
    return LogLevel::kWarning;
  }
  if (value == "error" || value == "e") return LogLevel::kError;
  return LogLevel::kInfo;
}

LogLevel g_log_level = InitialLogLevel();

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_log_level; }
void SetLogLevel(LogLevel level) { g_log_level = level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < g_log_level) return;
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::abort();
}

}  // namespace internal_logging
}  // namespace ppp::common
