#ifndef PPP_TYPES_VALUE_H_
#define PPP_TYPES_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

namespace ppp::types {

/// Column data types supported by the engine. The paper's benchmark schema
/// only needs integers (join/selection attributes) and fixed-width padding,
/// but strings and doubles make the library usable beyond the reproduction.
enum class TypeId : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
  kBool = 4,
};

const char* TypeIdName(TypeId type);

/// A dynamically typed scalar. Values are small and freely copyable;
/// strings use std::string storage.
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : data_(std::monostate{}) {}
  static Value Null() { return Value(); }

  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}
  explicit Value(bool v) : data_(v) {}

  TypeId type() const {
    switch (data_.index()) {
      case 0:
        return TypeId::kNull;
      case 1:
        return TypeId::kInt64;
      case 2:
        return TypeId::kDouble;
      case 3:
        return TypeId::kString;
      case 4:
        return TypeId::kBool;
    }
    return TypeId::kNull;
  }

  bool is_null() const { return data_.index() == 0; }

  /// Typed accessors; the caller must check type() first (asserts on
  /// mismatch in debug builds).
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  bool AsBool() const { return std::get<bool>(data_); }

  /// Numeric view: int64 and double both convert; asserts otherwise.
  double AsNumeric() const;

  /// Three-way comparison usable as a sort key. NULL sorts first; values of
  /// different numeric types compare numerically; comparing a string with a
  /// number orders by type id (deterministic, never aborts).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Stable hash, consistent with operator== (numeric 3 == 3.0 hash alike).
  size_t Hash() const;

  /// Display form: NULL, 42, 3.5, 'text', true.
  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string, bool> data_;
};

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace ppp::types

#endif  // PPP_TYPES_VALUE_H_
