#ifndef PPP_TYPES_COLUMN_BATCH_H_
#define PPP_TYPES_COLUMN_BATCH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "types/row_schema.h"
#include "types/tuple.h"

namespace ppp::types {

/// A column-major tuple batch with a selection vector.
///
/// Rows are stored as typed column vectors (int64/bool share one vector,
/// doubles their own, string payloads live back-to-back in a per-column
/// arena) plus a per-column null byte-vector, so cheap predicates run as
/// tight loops over contiguous primitive data instead of walking
/// std::variant tuples. Filters never copy rows: they narrow the
/// `selection()` vector — the ascending list of surviving row positions —
/// and downstream consumers either iterate the selection, densify once via
/// Compact(), or cross back into the row world through ToTuples().
///
/// A stored value whose runtime type disagrees with the declared column
/// type falls back to boxed Value storage for that whole column
/// (`Column::boxed`); vectorized kernels check for this and bail to scalar
/// evaluation, so the fast path never pays a per-row type tag.
class ColumnBatch {
 public:
  struct Column {
    TypeId type = TypeId::kInt64;
    /// kInt64 and kBool storage (bools as 0/1).
    std::vector<int64_t> i64;
    /// kDouble storage.
    std::vector<double> f64;
    /// kString storage: payload bytes in `arena`, per-row offset/length.
    std::string arena;
    std::vector<uint32_t> str_offset;
    std::vector<uint32_t> str_len;
    /// Per-row: 1 = SQL NULL (native vectors hold a zero placeholder).
    std::vector<uint8_t> nulls;
    /// True once any row mismatched the declared type: storage switches to
    /// `values` and the column is opaque to vectorized kernels.
    bool boxed = false;
    std::vector<Value> values;

    std::string_view StringAt(size_t row) const {
      return std::string_view(arena).substr(str_offset[row], str_len[row]);
    }
  };

  ColumnBatch() = default;
  explicit ColumnBatch(const RowSchema& schema) { Reset(schema); }

  /// Adopts `schema` and drops all rows. Keeps the columns' capacity when
  /// the schema is unchanged, so a reused batch allocates nothing steady
  /// state.
  void Reset(const RowSchema& schema);

  /// Drops all rows, keeping schema and capacity.
  void Clear();

  const RowSchema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return num_rows_; }

  const Column& column(size_t i) const { return columns_[i]; }

  /// Appends one row from the storage wire format (Tuple::Serialize), fully
  /// bypassing Tuple/Value construction on the clean path. The new row is
  /// selected. Takes a view so scans can decode straight out of a pinned
  /// page (HeapFile::Iterator::NextView) with no intermediate copy.
  common::Status AppendSerialized(std::string_view bytes);

  /// Appends one row from a Tuple (the adapter path for row-native
  /// producers). The value count must match the schema.
  void AppendTuple(const Tuple& tuple);

  /// -- Selection vector ----------------------------------------------------
  /// Always a valid ascending subset of [0, num_rows()); appends select the
  /// new row, filters narrow the vector in place.
  const std::vector<uint32_t>& selection() const { return selection_; }
  std::vector<uint32_t>* mutable_selection() { return &selection_; }
  size_t selected() const { return selection_.size(); }
  bool all_selected() const { return selection_.size() == num_rows_; }

  /// -- Row access ------------------------------------------------------------
  bool IsNull(size_t col, size_t row) const;
  Value GetValue(size_t col, size_t row) const;
  Tuple RowAsTuple(size_t row) const;

  /// Densifies: physically drops unselected rows so selection() becomes
  /// all-rows again. The single boundary pipeline breakers may use before
  /// consuming columns positionally.
  void Compact();

  /// Row-world shim: appends the selected rows, in order, as Tuples.
  void ToTuples(std::vector<Tuple>* out) const;

 private:
  /// Converts a column to boxed Value storage (first type mismatch).
  void BoxColumn(size_t col);
  void AppendValue(size_t col, const Value& v);

  RowSchema schema_;
  std::vector<Column> columns_;
  std::vector<uint32_t> selection_;
  size_t num_rows_ = 0;
};

}  // namespace ppp::types

#endif  // PPP_TYPES_COLUMN_BATCH_H_
