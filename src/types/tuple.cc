#include "types/tuple.h"

#include <cstring>

#include "common/string_util.h"

namespace ppp::types {

Tuple Tuple::Concat(const Tuple& left, const Tuple& right) {
  std::vector<Value> values;
  values.reserve(left.values_.size() + right.values_.size());
  values.insert(values.end(), left.values_.begin(), left.values_.end());
  values.insert(values.end(), right.values_.begin(), right.values_.end());
  return Tuple(std::move(values));
}

Tuple Tuple::Concat(Tuple&& left, const Tuple& right) {
  std::vector<Value> values = std::move(left.values_);
  values.reserve(values.size() + right.values_.size());
  values.insert(values.end(), right.values_.begin(), right.values_.end());
  return Tuple(std::move(values));
}

namespace {

void AppendRaw(std::string* out, const void* data, size_t len) {
  out->append(reinterpret_cast<const char*>(data), len);
}

template <typename T>
void AppendPod(std::string* out, T v) {
  AppendRaw(out, &v, sizeof(v));
}

template <typename T>
bool ReadPod(const std::string& bytes, size_t* pos, T* out) {
  if (*pos + sizeof(T) > bytes.size()) return false;
  std::memcpy(out, bytes.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

std::string Tuple::Serialize() const {
  std::string out;
  AppendPod<uint32_t>(&out, static_cast<uint32_t>(values_.size()));
  for (const Value& v : values_) {
    AppendPod<uint8_t>(&out, static_cast<uint8_t>(v.type()));
    switch (v.type()) {
      case TypeId::kNull:
        break;
      case TypeId::kInt64:
        AppendPod<int64_t>(&out, v.AsInt64());
        break;
      case TypeId::kDouble:
        AppendPod<double>(&out, v.AsDouble());
        break;
      case TypeId::kBool:
        AppendPod<uint8_t>(&out, v.AsBool() ? 1 : 0);
        break;
      case TypeId::kString: {
        const std::string& s = v.AsString();
        AppendPod<uint32_t>(&out, static_cast<uint32_t>(s.size()));
        AppendRaw(&out, s.data(), s.size());
        break;
      }
    }
  }
  return out;
}

common::Result<Tuple> Tuple::Deserialize(const std::string& bytes) {
  size_t pos = 0;
  uint32_t count = 0;
  if (!ReadPod(bytes, &pos, &count)) {
    return common::Status::InvalidArgument("tuple header truncated");
  }
  std::vector<Value> values;
  values.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t tag = 0;
    if (!ReadPod(bytes, &pos, &tag)) {
      return common::Status::InvalidArgument("tuple value tag truncated");
    }
    switch (static_cast<TypeId>(tag)) {
      case TypeId::kNull:
        values.emplace_back();
        break;
      case TypeId::kInt64: {
        int64_t v = 0;
        if (!ReadPod(bytes, &pos, &v)) {
          return common::Status::InvalidArgument("tuple int64 truncated");
        }
        values.emplace_back(v);
        break;
      }
      case TypeId::kDouble: {
        double v = 0;
        if (!ReadPod(bytes, &pos, &v)) {
          return common::Status::InvalidArgument("tuple double truncated");
        }
        values.emplace_back(v);
        break;
      }
      case TypeId::kBool: {
        uint8_t v = 0;
        if (!ReadPod(bytes, &pos, &v)) {
          return common::Status::InvalidArgument("tuple bool truncated");
        }
        values.emplace_back(v != 0);
        break;
      }
      case TypeId::kString: {
        uint32_t len = 0;
        if (!ReadPod(bytes, &pos, &len)) {
          return common::Status::InvalidArgument("tuple string len truncated");
        }
        if (pos + len > bytes.size()) {
          return common::Status::InvalidArgument("tuple string truncated");
        }
        values.emplace_back(bytes.substr(pos, len));
        pos += len;
        break;
      }
      default:
        return common::Status::InvalidArgument("unknown value tag " +
                                               std::to_string(tag));
    }
  }
  return Tuple(std::move(values));
}

std::string Tuple::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const Value& v : values_) parts.push_back(v.ToString());
  return "(" + common::Join(parts, ", ") + ")";
}

bool Tuple::operator==(const Tuple& other) const {
  if (values_.size() != other.values_.size()) return false;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] != other.values_[i]) return false;
  }
  return true;
}

}  // namespace ppp::types
