#include "types/column_batch.h"

#include <cstring>

#include "common/logging.h"

namespace ppp::types {

namespace {

template <typename T>
bool ReadPod(const char* data, size_t size, size_t* pos, T* out) {
  if (*pos + sizeof(T) > size) return false;
  std::memcpy(out, data + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

void ColumnBatch::Reset(const RowSchema& schema) {
  if (schema_ == schema) {
    Clear();
    return;
  }
  schema_ = schema;
  columns_.assign(schema.NumColumns(), Column());
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].type = schema.Column(i).type;
    // A declared-NULL column type (untyped projections) has no native
    // representation; box it from the start.
    columns_[i].boxed = columns_[i].type == TypeId::kNull;
  }
  selection_.clear();
  num_rows_ = 0;
}

void ColumnBatch::Clear() {
  for (Column& col : columns_) {
    col.i64.clear();
    col.f64.clear();
    col.arena.clear();
    col.str_offset.clear();
    col.str_len.clear();
    col.nulls.clear();
    col.values.clear();
    // `boxed` is sticky only for declared-NULL columns; data-driven boxing
    // resets with the data.
    col.boxed = col.type == TypeId::kNull;
  }
  selection_.clear();
  num_rows_ = 0;
}

void ColumnBatch::BoxColumn(size_t col_index) {
  Column& col = columns_[col_index];
  if (col.boxed) return;
  col.values.reserve(num_rows_ + 1);
  for (size_t row = 0; row < num_rows_; ++row) {
    col.values.push_back(GetValue(col_index, row));
  }
  col.boxed = true;
  col.i64.clear();
  col.f64.clear();
  col.arena.clear();
  col.str_offset.clear();
  col.str_len.clear();
}

void ColumnBatch::AppendValue(size_t col_index, const Value& v) {
  Column& col = columns_[col_index];
  if (!col.boxed && !v.is_null() && v.type() != col.type) BoxColumn(col_index);
  if (col.boxed) {
    col.nulls.push_back(v.is_null() ? 1 : 0);
    col.values.push_back(v);
    return;
  }
  col.nulls.push_back(v.is_null() ? 1 : 0);
  switch (col.type) {
    case TypeId::kInt64:
      col.i64.push_back(v.is_null() ? 0 : v.AsInt64());
      break;
    case TypeId::kBool:
      col.i64.push_back(v.is_null() ? 0 : (v.AsBool() ? 1 : 0));
      break;
    case TypeId::kDouble:
      col.f64.push_back(v.is_null() ? 0.0 : v.AsDouble());
      break;
    case TypeId::kString: {
      col.str_offset.push_back(static_cast<uint32_t>(col.arena.size()));
      if (v.is_null()) {
        col.str_len.push_back(0);
      } else {
        const std::string& s = v.AsString();
        col.arena.append(s);
        col.str_len.push_back(static_cast<uint32_t>(s.size()));
      }
      break;
    }
    case TypeId::kNull:
      break;  // unreachable: declared-NULL columns are always boxed.
  }
}

void ColumnBatch::AppendTuple(const Tuple& tuple) {
  PPP_CHECK(tuple.NumValues() == columns_.size())
      << "tuple width " << tuple.NumValues() << " vs schema width "
      << columns_.size();
  for (size_t c = 0; c < columns_.size(); ++c) {
    AppendValue(c, tuple.Get(c));
  }
  selection_.push_back(static_cast<uint32_t>(num_rows_));
  ++num_rows_;
}

common::Status ColumnBatch::AppendSerialized(std::string_view bytes) {
  const char* data = bytes.data();
  const size_t size = bytes.size();
  size_t pos = 0;
  uint32_t count = 0;
  if (!ReadPod(data, size, &pos, &count)) {
    return common::Status::InvalidArgument("tuple header truncated");
  }
  if (count != columns_.size()) {
    return common::Status::InvalidArgument(
        "row width " + std::to_string(count) + " does not match schema width " +
        std::to_string(columns_.size()));
  }
  for (uint32_t c = 0; c < count; ++c) {
    Column& col = columns_[c];
    uint8_t tag = 0;
    if (!ReadPod(data, size, &pos, &tag)) {
      return common::Status::InvalidArgument("tuple value tag truncated");
    }
    const TypeId type = static_cast<TypeId>(tag);
    // Clean fast path: the stored tag matches the declared column type (or
    // is NULL) and the column has native storage.
    if (!col.boxed) {
      if (type == TypeId::kNull) {
        col.nulls.push_back(1);
        switch (col.type) {
          case TypeId::kInt64:
          case TypeId::kBool:
            col.i64.push_back(0);
            break;
          case TypeId::kDouble:
            col.f64.push_back(0.0);
            break;
          case TypeId::kString:
            col.str_offset.push_back(static_cast<uint32_t>(col.arena.size()));
            col.str_len.push_back(0);
            break;
          case TypeId::kNull:
            break;
        }
        continue;
      }
      if (type == col.type) {
        col.nulls.push_back(0);
        switch (col.type) {
          case TypeId::kInt64: {
            int64_t v = 0;
            if (!ReadPod(data, size, &pos, &v)) {
              return common::Status::InvalidArgument("tuple int64 truncated");
            }
            col.i64.push_back(v);
            continue;
          }
          case TypeId::kDouble: {
            double v = 0;
            if (!ReadPod(data, size, &pos, &v)) {
              return common::Status::InvalidArgument("tuple double truncated");
            }
            col.f64.push_back(v);
            continue;
          }
          case TypeId::kBool: {
            uint8_t v = 0;
            if (!ReadPod(data, size, &pos, &v)) {
              return common::Status::InvalidArgument("tuple bool truncated");
            }
            col.i64.push_back(v != 0 ? 1 : 0);
            continue;
          }
          case TypeId::kString: {
            uint32_t len = 0;
            if (!ReadPod(data, size, &pos, &len)) {
              return common::Status::InvalidArgument(
                  "tuple string len truncated");
            }
            if (pos + len > size) {
              return common::Status::InvalidArgument("tuple string truncated");
            }
            col.str_offset.push_back(static_cast<uint32_t>(col.arena.size()));
            col.str_len.push_back(len);
            col.arena.append(data + pos, len);
            pos += len;
            continue;
          }
          case TypeId::kNull:
            break;
        }
      }
    }
    // Mismatch (or already-boxed column): decode a Value the slow way.
    Value v;
    switch (type) {
      case TypeId::kNull:
        break;
      case TypeId::kInt64: {
        int64_t raw = 0;
        if (!ReadPod(data, size, &pos, &raw)) {
          return common::Status::InvalidArgument("tuple int64 truncated");
        }
        v = Value(raw);
        break;
      }
      case TypeId::kDouble: {
        double raw = 0;
        if (!ReadPod(data, size, &pos, &raw)) {
          return common::Status::InvalidArgument("tuple double truncated");
        }
        v = Value(raw);
        break;
      }
      case TypeId::kBool: {
        uint8_t raw = 0;
        if (!ReadPod(data, size, &pos, &raw)) {
          return common::Status::InvalidArgument("tuple bool truncated");
        }
        v = Value(raw != 0);
        break;
      }
      case TypeId::kString: {
        uint32_t len = 0;
        if (!ReadPod(data, size, &pos, &len)) {
          return common::Status::InvalidArgument("tuple string len truncated");
        }
        if (pos + len > size) {
          return common::Status::InvalidArgument("tuple string truncated");
        }
        v = Value(std::string(data + pos, len));
        pos += len;
        break;
      }
      default:
        return common::Status::InvalidArgument("unknown value tag " +
                                               std::to_string(tag));
    }
    AppendValue(c, v);
  }
  selection_.push_back(static_cast<uint32_t>(num_rows_));
  ++num_rows_;
  return common::Status::OK();
}

bool ColumnBatch::IsNull(size_t col, size_t row) const {
  return columns_[col].nulls[row] != 0;
}

Value ColumnBatch::GetValue(size_t col_index, size_t row) const {
  const Column& col = columns_[col_index];
  if (col.boxed) return col.values[row];
  if (col.nulls[row] != 0) return Value::Null();
  switch (col.type) {
    case TypeId::kInt64:
      return Value(col.i64[row]);
    case TypeId::kBool:
      return Value(col.i64[row] != 0);
    case TypeId::kDouble:
      return Value(col.f64[row]);
    case TypeId::kString:
      return Value(std::string(col.StringAt(row)));
    case TypeId::kNull:
      break;
  }
  return Value::Null();
}

Tuple ColumnBatch::RowAsTuple(size_t row) const {
  std::vector<Value> values;
  values.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    values.push_back(GetValue(c, row));
  }
  return Tuple(std::move(values));
}

void ColumnBatch::Compact() {
  if (all_selected()) return;
  for (Column& col : columns_) {
    if (col.boxed) {
      std::vector<Value> values;
      std::vector<uint8_t> nulls;
      values.reserve(selection_.size());
      nulls.reserve(selection_.size());
      for (uint32_t row : selection_) {
        values.push_back(std::move(col.values[row]));
        nulls.push_back(col.nulls[row]);
      }
      col.values = std::move(values);
      col.nulls = std::move(nulls);
      continue;
    }
    size_t out = 0;
    switch (col.type) {
      case TypeId::kInt64:
      case TypeId::kBool:
        for (uint32_t row : selection_) col.i64[out++] = col.i64[row];
        col.i64.resize(out);
        break;
      case TypeId::kDouble:
        for (uint32_t row : selection_) col.f64[out++] = col.f64[row];
        col.f64.resize(out);
        break;
      case TypeId::kString: {
        std::string arena;
        std::vector<uint32_t> offsets;
        std::vector<uint32_t> lens;
        offsets.reserve(selection_.size());
        lens.reserve(selection_.size());
        for (uint32_t row : selection_) {
          const std::string_view s = col.StringAt(row);
          offsets.push_back(static_cast<uint32_t>(arena.size()));
          lens.push_back(static_cast<uint32_t>(s.size()));
          arena.append(s);
        }
        col.arena = std::move(arena);
        col.str_offset = std::move(offsets);
        col.str_len = std::move(lens);
        break;
      }
      case TypeId::kNull:
        break;
    }
    size_t null_out = 0;
    for (uint32_t row : selection_) col.nulls[null_out++] = col.nulls[row];
    col.nulls.resize(null_out);
  }
  num_rows_ = selection_.size();
  for (size_t i = 0; i < num_rows_; ++i) {
    selection_[i] = static_cast<uint32_t>(i);
  }
}

void ColumnBatch::ToTuples(std::vector<Tuple>* out) const {
  out->reserve(out->size() + selection_.size());
  for (uint32_t row : selection_) {
    out->push_back(RowAsTuple(row));
  }
}

}  // namespace ppp::types
