#ifndef PPP_TYPES_TUPLE_H_
#define PPP_TYPES_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/row_schema.h"
#include "types/value.h"

namespace ppp::types {

/// A row of Values. Tuples are passed by value between executor operators;
/// the vector is small (a handful of columns in the benchmark workload).
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t NumValues() const { return values_.size(); }
  const Value& Get(size_t i) const { return values_[i]; }
  void Set(size_t i, Value v) { values_[i] = std::move(v); }
  const std::vector<Value>& values() const { return values_; }

  /// Row concatenation (join output).
  static Tuple Concat(const Tuple& left, const Tuple& right);

  /// Move form for the probe-passthrough case: a join emitting its last
  /// output for `left` steals the outer tuple's values (one reserve, no
  /// per-value copies).
  static Tuple Concat(Tuple&& left, const Tuple& right);

  /// Serializes to a self-describing byte string (type tags + payloads),
  /// independent of any schema. Used by the storage layer.
  std::string Serialize() const;

  /// Parses a byte string produced by Serialize().
  static common::Result<Tuple> Deserialize(const std::string& bytes);

  /// "(1, 'x', NULL)".
  std::string ToString() const;

  bool operator==(const Tuple& other) const;

 private:
  std::vector<Value> values_;
};

}  // namespace ppp::types

#endif  // PPP_TYPES_TUPLE_H_
