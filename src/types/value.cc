#include "types/value.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace ppp::types {

const char* TypeIdName(TypeId type) {
  switch (type) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kInt64:
      return "INT64";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kString:
      return "STRING";
    case TypeId::kBool:
      return "BOOL";
  }
  return "UNKNOWN";
}

double Value::AsNumeric() const {
  switch (type()) {
    case TypeId::kInt64:
      return static_cast<double>(AsInt64());
    case TypeId::kDouble:
      return AsDouble();
    case TypeId::kBool:
      return AsBool() ? 1.0 : 0.0;
    default:
      PPP_CHECK(false) << "AsNumeric on non-numeric value " << ToString();
      return 0.0;
  }
}

namespace {
bool IsNumeric(TypeId t) {
  return t == TypeId::kInt64 || t == TypeId::kDouble || t == TypeId::kBool;
}
}  // namespace

int Value::Compare(const Value& other) const {
  const TypeId a = type();
  const TypeId b = other.type();
  if (a == TypeId::kNull || b == TypeId::kNull) {
    if (a == b) return 0;
    return a == TypeId::kNull ? -1 : 1;
  }
  if (IsNumeric(a) && IsNumeric(b)) {
    // Compare int64/int64 exactly; mixed numeric via double.
    if (a == TypeId::kInt64 && b == TypeId::kInt64) {
      const int64_t x = AsInt64();
      const int64_t y = other.AsInt64();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    const double x = AsNumeric();
    const double y = other.AsNumeric();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a == TypeId::kString && b == TypeId::kString) {
    const int c = AsString().compare(other.AsString());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Heterogeneous (string vs numeric): order by type id for determinism.
  return static_cast<int>(a) < static_cast<int>(b) ? -1 : 1;
}

size_t Value::Hash() const {
  switch (type()) {
    case TypeId::kNull:
      return 0x9E3779B9u;
    case TypeId::kInt64: {
      // Hash integral values via their double representation when exact, so
      // that 3 and 3.0 (which compare equal) hash identically.
      const int64_t v = AsInt64();
      const double d = static_cast<double>(v);
      if (static_cast<int64_t>(d) == v) return std::hash<double>()(d);
      return std::hash<int64_t>()(v);
    }
    case TypeId::kDouble:
      return std::hash<double>()(AsDouble());
    case TypeId::kBool:
      return std::hash<double>()(AsBool() ? 1.0 : 0.0);
    case TypeId::kString:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kInt64:
      return std::to_string(AsInt64());
    case TypeId::kDouble:
      return common::StringPrintf("%g", AsDouble());
    case TypeId::kBool:
      return AsBool() ? "true" : "false";
    case TypeId::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

}  // namespace ppp::types
