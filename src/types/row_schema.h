#ifndef PPP_TYPES_ROW_SCHEMA_H_
#define PPP_TYPES_ROW_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "types/value.h"

namespace ppp::types {

/// One column of a row descriptor: a (table alias, column name, type)
/// triple. `table` is the range-variable name from the query, so the same
/// base table scanned twice gets distinct column identities.
struct ColumnInfo {
  std::string table;
  std::string name;
  TypeId type = TypeId::kInt64;

  std::string QualifiedName() const { return table + "." + name; }

  bool operator==(const ColumnInfo& other) const {
    return table == other.table && name == other.name && type == other.type;
  }
};

/// Describes the layout of tuples flowing between operators (the executor's
/// row descriptor). Distinct from catalog::TableDef, which describes stored
/// base tables.
class RowSchema {
 public:
  RowSchema() = default;
  explicit RowSchema(std::vector<ColumnInfo> columns)
      : columns_(std::move(columns)) {}

  size_t NumColumns() const { return columns_.size(); }
  const ColumnInfo& Column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnInfo>& columns() const { return columns_; }

  /// Finds a column by (table, name); `table` empty matches any table but
  /// the lookup fails on ambiguity. Returns nullopt if not found/ambiguous.
  std::optional<size_t> FindColumn(const std::string& table,
                                   const std::string& name) const;

  /// Concatenates two schemas (output of a join).
  static RowSchema Concat(const RowSchema& left, const RowSchema& right);

  /// "t1.a1:INT64, t1.u20:INT64" — for debugging and plan explain output.
  std::string ToString() const;

  bool operator==(const RowSchema& other) const {
    return columns_ == other.columns_;
  }

 private:
  std::vector<ColumnInfo> columns_;
};

}  // namespace ppp::types

#endif  // PPP_TYPES_ROW_SCHEMA_H_
