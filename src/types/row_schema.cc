#include "types/row_schema.h"

#include "common/string_util.h"

namespace ppp::types {

std::optional<size_t> RowSchema::FindColumn(const std::string& table,
                                            const std::string& name) const {
  std::optional<size_t> found;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const ColumnInfo& col = columns_[i];
    if (col.name != name) continue;
    if (!table.empty() && col.table != table) continue;
    if (found.has_value()) return std::nullopt;  // Ambiguous.
    found = i;
  }
  return found;
}

RowSchema RowSchema::Concat(const RowSchema& left, const RowSchema& right) {
  std::vector<ColumnInfo> cols = left.columns_;
  cols.insert(cols.end(), right.columns_.begin(), right.columns_.end());
  return RowSchema(std::move(cols));
}

std::string RowSchema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const ColumnInfo& col : columns_) {
    parts.push_back(col.QualifiedName() + ":" + TypeIdName(col.type));
  }
  return common::Join(parts, ", ");
}

}  // namespace ppp::types
