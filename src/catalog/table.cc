#include "catalog/table.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "storage/page.h"

namespace ppp::catalog {

Table::Table(std::string name, std::vector<ColumnDef> columns,
             storage::BufferPool* pool)
    : name_(std::move(name)),
      columns_(std::move(columns)),
      pool_(pool),
      heap_(pool),
      stats_(columns_.size()) {}

Table::Table(std::string name, std::vector<ColumnDef> columns,
             SystemRowProvider provider,
             std::function<int64_t()> row_count_hint)
    : name_(std::move(name)),
      columns_(std::move(columns)),
      pool_(nullptr),
      heap_(nullptr),  // Never touched: system tables have no storage.
      stats_(columns_.size()),
      provider_(std::move(provider)),
      row_count_hint_(std::move(row_count_hint)) {}

common::Result<std::vector<types::Tuple>> Table::MaterializeSystemRows()
    const {
  if (provider_ == nullptr) {
    return common::Status::InvalidArgument(
        "table " + name_ + " is a base table, not a system table");
  }
  PPP_ASSIGN_OR_RETURN(std::vector<types::Tuple> rows, provider_());
  for (const types::Tuple& row : rows) {
    if (row.NumValues() != columns_.size()) {
      return common::Status::Internal(
          "system table " + name_ + " provider produced arity " +
          std::to_string(row.NumValues()) + ", schema has " +
          std::to_string(columns_.size()));
    }
  }
  return rows;
}

int64_t Table::NumTuples() const {
  if (provider_ != nullptr) {
    return row_count_hint_ != nullptr ? row_count_hint_() : 0;
  }
  return static_cast<int64_t>(heap_.NumRecords());
}

int64_t Table::NumPages() const {
  if (provider_ != nullptr) {
    // No pages exist; synthesize a footprint from the row-count hint so
    // scan costing stays proportional to volume. ~8 bytes per numeric
    // column, ~24 per string is close enough for placement decisions.
    size_t width = 0;
    for (const ColumnDef& col : columns_) {
      width += col.type == types::TypeId::kString ? 24 : 8;
    }
    const int64_t bytes = NumTuples() * static_cast<int64_t>(width);
    return std::max<int64_t>(
        1, (bytes + static_cast<int64_t>(storage::kPageSize) - 1) /
               static_cast<int64_t>(storage::kPageSize));
  }
  return static_cast<int64_t>(heap_.NumPages());
}

std::optional<size_t> Table::FindColumn(const std::string& column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == column) return i;
  }
  return std::nullopt;
}

common::Status Table::Insert(const types::Tuple& tuple) {
  if (is_system()) {
    return common::Status::InvalidArgument("system table " + name_ +
                                           " is read-only");
  }
  if (tuple.NumValues() != columns_.size()) {
    return common::Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.NumValues()) +
        " does not match table " + name_ + " arity " +
        std::to_string(columns_.size()));
  }
  PPP_ASSIGN_OR_RETURN(storage::RecordId rid, heap_.Insert(tuple.Serialize()));
  for (auto& [col_index, index] : indexes_) {
    const types::Value& v = tuple.Get(col_index);
    if (v.is_null()) continue;
    index->Insert(v.AsInt64(), rid);
  }
  return common::Status::OK();
}

common::Result<types::Tuple> Table::Read(storage::RecordId rid) const {
  PPP_ASSIGN_OR_RETURN(std::string bytes, heap_.Read(rid));
  return types::Tuple::Deserialize(bytes);
}

common::Status Table::CreateIndex(const std::string& column) {
  if (is_system()) {
    return common::Status::InvalidArgument(
        "cannot index system table " + name_ +
        ": rows are materialized per scan");
  }
  const std::optional<size_t> col = FindColumn(column);
  if (!col.has_value()) {
    return common::Status::NotFound("no column " + column + " in table " +
                                    name_);
  }
  if (columns_[*col].type != types::TypeId::kInt64) {
    return common::Status::InvalidArgument(
        "indexes are supported on INT64 columns only; " + name_ + "." +
        column + " is " + types::TypeIdName(columns_[*col].type));
  }
  if (indexes_.count(*col) > 0) {
    return common::Status::AlreadyExists("index on " + name_ + "." + column +
                                         " already exists");
  }
  auto index = std::make_unique<storage::BTree>(pool_);
  storage::HeapFile::Iterator it = heap_.Scan();
  storage::RecordId rid;
  std::string bytes;
  while (it.Next(&rid, &bytes)) {
    PPP_ASSIGN_OR_RETURN(types::Tuple tuple, types::Tuple::Deserialize(bytes));
    const types::Value& v = tuple.Get(*col);
    if (v.is_null()) continue;
    index->Insert(v.AsInt64(), rid);
  }
  indexes_[*col] = std::move(index);
  return common::Status::OK();
}

const storage::BTree* Table::GetIndex(const std::string& column) const {
  const std::optional<size_t> col = FindColumn(column);
  if (!col.has_value()) return nullptr;
  auto it = indexes_.find(*col);
  return it == indexes_.end() ? nullptr : it->second.get();
}

common::Status Table::Analyze() {
  if (is_system()) {
    // System-table contents churn with every query, so collected stats
    // would be stale by the time they were used: their provenance is
    // pinned to the declared tier.
    return common::Status::InvalidArgument(
        "cannot ANALYZE system table " + name_ +
        ": statistics are pinned to the declared tier");
  }
  std::vector<std::set<types::Value>> distinct(columns_.size());
  std::vector<ColumnStats> stats(columns_.size());
  std::vector<bool> bounded(columns_.size(), false);

  storage::HeapFile::Iterator it = heap_.Scan();
  storage::RecordId rid;
  std::string bytes;
  while (it.Next(&rid, &bytes)) {
    PPP_ASSIGN_OR_RETURN(types::Tuple tuple, types::Tuple::Deserialize(bytes));
    for (size_t i = 0; i < columns_.size(); ++i) {
      const types::Value& v = tuple.Get(i);
      if (v.is_null()) continue;
      distinct[i].insert(v);
      if (v.type() == types::TypeId::kInt64) {
        const int64_t x = v.AsInt64();
        if (!bounded[i] || x < stats[i].min_value) stats[i].min_value = x;
        if (!bounded[i] || x > stats[i].max_value) stats[i].max_value = x;
        bounded[i] = true;
      }
    }
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    stats[i].num_distinct = static_cast<int64_t>(distinct[i].size());
  }
  stats_ = std::move(stats);
  BumpStatsEpoch();
  return common::Status::OK();
}

const ColumnStats& Table::GetColumnStats(const std::string& column) const {
  static const ColumnStats kEmpty;
  const std::optional<size_t> col = FindColumn(column);
  if (!col.has_value()) return kEmpty;
  return stats_[*col];
}

common::Status Table::SetDeclaredStats(const std::string& column,
                                       const ColumnStats& stats) {
  const std::optional<size_t> col = FindColumn(column);
  if (!col.has_value()) {
    return common::Status::NotFound("no column " + column + " in table " +
                                    name_);
  }
  stats_[*col] = stats;
  BumpStatsEpoch();
  return common::Status::OK();
}

int64_t Table::EffectiveDistinct(const std::string& column,
                                 bool use_collected) const {
  if (use_collected) {
    const std::shared_ptr<const stats::TableStatistics> collected =
        collected_stats();
    if (collected != nullptr) {
      const stats::ColumnDistribution* d = collected->Find(column);
      if (d != nullptr && d->ndv > 0.0) {
        return static_cast<int64_t>(d->ndv + 0.5);
      }
    }
  }
  return GetColumnStats(column).num_distinct;
}

types::RowSchema Table::RowSchemaForAlias(const std::string& alias) const {
  std::vector<types::ColumnInfo> cols;
  cols.reserve(columns_.size());
  for (const ColumnDef& col : columns_) {
    cols.push_back({alias, col.name, col.type});
  }
  return types::RowSchema(std::move(cols));
}

}  // namespace ppp::catalog
