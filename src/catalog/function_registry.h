#ifndef PPP_CATALOG_FUNCTION_REGISTRY_H_
#define PPP_CATALOG_FUNCTION_REGISTRY_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "types/value.h"

namespace ppp::catalog {

/// Metadata and implementation of a user-defined function.
///
/// Following the paper (§2), the cost of a function is declared in units
/// of *random database I/Os per invocation*: costly100 costs as much as a
/// query touching 100 unclustered tuples. The executor counts invocations
/// and the measurement harness charges `invocations × cost_per_call`;
/// implementations therefore do no real work.
struct FunctionDef {
  std::string name;
  /// Cost per invocation in random-I/O units. Simple comparison predicates
  /// are "zero cost" in the paper's model.
  double cost_per_call = 0.0;
  /// Estimated fraction of tuples for which a boolean function returns
  /// true. Ignored for non-boolean functions.
  double selectivity = 1.0;
  types::TypeId return_type = types::TypeId::kBool;
  /// Whether the predicate-cache layer may memoize results (§5.1).
  bool cacheable = true;
  /// When false, the measurement harness does not bill invocations at
  /// cost_per_call: the function does *real* metered work (e.g. a rewritten
  /// subquery whose I/O already flows through the buffer pool), and
  /// cost_per_call exists only for the optimizer's estimates.
  bool charge_invocations = true;
  /// Whether impl may be invoked from the batch executor's worker threads.
  /// False for functions that touch shared engine state (e.g. rewritten
  /// subqueries executing nested plans through the buffer pool); such
  /// predicates always evaluate on the coordinator thread.
  bool parallel_safe = true;
  std::function<types::Value(const std::vector<types::Value>&)> impl;
};

/// Name → FunctionDef map. The optimizer reads cost/selectivity; the
/// executor calls impl.
class FunctionRegistry {
 public:
  FunctionRegistry() = default;

  FunctionRegistry(const FunctionRegistry&) = delete;
  FunctionRegistry& operator=(const FunctionRegistry&) = delete;

  common::Status Register(FunctionDef def);

  /// Looks up by name; NotFound if absent.
  common::Result<const FunctionDef*> Lookup(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return functions_.count(name) > 0;
  }

  std::vector<std::string> Names() const;

  /// Registers a deterministic boolean UDF with the given cost and true
  /// selectivity. The implementation hashes its arguments so the *actual*
  /// pass rate over uniform data matches `selectivity`, keeping estimated
  /// and measured selectivities aligned as in the paper's synthetic setup.
  common::Status RegisterCostlyPredicate(const std::string& name, double cost,
                                         double selectivity);

 private:
  std::unordered_map<std::string, FunctionDef> functions_;
};

}  // namespace ppp::catalog

#endif  // PPP_CATALOG_FUNCTION_REGISTRY_H_
