#ifndef PPP_CATALOG_CATALOG_H_
#define PPP_CATALOG_CATALOG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/function_registry.h"
#include "catalog/table.h"
#include "common/status.h"
#include "storage/buffer_pool.h"

namespace ppp::catalog {

/// The system catalog: tables (with their storage) and user-defined
/// functions. One Catalog per Database instance; all storage goes through
/// the single BufferPool passed at construction so every experiment's I/O
/// is centrally counted.
///
/// Thread safety: the table maps are guarded by an internal mutex so
/// concurrent sessions can resolve tables while another session creates
/// one. Table* pointers stay valid for the catalog's lifetime (tables are
/// never dropped); Table itself guards its mutable statistics.
class Catalog {
 public:
  /// Called (with the table name) after a table's statistics epoch bumps —
  /// i.e. after ANALYZE swaps its snapshot or declared stats are
  /// overridden. Invoked outside all catalog locks.
  using StatsListener = std::function<void(const std::string&)>;
  /// Reserved name prefix of the built-in system tables; CreateTable
  /// rejects it so user tables can never shadow introspection.
  static constexpr const char* kSystemPrefix = "ppp_";

  /// Construction registers the built-in system tables (ppp_query_log,
  /// ppp_metrics, ppp_metrics_window, ppp_spans, ppp_table_stats), so
  /// every Database is introspectable from its first query.
  explicit Catalog(storage::BufferPool* pool);

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table; AlreadyExists if the name is taken,
  /// InvalidArgument for the reserved ppp_ prefix.
  common::Result<Table*> CreateTable(const std::string& name,
                                     std::vector<ColumnDef> columns);

  /// Resolves base tables and system tables alike.
  common::Result<Table*> GetTable(const std::string& name) const;

  /// Base-table names only, sorted. System tables are deliberately
  /// excluded: ANALYZE-all, schema dumps, and equivalence harnesses
  /// iterate this and must not see virtual state.
  std::vector<std::string> TableNames() const;

  /// The registered system tables, sorted.
  std::vector<std::string> SystemTableNames() const;

  /// Registers a system table (name must carry kSystemPrefix and the
  /// Table must be in system mode). The built-ins go through this from
  /// the constructor; tests can add their own.
  common::Result<Table*> RegisterSystemTable(std::unique_ptr<Table> table);

  /// Subscribes to stats changes on every table (current and future);
  /// returns an id for RemoveStatsListener. Plan caches hang their
  /// invalidation off this.
  uint64_t AddStatsListener(StatsListener listener);
  void RemoveStatsListener(uint64_t id);

  FunctionRegistry& functions() { return functions_; }
  const FunctionRegistry& functions() const { return functions_; }

  storage::BufferPool* buffer_pool() const { return pool_; }

 private:
  /// Wires the per-table stats-changed callback to NotifyStatsChanged.
  void HookTable(Table* table);
  void NotifyStatsChanged(const std::string& table_name) const;

  storage::BufferPool* pool_;
  /// Guards tables_ / system_tables_.
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, std::unique_ptr<Table>> system_tables_;
  FunctionRegistry functions_;
  mutable std::mutex listeners_mu_;
  uint64_t next_listener_id_ = 1;
  std::unordered_map<uint64_t, StatsListener> listeners_;
};

}  // namespace ppp::catalog

#endif  // PPP_CATALOG_CATALOG_H_
