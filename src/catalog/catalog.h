#ifndef PPP_CATALOG_CATALOG_H_
#define PPP_CATALOG_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/function_registry.h"
#include "catalog/table.h"
#include "common/status.h"
#include "storage/buffer_pool.h"

namespace ppp::catalog {

/// The system catalog: tables (with their storage) and user-defined
/// functions. One Catalog per Database instance; all storage goes through
/// the single BufferPool passed at construction so every experiment's I/O
/// is centrally counted.
class Catalog {
 public:
  explicit Catalog(storage::BufferPool* pool) : pool_(pool) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty table; AlreadyExists if the name is taken.
  common::Result<Table*> CreateTable(const std::string& name,
                                     std::vector<ColumnDef> columns);

  common::Result<Table*> GetTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  FunctionRegistry& functions() { return functions_; }
  const FunctionRegistry& functions() const { return functions_; }

  storage::BufferPool* buffer_pool() const { return pool_; }

 private:
  storage::BufferPool* pool_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  FunctionRegistry functions_;
};

}  // namespace ppp::catalog

#endif  // PPP_CATALOG_CATALOG_H_
