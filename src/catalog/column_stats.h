#ifndef PPP_CATALOG_COLUMN_STATS_H_
#define PPP_CATALOG_COLUMN_STATS_H_

#include <cstdint>
#include <string>

namespace ppp::catalog {

/// Per-column statistics used by selectivity estimation. Collected at load
/// time (the workload generator knows them exactly; Analyze() recomputes
/// them from data for tables loaded by hand).
struct ColumnStats {
  /// Number of distinct non-null values.
  int64_t num_distinct = 0;
  /// Domain bounds (int64 columns only; 0 otherwise).
  int64_t min_value = 0;
  int64_t max_value = 0;

  std::string ToString() const {
    return "distinct=" + std::to_string(num_distinct) + " range=[" +
           std::to_string(min_value) + "," + std::to_string(max_value) + "]";
  }
};

}  // namespace ppp::catalog

#endif  // PPP_CATALOG_COLUMN_STATS_H_
