#include "catalog/catalog.h"

#include <algorithm>

namespace ppp::catalog {

common::Result<Table*> Catalog::CreateTable(const std::string& name,
                                            std::vector<ColumnDef> columns) {
  if (name.empty()) {
    return common::Status::InvalidArgument("table name must be non-empty");
  }
  if (tables_.count(name) > 0) {
    return common::Status::AlreadyExists("table " + name + " already exists");
  }
  if (columns.empty()) {
    return common::Status::InvalidArgument("table " + name +
                                           " must have at least one column");
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    for (size_t j = i + 1; j < columns.size(); ++j) {
      if (columns[i].name == columns[j].name) {
        return common::Status::InvalidArgument("duplicate column " +
                                               columns[i].name);
      }
    }
  }
  auto table = std::make_unique<Table>(name, std::move(columns), pool_);
  Table* ptr = table.get();
  tables_.emplace(name, std::move(table));
  return ptr;
}

common::Result<Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return common::Status::NotFound("no table named " + name);
  }
  return it->second.get();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace ppp::catalog
