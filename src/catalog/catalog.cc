#include "catalog/catalog.h"

#include <algorithm>

#include "catalog/system_tables.h"
#include "common/string_util.h"

namespace ppp::catalog {

Catalog::Catalog(storage::BufferPool* pool) : pool_(pool) {
  RegisterBuiltinSystemTables(this);
}

common::Result<Table*> Catalog::CreateTable(const std::string& name,
                                            std::vector<ColumnDef> columns) {
  if (name.empty()) {
    return common::Status::InvalidArgument("table name must be non-empty");
  }
  if (common::StartsWith(name, kSystemPrefix)) {
    return common::Status::InvalidArgument(
        "the " + std::string(kSystemPrefix) +
        " prefix is reserved for system tables");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tables_.count(name) > 0) {
      return common::Status::AlreadyExists("table " + name +
                                           " already exists");
    }
  }
  if (columns.empty()) {
    return common::Status::InvalidArgument("table " + name +
                                           " must have at least one column");
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    for (size_t j = i + 1; j < columns.size(); ++j) {
      if (columns[i].name == columns[j].name) {
        return common::Status::InvalidArgument("duplicate column " +
                                               columns[i].name);
      }
    }
  }
  auto table = std::make_unique<Table>(name, std::move(columns), pool_);
  Table* ptr = table.get();
  HookTable(ptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    tables_.emplace(name, std::move(table));
  }
  return ptr;
}

common::Result<Table*> Catalog::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it != tables_.end()) return it->second.get();
  auto sys = system_tables_.find(name);
  if (sys != system_tables_.end()) return sys->second.get();
  return common::Status::NotFound("no table named " + name);
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(tables_.size());
    for (const auto& [name, table] : tables_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> Catalog::SystemTableNames() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(system_tables_.size());
    for (const auto& [name, table] : system_tables_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

common::Result<Table*> Catalog::RegisterSystemTable(
    std::unique_ptr<Table> table) {
  if (table == nullptr || !table->is_system()) {
    return common::Status::InvalidArgument(
        "RegisterSystemTable requires a table in system mode");
  }
  const std::string& name = table->name();
  if (!common::StartsWith(name, kSystemPrefix)) {
    return common::Status::InvalidArgument(
        "system table " + name + " must carry the " +
        std::string(kSystemPrefix) + " prefix");
  }
  Table* ptr = table.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (system_tables_.count(name) > 0) {
      return common::Status::AlreadyExists("system table " + name +
                                           " already exists");
    }
    system_tables_.emplace(name, std::move(table));
  }
  return ptr;
}

uint64_t Catalog::AddStatsListener(StatsListener listener) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  const uint64_t id = next_listener_id_++;
  listeners_.emplace(id, std::move(listener));
  return id;
}

void Catalog::RemoveStatsListener(uint64_t id) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  listeners_.erase(id);
}

void Catalog::HookTable(Table* table) {
  const std::string name = table->name();
  table->SetStatsChangedCallback(
      [this, name]() { NotifyStatsChanged(name); });
}

void Catalog::NotifyStatsChanged(const std::string& table_name) const {
  // Copy the listeners out so a callback can add/remove listeners (or take
  // its own locks) without deadlocking against listeners_mu_.
  std::vector<StatsListener> snapshot;
  {
    std::lock_guard<std::mutex> lock(listeners_mu_);
    snapshot.reserve(listeners_.size());
    for (const auto& [id, fn] : listeners_) snapshot.push_back(fn);
  }
  for (const StatsListener& fn : snapshot) fn(table_name);
}

}  // namespace ppp::catalog
