#ifndef PPP_CATALOG_TABLE_H_
#define PPP_CATALOG_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/column_stats.h"
#include "common/status.h"
#include "stats/table_stats.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "types/row_schema.h"
#include "types/tuple.h"
#include "types/value.h"

namespace ppp::catalog {

/// Column definition of a stored base table.
struct ColumnDef {
  std::string name;
  types::TypeId type = types::TypeId::kInt64;
};

/// A stored base table: schema + heap file + secondary B-tree indexes +
/// statistics. Owned by the Catalog.
///
/// A table may instead be a *system* (virtual) table: rows come from a
/// provider function that snapshots in-memory engine state (query log,
/// metrics, spans, table stats) at scan open, there is no heap file, and
/// Insert/CreateIndex/Analyze are rejected. Everything downstream —
/// binder, predicate analyzer, cost model, placement — sees the same
/// Table interface, so introspection queries plan like ordinary ones.
class Table {
 public:
  /// Produces the current rows of a system table, each matching columns().
  using SystemRowProvider =
      std::function<common::Result<std::vector<types::Tuple>>()>;

  Table(std::string name, std::vector<ColumnDef> columns,
        storage::BufferPool* pool);

  /// Constructs a system table. `row_count_hint` feeds NumTuples() for
  /// costing without materializing (pass {} for a 0 hint — the cost model
  /// substitutes its small-table floor).
  Table(std::string name, std::vector<ColumnDef> columns,
        SystemRowProvider provider, std::function<int64_t()> row_count_hint);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  std::optional<size_t> FindColumn(const std::string& column) const;

  /// Inserts a tuple (must match the column count/types) and maintains all
  /// existing indexes.
  common::Status Insert(const types::Tuple& tuple);

  /// Reads one tuple by record id.
  common::Result<types::Tuple> Read(storage::RecordId rid) const;

  /// Builds a B-tree index over `column` (must be INT64) from the current
  /// contents; future inserts maintain it.
  common::Status CreateIndex(const std::string& column);

  /// Returns the index over `column`, or nullptr if none exists.
  const storage::BTree* GetIndex(const std::string& column) const;
  bool HasIndex(const std::string& column) const {
    return GetIndex(column) != nullptr;
  }

  /// Recomputes per-column statistics with a full scan.
  common::Status Analyze();

  /// Statistics for `column` (zeroes if Analyze was never run).
  const ColumnStats& GetColumnStats(const std::string& column) const;

  /// Overrides the declared statistics of one column. Bench/test hook for
  /// planting stale or misleading declarations that ANALYZE then corrects.
  common::Status SetDeclaredStats(const std::string& column,
                                  const ColumnStats& stats);

  /// Collected (`ANALYZE <table>`) statistics, or nullptr before the
  /// first ANALYZE. The snapshot is immutable; a concurrent ANALYZE swaps
  /// the pointer, so readers keep a consistent view for as long as they
  /// hold the shared_ptr.
  std::shared_ptr<const stats::TableStatistics> collected_stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return collected_;
  }
  void SetCollectedStats(std::shared_ptr<const stats::TableStatistics> s) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      collected_ = std::move(s);
    }
    BumpStatsEpoch();
  }

  /// Monotone counter bumped every time the statistics that drive planning
  /// change (ANALYZE snapshot swap, declared-stats override, re-Analyze).
  /// Plan caches fold this into their key so a stats change is a cache miss
  /// rather than a stale plan.
  uint64_t stats_epoch() const {
    return stats_epoch_.load(std::memory_order_acquire);
  }

  /// Installs a callback fired (outside stats_mu_) after every stats-epoch
  /// bump. At most one listener; the Catalog wires this at registration to
  /// fan out to its own listeners.
  void SetStatsChangedCallback(std::function<void()> cb) {
    stats_changed_ = std::move(cb);
  }

  /// Distinct count of `column` through the provenance ladder: collected
  /// NDV when ANALYZE has run (and `use_collected`), declared otherwise.
  int64_t EffectiveDistinct(const std::string& column,
                            bool use_collected = true) const;

  /// True for catalog-registered virtual tables (ppp_query_log & co).
  bool is_system() const { return provider_ != nullptr; }

  /// Snapshots the current rows of a system table (errors on base tables).
  /// Each call re-reads the live engine state; SystemTableScan calls it
  /// once per query so self-joins see one consistent snapshot.
  common::Result<std::vector<types::Tuple>> MaterializeSystemRows() const;

  int64_t NumTuples() const;
  int64_t NumPages() const;

  const storage::HeapFile& heap() const { return heap_; }

  /// Row descriptor of a scan of this table under range-variable `alias`.
  types::RowSchema RowSchemaForAlias(const std::string& alias) const;

 private:
  void BumpStatsEpoch() {
    stats_epoch_.fetch_add(1, std::memory_order_acq_rel);
    if (stats_changed_) stats_changed_();
  }

  std::string name_;
  std::vector<ColumnDef> columns_;
  storage::BufferPool* pool_;
  storage::HeapFile heap_;
  std::unordered_map<size_t, std::unique_ptr<storage::BTree>> indexes_;
  std::vector<ColumnStats> stats_;
  /// Guards collected_ only; declared stats_ are written single-threaded
  /// at load time.
  mutable std::mutex stats_mu_;
  std::shared_ptr<const stats::TableStatistics> collected_;
  std::atomic<uint64_t> stats_epoch_{0};
  /// Fired after each stats-epoch bump; set once at catalog registration,
  /// before any concurrent use.
  std::function<void()> stats_changed_;
  /// Set only on system tables.
  SystemRowProvider provider_;
  std::function<int64_t()> row_count_hint_;
};

}  // namespace ppp::catalog

#endif  // PPP_CATALOG_TABLE_H_
