#include "catalog/system_tables.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/table.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/plan_audit.h"
#include "obs/plan_history.h"
#include "obs/query_log.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "stats/table_stats.h"
#include "types/tuple.h"
#include "types/value.h"

namespace ppp::catalog {

namespace {

using types::TypeId;
using types::Tuple;
using types::Value;

/// Hashes are full uint64s; int64 columns would flip sign on half of them,
/// so they surface as fixed-width hex strings (also how EXPLAIN prints
/// fingerprints, keeping the two joinable by eye).
Value HexValue(uint64_t h) {
  return Value(common::StringPrintf("%016llx",
                                    static_cast<unsigned long long>(h)));
}

Value IntValue(uint64_t v) { return Value(static_cast<int64_t>(v)); }

common::Result<std::vector<Tuple>> QueryLogRows() {
  std::vector<Tuple> rows;
  const std::vector<obs::QueryLogRecord> records =
      obs::QueryLog::Global().Snapshot();
  rows.reserve(records.size());
  for (const obs::QueryLogRecord& r : records) {
    rows.emplace_back(std::vector<Value>{
        IntValue(r.query_id), IntValue(r.session_id), HexValue(r.text_hash),
        HexValue(r.plan_fingerprint), Value(r.algorithm),
        Value(r.wall_seconds), Value(r.optimize_seconds),
        Value(r.execute_seconds), IntValue(r.rows_in), IntValue(r.rows_out),
        IntValue(r.udf_invocations), IntValue(r.cache_hits),
        IntValue(r.transfer_pruned), IntValue(r.drift_flags),
        Value(std::string(obs::StatsTierName(r.stats_tier))),
        Value(r.bucket), IntValue(r.plan_changed ? 1 : 0),
        IntValue(r.plan_regressed ? 1 : 0)});
  }
  return rows;
}

common::Result<std::vector<Tuple>> OperatorAuditRows() {
  std::vector<Tuple> rows;
  const std::vector<obs::OperatorAuditRecord> records =
      obs::PlanAudit::Global().Snapshot();
  rows.reserve(records.size());
  for (const obs::OperatorAuditRecord& r : records) {
    rows.emplace_back(std::vector<Value>{
        IntValue(r.query_id), Value(r.path), Value(r.op), Value(r.est_rows),
        IntValue(r.actual_rows),
        r.qerror > 0.0 ? Value(r.qerror) : Value::Null(),
        Value(r.inclusive_seconds), IntValue(r.udf_invocations)});
  }
  return rows;
}

common::Result<std::vector<Tuple>> PlanHistoryRows() {
  std::vector<Tuple> rows;
  const std::vector<obs::PlanHistoryEntry> entries =
      obs::PlanHistory::Global().Snapshot();
  rows.reserve(entries.size());
  for (const obs::PlanHistoryEntry& e : entries) {
    rows.emplace_back(std::vector<Value>{
        HexValue(e.text_hash), HexValue(e.plan_fingerprint),
        IntValue(e.executions), Value(e.wall_mean), Value(e.wall_p95),
        IntValue(e.total_invocations), Value(e.max_qerror),
        IntValue(e.first_query_id), IntValue(e.last_query_id),
        IntValue(e.plan_changed ? 1 : 0), IntValue(e.regressed ? 1 : 0)});
  }
  return rows;
}

common::Result<std::vector<Tuple>> MetricsRows() {
  std::vector<Tuple> rows;
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  rows.reserve(snap.counters.size() + snap.gauges.size() +
               snap.histograms.size());
  // One flat relation over all three metric kinds: scalar kinds fill
  // `value` and leave the distribution columns NULL, histograms do the
  // reverse — so `WHERE kind = 'counter'` behaves like the counters map.
  for (const auto& [name, value] : snap.counters) {
    rows.emplace_back(std::vector<Value>{
        Value(std::string("counter")), Value(name),
        Value(static_cast<double>(value)), Value::Null(), Value::Null(),
        Value::Null(), Value::Null(), Value::Null(), Value::Null()});
  }
  for (const auto& [name, value] : snap.gauges) {
    rows.emplace_back(std::vector<Value>{
        Value(std::string("gauge")), Value(name), Value(value), Value::Null(),
        Value::Null(), Value::Null(), Value::Null(), Value::Null(),
        Value::Null()});
  }
  for (const auto& [name, h] : snap.histograms) {
    rows.emplace_back(std::vector<Value>{
        Value(std::string("histogram")), Value(name), Value::Null(),
        IntValue(h.count), Value(h.sum), Value(h.min), Value(h.max),
        Value(h.p50), Value(h.p99)});
  }
  return rows;
}

common::Result<std::vector<Tuple>> MetricsWindowRows() {
  std::vector<Tuple> rows;
  const std::vector<obs::TimeSeriesPoint> points =
      obs::TimeSeries::Global().Snapshot();
  rows.reserve(points.size());
  for (const obs::TimeSeriesPoint& p : points) {
    rows.emplace_back(std::vector<Value>{
        Value(p.name), Value(p.bucket), Value(p.delta), Value(p.window_total),
        Value(p.rate_p50), Value(p.rate_p99)});
  }
  return rows;
}

common::Result<std::vector<Tuple>> SpanRows() {
  std::vector<Tuple> rows;
  const std::vector<obs::SpanEvent> events =
      obs::SpanTracer::Global().Snapshot();
  rows.reserve(events.size());
  for (const obs::SpanEvent& e : events) {
    Value query_id = Value::Null();
    for (const auto& [key, value] : e.args) {
      if (key == "query_id") {
        try {
          query_id = Value(static_cast<int64_t>(std::stoull(value)));
        } catch (...) {
          // Leave NULL: a foreign arg named query_id is not ours.
        }
        break;
      }
    }
    rows.emplace_back(std::vector<Value>{Value(e.name), Value(e.cat),
                                         Value(e.ts_us), Value(e.dur_us),
                                         Value(static_cast<int64_t>(e.tid)),
                                         std::move(query_id)});
  }
  return rows;
}

common::Result<std::vector<Tuple>> TableStatsRows(const Catalog* catalog) {
  std::vector<Tuple> rows;
  for (const std::string& name : catalog->TableNames()) {
    PPP_ASSIGN_OR_RETURN(Table * table, catalog->GetTable(name));
    const std::shared_ptr<const stats::TableStatistics> stats =
        table->collected_stats();
    if (stats == nullptr) continue;  // Never analyzed.
    for (const stats::ColumnDistribution& col : stats->columns) {
      rows.emplace_back(std::vector<Value>{
          Value(name), Value(col.column), IntValue(col.row_count),
          IntValue(col.null_count), Value(col.ndv),
          col.has_range ? Value(col.min_value.ToString()) : Value::Null(),
          col.has_range ? Value(col.max_value.ToString()) : Value::Null(),
          IntValue(col.mcvs.size()), Value(col.mcv_total_frequency),
          IntValue(col.histogram.buckets().size()),
          IntValue(col.sample_rows)});
    }
  }
  return rows;
}

void MustRegister(Catalog* catalog, std::unique_ptr<Table> table) {
  // The built-in schemas are static; a failure here is a programming
  // error, not an input error.
  catalog->RegisterSystemTable(std::move(table)).value();
}

}  // namespace

void RegisterBuiltinSystemTables(Catalog* catalog) {
  MustRegister(
      catalog,
      std::make_unique<Table>(
          "ppp_query_log",
          std::vector<ColumnDef>{{"query_id", TypeId::kInt64},
                                 {"session_id", TypeId::kInt64},
                                 {"text_hash", TypeId::kString},
                                 {"plan_fingerprint", TypeId::kString},
                                 {"algorithm", TypeId::kString},
                                 {"wall_seconds", TypeId::kDouble},
                                 {"optimize_seconds", TypeId::kDouble},
                                 {"execute_seconds", TypeId::kDouble},
                                 {"rows_in", TypeId::kInt64},
                                 {"rows_out", TypeId::kInt64},
                                 {"udf_invocations", TypeId::kInt64},
                                 {"cache_hits", TypeId::kInt64},
                                 {"transfer_pruned", TypeId::kInt64},
                                 {"drift_flags", TypeId::kInt64},
                                 {"stats_tier", TypeId::kString},
                                 {"bucket", TypeId::kInt64},
                                 {"plan_changed", TypeId::kInt64},
                                 {"plan_regressed", TypeId::kInt64}},
          QueryLogRows,
          [] {
            return static_cast<int64_t>(obs::QueryLog::Global().size());
          }));

  MustRegister(
      catalog,
      std::make_unique<Table>(
          "ppp_metrics",
          std::vector<ColumnDef>{{"kind", TypeId::kString},
                                 {"name", TypeId::kString},
                                 {"value", TypeId::kDouble},
                                 {"count", TypeId::kInt64},
                                 {"sum", TypeId::kDouble},
                                 {"min", TypeId::kDouble},
                                 {"max", TypeId::kDouble},
                                 {"p50", TypeId::kDouble},
                                 {"p99", TypeId::kDouble}},
          MetricsRows,
          [] {
            // Counters dominate the registry; good enough for costing.
            return static_cast<int64_t>(
                obs::MetricsRegistry::Global().SnapshotCounters().size());
          }));

  MustRegister(catalog,
               std::make_unique<Table>(
                   "ppp_metrics_window",
                   std::vector<ColumnDef>{{"name", TypeId::kString},
                                          {"bucket", TypeId::kInt64},
                                          {"delta", TypeId::kDouble},
                                          {"window_total", TypeId::kDouble},
                                          {"rate_p50", TypeId::kDouble},
                                          {"rate_p99", TypeId::kDouble}},
                   MetricsWindowRows, [] {
                     return static_cast<int64_t>(
                         obs::TimeSeries::Global().Snapshot().size());
                   }));

  MustRegister(catalog,
               std::make_unique<Table>(
                   "ppp_spans",
                   std::vector<ColumnDef>{{"name", TypeId::kString},
                                          {"cat", TypeId::kString},
                                          {"ts_us", TypeId::kDouble},
                                          {"dur_us", TypeId::kDouble},
                                          {"tid", TypeId::kInt64},
                                          {"query_id", TypeId::kInt64}},
                   SpanRows, [] {
                     return static_cast<int64_t>(
                         obs::SpanTracer::Global().size());
                   }));

  MustRegister(
      catalog,
      std::make_unique<Table>(
          "ppp_table_stats",
          std::vector<ColumnDef>{{"table_name", TypeId::kString},
                                 {"column_name", TypeId::kString},
                                 {"row_count", TypeId::kInt64},
                                 {"null_count", TypeId::kInt64},
                                 {"ndv", TypeId::kDouble},
                                 {"min_value", TypeId::kString},
                                 {"max_value", TypeId::kString},
                                 {"mcv_count", TypeId::kInt64},
                                 {"mcv_total_frequency", TypeId::kDouble},
                                 {"histogram_buckets", TypeId::kInt64},
                                 {"sample_rows", TypeId::kInt64}},
          [catalog] { return TableStatsRows(catalog); },
          [catalog]() -> int64_t {
            int64_t n = 0;
            for (const std::string& name : catalog->TableNames()) {
              auto table = catalog->GetTable(name);
              if (table.ok() && (*table)->collected_stats() != nullptr) {
                n += static_cast<int64_t>((*table)->columns().size());
              }
            }
            return n;
          }));

  MustRegister(
      catalog,
      std::make_unique<Table>(
          "ppp_operator_audit",
          std::vector<ColumnDef>{{"query_id", TypeId::kInt64},
                                 {"path", TypeId::kString},
                                 {"op", TypeId::kString},
                                 {"est_rows", TypeId::kDouble},
                                 {"actual_rows", TypeId::kInt64},
                                 {"qerror", TypeId::kDouble},
                                 {"inclusive_seconds", TypeId::kDouble},
                                 {"udf_invocations", TypeId::kInt64}},
          OperatorAuditRows,
          [] {
            return static_cast<int64_t>(obs::PlanAudit::Global().size());
          }));

  MustRegister(
      catalog,
      std::make_unique<Table>(
          "ppp_plan_history",
          std::vector<ColumnDef>{{"text_hash", TypeId::kString},
                                 {"plan_fingerprint", TypeId::kString},
                                 {"executions", TypeId::kInt64},
                                 {"wall_mean", TypeId::kDouble},
                                 {"wall_p95", TypeId::kDouble},
                                 {"total_invocations", TypeId::kInt64},
                                 {"max_qerror", TypeId::kDouble},
                                 {"first_query_id", TypeId::kInt64},
                                 {"last_query_id", TypeId::kInt64},
                                 {"plan_changed", TypeId::kInt64},
                                 {"regressed", TypeId::kInt64}},
          PlanHistoryRows, [] {
            return static_cast<int64_t>(obs::PlanHistory::Global().size());
          }));
}

}  // namespace ppp::catalog
