#ifndef PPP_CATALOG_SYSTEM_TABLES_H_
#define PPP_CATALOG_SYSTEM_TABLES_H_

namespace ppp::catalog {

class Catalog;

/// Registers the built-in introspection tables on `catalog` (called by the
/// Catalog constructor):
///
///   ppp_query_log      one row per executed query (obs::QueryLog ring)
///   ppp_metrics        the registry's counters/gauges/histograms, flat
///   ppp_metrics_window 1 s counter deltas with window rollups
///   ppp_spans          the span tracer's buffer (trace↔log via query_id)
///   ppp_table_stats    per-column TableStatistics of analyzed base tables
///   ppp_operator_audit per-operator est-vs-actual records (obs::PlanAudit)
///   ppp_plan_history   per (text_hash, fingerprint) execution aggregates
///                      with plan-change/regression flags (obs::PlanHistory)
///
/// All seven are read-only virtual tables: rows are materialized from live
/// engine state at scan open, so a query sees one consistent snapshot.
/// ppp_table_stats is the only one needing the catalog itself; it holds a
/// back-pointer, which is safe because the catalog owns the table.
void RegisterBuiltinSystemTables(Catalog* catalog);

}  // namespace ppp::catalog

#endif  // PPP_CATALOG_SYSTEM_TABLES_H_
