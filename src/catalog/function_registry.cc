#include "catalog/function_registry.h"

#include <algorithm>

namespace ppp::catalog {

common::Status FunctionRegistry::Register(FunctionDef def) {
  if (def.name.empty()) {
    return common::Status::InvalidArgument("function name must be non-empty");
  }
  if (functions_.count(def.name) > 0) {
    return common::Status::AlreadyExists("function " + def.name +
                                         " already registered");
  }
  functions_.emplace(def.name, std::move(def));
  return common::Status::OK();
}

common::Result<const FunctionDef*> FunctionRegistry::Lookup(
    const std::string& name) const {
  auto it = functions_.find(name);
  if (it == functions_.end()) {
    return common::Status::NotFound("no function named " + name);
  }
  return &it->second;
}

std::vector<std::string> FunctionRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(functions_.size());
  for (const auto& [name, def] : functions_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

common::Status FunctionRegistry::RegisterCostlyPredicate(
    const std::string& name, double cost, double selectivity) {
  FunctionDef def;
  def.name = name;
  def.cost_per_call = cost;
  def.selectivity = selectivity;
  def.return_type = types::TypeId::kBool;
  def.cacheable = true;
  def.impl = [selectivity](const std::vector<types::Value>& args) {
    // Deterministic pseudo-random decision from the argument values, so the
    // realized pass rate over a uniform domain tracks `selectivity` while
    // repeated invocations on the same binding agree (cacheable).
    uint64_t h = 0x9E3779B97F4A7C15ULL;
    for (const types::Value& v : args) {
      h ^= static_cast<uint64_t>(v.Hash()) + 0x9E3779B97F4A7C15ULL +
           (h << 6) + (h >> 2);
    }
    // One extra mix so consecutive integers do not alias the modulus.
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    return types::Value(u < selectivity);
  };
  return Register(std::move(def));
}

}  // namespace ppp::catalog
