#ifndef PPP_EXEC_BLOOM_FILTER_H_
#define PPP_EXEC_BLOOM_FILTER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ppp::exec {

/// Cache-friendly register-blocked Bloom filter (the "split block" design):
/// the bit array is an array of 64-byte blocks, each eight 64-bit words.
/// Every key derives exactly two hashes from its 64-bit input hash — one
/// selects the block, the other is salted per word to pick one bit in each
/// of the eight words — so an insert or probe touches a single cache line
/// and k = 8 bits. This is the filter predicate transfer passes sideways
/// across hash joins: a probe costs a handful of register ops, i.e. it has
/// rank ≈ -inf next to any expensive UDF.
class BloomFilter {
 public:
  /// Words per block; one bit is set/tested in each.
  static constexpr size_t kWordsPerBlock = 8;
  static constexpr size_t kBitsPerBlock = kWordsPerBlock * 64;

  /// Sizes the filter for `expected_keys` at ~16 bits per key, rounded up
  /// to a power-of-two block count (so block selection is a mask).
  explicit BloomFilter(size_t expected_keys);

  /// Inserts a key by its 64-bit hash (callers hash a key exactly once and
  /// share the hash with the join's hash table — see HashJoinOp).
  void InsertHash(uint64_t hash) {
    Block& block = blocks_[BlockIndex(hash)];
    const uint64_t odd = OddHash(hash);
    for (size_t w = 0; w < kWordsPerBlock; ++w) {
      block.words[w] |= WordMask(odd, w);
    }
  }

  /// Membership test; false positives possible, false negatives never.
  bool MightContainHash(uint64_t hash) const {
    const Block& block = blocks_[BlockIndex(hash)];
    const uint64_t odd = OddHash(hash);
    for (size_t w = 0; w < kWordsPerBlock; ++w) {
      if ((block.words[w] & WordMask(odd, w)) == 0) return false;
    }
    return true;
  }

  /// Batch probe over a NextBatch-shaped hash vector: keep->at(i) is set to
  /// 1 when hashes[i] might be in the filter. Returns the number kept.
  /// Bit-identical to calling MightContainHash per element.
  size_t ProbeBatch(const uint64_t* hashes, size_t count,
                    std::vector<char>* keep) const;

  size_t num_blocks() const { return blocks_.size(); }
  size_t num_bits() const { return blocks_.size() * kBitsPerBlock; }

  /// Number of set bits (popcount over the whole array; metric use only).
  uint64_t BitsSet() const;

  /// Predicted false-positive rate from the filter's saturation: a probe
  /// passes when all 8 tested bits are set, ≈ (bits_set / bits)^8 under
  /// the usual independence assumption.
  double EstimatedFpr() const;

 private:
  struct alignas(64) Block {
    uint64_t words[kWordsPerBlock] = {};
  };
  static_assert(sizeof(Block) == 64, "one block must be one cache line");

  size_t BlockIndex(uint64_t hash) const {
    // Fibonacci mix before masking so low-entropy hashes still spread.
    return static_cast<size_t>((hash * 0x9E3779B97F4A7C15ULL) >> 32) &
           block_mask_;
  }

  /// Second derived hash; forced odd so the per-word multiplies below are
  /// full-period.
  static uint64_t OddHash(uint64_t hash) {
    uint64_t h = hash ^ (hash >> 33);
    h *= 0xC2B2AE3D27D4EB4FULL;
    return h | 1;
  }

  /// Bit mask for word `w`: a distinct salt multiply per word, top 6 bits
  /// select the bit position (0..63).
  static uint64_t WordMask(uint64_t odd, size_t w) {
    static constexpr uint64_t kSalts[kWordsPerBlock] = {
        0x47B6137B44974D91ULL, 0x8824AD5BA2B7289DULL,
        0x705495C72DF1424BULL, 0x9EFC49475C6BFB31ULL,
        0x5C6BFB31705495C7ULL, 0x2DF1424B8824AD5BULL,
        0x9EFC494744974D91ULL, 0x47B6137BA2B7289DULL};
    return uint64_t{1} << ((odd * kSalts[w]) >> 58);
  }

  std::vector<Block> blocks_;
  size_t block_mask_ = 0;
};

/// One sideways filter handoff from a hash join's build side to a scan on
/// its probe side. The join (producer) publishes the filter once the build
/// completes; the scan (consumer) probes each batch before any predicate
/// above it runs, and falls back to pass-through while the filter is not
/// ready or after the kill switch fires.
///
/// Thread-safety: publication uses an acquire/release state flag (the
/// filter itself is immutable once published); the probe/pass counters are
/// relaxed atomics so concurrent readers (metrics, EXPLAIN) never race.
class BloomTransfer {
 public:
  BloomTransfer(std::string probe_alias, std::string probe_column,
                std::string build_alias, std::string build_column)
      : probe_alias_(std::move(probe_alias)),
        probe_column_(std::move(probe_column)),
        build_alias_(std::move(build_alias)),
        build_column_(std::move(build_column)) {}

  const std::string& probe_alias() const { return probe_alias_; }
  const std::string& probe_column() const { return probe_column_; }
  const std::string& build_alias() const { return build_alias_; }
  const std::string& build_column() const { return build_column_; }

  /// "probe <- build" site label, e.g. "t3.ua <- t10.ua1".
  std::string Site() const {
    return probe_alias_ + "." + probe_column_ + " <- " + build_alias_ + "." +
           build_column_;
  }

  /// Producer side: installs the built filter (first Open only; rescans
  /// keep the original — the build input is deterministic).
  void Publish(std::unique_ptr<BloomFilter> filter);

  /// Consumer side: the filter to probe, or nullptr while unpublished or
  /// after the kill switch disabled this transfer.
  const BloomFilter* ActiveFilter() const {
    const State s = state_.load(std::memory_order_acquire);
    return s == State::kReady ? filter_.get() : nullptr;
  }

  bool published() const {
    return state_.load(std::memory_order_acquire) != State::kEmpty;
  }

  /// Records one probed batch. Once at least `min_probes` rows were probed,
  /// a pass rate above `kill_pass_rate` kills the filter: it is pruning
  /// almost nothing, so the per-row probe is pure overhead.
  void RecordProbes(uint64_t probed, uint64_t passed);

  /// Join-side feedback: a row that passed the filter but found no match in
  /// the join's hash table was a false positive (counted only while the
  /// filter is actively pruning).
  void RecordJoinMiss() {
    join_misses_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t probed() const {
    return probed_.load(std::memory_order_relaxed);
  }
  uint64_t passed() const {
    return passed_.load(std::memory_order_relaxed);
  }
  uint64_t pruned() const { return probed() - passed(); }
  uint64_t join_misses() const {
    return join_misses_.load(std::memory_order_relaxed);
  }
  bool killed() const {
    return state_.load(std::memory_order_acquire) == State::kKilled;
  }
  bool claimed() const { return claimed_; }
  void set_claimed() { claimed_ = true; }

  /// Measured false-positive rate: of the rows the filter rejected or
  /// should have rejected (pruned + join misses), the fraction it let
  /// through. Negative when no negatives were observed yet.
  double MeasuredFpr() const;

  /// Kill-switch knobs, set from ExecParams at creation.
  uint64_t min_probes = 512;
  double kill_pass_rate = 0.95;

 private:
  enum class State { kEmpty, kReady, kKilled };

  std::string probe_alias_;
  std::string probe_column_;
  std::string build_alias_;
  std::string build_column_;
  bool claimed_ = false;  // A probe-side scan accepted this transfer.
  std::unique_ptr<BloomFilter> filter_;
  std::atomic<State> state_{State::kEmpty};
  std::atomic<uint64_t> probed_{0};
  std::atomic<uint64_t> passed_{0};
  std::atomic<uint64_t> join_misses_{0};
};

}  // namespace ppp::exec

#endif  // PPP_EXEC_BLOOM_FILTER_H_
