#ifndef PPP_EXEC_SYSTEM_SCAN_H_
#define PPP_EXEC_SYSTEM_SCAN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/table.h"
#include "exec/operator.h"
#include "exec/scan_ops.h"

namespace ppp::exec {

/// Scan of a catalog system table (ppp_query_log & co). The provider
/// snapshot is materialized once, at the first Open, and reused by rescans
/// — so the inner side of a nested-loop self-join and both sides of a
/// hash self-join see the same instant, and an introspection query never
/// observes rows it created itself (its own log record is appended after
/// its scans closed). Tuples come from memory, not the buffer pool, so a
/// system scan charges no I/O — matching the near-zero page cost the
/// optimizer estimated from the synthetic NumPages().
class SystemTableScanOp : public Operator {
 public:
  SystemTableScanOp(const catalog::Table* table, const std::string& alias);

  std::string Describe() const override;
  void AttachTransfer(std::shared_ptr<BloomTransfer> transfer,
                      size_t key_index) {
    transfers_.Attach(std::move(transfer), key_index);
  }

 protected:
  common::Status OpenImpl() override;
  common::Status NextImpl(types::Tuple* tuple, bool* eof) override;
  common::Status NextBatchImpl(size_t max_rows, TupleBatch* batch,
                               bool* eof) override;
  void RefreshLocalStats() const override { transfers_.FoldStats(&stats_); }

 private:
  const catalog::Table* table_;
  std::string alias_;
  bool materialized_ = false;
  std::vector<types::Tuple> rows_;
  size_t pos_ = 0;
  TransferProbe transfers_;
};

}  // namespace ppp::exec

#endif  // PPP_EXEC_SYSTEM_SCAN_H_
