#ifndef PPP_EXEC_SCAN_OPS_H_
#define PPP_EXEC_SCAN_OPS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/table.h"
#include "exec/operator.h"
#include "storage/record_id.h"

namespace ppp::exec {

/// Probe-side half of predicate transfer, shared by the scan operators: a
/// set of transferred Bloom filters, each probed batch-at-a-time against
/// one of the scan's columns *before* any predicate above the scan runs.
/// Filters that are unpublished (the join build has not run yet) or killed
/// pass everything through — pruning is strictly best-effort, correctness
/// comes from the joins above.
class TransferProbe {
 public:
  void Attach(std::shared_ptr<BloomTransfer> transfer, size_t key_index) {
    slots_.push_back({std::move(transfer), key_index});
  }

  bool empty() const { return slots_.empty(); }

  /// Filters `batch` in place against every active transferred filter,
  /// recording probe/pass counts (which may trip a kill switch).
  void FilterBatch(TupleBatch* batch) const;

  /// Columnar equivalent: probes each filter's key column directly (hashes
  /// computed from native column storage, consistent with Value::Hash) and
  /// narrows the selection vector — no tuples, no Value boxing.
  void FilterColumns(types::ColumnBatch* batch) const;

  /// Tuple-at-a-time equivalent: true when `tuple` survives every active
  /// filter.
  bool Passes(const types::Tuple& tuple) const;

  /// Folds the attached transfers' counters into `stats` (EXPLAIN ANALYZE).
  void FoldStats(OperatorStats* stats) const;

 private:
  struct Slot {
    std::shared_ptr<BloomTransfer> transfer;
    size_t key_index;
  };
  std::vector<Slot> slots_;
};

/// Full scan of a base table in physical order.
class SeqScanOp : public Operator {
 public:
  SeqScanOp(const catalog::Table* table, const std::string& alias);

  std::string Describe() const override;
  void AttachTransfer(std::shared_ptr<BloomTransfer> transfer,
                      size_t key_index) {
    transfers_.Attach(std::move(transfer), key_index);
  }
  bool provides_columns() const override { return true; }

 protected:
  common::Status OpenImpl() override;
  common::Status NextImpl(types::Tuple* tuple, bool* eof) override;
  common::Status NextBatchImpl(size_t max_rows, TupleBatch* batch,
                               bool* eof) override;
  /// Native columnar fill: deserializes heap records straight into column
  /// vectors (no Tuple/Value construction on the clean path).
  common::Status NextColumnBatchImpl(size_t max_rows,
                                     types::ColumnBatch* batch,
                                     bool* eof) override;
  void RefreshLocalStats() const override { transfers_.FoldStats(&stats_); }

 private:
  const catalog::Table* table_;
  std::string alias_;
  storage::HeapFile::Iterator it_;
  TransferProbe transfers_;
};

/// B-tree probe: fetches all tuples with `column == key`, or with
/// `lo <= column <= hi` for the range form. Output is in key order (the
/// B-tree leaf chain), so the plan's est_order on the index column is
/// physically honoured. The descent and the unclustered tuple fetches all
/// go through the buffer pool and are therefore counted as (mostly
/// random) I/O.
class IndexScanOp : public Operator {
 public:
  IndexScanOp(const catalog::Table* table, const std::string& alias,
              std::string column, int64_t key);
  /// Range form: inclusive [lo, hi].
  IndexScanOp(const catalog::Table* table, const std::string& alias,
              std::string column, int64_t lo, int64_t hi);

  std::string Describe() const override;
  void AttachTransfer(std::shared_ptr<BloomTransfer> transfer,
                      size_t key_index) {
    transfers_.Attach(std::move(transfer), key_index);
  }
  bool provides_columns() const override { return true; }

 protected:
  common::Status OpenImpl() override;
  common::Status NextImpl(types::Tuple* tuple, bool* eof) override;
  common::Status NextBatchImpl(size_t max_rows, TupleBatch* batch,
                               bool* eof) override;
  common::Status NextColumnBatchImpl(size_t max_rows,
                                     types::ColumnBatch* batch,
                                     bool* eof) override;
  void RefreshLocalStats() const override { transfers_.FoldStats(&stats_); }

 private:
  const catalog::Table* table_;
  std::string alias_;
  std::string column_;
  int64_t lo_;
  int64_t hi_;
  std::vector<storage::RecordId> rids_;
  size_t pos_ = 0;
  TransferProbe transfers_;
};

}  // namespace ppp::exec

#endif  // PPP_EXEC_SCAN_OPS_H_
