#ifndef PPP_EXEC_SCAN_OPS_H_
#define PPP_EXEC_SCAN_OPS_H_

#include <string>
#include <vector>

#include "catalog/table.h"
#include "exec/operator.h"
#include "storage/record_id.h"

namespace ppp::exec {

/// Full scan of a base table in physical order.
class SeqScanOp : public Operator {
 public:
  SeqScanOp(const catalog::Table* table, const std::string& alias);

  std::string Describe() const override;

 protected:
  common::Status OpenImpl() override;
  common::Status NextImpl(types::Tuple* tuple, bool* eof) override;
  common::Status NextBatchImpl(size_t max_rows, TupleBatch* batch,
                               bool* eof) override;

 private:
  const catalog::Table* table_;
  std::string alias_;
  storage::HeapFile::Iterator it_;
};

/// B-tree probe: fetches all tuples with `column == key`, or with
/// `lo <= column <= hi` for the range form. Output is in key order (the
/// B-tree leaf chain), so the plan's est_order on the index column is
/// physically honoured. The descent and the unclustered tuple fetches all
/// go through the buffer pool and are therefore counted as (mostly
/// random) I/O.
class IndexScanOp : public Operator {
 public:
  IndexScanOp(const catalog::Table* table, const std::string& alias,
              std::string column, int64_t key);
  /// Range form: inclusive [lo, hi].
  IndexScanOp(const catalog::Table* table, const std::string& alias,
              std::string column, int64_t lo, int64_t hi);

  std::string Describe() const override;

 protected:
  common::Status OpenImpl() override;
  common::Status NextImpl(types::Tuple* tuple, bool* eof) override;
  common::Status NextBatchImpl(size_t max_rows, TupleBatch* batch,
                               bool* eof) override;

 private:
  const catalog::Table* table_;
  std::string alias_;
  std::string column_;
  int64_t lo_;
  int64_t hi_;
  std::vector<storage::RecordId> rids_;
  size_t pos_ = 0;
};

}  // namespace ppp::exec

#endif  // PPP_EXEC_SCAN_OPS_H_
