#include "exec/parallel_eval.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "obs/metrics.h"
#include "obs/span.h"

namespace ppp::exec {

ParallelPredicateEvaluator::ParallelPredicateEvaluator(
    common::ThreadPool* pool)
    : pool_(pool) {}

void ParallelPredicateEvaluator::EvalBatch(CachedPredicate* pred,
                                           const TupleBatch& batch,
                                           ExecContext* ctx,
                                           std::vector<char>* keep) {
  static obs::Counter* batch_counter =
      obs::MetricsRegistry::Global().GetCounter("exec.parallel.batches");
  static obs::Histogram* utilization_histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "exec.parallel.worker_utilization");

  keep->assign(batch.size(), 0);
  if (batch.empty()) return;

  const size_t workers =
      std::min(batch.size(),
               pool_ != nullptr ? pool_->num_threads() + 1 : size_t{1});
  const size_t slice = (batch.size() + workers - 1) / workers;

  // One contiguous slice and one private EvalContext per worker. Workers
  // share the (thread-safe) function cache; everything else they touch —
  // the bound expression, the sharded predicate cache, pure UDF impls — is
  // immutable or internally synchronized.
  std::vector<expr::EvalContext> worker_ctx(workers);
  std::vector<double> busy_seconds(workers, 0.0);
  for (expr::EvalContext& wc : worker_ctx) {
    wc.function_cache = ctx->eval.function_cache;
  }

  const auto wall_start = std::chrono::steady_clock::now();
  // Query/session attribution is thread-local, so pool workers must
  // inherit the coordinator's ids explicitly.
  const uint64_t query_id = obs::SpanTracer::current_query_id();
  const uint64_t session_id = obs::SpanTracer::current_session_id();
  const auto eval_slice = [&](size_t w) {
    obs::QueryIdScope id_scope(query_id, session_id);
    // The span is created on the executing thread, so its tid is the
    // worker's track in the exported trace (or the coordinator's — the
    // caller participates in the pool's Run).
    std::optional<obs::Span> span;
    if (obs::SpanTracer::Global().enabled()) {
      span.emplace("exec.parallel", "worker");
      span->AddArg("slice", std::to_string(w));
    }
    const auto start = std::chrono::steady_clock::now();
    const size_t begin = w * slice;
    const size_t end = std::min(batch.size(), begin + slice);
    for (size_t i = begin; i < end; ++i) {
      (*keep)[i] = pred->Eval(batch.tuples[i], &worker_ctx[w]) ? 1 : 0;
    }
    busy_seconds[w] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  };
  if (pool_ != nullptr) {
    pool_->Run(workers, eval_slice);
  } else {
    for (size_t w = 0; w < workers; ++w) eval_slice(w);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // Merge in slice order: sums are order-independent, so totals match a
  // serial evaluation exactly.
  for (const expr::EvalContext& wc : worker_ctx) {
    for (const auto& [name, count] : wc.invocation_counts) {
      ctx->eval.invocation_counts[name] += count;
    }
  }

  batch_counter->Increment();
  if (wall > 0.0) {
    double busy = 0.0;
    for (const double b : busy_seconds) busy += b;
    utilization_histogram->Observe(busy /
                                   (wall * static_cast<double>(workers)));
  }
}

}  // namespace ppp::exec
