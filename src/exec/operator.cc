#include "exec/operator.h"

#include <chrono>
#include <optional>

#include "exec/shared_caches.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace ppp::exec {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void AccumulateDelta(storage::IoStats* io, const storage::IoStats& before,
                     const storage::IoStats& after) {
  io->sequential_reads += after.sequential_reads - before.sequential_reads;
  io->random_reads += after.random_reads - before.random_reads;
  io->writes += after.writes - before.writes;
  io->buffer_hits += after.buffer_hits - before.buffer_hits;
}

/// The evaluator's global invocation counter, sampled before/after each
/// wrapper call to attribute UDF work to the operator subtree (same
/// inclusive-delta scheme as the buffer-pool I/O above).
uint64_t UdfInvocations() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("expr.udf.invocations");
  return counter->value();
}

}  // namespace

common::Status Operator::Open() {
  ++stats_.opens;
  std::optional<obs::Span> span;
  if (obs::SpanTracer::Global().enabled()) {
    span.emplace("exec", "open:" + Describe());
  }
  const storage::IoStats before =
      pool_ != nullptr ? pool_->stats() : storage::IoStats();
  const uint64_t udf_before = UdfInvocations();
  const auto start = std::chrono::steady_clock::now();
  common::Status status = OpenImpl();
  stats_.open_seconds += SecondsSince(start);
  stats_.udf_invocations += UdfInvocations() - udf_before;
  if (pool_ != nullptr) AccumulateDelta(&stats_.io, before, pool_->stats());
  return status;
}

common::Status Operator::Next(types::Tuple* tuple, bool* eof) {
  ++stats_.next_calls;
  const storage::IoStats before =
      pool_ != nullptr ? pool_->stats() : storage::IoStats();
  const uint64_t udf_before = UdfInvocations();
  const auto start = std::chrono::steady_clock::now();
  common::Status status = NextImpl(tuple, eof);
  stats_.next_seconds += SecondsSince(start);
  stats_.udf_invocations += UdfInvocations() - udf_before;
  if (pool_ != nullptr) AccumulateDelta(&stats_.io, before, pool_->stats());
  if (status.ok() && !*eof) ++stats_.rows_out;
  return status;
}

common::Status Operator::NextBatch(size_t max_rows, TupleBatch* batch,
                                   bool* eof) {
  static obs::Counter* batch_counter =
      obs::MetricsRegistry::Global().GetCounter("exec.batches");
  static obs::Histogram* fill_histogram =
      obs::MetricsRegistry::Global().GetHistogram("exec.batch.fill");
  if (max_rows == 0) max_rows = 1;
  ++stats_.batches;
  // Per-batch (not per-tuple) drain spans keep trace volume proportional to
  // batches; the Next() shim path stays unspanned.
  std::optional<obs::Span> span;
  if (obs::SpanTracer::Global().enabled()) {
    span.emplace("exec", "batch:" + Describe());
  }
  const size_t rows_before = batch->size();
  const storage::IoStats before =
      pool_ != nullptr ? pool_->stats() : storage::IoStats();
  const uint64_t udf_before = UdfInvocations();
  const auto start = std::chrono::steady_clock::now();
  common::Status status = NextBatchImpl(max_rows, batch, eof);
  stats_.next_seconds += SecondsSince(start);
  stats_.udf_invocations += UdfInvocations() - udf_before;
  if (pool_ != nullptr) AccumulateDelta(&stats_.io, before, pool_->stats());
  if (status.ok()) {
    const size_t produced = batch->size() - rows_before;
    stats_.rows_out += produced;
    if (span.has_value()) span->AddArg("rows", std::to_string(produced));
    batch_counter->Increment();
    fill_histogram->Observe(static_cast<double>(produced) /
                            static_cast<double>(max_rows));
  }
  return status;
}

common::Status Operator::NextColumnBatch(size_t max_rows,
                                         types::ColumnBatch* batch,
                                         bool* eof) {
  static obs::Counter* vbatch_counter =
      obs::MetricsRegistry::Global().GetCounter("exec.vector.batches");
  static obs::Counter* vrows_counter =
      obs::MetricsRegistry::Global().GetCounter("exec.vector.rows");
  static obs::Histogram* density_histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "exec.vector.selection_density");
  if (max_rows == 0) max_rows = 1;
  ++stats_.batches;
  std::optional<obs::Span> span;
  if (obs::SpanTracer::Global().enabled()) {
    span.emplace("exec", "vbatch:" + Describe());
  }
  const storage::IoStats before =
      pool_ != nullptr ? pool_->stats() : storage::IoStats();
  const uint64_t udf_before = UdfInvocations();
  const auto start = std::chrono::steady_clock::now();
  common::Status status = NextColumnBatchImpl(max_rows, batch, eof);
  stats_.next_seconds += SecondsSince(start);
  stats_.udf_invocations += UdfInvocations() - udf_before;
  if (pool_ != nullptr) AccumulateDelta(&stats_.io, before, pool_->stats());
  if (status.ok()) {
    const size_t produced = batch->selected();
    stats_.rows_out += produced;
    vbatch_counter->Increment();
    vrows_counter->Increment(produced);
    if (batch->num_rows() > 0) {
      density_histogram->Observe(static_cast<double>(produced) /
                                 static_cast<double>(batch->num_rows()));
    }
    if (span.has_value()) {
      span->AddArg("rows", std::to_string(batch->num_rows()));
      span->AddArg("selected", std::to_string(produced));
    }
  }
  return status;
}

common::Status Operator::NextColumnBatchImpl(size_t max_rows,
                                             types::ColumnBatch* batch,
                                             bool* eof) {
  batch->Reset(schema_);
  TupleBatch rows;
  PPP_RETURN_IF_ERROR(NextBatchImpl(max_rows, &rows, eof));
  for (const types::Tuple& tuple : rows.tuples) batch->AppendTuple(tuple);
  return common::Status::OK();
}

common::Status Operator::NextBatchImpl(size_t max_rows, TupleBatch* batch,
                                       bool* eof) {
  *eof = false;
  types::Tuple tuple;
  while (batch->size() < max_rows) {
    bool row_eof = false;
    PPP_RETURN_IF_ERROR(NextImpl(&tuple, &row_eof));
    if (row_eof) {
      *eof = true;
      break;
    }
    batch->tuples.push_back(std::move(tuple));
  }
  return common::Status::OK();
}

const OperatorStats& Operator::stats() const {
  RefreshLocalStats();
  return stats_;
}

std::vector<const Operator*> Operator::Children() const {
  std::vector<Operator*> mutable_children =
      const_cast<Operator*>(this)->Children();
  return {mutable_children.begin(), mutable_children.end()};
}

void Operator::AttachPool(const storage::BufferPool* pool) {
  pool_ = pool;
  for (Operator* child : Children()) child->AttachPool(pool);
}

void Operator::SetBatchSize(size_t batch_size) {
  batch_size_ = batch_size == 0 ? 1 : batch_size;
  for (Operator* child : Children()) child->SetBatchSize(batch_size);
}

void Operator::CollectStats(std::vector<const OperatorStats*>* out) const {
  out->push_back(&stats());
  for (const Operator* child : Children()) child->CollectStats(out);
}

common::Result<CachedPredicate> CachedPredicate::Bind(
    const expr::PredicateInfo& pred, const types::RowSchema& schema,
    const catalog::Catalog& catalog, const ExecParams& params,
    SharedPredicateCacheRegistry* shared,
    const expr::TableBinding* binding) {
  CachedPredicate out;
  PPP_ASSIGN_OR_RETURN(
      std::unique_ptr<expr::BoundExpr> bound,
      expr::BoundExpr::Bind(pred.expr, schema, catalog.functions()));
  out.bound_ = std::move(bound);
  out.is_expensive_ = pred.is_expensive();

  // Cacheability and parallel safety are both properties of the functions
  // the predicate invokes.
  bool cacheable = true;
  std::vector<const expr::Expr*> calls;
  pred.expr->CollectFunctionCalls(&calls);
  for (const expr::Expr* call : calls) {
    auto def = catalog.functions().Lookup(call->function_name);
    if (!def.ok() || !(*def)->cacheable) cacheable = false;
    if (!def.ok() || !(*def)->parallel_safe) out.parallel_safe_ = false;
  }

  const bool try_cache = params.predicate_caching &&
                         params.cache_mode == CacheMode::kPredicate;
  ShardedPredicateCache::Options options;
  if (try_cache && pred.is_expensive() && cacheable && !calls.empty()) {
    out.cache_enabled_ = true;
    options.max_entries = params.cache_max_entries;
    options.max_bytes = params.cache_max_bytes;
    options.lru = params.cache_lru;
    options.shards =
        ShardedPredicateCache::ShardsFor(params.parallel_workers);
    options.adaptive = params.adaptive_caching;
    options.probe_window = params.adaptive_probe_window;
  }
  if (out.cache_enabled_ && shared != nullptr) {
    // Resolve every referenced alias to its table so identical text over
    // different tables never shares a memo (see BuildSharedCacheKey).
    std::string resolved;
    bool resolvable = binding != nullptr;
    if (resolvable) {
      for (const std::string& alias : pred.tables) {
        auto it = binding->find(alias);
        if (it == binding->end() || it->second == nullptr) {
          resolvable = false;
          break;
        }
        resolved += alias;
        resolved += '=';
        resolved += it->second->name();
        resolved += ';';
      }
    }
    if (resolvable) {
      out.cache_ = shared->GetOrCreate(
          BuildSharedCacheKey(pred.expr->ToString(), resolved, options),
          options);
      out.hits_baseline_ = out.cache_->hits();
      out.evictions_baseline_ = out.cache_->evictions();
      return out;
    }
  }
  out.cache_ = std::make_shared<ShardedPredicateCache>(options);
  return out;
}

bool CachedPredicate::Eval(const types::Tuple& tuple,
                           expr::EvalContext* ctx) {
  if (!cache_enabled_ || cache_->disabled()) {
    return bound_->EvalBool(tuple, ctx);
  }
  // Key = the values of the predicate's input columns, serialized. This is
  // the paper's "hash table keyed on the bindings of the input variables".
  std::vector<types::Value> key_values;
  key_values.reserve(bound_->column_indexes().size());
  for (size_t index : bound_->column_indexes()) {
    key_values.push_back(tuple.Get(index));
  }
  const std::string key = types::Tuple(std::move(key_values)).Serialize();
  return cache_->GetOrCompute(
      key, [&] { return bound_->EvalBool(tuple, ctx); });
}

}  // namespace ppp::exec
