#include "exec/operator.h"

namespace ppp::exec {

namespace {
/// Probes after which an adaptive cache with zero hits gives up (§5.1's
/// "predicate caching can provide no benefit" condition, detected online).
constexpr uint64_t kAdaptiveProbeWindow = 512;
}  // namespace

common::Result<CachedPredicate> CachedPredicate::Bind(
    const expr::PredicateInfo& pred, const types::RowSchema& schema,
    const catalog::Catalog& catalog, const ExecParams& params) {
  CachedPredicate out;
  PPP_ASSIGN_OR_RETURN(
      std::unique_ptr<expr::BoundExpr> bound,
      expr::BoundExpr::Bind(pred.expr, schema, catalog.functions()));
  out.bound_ = std::move(bound);

  const bool try_cache = params.predicate_caching &&
                         params.cache_mode == CacheMode::kPredicate;
  if (try_cache && pred.is_expensive()) {
    // Cache only when every function in the predicate is cacheable.
    bool cacheable = true;
    std::vector<const expr::Expr*> calls;
    pred.expr->CollectFunctionCalls(&calls);
    for (const expr::Expr* call : calls) {
      auto def = catalog.functions().Lookup(call->function_name);
      if (!def.ok() || !(*def)->cacheable) {
        cacheable = false;
        break;
      }
    }
    out.cache_enabled_ = cacheable && !calls.empty();
    out.adaptive_ = params.adaptive_caching;
    out.max_entries_ = params.cache_max_entries;
  }
  return out;
}

bool CachedPredicate::Eval(const types::Tuple& tuple,
                           expr::EvalContext* ctx) {
  if (!cache_enabled_ || disabled_) {
    return bound_->EvalBool(tuple, ctx);
  }
  ++probes_;
  // Key = the values of the predicate's input columns, serialized. This is
  // the paper's "hash table keyed on the bindings of the input variables".
  std::vector<types::Value> key_values;
  key_values.reserve(bound_->column_indexes().size());
  for (size_t index : bound_->column_indexes()) {
    key_values.push_back(tuple.Get(index));
  }
  std::string key = types::Tuple(std::move(key_values)).Serialize();
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++cache_hits_;
    return it->second;
  }
  const bool result = bound_->EvalBool(tuple, ctx);

  if (adaptive_ && probes_ >= kAdaptiveProbeWindow && cache_hits_ == 0) {
    // Every binding so far was distinct: caching cannot pay here. Free the
    // memory (the footnote-4 swap problem) and stop keying.
    disabled_ = true;
    cache_.clear();
    fifo_.clear();
    return result;
  }
  if (max_entries_ > 0 && cache_.size() >= max_entries_) {
    cache_.erase(fifo_.front());
    fifo_.pop_front();
    ++cache_evictions_;
  }
  cache_.emplace(key, result);
  fifo_.push_back(std::move(key));
  return result;
}

}  // namespace ppp::exec
