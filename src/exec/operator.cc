#include "exec/operator.h"

#include <chrono>

#include "obs/metrics.h"

namespace ppp::exec {

namespace {
/// Probes after which an adaptive cache with zero hits gives up (§5.1's
/// "predicate caching can provide no benefit" condition, detected online).
constexpr uint64_t kAdaptiveProbeWindow = 512;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void AccumulateDelta(storage::IoStats* io, const storage::IoStats& before,
                     const storage::IoStats& after) {
  io->sequential_reads += after.sequential_reads - before.sequential_reads;
  io->random_reads += after.random_reads - before.random_reads;
  io->writes += after.writes - before.writes;
  io->buffer_hits += after.buffer_hits - before.buffer_hits;
}
}  // namespace

common::Status Operator::Open() {
  ++stats_.opens;
  const storage::IoStats before =
      pool_ != nullptr ? pool_->stats() : storage::IoStats();
  const auto start = std::chrono::steady_clock::now();
  common::Status status = OpenImpl();
  stats_.open_seconds += SecondsSince(start);
  if (pool_ != nullptr) AccumulateDelta(&stats_.io, before, pool_->stats());
  return status;
}

common::Status Operator::Next(types::Tuple* tuple, bool* eof) {
  ++stats_.next_calls;
  const storage::IoStats before =
      pool_ != nullptr ? pool_->stats() : storage::IoStats();
  const auto start = std::chrono::steady_clock::now();
  common::Status status = NextImpl(tuple, eof);
  stats_.next_seconds += SecondsSince(start);
  if (pool_ != nullptr) AccumulateDelta(&stats_.io, before, pool_->stats());
  if (status.ok() && !*eof) ++stats_.rows_out;
  return status;
}

const OperatorStats& Operator::stats() const {
  RefreshLocalStats();
  return stats_;
}

std::vector<const Operator*> Operator::Children() const {
  std::vector<Operator*> mutable_children =
      const_cast<Operator*>(this)->Children();
  return {mutable_children.begin(), mutable_children.end()};
}

void Operator::AttachPool(const storage::BufferPool* pool) {
  pool_ = pool;
  for (Operator* child : Children()) child->AttachPool(pool);
}

void Operator::CollectStats(std::vector<const OperatorStats*>* out) const {
  out->push_back(&stats());
  for (const Operator* child : Children()) child->CollectStats(out);
}

common::Result<CachedPredicate> CachedPredicate::Bind(
    const expr::PredicateInfo& pred, const types::RowSchema& schema,
    const catalog::Catalog& catalog, const ExecParams& params) {
  CachedPredicate out;
  PPP_ASSIGN_OR_RETURN(
      std::unique_ptr<expr::BoundExpr> bound,
      expr::BoundExpr::Bind(pred.expr, schema, catalog.functions()));
  out.bound_ = std::move(bound);

  const bool try_cache = params.predicate_caching &&
                         params.cache_mode == CacheMode::kPredicate;
  if (try_cache && pred.is_expensive()) {
    // Cache only when every function in the predicate is cacheable.
    bool cacheable = true;
    std::vector<const expr::Expr*> calls;
    pred.expr->CollectFunctionCalls(&calls);
    for (const expr::Expr* call : calls) {
      auto def = catalog.functions().Lookup(call->function_name);
      if (!def.ok() || !(*def)->cacheable) {
        cacheable = false;
        break;
      }
    }
    out.cache_enabled_ = cacheable && !calls.empty();
    out.adaptive_ = params.adaptive_caching;
    out.max_entries_ = params.cache_max_entries;
  }
  return out;
}

bool CachedPredicate::Eval(const types::Tuple& tuple,
                           expr::EvalContext* ctx) {
  static obs::Counter* hit_counter =
      obs::MetricsRegistry::Global().GetCounter("exec.predicate_cache.hits");
  static obs::Counter* miss_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "exec.predicate_cache.misses");
  static obs::Counter* eviction_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "exec.predicate_cache.evictions");
  static obs::Counter* disable_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "exec.predicate_cache.disables");

  if (!cache_enabled_ || disabled_) {
    return bound_->EvalBool(tuple, ctx);
  }
  ++probes_;
  // Key = the values of the predicate's input columns, serialized. This is
  // the paper's "hash table keyed on the bindings of the input variables".
  std::vector<types::Value> key_values;
  key_values.reserve(bound_->column_indexes().size());
  for (size_t index : bound_->column_indexes()) {
    key_values.push_back(tuple.Get(index));
  }
  std::string key = types::Tuple(std::move(key_values)).Serialize();
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++cache_hits_;
    hit_counter->Increment();
    return it->second;
  }
  miss_counter->Increment();
  const bool result = bound_->EvalBool(tuple, ctx);

  if (adaptive_ && probes_ >= kAdaptiveProbeWindow && cache_hits_ == 0) {
    // Every binding so far was distinct: caching cannot pay here. Free the
    // memory (the footnote-4 swap problem) and stop keying.
    disabled_ = true;
    disable_counter->Increment();
    cache_.clear();
    fifo_.clear();
    return result;
  }
  if (max_entries_ > 0 && cache_.size() >= max_entries_) {
    cache_.erase(fifo_.front());
    fifo_.pop_front();
    ++cache_evictions_;
    eviction_counter->Increment();
  }
  cache_.emplace(key, result);
  fifo_.push_back(std::move(key));
  return result;
}

}  // namespace ppp::exec
