#include "exec/explain.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/plan_audit.h"
#include "obs/profiler.h"

namespace ppp::exec {

namespace {

uint64_t ClampedMinus(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

/// The operator's own I/O: its inclusive subtree delta minus its
/// children's inclusive deltas (child calls nest inside the parent's).
storage::IoStats SelfIo(const Operator& op) {
  storage::IoStats self = op.stats().io;
  for (const Operator* child : op.Children()) {
    const storage::IoStats& sub = child->stats().io;
    self.sequential_reads =
        ClampedMinus(self.sequential_reads, sub.sequential_reads);
    self.random_reads = ClampedMinus(self.random_reads, sub.random_reads);
    self.writes = ClampedMinus(self.writes, sub.writes);
    self.buffer_hits = ClampedMinus(self.buffer_hits, sub.buffer_hits);
  }
  return self;
}

void AppendActuals(const Operator& op, std::string* out) {
  const OperatorStats& stats = op.stats();
  const storage::IoStats self = SelfIo(op);
  out->append(common::StringPrintf(
      " (actual rows=%llu opens=%llu time=%.3fms io seq=%llu rand=%llu "
      "hit=%llu)",
      static_cast<unsigned long long>(stats.rows_out),
      static_cast<unsigned long long>(stats.opens),
      (stats.open_seconds + stats.next_seconds) * 1e3,
      static_cast<unsigned long long>(self.sequential_reads),
      static_cast<unsigned long long>(self.random_reads),
      static_cast<unsigned long long>(self.buffer_hits)));
  if (stats.has_cache) {
    out->append(common::StringPrintf(
        " [cache %s hits=%llu entries=%llu evictions=%llu]",
        stats.cache_enabled ? "on" : "off",
        static_cast<unsigned long long>(stats.cache_hits),
        static_cast<unsigned long long>(stats.cache_entries),
        static_cast<unsigned long long>(stats.cache_evictions)));
  }
  if (stats.has_transfer) {
    std::string fpr = "-";
    if (stats.transfer_fpr >= 0.0) {
      fpr = common::StringPrintf("%.4f", stats.transfer_fpr);
    }
    out->append(common::StringPrintf(
        " [bloom probed=%llu passed=%llu fpr=%s%s]",
        static_cast<unsigned long long>(stats.transfer_probed),
        static_cast<unsigned long long>(stats.transfer_passed), fpr.c_str(),
        stats.transfer_killed ? " KILLED" : ""));
  }
}

/// Estimated vs observed rank for the node's predicate, when at least one
/// of its UDFs has a runtime profile (see ComputeRankDrift).
void AppendRankDrift(const plan::PlanNode& plan,
                     const catalog::FunctionRegistry& functions,
                     std::string* out) {
  const std::optional<RankDriftInfo> info =
      ComputeRankDrift(plan, functions);
  if (!info.has_value()) return;  // No runtime data: the line stays clean.
  out->append(common::StringPrintf(
      " [rank est=%.4g sel~%s cost~%s obs=%.4g%s]", info->est_rank,
      expr::StatSourceName(plan.predicate.selectivity_source),
      expr::StatSourceName(plan.predicate.cost_source), info->obs_rank,
      info->drift ? " DRIFT" : ""));
}

/// Renders `plan` at `indent`, pairing it with `op` when the operator tree
/// has a node for it (nullptr = estimates only, e.g. the probed inner
/// relation of an index nested-loop join).
void AppendNode(const plan::PlanNode& plan, const Operator* op, int indent,
                const catalog::FunctionRegistry* functions,
                std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(plan.LineString());
  if (op != nullptr) AppendActuals(*op, out);
  if (op != nullptr && functions != nullptr) {
    AppendRankDrift(plan, *functions, out);
  }
  if (op != nullptr && plan.est_rows > 0.0) {
    // Per-node cardinality audit: estimate vs actual with the q-error
    // (1.0 = perfect). The stats.estimation.qerror histogram is fed by the
    // executor's close-time audit walk for *every* query, so this line only
    // renders; it no longer double-feeds the histogram.
    out->append(common::StringPrintf(
        " [card est=%.4g act=%llu q=%.3g]", plan.est_rows,
        static_cast<unsigned long long>(op->stats().rows_out),
        obs::CardinalityQError(plan.est_rows, op->stats().rows_out)));
  }
  out->append("\n");

  std::vector<const Operator*> op_children =
      op != nullptr ? op->Children() : std::vector<const Operator*>{};
  for (size_t i = 0; i < plan.children.size(); ++i) {
    const Operator* child_op = i < op_children.size() ? op_children[i]
                                                      : nullptr;
    AppendNode(*plan.children[i], child_op, indent + 1, functions, out);
  }
}

}  // namespace

std::string RenderExplain(const plan::PlanNode& plan) {
  return plan.ToString();
}

std::optional<RankDriftInfo> ComputeRankDrift(
    const plan::PlanNode& plan, const catalog::FunctionRegistry& functions) {
  const expr::PredicateInfo& pred = plan.predicate;
  if (pred.expr == nullptr || !pred.is_expensive()) return std::nullopt;

  // Observed cost replaces the declared cost of every profiled function;
  // observed selectivity rescales the estimate by the profiled functions'
  // pass-rate ratio (non-profiled factors keep their catalog estimates).
  std::vector<const expr::Expr*> calls;
  pred.expr->CollectFunctionCalls(&calls);
  const obs::PredicateProfiler& profiler = obs::PredicateProfiler::Global();
  const double spio = profiler.seconds_per_io();

  bool any_profiled = false;
  double obs_cost = 0.0;
  double sel_ratio = 1.0;
  for (const expr::Expr* call : calls) {
    const auto def = functions.Lookup(call->function_name);
    const double def_cost = def.ok() ? (*def)->cost_per_call : 0.0;
    const std::optional<obs::PredicateProfile> profile =
        profiler.Get(call->function_name);
    if (!profile.has_value()) {
      obs_cost += def_cost;
      continue;
    }
    any_profiled = true;
    obs_cost += profile->ObservedCostIos(spio);
    if (def.ok() && profile->has_selectivity &&
        (*def)->return_type == types::TypeId::kBool &&
        (*def)->selectivity > 0.0) {
      sel_ratio *= profile->ObservedSelectivity((*def)->selectivity) /
                   (*def)->selectivity;
    }
  }
  if (!any_profiled) return std::nullopt;

  RankDriftInfo info;
  info.est_rank = pred.rank();
  const double obs_sel = std::clamp(pred.selectivity * sel_ratio, 0.0, 1.0);
  info.obs_rank =
      obs_cost > 0.0 ? (obs_sel - 1.0) / obs_cost : info.est_rank;
  info.drift = obs::RankDriftExceeds(info.est_rank, info.obs_rank,
                                     profiler.drift_threshold());
  return info;
}

uint64_t CountDriftingPredicates(
    const plan::PlanNode& plan, const catalog::FunctionRegistry& functions) {
  const std::optional<RankDriftInfo> info =
      ComputeRankDrift(plan, functions);
  uint64_t count = info.has_value() && info->drift ? 1 : 0;
  for (const std::unique_ptr<plan::PlanNode>& child : plan.children) {
    count += CountDriftingPredicates(*child, functions);
  }
  return count;
}

std::string RenderExplainAnalyze(const plan::PlanNode& plan,
                                 const Operator& root,
                                 const catalog::FunctionRegistry* functions) {
  std::string out;
  AppendNode(plan, &root, 0, functions, &out);
  return out;
}

}  // namespace ppp::exec
