#include "exec/explain.h"

#include "common/string_util.h"

namespace ppp::exec {

namespace {

uint64_t ClampedMinus(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

/// The operator's own I/O: its inclusive subtree delta minus its
/// children's inclusive deltas (child calls nest inside the parent's).
storage::IoStats SelfIo(const Operator& op) {
  storage::IoStats self = op.stats().io;
  for (const Operator* child : op.Children()) {
    const storage::IoStats& sub = child->stats().io;
    self.sequential_reads =
        ClampedMinus(self.sequential_reads, sub.sequential_reads);
    self.random_reads = ClampedMinus(self.random_reads, sub.random_reads);
    self.writes = ClampedMinus(self.writes, sub.writes);
    self.buffer_hits = ClampedMinus(self.buffer_hits, sub.buffer_hits);
  }
  return self;
}

void AppendActuals(const Operator& op, std::string* out) {
  const OperatorStats& stats = op.stats();
  const storage::IoStats self = SelfIo(op);
  out->append(common::StringPrintf(
      " (actual rows=%llu opens=%llu time=%.3fms io seq=%llu rand=%llu "
      "hit=%llu)",
      static_cast<unsigned long long>(stats.rows_out),
      static_cast<unsigned long long>(stats.opens),
      (stats.open_seconds + stats.next_seconds) * 1e3,
      static_cast<unsigned long long>(self.sequential_reads),
      static_cast<unsigned long long>(self.random_reads),
      static_cast<unsigned long long>(self.buffer_hits)));
  if (stats.has_cache) {
    out->append(common::StringPrintf(
        " [cache %s hits=%llu entries=%llu evictions=%llu]",
        stats.cache_enabled ? "on" : "off",
        static_cast<unsigned long long>(stats.cache_hits),
        static_cast<unsigned long long>(stats.cache_entries),
        static_cast<unsigned long long>(stats.cache_evictions)));
  }
}

/// Renders `plan` at `indent`, pairing it with `op` when the operator tree
/// has a node for it (nullptr = estimates only, e.g. the probed inner
/// relation of an index nested-loop join).
void AppendNode(const plan::PlanNode& plan, const Operator* op, int indent,
                std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(plan.LineString());
  if (op != nullptr) AppendActuals(*op, out);
  out->append("\n");

  std::vector<const Operator*> op_children =
      op != nullptr ? op->Children() : std::vector<const Operator*>{};
  for (size_t i = 0; i < plan.children.size(); ++i) {
    const Operator* child_op = i < op_children.size() ? op_children[i]
                                                      : nullptr;
    AppendNode(*plan.children[i], child_op, indent + 1, out);
  }
}

}  // namespace

std::string RenderExplain(const plan::PlanNode& plan) {
  return plan.ToString();
}

std::string RenderExplainAnalyze(const plan::PlanNode& plan,
                                 const Operator& root) {
  std::string out;
  AppendNode(plan, &root, 0, &out);
  return out;
}

}  // namespace ppp::exec
