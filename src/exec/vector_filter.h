#ifndef PPP_EXEC_VECTOR_FILTER_H_
#define PPP_EXEC_VECTOR_FILTER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "types/column_batch.h"
#include "types/row_schema.h"

namespace ppp::exec {

/// One cheap WHERE-clause conjunct compiled against a ColumnBatch layout:
/// a comparison of `col <op> const`, `const <op> col` or `col <op> col`
/// over numeric (int64/double/bool) or string columns. Filter() runs it as
/// a tight loop over the typed column vectors, narrowing the batch's
/// selection vector in place — no tuples are materialized and no Values
/// are constructed.
///
/// Semantics mirror BoundExpr::Eval exactly: comparisons go through the
/// same three-way ordering as Value::Compare (int64/int64 exact, mixed
/// numeric via double — including its NaN behaviour), and a NULL operand
/// yields NULL. What NULL means to the selection depends on the caller:
///  - standalone cheap predicate: NULL rows drop (EvalBool semantics);
///  - cheap prefix of a mixed conjunction: NULL rows *survive* with their
///    `maybe_null` flag set, because SQL AND only short-circuits on FALSE —
///    the late expensive pass must still run on them (keeping UDF
///    invocation counters identical to scalar execution), but the row can
///    never reach the output.
class VectorizedPredicate {
 public:
  /// Compiles `conjunct` against `schema`; nullopt when the expression is
  /// not a vectorizable comparison (function calls, OR/NOT, arithmetic,
  /// heterogeneous string-vs-number operands, NULL literals, ...).
  static std::optional<VectorizedPredicate> Compile(
      const expr::ExprPtr& conjunct, const types::RowSchema& schema);

  /// True when every referenced column still has native (unboxed) storage
  /// in `batch`; callers fall back to scalar evaluation otherwise.
  bool Applicable(const types::ColumnBatch& batch) const;

  /// Narrows `batch`'s selection to rows where the conjunct holds. With
  /// `maybe_null` (sized to batch.num_rows()), NULL-evaluating rows survive
  /// and get their flag set; without it they drop.
  void Filter(types::ColumnBatch* batch,
              std::vector<uint8_t>* maybe_null) const;

 private:
  enum class TypeClass { kInt64, kDouble, kString };

  struct Operand {
    bool is_const = false;
    size_t column = 0;  // when !is_const
    // Constant payloads (one is live, per the predicate's TypeClass).
    int64_t i64 = 0;
    double f64 = 0.0;
    std::string str;
  };

  expr::CompareOp op_ = expr::CompareOp::kEq;
  TypeClass type_class_ = TypeClass::kInt64;
  Operand lhs_;
  Operand rhs_;
};

}  // namespace ppp::exec

#endif  // PPP_EXEC_VECTOR_FILTER_H_
