#ifndef PPP_EXEC_OPERATOR_H_
#define PPP_EXEC_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "exec/bloom_filter.h"
#include "exec/pred_cache.h"
#include "expr/evaluator.h"
#include "expr/predicate.h"
#include "storage/buffer_pool.h"
#include "storage/io_stats.h"
#include "types/column_batch.h"
#include "types/row_schema.h"
#include "types/tuple.h"

namespace ppp::exec {

class SharedPredicateCacheRegistry;

/// Which memoization layer absorbs repeated expensive evaluations (§5.1
/// discusses the design space).
enum class CacheMode {
  /// No memoization at all.
  kNone,
  /// Montage's choice: cache whole predicates, keyed on the bindings of
  /// their input variables.
  kPredicate,
  /// The [Jhi88] alternative: cache individual function results. Weaker
  /// when a predicate derives large intermediate objects, which is exactly
  /// why Montage caches predicates (§5.1).
  kFunction,
};

/// Execution-time knobs.
struct ExecParams {
  /// Master switch for the §5.1 memoization. Should match
  /// cost::CostParams::predicate_caching so the optimizer models the
  /// executor (workload::ExecParamsFor builds a consistent pair).
  bool predicate_caching = true;

  CacheMode cache_mode = CacheMode::kPredicate;

  /// Per-cache entry bound (FIFO replacement); 0 = unbounded. The paper:
  /// "Function or predicate caches can be limited in size, using any of a
  /// variety of replacement schemes."
  size_t cache_max_entries = 0;

  /// Per-cache memory bound in bytes (approximate: key bytes + fixed
  /// per-entry overhead); 0 = unbounded. Evictions count into the
  /// exec.pred_cache.evictions counter.
  size_t cache_max_bytes = 0;

  /// Replacement scheme for bounded caches: false keeps the historical
  /// FIFO order, true recency-orders entries (LRU) so hot bindings survive
  /// the memory bound.
  bool cache_lru = false;

  /// The optimization "planned for Montage but not implemented" (§5.1):
  /// stop caching a predicate whose inputs never repeat. Implemented
  /// online: a cache observing zero hits in its first
  /// `adaptive_probe_window` probes disables itself and frees its entries.
  bool adaptive_caching = false;

  /// Probes an adaptive cache gets before the zero-hit check, in both
  /// cache modes (predicate and function).
  uint64_t adaptive_probe_window = 512;

  /// Rows per TupleBatch in the batch-at-a-time pipeline. 0 is invalid and
  /// clamped to 1 at ExecutePlan entry (and defensively by SetBatchSize and
  /// the batch wrappers).
  size_t batch_size = 1024;

  /// Columnar fast path: scans decode pages straight into column-major
  /// ColumnBatches and FilterOp runs cheap conjuncts as vectorized kernels
  /// over a selection vector, evaluating expensive UDFs late against only
  /// the surviving positions. Results and invocation counters are
  /// identical either way (parity-tested); off forces the row-oriented
  /// batch pipeline everywhere. Should match cost::CostParams::vectorized
  /// (ExecParamsFor copies it).
  bool vectorized = true;

  /// Total threads (including the coordinator) that evaluate an expensive
  /// filter predicate's batch concurrently. 1 = serial execution,
  /// bit-identical to the tuple-at-a-time engine. Counters stay exact at
  /// any setting; see ParallelPredicateEvaluator.
  size_t parallel_workers = 1;

  /// Predicate transfer: hash-join builds emit a Bloom filter over the
  /// build-side join key, and probe-side scans pre-filter their rows
  /// against it before any (expensive) predicate above them runs. Should
  /// match cost::CostParams::predicate_transfer (ExecParamsFor copies it).
  bool predicate_transfer = false;

  /// Probes a transferred filter must see before the kill switch may fire.
  uint64_t transfer_min_probes = 512;

  /// Observed pass rate above which a transferred filter is killed
  /// mid-query: it prunes too little to pay for its probes.
  double transfer_kill_pass_rate = 0.95;

  /// Cross-query kill memory: before building a Bloom transfer, consult
  /// the profiler's history for the site and skip creation when the filter
  /// was previously killed or passed nearly everything. Off by default so
  /// single-query benches keep their per-run kill behaviour; the serving
  /// layer turns it on (amortizing the kill decision across the workload).
  bool transfer_cross_query_kill = false;
};

/// A batch of tuples flowing between operators (batch-at-a-time execution;
/// the tuple-at-a-time Next() remains as a compatibility shim).
struct TupleBatch {
  std::vector<types::Tuple> tuples;

  size_t size() const { return tuples.size(); }
  bool empty() const { return tuples.empty(); }
  void clear() { tuples.clear(); }
};

/// Shared state of one plan execution: invocation counters (the paper's
/// measurement currency) and configuration. Predicate caches live in the
/// operators themselves so they survive nested-loop rescans — which is
/// precisely what makes rescans affordable (§5.1).
struct ExecContext {
  const catalog::Catalog* catalog = nullptr;
  expr::TableBinding binding;
  ExecParams params;
  expr::EvalContext eval;
  /// Backing store for eval.function_cache when cache_mode == kFunction
  /// (wired by ExecutePlan).
  expr::FunctionCache function_cache_storage;
  /// Worker pool for the parallel predicate evaluator; created by
  /// ExecutePlan when params.parallel_workers > 1 and reused across
  /// executions on the same context.
  std::shared_ptr<common::ThreadPool> thread_pool;
  /// Transfers awaiting a probe-side consumer during plan construction:
  /// a hash join pushes its slot before its outer subtree is built, the
  /// matching scan claims it, and the join pops it afterwards.
  std::vector<std::shared_ptr<BloomTransfer>> pending_transfers;
  /// Every transfer created for this execution, for end-of-query stats
  /// (profiler + metrics). Cleared by ExecutePlan on entry.
  std::vector<std::shared_ptr<BloomTransfer>> all_transfers;

  /// Engine-wide predicate-cache registry (serving layer). When set,
  /// CachedPredicate::Bind acquires its memo here instead of building a
  /// private one, so sessions share §5.1 cache entries across queries.
  /// Null (the default) keeps the historical per-bind caches.
  SharedPredicateCacheRegistry* shared_caches = nullptr;

  /// Optimizer-side facts for the ppp_query_log record ExecutePlan appends
  /// at close. workload::RunWithAlgorithm fills these; direct ExecutePlan
  /// callers leave the zeroes and the record simply lacks them.
  struct QueryLogHints {
    uint64_t text_hash = 0;       ///< Fnv1aHash of the bound spec's text.
    std::string algorithm;        ///< Placement algorithm that planned it.
    double optimize_seconds = 0.0;
    uint64_t session_id = 0;      ///< Serving-layer session (0 = none).
  };
  QueryLogHints log_hints;
};

/// Per-operator runtime telemetry, accumulated by the Open()/Next()/
/// NextBatch() wrappers across the operator's whole lifetime (rescans
/// included).
///
/// `io` is *inclusive*: the pool delta across this operator's calls covers
/// its entire subtree, because child calls nest inside the parent's.
/// EXPLAIN ANALYZE derives the self share as inclusive minus the children's
/// inclusive totals. Wall-clock fields are diagnostic only — the paper's
/// charged time is computed from counters, never from these timers.
struct OperatorStats {
  uint64_t opens = 0;
  uint64_t next_calls = 0;
  uint64_t batches = 0;
  uint64_t rows_out = 0;
  double open_seconds = 0.0;
  double next_seconds = 0.0;
  storage::IoStats io;

  /// Inclusive UDF invocations: the delta of the global
  /// expr.udf.invocations counter across this operator's calls, which — like
  /// `io` — covers the whole subtree because child calls nest inside the
  /// parent's. Exact under parallel workers too (they run inside the
  /// coordinator's blocking call window), but like the query log's registry
  /// deltas it assumes one query executes at a time per engine.
  uint64_t udf_invocations = 0;

  /// Predicate-cache view (operators owning a CachedPredicate only).
  bool has_cache = false;
  bool cache_enabled = false;
  uint64_t cache_hits = 0;
  uint64_t cache_entries = 0;
  uint64_t cache_evictions = 0;

  /// Transferred-Bloom-filter view (probe-side scans only; counters summed
  /// over every filter attached to the scan).
  bool has_transfer = false;
  uint64_t transfer_probed = 0;
  uint64_t transfer_passed = 0;
  bool transfer_killed = false;
  /// Measured false-positive rate (join-miss feedback); < 0 when unknown.
  double transfer_fpr = -1.0;
};

/// Volcano-style iterator, extended with batch-at-a-time pulls. Open() may
/// be called repeatedly: nested-loop join restarts its inner subtree by
/// re-opening it, and any per-operator caches must survive the restart.
///
/// Open()/Next()/NextBatch() are non-virtual instrumentation wrappers
/// (call counts, wall time, inclusive I/O deltas against the attached
/// buffer pool); subclasses implement OpenImpl()/NextImpl() and may
/// override NextBatchImpl() — the default adapter loops NextImpl(), so
/// every operator speaks both protocols.
class Operator {
 public:
  virtual ~Operator() = default;

  common::Status Open();

  /// Produces the next tuple, or sets *eof. After *eof, further calls keep
  /// returning eof.
  common::Status Next(types::Tuple* tuple, bool* eof);

  /// Appends up to `max_rows` tuples to `batch` (callers pass it empty).
  /// *eof set means the stream is exhausted — the final batch may still
  /// carry rows. A false *eof with an empty batch is legal (an operator
  /// may decline to produce this round); drivers must loop on *eof only.
  common::Status NextBatch(size_t max_rows, TupleBatch* batch, bool* eof);

  /// Columnar pull: overwrites `batch` (any prior contents are discarded)
  /// with up to `max_rows` rows; the selection vector marks the survivors.
  /// Same eof contract as NextBatch: a non-eof call may produce an empty
  /// selection. The default adapter converts NextBatchImpl's row batch, so
  /// every operator speaks the protocol; pulling columns is only a win when
  /// provides_columns() says the operator fills them natively.
  common::Status NextColumnBatch(size_t max_rows, types::ColumnBatch* batch,
                                 bool* eof);

  /// True when this operator fills ColumnBatches natively (scans, and
  /// vectorized filters above them). Consumers use it to decide whether to
  /// pull columns or rows.
  virtual bool provides_columns() const { return false; }

  const types::RowSchema& schema() const { return schema_; }

  /// This operator's telemetry, with any operator-local cache counters
  /// folded in.
  const OperatorStats& stats() const;

  /// One-line physical description, e.g. "SeqScan(t3)".
  virtual std::string Describe() const = 0;

  /// Child operators in plan order (outer before inner). IndexNestedLoop
  /// has only its outer child here — the probed inner table is not an
  /// operator.
  virtual std::vector<Operator*> Children() { return {}; }
  std::vector<const Operator*> Children() const;

  /// Attaches the buffer pool whose stats() deltas attribute I/O to this
  /// subtree, recursively. Without a pool the I/O fields stay zero.
  void AttachPool(const storage::BufferPool* pool);

  /// Sets the preferred batch size this subtree uses when pulling from its
  /// children (pipeline breakers draining on Open), recursively.
  void SetBatchSize(size_t batch_size);

  /// Appends this subtree's stats in depth-first plan order.
  void CollectStats(std::vector<const OperatorStats*>* out) const;

 protected:
  virtual common::Status OpenImpl() = 0;
  virtual common::Status NextImpl(types::Tuple* tuple, bool* eof) = 0;

  /// Default batch adapter: fills `batch` by looping NextImpl(). Operators
  /// with a native batch path (scans, filter, project, materialize)
  /// override this.
  virtual common::Status NextBatchImpl(size_t max_rows, TupleBatch* batch,
                                       bool* eof);

  /// Default columnar adapter: pulls one row batch via NextBatchImpl() and
  /// transposes it. Operators that report provides_columns() override this
  /// with a native fill.
  virtual common::Status NextColumnBatchImpl(size_t max_rows,
                                             types::ColumnBatch* batch,
                                             bool* eof);

  /// Folds operator-local counters (predicate caches) into `stats_`;
  /// overridden by operators owning a CachedPredicate.
  virtual void RefreshLocalStats() const {}

  types::RowSchema schema_;
  mutable OperatorStats stats_;
  const storage::BufferPool* pool_ = nullptr;
  size_t batch_size_ = 1024;
};

/// A predicate bound to an input schema, with an optional memo table keyed
/// on the values of the predicate's input columns (the paper caches whole
/// predicates, not functions — §5.1). The memo is a ShardedPredicateCache,
/// so Eval is safe to call concurrently from the parallel predicate
/// evaluator's workers (each with its own EvalContext).
class CachedPredicate {
 public:
  /// Binds and configures memoization from `params`: the predicate-level
  /// cache engages when caching is on in kPredicate mode, the predicate is
  /// expensive, and all its functions are cacheable. Bounds and the
  /// adaptive self-disable follow `params`.
  ///
  /// With `shared` set (and `binding` available to resolve aliases), the
  /// memo is acquired from the engine-wide registry under the predicate's
  /// canonical identity instead of built fresh — hit/eviction accessors
  /// stay per-bind exact via baselines captured at acquisition.
  static common::Result<CachedPredicate> Bind(
      const expr::PredicateInfo& pred, const types::RowSchema& schema,
      const catalog::Catalog& catalog, const ExecParams& params,
      SharedPredicateCacheRegistry* shared = nullptr,
      const expr::TableBinding* binding = nullptr);

  /// Evaluates (three-valued logic collapsed to pass/fail). Cache hits do
  /// not invoke any function.
  bool Eval(const types::Tuple& tuple, expr::EvalContext* ctx);

  bool cache_enabled() const {
    return cache_enabled_ && !cache_->disabled();
  }
  size_t cache_entries() const { return cache_->entries(); }
  /// Hits/evictions since this Bind — on a shared cache the registry-wide
  /// totals minus the baseline captured at acquisition, so per-operator
  /// stats stay exact even when other sessions use the same memo.
  uint64_t cache_hits() const { return cache_->hits() - hits_baseline_; }
  uint64_t cache_evictions() const {
    return cache_->evictions() - evictions_baseline_;
  }

  /// True when the predicate references at least one expensive function —
  /// the only predicates worth fanning out.
  bool is_expensive() const { return is_expensive_; }

  /// True when every function the predicate invokes is parallel_safe, i.e.
  /// may run on worker threads.
  bool parallel_safe() const { return parallel_safe_; }

 private:
  CachedPredicate() = default;

  std::shared_ptr<expr::BoundExpr> bound_;
  bool cache_enabled_ = false;
  bool is_expensive_ = false;
  bool parallel_safe_ = true;
  /// Always non-null after Bind (disabled caches use a zero-capacity
  /// configuration purely for the accessors); shared so CachedPredicate
  /// stays copyable.
  std::shared_ptr<ShardedPredicateCache> cache_;
  /// Cache counters at acquisition time (nonzero only for shared caches).
  uint64_t hits_baseline_ = 0;
  uint64_t evictions_baseline_ = 0;
};

}  // namespace ppp::exec

#endif  // PPP_EXEC_OPERATOR_H_
