#ifndef PPP_EXEC_EXPLAIN_H_
#define PPP_EXEC_EXPLAIN_H_

#include <optional>
#include <string>

#include "catalog/function_registry.h"
#include "exec/operator.h"
#include "plan/plan_node.h"

namespace ppp::exec {

/// EXPLAIN: the annotated plan tree (optimizer estimates only).
std::string RenderExplain(const plan::PlanNode& plan);

/// EXPLAIN ANALYZE: the plan tree with each node's estimates followed by
/// the executed operator's actuals — rows, Open()/Next() wall time, the
/// node's *self* I/O (its subtree-inclusive pool delta minus its
/// children's), and predicate-cache counters where one exists.
///
/// `root` must be the operator tree ExecutePlan built for `plan`. The two
/// trees correspond 1:1 except under an index nested-loop join, whose
/// inner plan child has no operator and is rendered estimates-only.
///
/// When `functions` is supplied, nodes carrying an expensive predicate
/// whose UDFs have runtime profiles additionally render
/// `[rank est=… obs=…]`, with a DRIFT flag when the observed rank
/// (from PredicateProfiler's observed cost and distinct-value selectivity)
/// disagrees with the catalog-estimated rank beyond the profiler's drift
/// threshold.
std::string RenderExplainAnalyze(const plan::PlanNode& plan,
                                 const Operator& root,
                                 const catalog::FunctionRegistry* functions =
                                     nullptr);

/// Estimated vs observed rank of one node's predicate, computed from the
/// PredicateProfiler the way EXPLAIN ANALYZE renders it. Empty when the
/// node has no expensive predicate or none of its UDFs has a profile yet.
struct RankDriftInfo {
  double est_rank = 0.0;
  double obs_rank = 0.0;
  bool drift = false;  ///< Past the profiler's drift threshold.
};
std::optional<RankDriftInfo> ComputeRankDrift(
    const plan::PlanNode& plan, const catalog::FunctionRegistry& functions);

/// Number of predicates in the whole plan tree currently flagged DRIFT —
/// the query log's drift_flags column.
uint64_t CountDriftingPredicates(const plan::PlanNode& plan,
                                 const catalog::FunctionRegistry& functions);

}  // namespace ppp::exec

#endif  // PPP_EXEC_EXPLAIN_H_
