#include "exec/executor.h"

#include <algorithm>
#include <optional>

#include <chrono>
#include <functional>
#include <map>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/plan_audit.h"
#include "obs/plan_history.h"
#include "obs/profiler.h"
#include "obs/query_log.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "exec/explain.h"
#include "exec/filter_op.h"
#include "exec/join_ops.h"
#include "exec/misc_ops.h"
#include "exec/scan_ops.h"
#include "exec/system_scan.h"

namespace ppp::exec {

namespace {

common::Result<const catalog::Table*> TableFor(const ExecContext& ctx,
                                               const std::string& alias) {
  auto it = ctx.binding.find(alias);
  if (it == ctx.binding.end() || it->second == nullptr) {
    return common::Status::NotFound("alias " + alias + " is unbound");
  }
  return it->second;
}

common::Result<size_t> ResolveQualified(const types::RowSchema& schema,
                                        const std::string& table,
                                        const std::string& column) {
  const std::optional<size_t> index = schema.FindColumn(table, column);
  if (!index.has_value()) {
    return common::Status::NotFound("column " + table + "." + column +
                                    " not found in [" + schema.ToString() +
                                    "]");
  }
  return *index;
}

/// For a simple equi-join, returns the (table, column) pair that lives on
/// the side whose schema is `schema`.
common::Result<std::pair<std::string, std::string>> JoinKeyFor(
    const expr::PredicateInfo& pred, const types::RowSchema& schema) {
  if (!pred.is_simple_equijoin) {
    return common::Status::InvalidArgument(
        "join method requires a simple equi-join primary, got " +
        (pred.expr != nullptr ? pred.expr->ToString() : std::string("none")));
  }
  if (schema.FindColumn(pred.left_table, pred.left_column).has_value()) {
    return std::make_pair(pred.left_table, pred.left_column);
  }
  if (schema.FindColumn(pred.right_table, pred.right_column).has_value()) {
    return std::make_pair(pred.right_table, pred.right_column);
  }
  return common::Status::InvalidArgument(
      "neither side of " + pred.expr->ToString() +
      " resolves in [" + schema.ToString() + "]");
}

/// Probe-side half of the transfer handoff: attaches every pending
/// transfer whose probe column resolves in this scan's schema. Template
/// because AttachTransfer is a concrete (non-virtual) scan method.
template <typename ScanOpT>
void ClaimTransfers(ExecContext* ctx, const std::string& alias,
                    ScanOpT* scan) {
  for (const auto& transfer : ctx->pending_transfers) {
    if (transfer->claimed() || transfer->probe_alias() != alias) continue;
    const std::optional<size_t> index =
        scan->schema().FindColumn(alias, transfer->probe_column());
    if (!index.has_value()) continue;
    transfer->set_claimed();
    scan->AttachTransfer(transfer, *index);
  }
}

/// Tuples the leaf scans produced — the query's input volume after any
/// Bloom pre-filtering, before predicates and joins.
uint64_t SumLeafRows(const Operator& op) {
  const std::vector<const Operator*> children = op.Children();
  if (children.empty()) return op.stats().rows_out;
  uint64_t total = 0;
  for (const Operator* child : children) total += SumLeafRows(*child);
  return total;
}

/// Predicate-cache hits across the operator tree (kPredicate mode keeps
/// its memo tables inside the operators, not in the global registry).
uint64_t SumCacheHits(const Operator& op) {
  uint64_t total = op.stats().has_cache ? op.stats().cache_hits : 0;
  for (const Operator* child : op.Children()) {
    total += SumCacheHits(*child);
  }
  return total;
}

/// Close-time audit walk: pairs each plan node with its operator (same
/// pairing rule as EXPLAIN ANALYZE — the probed inner relation of an index
/// nested-loop join has no operator and is skipped) and appends one
/// OperatorAuditRecord per executed operator. Also feeds the global
/// stats.estimation.qerror histogram for every node carrying an estimate,
/// so the distribution reflects the real workload rather than only EXPLAIN
/// ANALYZE runs, and tracks the plan's worst q-error for the history.
void AuditPlan(const plan::PlanNode& plan, const Operator* op,
               const std::string& path, uint64_t query_id,
               obs::PlanAudit* audit, obs::Histogram* qerror_histogram,
               double* max_qerror) {
  if (op != nullptr) {
    const OperatorStats& stats = op->stats();
    obs::OperatorAuditRecord record;
    record.query_id = query_id;
    record.path = path;
    record.op = op->Describe();
    record.est_rows = plan.est_rows;
    record.actual_rows = stats.rows_out;
    if (plan.est_rows > 0.0) {
      record.qerror = obs::CardinalityQError(plan.est_rows, stats.rows_out);
      qerror_histogram->Observe(record.qerror);
      *max_qerror = std::max(*max_qerror, record.qerror);
    }
    record.inclusive_seconds = stats.open_seconds + stats.next_seconds;
    record.udf_invocations = stats.udf_invocations;
    audit->Append(std::move(record));
  }
  std::vector<const Operator*> op_children =
      op != nullptr ? op->Children() : std::vector<const Operator*>{};
  for (size_t i = 0; i < plan.children.size(); ++i) {
    const Operator* child_op =
        i < op_children.size() ? op_children[i] : nullptr;
    AuditPlan(*plan.children[i], child_op, path + "." + std::to_string(i),
              query_id, audit, qerror_histogram, max_qerror);
  }
}

/// The weakest provenance any predicate estimate in the tree rests on
/// (selectivity or cost): one declared-only guess taints the whole plan.
/// Predicate-free plans report declared — nothing was estimated at all.
obs::StatsTier WeakestStatsTier(const plan::PlanNode& plan) {
  bool any = false;
  auto tier = obs::StatsTier::kFeedback;
  const std::function<void(const plan::PlanNode&)> walk =
      [&](const plan::PlanNode& node) {
        if (node.predicate.expr != nullptr) {
          any = true;
          const auto weakest = static_cast<obs::StatsTier>(
              std::min(static_cast<int>(node.predicate.selectivity_source),
                       static_cast<int>(node.predicate.cost_source)));
          if (static_cast<int>(weakest) < static_cast<int>(tier)) {
            tier = weakest;
          }
        }
        for (const auto& child : node.children) walk(*child);
      };
  walk(plan);
  return any ? tier : obs::StatsTier::kDeclared;
}

types::TypeId InferType(const expr::Expr& e,
                        const types::RowSchema& schema,
                        const catalog::Catalog& catalog) {
  switch (e.kind) {
    case expr::ExprKind::kColumnRef: {
      const std::optional<size_t> i = schema.FindColumn(e.table, e.column);
      return i.has_value() ? schema.Column(*i).type : types::TypeId::kNull;
    }
    case expr::ExprKind::kConstant:
      return e.constant.type();
    case expr::ExprKind::kComparison:
    case expr::ExprKind::kAnd:
    case expr::ExprKind::kOr:
    case expr::ExprKind::kNot:
    case expr::ExprKind::kInSubquery:
      return types::TypeId::kBool;
    case expr::ExprKind::kArithmetic:
      return types::TypeId::kInt64;
    case expr::ExprKind::kFunctionCall: {
      auto def = catalog.functions().Lookup(e.function_name);
      return def.ok() ? (*def)->return_type : types::TypeId::kNull;
    }
  }
  return types::TypeId::kNull;
}

}  // namespace

common::Result<std::unique_ptr<Operator>> BuildExecutor(
    const plan::PlanNode& plan, ExecContext* ctx) {
  switch (plan.kind) {
    case plan::PlanKind::kSeqScan: {
      PPP_ASSIGN_OR_RETURN(const catalog::Table* table,
                           TableFor(*ctx, plan.alias));
      // System tables keep the kSeqScan plan shape (costing and placement
      // are oblivious to the storage kind) but execute as a materialized
      // snapshot scan.
      if (table->is_system()) {
        auto scan = std::make_unique<SystemTableScanOp>(table, plan.alias);
        ClaimTransfers(ctx, plan.alias, scan.get());
        return std::unique_ptr<Operator>(std::move(scan));
      }
      auto scan = std::make_unique<SeqScanOp>(table, plan.alias);
      ClaimTransfers(ctx, plan.alias, scan.get());
      return std::unique_ptr<Operator>(std::move(scan));
    }
    case plan::PlanKind::kIndexScan: {
      PPP_ASSIGN_OR_RETURN(const catalog::Table* table,
                           TableFor(*ctx, plan.alias));
      std::unique_ptr<IndexScanOp> scan;
      if (plan.index_is_range) {
        scan = std::make_unique<IndexScanOp>(table, plan.alias,
                                             plan.index_column, plan.index_lo,
                                             plan.index_hi);
      } else {
        if (plan.index_key.type() != types::TypeId::kInt64) {
          return common::Status::InvalidArgument(
              "index scan key must be INT64");
        }
        scan = std::make_unique<IndexScanOp>(table, plan.alias,
                                             plan.index_column,
                                             plan.index_key.AsInt64());
      }
      ClaimTransfers(ctx, plan.alias, scan.get());
      return std::unique_ptr<Operator>(std::move(scan));
    }
    case plan::PlanKind::kFilter: {
      PPP_ASSIGN_OR_RETURN(std::unique_ptr<Operator> child,
                           BuildExecutor(*plan.children[0], ctx));
      PPP_ASSIGN_OR_RETURN(
          std::unique_ptr<FilterOp> filter,
          FilterOp::Make(std::move(child), plan.predicate, ctx));
      return std::unique_ptr<Operator>(std::move(filter));
    }
    case plan::PlanKind::kJoin: {
      const plan::PlanNode& inner_plan = *plan.children[1];
      // Predicate transfer: a hash join on a cheap simple equi-join key
      // offers its build side as a Bloom filter to the probe (outer) side.
      // The slot goes onto pending_transfers *before* the outer subtree is
      // built so the scan that owns the probe column can claim it.
      std::shared_ptr<BloomTransfer> transfer;
      if (plan.join_method == plan::JoinMethod::kHash &&
          ctx->params.predicate_transfer && plan.predicate.is_simple_equijoin &&
          !plan.predicate.is_expensive()) {
        const std::vector<std::string> outer_aliases =
            plan.children[0]->CollectAliases();
        const expr::PredicateInfo& pred = plan.predicate;
        const bool left_is_outer =
            std::find(outer_aliases.begin(), outer_aliases.end(),
                      pred.left_table) != outer_aliases.end();
        transfer = std::make_shared<BloomTransfer>(
            left_is_outer ? pred.left_table : pred.right_table,
            left_is_outer ? pred.left_column : pred.right_column,
            left_is_outer ? pred.right_table : pred.left_table,
            left_is_outer ? pred.right_column : pred.left_column);
        transfer->min_probes = ctx->params.transfer_min_probes;
        transfer->kill_pass_rate = ctx->params.transfer_kill_pass_rate;
        // Cross-query kill memory (serving layer): if past executions of
        // this site killed the filter or measured it passing nearly
        // everything, don't rebuild it just to kill it again.
        if (ctx->params.transfer_cross_query_kill) {
          const std::optional<obs::TransferProfile> history =
              obs::PredicateProfiler::Global().GetTransfer(transfer->Site());
          if (history.has_value() &&
              history->probed >= ctx->params.transfer_min_probes &&
              (history->kills > 0 ||
               history->PassRate() > ctx->params.transfer_kill_pass_rate)) {
            static obs::Counter* skipped_counter =
                obs::MetricsRegistry::Global().GetCounter(
                    "exec.transfer.skipped_by_history");
            skipped_counter->Increment();
            transfer = nullptr;
          }
        }
        if (transfer != nullptr) ctx->pending_transfers.push_back(transfer);
      }
      PPP_ASSIGN_OR_RETURN(std::unique_ptr<Operator> outer,
                           BuildExecutor(*plan.children[0], ctx));
      if (transfer != nullptr) {
        ctx->pending_transfers.pop_back();
        if (transfer->claimed()) {
          ctx->all_transfers.push_back(transfer);
        } else {
          // No probe-side scan could take it (key column projected away or
          // hidden behind a pipeline breaker): skip the build-side work.
          transfer = nullptr;
        }
      }
      switch (plan.join_method) {
        case plan::JoinMethod::kNestLoop: {
          PPP_ASSIGN_OR_RETURN(std::unique_ptr<Operator> inner,
                               BuildExecutor(inner_plan, ctx));
          std::optional<CachedPredicate> primary;
          if (plan.predicate.expr != nullptr) {
            const types::RowSchema joined = types::RowSchema::Concat(
                outer->schema(), inner->schema());
            PPP_ASSIGN_OR_RETURN(
                CachedPredicate bound,
                CachedPredicate::Bind(plan.predicate, joined, *ctx->catalog,
                                      ctx->params, ctx->shared_caches,
                                      &ctx->binding));
            primary = std::move(bound);
          }
          return std::unique_ptr<Operator>(
              std::make_unique<NestedLoopJoinOp>(
                  std::move(outer), std::move(inner), std::move(primary),
                  ctx));
        }
        case plan::JoinMethod::kIndexNestLoop: {
          if (inner_plan.kind != plan::PlanKind::kSeqScan) {
            return common::Status::InvalidArgument(
                "index nested loops requires a bare scan inner");
          }
          PPP_ASSIGN_OR_RETURN(const catalog::Table* inner_table,
                               TableFor(*ctx, inner_plan.alias));
          const expr::PredicateInfo& pred = plan.predicate;
          if (!pred.is_simple_equijoin) {
            return common::Status::InvalidArgument(
                "index nested loops requires a simple equi-join primary");
          }
          const bool left_is_inner = pred.left_table == inner_plan.alias;
          const std::string& inner_column =
              left_is_inner ? pred.left_column : pred.right_column;
          const std::string& outer_table =
              left_is_inner ? pred.right_table : pred.left_table;
          const std::string& outer_column =
              left_is_inner ? pred.right_column : pred.left_column;
          PPP_ASSIGN_OR_RETURN(
              const size_t outer_key,
              ResolveQualified(outer->schema(), outer_table, outer_column));
          return std::unique_ptr<Operator>(
              std::make_unique<IndexNestedLoopJoinOp>(
                  std::move(outer), inner_table, inner_plan.alias,
                  inner_column, outer_key));
        }
        case plan::JoinMethod::kMerge:
        case plan::JoinMethod::kHash: {
          PPP_ASSIGN_OR_RETURN(std::unique_ptr<Operator> inner,
                               BuildExecutor(inner_plan, ctx));
          PPP_ASSIGN_OR_RETURN(const auto outer_key_col,
                               JoinKeyFor(plan.predicate, outer->schema()));
          PPP_ASSIGN_OR_RETURN(const auto inner_key_col,
                               JoinKeyFor(plan.predicate, inner->schema()));
          PPP_ASSIGN_OR_RETURN(
              const size_t outer_key,
              ResolveQualified(outer->schema(), outer_key_col.first,
                               outer_key_col.second));
          PPP_ASSIGN_OR_RETURN(
              const size_t inner_key,
              ResolveQualified(inner->schema(), inner_key_col.first,
                               inner_key_col.second));
          if (plan.join_method == plan::JoinMethod::kMerge) {
            return std::unique_ptr<Operator>(std::make_unique<MergeJoinOp>(
                std::move(outer), std::move(inner), outer_key, inner_key));
          }
          return std::unique_ptr<Operator>(std::make_unique<HashJoinOp>(
              std::move(outer), std::move(inner), outer_key, inner_key,
              std::move(transfer)));
        }
      }
      return common::Status::Internal("unknown join method");
    }
    case plan::PlanKind::kSort: {
      PPP_ASSIGN_OR_RETURN(std::unique_ptr<Operator> child,
                           BuildExecutor(*plan.children[0], ctx));
      const std::vector<std::string> parts =
          common::Split(plan.sort_column, '.');
      if (parts.size() != 2) {
        return common::Status::InvalidArgument("bad sort column " +
                                               plan.sort_column);
      }
      PPP_ASSIGN_OR_RETURN(
          const size_t key,
          ResolveQualified(child->schema(), parts[0], parts[1]));
      return std::unique_ptr<Operator>(
          std::make_unique<SortOp>(std::move(child), key));
    }
    case plan::PlanKind::kMaterialize: {
      PPP_ASSIGN_OR_RETURN(std::unique_ptr<Operator> child,
                           BuildExecutor(*plan.children[0], ctx));
      return std::unique_ptr<Operator>(
          std::make_unique<MaterializeOp>(std::move(child)));
    }
    case plan::PlanKind::kAggregate: {
      PPP_ASSIGN_OR_RETURN(std::unique_ptr<Operator> child,
                           BuildExecutor(*plan.children[0], ctx));
      std::vector<size_t> keys;
      std::vector<types::ColumnInfo> columns;
      for (const std::string& qualified : plan.group_columns) {
        const std::vector<std::string> parts =
            common::Split(qualified, '.');
        if (parts.size() != 2) {
          return common::Status::InvalidArgument("bad group column " +
                                                 qualified);
        }
        PPP_ASSIGN_OR_RETURN(
            const size_t index,
            ResolveQualified(child->schema(), parts[0], parts[1]));
        keys.push_back(index);
        columns.push_back(child->schema().Column(index));
      }
      std::vector<HashAggregateOp::BoundAggregate> aggs;
      for (const plan::AggregateItem& item : plan.aggregates) {
        HashAggregateOp::BoundAggregate bound;
        bound.op = item.op;
        types::TypeId type = types::TypeId::kInt64;
        if (item.arg != nullptr) {
          PPP_ASSIGN_OR_RETURN(
              std::unique_ptr<expr::BoundExpr> arg,
              expr::BoundExpr::Bind(item.arg, child->schema(),
                                    ctx->catalog->functions()));
          bound.arg = std::move(arg);
          type = InferType(*item.arg, child->schema(), *ctx->catalog);
        }
        switch (item.op) {
          case plan::AggregateItem::Op::kCount:
            type = types::TypeId::kInt64;
            break;
          case plan::AggregateItem::Op::kSum:
          case plan::AggregateItem::Op::kAvg:
            type = types::TypeId::kDouble;
            break;
          default:
            break;  // min/max keep the argument type.
        }
        columns.push_back({"", item.name, type});
        aggs.push_back(std::move(bound));
      }
      return std::unique_ptr<Operator>(std::make_unique<HashAggregateOp>(
          std::move(child), std::move(keys), std::move(aggs),
          types::RowSchema(std::move(columns)), ctx));
    }
    case plan::PlanKind::kProject: {
      PPP_ASSIGN_OR_RETURN(std::unique_ptr<Operator> child,
                           BuildExecutor(*plan.children[0], ctx));
      std::vector<std::shared_ptr<expr::BoundExpr>> bound;
      std::vector<types::ColumnInfo> columns;
      for (size_t i = 0; i < plan.projections.size(); ++i) {
        const expr::ExprPtr& e = plan.projections[i];
        PPP_ASSIGN_OR_RETURN(
            std::unique_ptr<expr::BoundExpr> b,
            expr::BoundExpr::Bind(e, child->schema(),
                                  ctx->catalog->functions()));
        bound.push_back(std::move(b));
        std::string name = i < plan.projection_names.size()
                               ? plan.projection_names[i]
                               : e->ToString();
        columns.push_back(
            {"", std::move(name), InferType(*e, child->schema(),
                                            *ctx->catalog)});
      }
      return std::unique_ptr<Operator>(std::make_unique<ProjectOp>(
          std::move(child), std::move(bound),
          types::RowSchema(std::move(columns)), ctx));
    }
  }
  return common::Status::Internal("unknown plan node kind");
}

std::string ExecStats::ToString() const {
  std::string out = "rows=" + std::to_string(output_rows) + " " +
                    io.ToString();
  for (const auto& [name, count] : invocations) {
    out += " " + name + "×" + std::to_string(count);
  }
  return out;
}

common::Result<std::vector<types::Tuple>> ExecutePlan(
    const plan::PlanNode& plan, ExecContext* ctx, ExecStats* stats,
    types::RowSchema* out_schema, std::unique_ptr<Operator>* root_out) {
  storage::BufferPool* pool = ctx->catalog->buffer_pool();
  const storage::IoStats before = pool->stats();
  // batch_size == 0 is invalid; clamp once here so every consumer (drain
  // loop, SetBatchSize, operators) sees a sane value.
  if (ctx->params.batch_size == 0) ctx->params.batch_size = 1;
  ctx->eval.invocation_counts.clear();
  ctx->pending_transfers.clear();
  ctx->all_transfers.clear();

  // Query-log bookkeeping: an id for span correlation (issued even when
  // logging is off) and the execute-phase clock. The id scope outlives the
  // spans below, so every span recorded during this execution carries the
  // query id and (when the serving layer set one) the session id. Counters
  // for the log record come from this context, not global-registry deltas,
  // so they stay exact when other sessions execute concurrently.
  obs::QueryLog& query_log = obs::QueryLog::Global();
  const uint64_t query_id = query_log.NextQueryId();
  obs::QueryIdScope query_scope(query_id, ctx->log_hints.session_id);
  const bool log_on = query_log.enabled();
  const std::chrono::steady_clock::time_point exec_start =
      std::chrono::steady_clock::now();

  std::optional<obs::Span> span;
  if (obs::SpanTracer::Global().enabled()) span.emplace("exec", "execute");

  // Workers beyond the coordinator come from a persistent pool, reused
  // across executions on the same context.
  const size_t workers = std::max<size_t>(1, ctx->params.parallel_workers);
  if (workers > 1 && (ctx->thread_pool == nullptr ||
                      ctx->thread_pool->num_threads() != workers - 1)) {
    ctx->thread_pool = std::make_shared<common::ThreadPool>(workers - 1);
  }

  // Wire the function-level cache when that mode is selected.
  if (ctx->params.predicate_caching &&
      ctx->params.cache_mode == CacheMode::kFunction) {
    expr::FunctionCache::Options options;
    options.max_entries = ctx->params.cache_max_entries;
    options.shards = ShardedPredicateCache::ShardsFor(workers);
    options.adaptive = ctx->params.adaptive_caching;
    options.probe_window = ctx->params.adaptive_probe_window;
    ctx->function_cache_storage.Configure(options);
    ctx->eval.function_cache = &ctx->function_cache_storage;
  } else {
    ctx->eval.function_cache = nullptr;
  }
  // The context's function cache persists across executions; baseline its
  // hit counter so the log record reports this query's hits only.
  const uint64_t fn_cache_hits_before =
      ctx->eval.function_cache != nullptr ? ctx->eval.function_cache->hits()
                                          : 0;

  PPP_ASSIGN_OR_RETURN(std::unique_ptr<Operator> root,
                       BuildExecutor(plan, ctx));
  root->AttachPool(pool);
  root->SetBatchSize(ctx->params.batch_size);
  if (out_schema != nullptr) *out_schema = root->schema();
  PPP_RETURN_IF_ERROR(root->Open());
  std::vector<types::Tuple> out;
  TupleBatch batch;
  bool eof = false;
  while (!eof) {
    batch.clear();
    PPP_RETURN_IF_ERROR(
        root->NextBatch(ctx->params.batch_size, &batch, &eof));
    for (types::Tuple& tuple : batch.tuples) {
      out.push_back(std::move(tuple));
    }
  }

  if (span.has_value()) span->AddArg("rows", std::to_string(out.size()));

  // End-of-query transfer accounting: per-site aggregates go to the
  // profiler (the same collector the rank-drift feedback reads), totals to
  // the global counters.
  if (!ctx->all_transfers.empty()) {
    obs::Counter* probed_counter =
        obs::MetricsRegistry::Global().GetCounter("exec.transfer.probed");
    obs::Counter* pruned_counter =
        obs::MetricsRegistry::Global().GetCounter("exec.transfer.pruned");
    obs::Counter* killed_counter =
        obs::MetricsRegistry::Global().GetCounter("exec.transfer.killed");
    for (const auto& transfer : ctx->all_transfers) {
      obs::PredicateProfiler::Global().RecordTransfer(
          transfer->Site(), transfer->probed(), transfer->passed(),
          transfer->killed(), transfer->MeasuredFpr());
      probed_counter->Increment(transfer->probed());
      pruned_counter->Increment(transfer->pruned());
      if (transfer->killed()) killed_counter->Increment();
    }
  }

  if (stats != nullptr) {
    const storage::IoStats after = pool->stats();
    stats->output_rows = out.size();
    stats->io.sequential_reads =
        after.sequential_reads - before.sequential_reads;
    stats->io.random_reads = after.random_reads - before.random_reads;
    stats->io.writes = after.writes - before.writes;
    stats->io.buffer_hits = after.buffer_hits - before.buffer_hits;
    stats->invocations = ctx->eval.invocation_counts;
  }

  // Plan-lifecycle audit: per-operator est-vs-actual records plus the
  // workload-wide q-error feed. Independent of the query log so
  // PPP_QUERY_LOG=0 and PPP_PLAN_AUDIT=0 cut orthogonal slices.
  double max_qerror = 0.0;
  obs::PlanAudit& audit = obs::PlanAudit::Global();
  if (audit.enabled()) {
    static obs::Histogram* qerror_histogram =
        obs::MetricsRegistry::Global().GetHistogram(
            "stats.estimation.qerror");
    AuditPlan(plan, root.get(), "0", query_id, &audit, qerror_histogram,
              &max_qerror);
  }

  const double execute_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    exec_start)
          .count();

  // Plan history: fold this execution into the (text_hash, fingerprint)
  // aggregate and learn whether the plan changed or regressed. The UDF
  // total comes from this context's tallies (not the root operator's
  // global-counter delta), so it stays exact under concurrent sessions.
  uint64_t ctx_udf_invocations = 0;
  for (const auto& [name, count] : ctx->eval.invocation_counts) {
    ctx_udf_invocations += count;
  }
  const obs::PlanOutcome plan_outcome = obs::PlanHistory::Global().Record(
      ctx->log_hints.text_hash, plan.Fingerprint(),
      ctx->log_hints.optimize_seconds + execute_seconds,
      ctx_udf_invocations, max_qerror, query_id);
  if (plan_outcome.plan_changed) {
    static obs::Counter* changed_counter =
        obs::MetricsRegistry::Global().GetCounter("plan.changed");
    changed_counter->Increment();
  }
  if (plan_outcome.plan_regressed) {
    static obs::Counter* regressed_counter =
        obs::MetricsRegistry::Global().GetCounter("plan.regressed");
    regressed_counter->Increment();
  }

  // Close-time introspection: append this query's log record (after the
  // transfer accounting above, so the counter deltas include it; after the
  // scans closed, so the query never sees its own row) and roll the
  // time-series forward one sample.
  if (log_on) {
    obs::QueryLogRecord record;
    record.query_id = query_id;
    record.session_id = ctx->log_hints.session_id;
    record.text_hash = ctx->log_hints.text_hash;
    record.plan_fingerprint = plan.Fingerprint();
    record.algorithm = ctx->log_hints.algorithm;
    record.optimize_seconds = ctx->log_hints.optimize_seconds;
    record.execute_seconds = execute_seconds;
    record.wall_seconds =
        record.optimize_seconds + record.execute_seconds;
    record.rows_in = SumLeafRows(*root);
    record.rows_out = out.size();
    // Per-context exact counters (identical to the historical global
    // registry deltas when one query runs, and still exact under
    // concurrent sessions): invocations from this context's tallies,
    // cache hits from both memoization layers (the per-context function
    // cache's delta plus the operators' predicate memos), pruned rows
    // from this execution's transfers.
    record.udf_invocations = ctx_udf_invocations;
    const uint64_t fn_cache_hits =
        ctx->eval.function_cache != nullptr
            ? ctx->eval.function_cache->hits() - fn_cache_hits_before
            : 0;
    record.cache_hits = fn_cache_hits + SumCacheHits(*root);
    uint64_t pruned_total = 0;
    for (const auto& transfer : ctx->all_transfers) {
      pruned_total += transfer->pruned();
    }
    record.transfer_pruned = pruned_total;
    record.drift_flags =
        CountDriftingPredicates(plan, ctx->catalog->functions());
    record.stats_tier = WeakestStatsTier(plan);
    record.bucket = obs::TimeSeries::Global().CurrentBucket();
    record.plan_changed = plan_outcome.plan_changed;
    record.plan_regressed = plan_outcome.plan_regressed;
    query_log.Append(std::move(record));
  }
  obs::TimeSeries::Global().Sample();

  if (root_out != nullptr) *root_out = std::move(root);
  return out;
}

}  // namespace ppp::exec
