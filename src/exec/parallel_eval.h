#ifndef PPP_EXEC_PARALLEL_EVAL_H_
#define PPP_EXEC_PARALLEL_EVAL_H_

#include <cstddef>
#include <vector>

#include "common/thread_pool.h"
#include "exec/operator.h"

namespace ppp::exec {

/// Fans one batch of an expensive-predicate filter across a worker pool.
///
/// Correctness contract (the paper measures plans by exact invocation
/// counts, so parallelism must not change them):
///  - Each worker evaluates a contiguous slice of the batch with its own
///    EvalContext; invocation tallies are merged into the coordinator's
///    context after the join, in slice order, so totals are exact and
///    deterministic.
///  - The predicate/function caches are sharded and thread-safe, and a key
///    being computed by one worker blocks concurrent probers instead of
///    recomputing — each distinct binding is evaluated at most once, the
///    same as serial execution (unbounded caches; bounded caches may evict
///    in a run-dependent order).
///  - Only predicates whose functions are all parallel_safe are fanned out
///    (FilterOp gates on CachedPredicate::parallel_safe()).
///
/// The speedup on expensive predicates comes from overlapping their
/// latency: the paper charges them in random-I/O units, i.e. they model
/// waiting on I/O, so concurrent workers make progress even on one core.
class ParallelPredicateEvaluator {
 public:
  /// `pool` supplies workers; the coordinator participates too, so the
  /// effective parallelism is pool->num_threads() + 1.
  explicit ParallelPredicateEvaluator(common::ThreadPool* pool);

  /// Evaluates `pred` on every tuple of `batch`, writing pass/fail into
  /// `keep` (resized to batch.size()). Invocation counts land in
  /// ctx->eval.invocation_counts exactly as a serial evaluation would.
  void EvalBatch(CachedPredicate* pred, const TupleBatch& batch,
                 ExecContext* ctx, std::vector<char>* keep);

 private:
  common::ThreadPool* pool_;
};

}  // namespace ppp::exec

#endif  // PPP_EXEC_PARALLEL_EVAL_H_
