#include "exec/pred_cache.h"

#include <algorithm>

#include "obs/metrics.h"

namespace ppp::exec {

namespace {

common::ShardedMemo<bool>::Options MemoOptions(
    const ShardedPredicateCache::Options& options) {
  common::ShardedMemo<bool>::Options memo;
  memo.max_entries = options.max_entries;
  memo.max_bytes = options.max_bytes;
  memo.lru = options.lru;
  memo.shards = options.shards;
  memo.adaptive = options.adaptive;
  memo.probe_window = options.probe_window;
  return memo;
}

}  // namespace

ShardedPredicateCache::ShardedPredicateCache(const Options& options)
    : memo_(MemoOptions(options)) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  common::ShardedMemo<bool>::Listener listener;
  listener.on_hit = [counter = registry.GetCounter(
                         "exec.predicate_cache.hits")] {
    counter->Increment();
  };
  listener.on_miss = [counter = registry.GetCounter(
                          "exec.predicate_cache.misses")] {
    counter->Increment();
  };
  listener.on_eviction = [counter = registry.GetCounter(
                              "exec.predicate_cache.evictions"),
                          bounded = registry.GetCounter(
                              "exec.pred_cache.evictions")] {
    counter->Increment();
    bounded->Increment();
  };
  listener.on_disable = [counter = registry.GetCounter(
                             "exec.predicate_cache.disables")] {
    counter->Increment();
  };
  listener.on_contention = [counter = registry.GetCounter(
                                "exec.predicate_cache.shard_contention")] {
    counter->Increment();
  };
  memo_.set_listener(std::move(listener));
}

size_t ShardedPredicateCache::ShardsFor(size_t parallel_workers) {
  if (parallel_workers <= 1) return 1;
  // A few shards per worker keeps the collision probability of concurrent
  // probes low without ballooning per-shard bookkeeping.
  return std::min<size_t>(64, parallel_workers * 4);
}

}  // namespace ppp::exec
