#ifndef PPP_EXEC_SHARED_CACHES_H_
#define PPP_EXEC_SHARED_CACHES_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "exec/pred_cache.h"

namespace ppp::exec {

/// Engine-wide registry of §5.1 predicate caches, keyed on the predicate's
/// canonical identity (expression text + alias→table resolution + cache
/// configuration). Without it every CachedPredicate::Bind builds a fresh
/// memo, so each query warms its expensive UDFs from cold; with it, the
/// serving layer hands the same registry to every session and session B's
/// `costly100(t10.ua)` probe hits the entries session A already computed —
/// §5.1 caching amortized across the workload, not one query.
///
/// Sharing is sound because a cache entry maps serialized input-column
/// *values* to the verdict of a pure (cacheable) predicate: the key
/// embeds the resolved table of every alias, so identical text over
/// different tables gets distinct caches, and identical predicates over
/// the same tables compute each distinct binding at most once engine-wide
/// (ShardedMemo's pending-entry dedup holds across sessions too).
///
/// Bounded: beyond max_caches the least-recently-acquired cache is dropped
/// from the registry (in-flight holders keep their shared_ptr; the cache
/// dies when the last operator using it closes). Thread-safe.
class SharedPredicateCacheRegistry {
 public:
  static constexpr size_t kDefaultMaxCaches = 256;

  SharedPredicateCacheRegistry() = default;
  explicit SharedPredicateCacheRegistry(size_t max_caches)
      : max_caches_(max_caches == 0 ? 1 : max_caches) {}

  SharedPredicateCacheRegistry(const SharedPredicateCacheRegistry&) = delete;
  SharedPredicateCacheRegistry& operator=(const SharedPredicateCacheRegistry&) =
      delete;

  /// Returns the cache registered under `identity`, creating it with
  /// `options` on first acquisition. `identity` must already encode the
  /// cache-relevant options (BuildSharedCacheKey does), so a config change
  /// yields a different cache rather than one with surprising bounds.
  std::shared_ptr<ShardedPredicateCache> GetOrCreate(
      const std::string& identity,
      const ShardedPredicateCache::Options& options);

  size_t size() const;
  uint64_t acquisitions() const;
  /// Acquisitions that found an existing cache (cross-query reuse).
  uint64_t reuses() const;

  /// Drops every cache (holders keep theirs alive until close).
  void Clear();

 private:
  size_t max_caches_ = kDefaultMaxCaches;
  mutable std::mutex mu_;
  /// identity -> (cache, position in lru_). lru_ front = most recent.
  struct Slot {
    std::shared_ptr<ShardedPredicateCache> cache;
    std::list<std::string>::iterator lru_pos;
  };
  std::unordered_map<std::string, Slot> caches_;
  std::list<std::string> lru_;
  uint64_t acquisitions_ = 0;
  uint64_t reuses_ = 0;
};

/// Canonical identity of one predicate's memo for cross-query sharing:
/// expression text, each referenced alias resolved to its table, and the
/// cache-shape options. See SharedPredicateCacheRegistry.
std::string BuildSharedCacheKey(const std::string& expr_text,
                                const std::string& resolved_tables,
                                const ShardedPredicateCache::Options& options);

}  // namespace ppp::exec

#endif  // PPP_EXEC_SHARED_CACHES_H_
