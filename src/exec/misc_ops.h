#ifndef PPP_EXEC_MISC_OPS_H_
#define PPP_EXEC_MISC_OPS_H_

#include <memory>
#include <vector>

#include "exec/operator.h"
#include "plan/plan_node.h"

namespace ppp::exec {

/// In-memory sort on one column, ascending, NULLs first.
class SortOp : public Operator {
 public:
  SortOp(std::unique_ptr<Operator> child, size_t key_index);

  std::string Describe() const override;
  std::vector<Operator*> Children() override { return {child_.get()}; }

 protected:
  common::Status OpenImpl() override;
  common::Status NextImpl(types::Tuple* tuple, bool* eof) override;

 private:
  std::unique_ptr<Operator> child_;
  size_t key_;
  std::vector<types::Tuple> rows_;
  size_t pos_ = 0;
};

/// Buffers the child's output on first Open; later Opens replay from
/// memory without re-executing the child.
class MaterializeOp : public Operator {
 public:
  explicit MaterializeOp(std::unique_ptr<Operator> child);

  std::string Describe() const override;
  std::vector<Operator*> Children() override { return {child_.get()}; }

 protected:
  common::Status OpenImpl() override;
  common::Status NextImpl(types::Tuple* tuple, bool* eof) override;
  common::Status NextBatchImpl(size_t max_rows, TupleBatch* batch,
                               bool* eof) override;

 private:
  std::unique_ptr<Operator> child_;
  std::vector<types::Tuple> rows_;
  bool filled_ = false;
  size_t pos_ = 0;
};

/// Hash aggregation: groups the child's rows on a list of key columns
/// (empty = one global group) and computes count/sum/avg/min/max. Output
/// is sorted by group key for determinism.
class HashAggregateOp : public Operator {
 public:
  struct BoundAggregate {
    plan::AggregateItem::Op op;
    std::shared_ptr<expr::BoundExpr> arg;  // Null for COUNT(*).
  };

  HashAggregateOp(std::unique_ptr<Operator> child,
                  std::vector<size_t> key_indexes,
                  std::vector<BoundAggregate> aggregates,
                  types::RowSchema output_schema, ExecContext* ctx);

  std::string Describe() const override;
  std::vector<Operator*> Children() override { return {child_.get()}; }

 protected:
  common::Status OpenImpl() override;
  common::Status NextImpl(types::Tuple* tuple, bool* eof) override;

 private:
  struct Accumulator {
    uint64_t count = 0;
    double sum = 0;
    types::Value min;
    types::Value max;
    bool has_value = false;
  };

  std::unique_ptr<Operator> child_;
  std::vector<size_t> key_indexes_;
  std::vector<BoundAggregate> aggregates_;
  ExecContext* ctx_;
  std::vector<types::Tuple> results_;
  size_t pos_ = 0;
};

/// Evaluates a projection list per input tuple.
class ProjectOp : public Operator {
 public:
  ProjectOp(std::unique_ptr<Operator> child,
            std::vector<std::shared_ptr<expr::BoundExpr>> exprs,
            types::RowSchema output_schema, ExecContext* ctx);

  std::string Describe() const override;
  std::vector<Operator*> Children() override { return {child_.get()}; }

 protected:
  common::Status OpenImpl() override;
  common::Status NextImpl(types::Tuple* tuple, bool* eof) override;
  common::Status NextBatchImpl(size_t max_rows, TupleBatch* batch,
                               bool* eof) override;

 private:
  types::Tuple Apply(const types::Tuple& input);

  std::unique_ptr<Operator> child_;
  std::vector<std::shared_ptr<expr::BoundExpr>> exprs_;
  ExecContext* ctx_;
};

}  // namespace ppp::exec

#endif  // PPP_EXEC_MISC_OPS_H_
