#include "exec/vector_filter.h"

#include <string_view>
#include <utility>

namespace ppp::exec {

namespace {

using types::ColumnBatch;
using types::TypeId;

/// Side accessors. The pointer members make the "which storage" decision
/// loop-invariant; the hot benchmark shapes (int64 column vs int64
/// constant, double column vs double constant) reduce to a single indexed
/// load per row.
struct I64Acc {
  const int64_t* data = nullptr;  // null = constant operand
  int64_t constant = 0;
  int64_t operator()(uint32_t row) const {
    return data != nullptr ? data[row] : constant;
  }
};

struct F64Acc {
  const int64_t* i64_data = nullptr;  // int64/bool column widened per row
  const double* f64_data = nullptr;
  double constant = 0.0;
  double operator()(uint32_t row) const {
    if (f64_data != nullptr) return f64_data[row];
    if (i64_data != nullptr) return static_cast<double>(i64_data[row]);
    return constant;
  }
};

struct StrAcc {
  const ColumnBatch::Column* col = nullptr;  // null = constant operand
  std::string_view constant;
  std::string_view operator()(uint32_t row) const {
    return col != nullptr ? col->StringAt(row) : constant;
  }
};

/// The filtering loop, compressing the selection vector in place (writes
/// trail reads, so aliasing is safe). `cmp` receives the two operand values
/// and must encode the comparison exactly as Value::Compare's three-way
/// ordering would — see the comparator definitions in DispatchOp.
template <typename L, typename R, typename Cmp>
void Kernel(std::vector<uint32_t>* selection, L lhs, R rhs,
            const uint8_t* lhs_nulls, const uint8_t* rhs_nulls,
            std::vector<uint8_t>* maybe_null, Cmp cmp) {
  std::vector<uint32_t>& sel = *selection;
  const size_t count = sel.size();
  size_t out = 0;
  if (lhs_nulls == nullptr && rhs_nulls == nullptr) {
    for (size_t i = 0; i < count; ++i) {
      const uint32_t row = sel[i];
      if (cmp(lhs(row), rhs(row))) sel[out++] = row;
    }
  } else if (maybe_null == nullptr) {
    for (size_t i = 0; i < count; ++i) {
      const uint32_t row = sel[i];
      if ((lhs_nulls != nullptr && lhs_nulls[row] != 0) ||
          (rhs_nulls != nullptr && rhs_nulls[row] != 0)) {
        continue;  // NULL comparison -> not TRUE -> drop.
      }
      if (cmp(lhs(row), rhs(row))) sel[out++] = row;
    }
  } else {
    for (size_t i = 0; i < count; ++i) {
      const uint32_t row = sel[i];
      if ((lhs_nulls != nullptr && lhs_nulls[row] != 0) ||
          (rhs_nulls != nullptr && rhs_nulls[row] != 0)) {
        // AND only short-circuits on FALSE: the row stays alive for the
        // expensive remainder, flagged so it can never reach the output.
        (*maybe_null)[row] = 1;
        sel[out++] = row;
        continue;
      }
      if (cmp(lhs(row), rhs(row))) sel[out++] = row;
    }
  }
  sel.resize(out);
}

/// Comparators written against the three-way ordering (a<b / a>b only), so
/// double NaN behaves exactly like Value::Compare: NaN neither < nor >
/// anything, hence Compare() == 0, hence Eq/Le/Ge hold. For int64 and
/// string_view these forms are equivalent to the plain operators.
template <typename L, typename R>
void DispatchOp(expr::CompareOp op, std::vector<uint32_t>* selection, L lhs,
                R rhs, const uint8_t* lhs_nulls, const uint8_t* rhs_nulls,
                std::vector<uint8_t>* maybe_null) {
  switch (op) {
    case expr::CompareOp::kEq:
      Kernel(selection, lhs, rhs, lhs_nulls, rhs_nulls, maybe_null,
             [](auto a, auto b) { return !(a < b) && !(a > b); });
      break;
    case expr::CompareOp::kNe:
      Kernel(selection, lhs, rhs, lhs_nulls, rhs_nulls, maybe_null,
             [](auto a, auto b) { return (a < b) || (a > b); });
      break;
    case expr::CompareOp::kLt:
      Kernel(selection, lhs, rhs, lhs_nulls, rhs_nulls, maybe_null,
             [](auto a, auto b) { return a < b; });
      break;
    case expr::CompareOp::kLe:
      Kernel(selection, lhs, rhs, lhs_nulls, rhs_nulls, maybe_null,
             [](auto a, auto b) { return !(a > b); });
      break;
    case expr::CompareOp::kGt:
      Kernel(selection, lhs, rhs, lhs_nulls, rhs_nulls, maybe_null,
             [](auto a, auto b) { return a > b; });
      break;
    case expr::CompareOp::kGe:
      Kernel(selection, lhs, rhs, lhs_nulls, rhs_nulls, maybe_null,
             [](auto a, auto b) { return !(a < b); });
      break;
  }
}

bool IsNumericType(TypeId t) {
  return t == TypeId::kInt64 || t == TypeId::kDouble || t == TypeId::kBool;
}

}  // namespace

std::optional<VectorizedPredicate> VectorizedPredicate::Compile(
    const expr::ExprPtr& conjunct, const types::RowSchema& schema) {
  if (conjunct == nullptr || conjunct->kind != expr::ExprKind::kComparison ||
      conjunct->children.size() != 2) {
    return std::nullopt;
  }

  // Per-side compile: a non-NULL literal or a resolvable typed column.
  struct Side {
    Operand operand;
    TypeId type = TypeId::kNull;
  };
  const auto compile_side =
      [&schema](const expr::Expr& e) -> std::optional<Side> {
    Side side;
    if (e.kind == expr::ExprKind::kConstant) {
      if (e.constant.is_null()) return std::nullopt;
      side.operand.is_const = true;
      side.type = e.constant.type();
      switch (side.type) {
        case TypeId::kInt64:
          side.operand.i64 = e.constant.AsInt64();
          side.operand.f64 = static_cast<double>(side.operand.i64);
          break;
        case TypeId::kDouble:
          side.operand.f64 = e.constant.AsDouble();
          break;
        case TypeId::kBool:
          side.operand.f64 = e.constant.AsBool() ? 1.0 : 0.0;
          break;
        case TypeId::kString:
          side.operand.str = e.constant.AsString();
          break;
        default:
          return std::nullopt;
      }
      return side;
    }
    if (e.kind == expr::ExprKind::kColumnRef) {
      const std::optional<size_t> index = schema.FindColumn(e.table, e.column);
      if (!index.has_value()) return std::nullopt;
      side.type = schema.Column(*index).type;
      if (side.type == TypeId::kNull) return std::nullopt;
      side.operand.column = *index;
      return side;
    }
    return std::nullopt;
  };

  const std::optional<Side> lhs = compile_side(*conjunct->children[0]);
  const std::optional<Side> rhs = compile_side(*conjunct->children[1]);
  if (!lhs.has_value() || !rhs.has_value()) return std::nullopt;
  // Constant-constant folds upstream; not worth a kernel.
  if (lhs->operand.is_const && rhs->operand.is_const) return std::nullopt;

  VectorizedPredicate out;
  out.op_ = conjunct->compare_op;
  out.lhs_ = lhs->operand;
  out.rhs_ = rhs->operand;
  if (lhs->type == TypeId::kString && rhs->type == TypeId::kString) {
    out.type_class_ = TypeClass::kString;
  } else if (IsNumericType(lhs->type) && IsNumericType(rhs->type)) {
    // Value::Compare compares exactly only when both sides are kInt64;
    // any bool/double involvement goes through double.
    out.type_class_ = (lhs->type == TypeId::kInt64 &&
                       rhs->type == TypeId::kInt64)
                          ? TypeClass::kInt64
                          : TypeClass::kDouble;
  } else {
    // Heterogeneous string-vs-number ordering (by type id) stays scalar.
    return std::nullopt;
  }
  return out;
}

bool VectorizedPredicate::Applicable(const types::ColumnBatch& batch) const {
  if (!lhs_.is_const && batch.column(lhs_.column).boxed) return false;
  if (!rhs_.is_const && batch.column(rhs_.column).boxed) return false;
  return true;
}

void VectorizedPredicate::Filter(types::ColumnBatch* batch,
                                 std::vector<uint8_t>* maybe_null) const {
  std::vector<uint32_t>* sel = batch->mutable_selection();
  const uint8_t* lhs_nulls =
      lhs_.is_const ? nullptr : batch->column(lhs_.column).nulls.data();
  const uint8_t* rhs_nulls =
      rhs_.is_const ? nullptr : batch->column(rhs_.column).nulls.data();

  switch (type_class_) {
    case TypeClass::kInt64: {
      const auto acc = [&](const Operand& o) {
        I64Acc a;
        if (o.is_const) {
          a.constant = o.i64;
        } else {
          a.data = batch->column(o.column).i64.data();
        }
        return a;
      };
      DispatchOp(op_, sel, acc(lhs_), acc(rhs_), lhs_nulls, rhs_nulls,
                 maybe_null);
      break;
    }
    case TypeClass::kDouble: {
      const auto acc = [&](const Operand& o) {
        F64Acc a;
        if (o.is_const) {
          a.constant = o.f64;
        } else {
          const ColumnBatch::Column& col = batch->column(o.column);
          if (col.type == TypeId::kDouble) {
            a.f64_data = col.f64.data();
          } else {
            a.i64_data = col.i64.data();  // int64/bool widen per row.
          }
        }
        return a;
      };
      DispatchOp(op_, sel, acc(lhs_), acc(rhs_), lhs_nulls, rhs_nulls,
                 maybe_null);
      break;
    }
    case TypeClass::kString: {
      const auto acc = [&](const Operand& o) {
        StrAcc a;
        if (o.is_const) {
          a.constant = o.str;
        } else {
          a.col = &batch->column(o.column);
        }
        return a;
      };
      DispatchOp(op_, sel, acc(lhs_), acc(rhs_), lhs_nulls, rhs_nulls,
                 maybe_null);
      break;
    }
  }
}

}  // namespace ppp::exec
