#include "exec/join_ops.h"

#include <algorithm>
#include <optional>

#include "obs/span.h"

namespace ppp::exec {

namespace {

/// Drains `op` into `out` (after Open), pulling batch-at-a-time.
common::Status Drain(Operator* op, size_t batch_size,
                     std::vector<types::Tuple>* out) {
  PPP_RETURN_IF_ERROR(op->Open());
  TupleBatch batch;
  bool eof = false;
  while (!eof) {
    batch.clear();
    PPP_RETURN_IF_ERROR(op->NextBatch(batch_size, &batch, &eof));
    for (types::Tuple& tuple : batch.tuples) {
      out->push_back(std::move(tuple));
    }
  }
  return common::Status::OK();
}

}  // namespace

// ---- NestedLoopJoinOp ------------------------------------------------------

NestedLoopJoinOp::NestedLoopJoinOp(std::unique_ptr<Operator> outer,
                                   std::unique_ptr<Operator> inner,
                                   std::optional<CachedPredicate> primary,
                                   ExecContext* ctx)
    : outer_(std::move(outer)),
      inner_(std::move(inner)),
      primary_(std::move(primary)),
      ctx_(ctx) {
  schema_ = types::RowSchema::Concat(outer_->schema(), inner_->schema());
}

common::Status NestedLoopJoinOp::OpenImpl() {
  have_outer_ = false;
  return outer_->Open();
}

common::Status NestedLoopJoinOp::NextImpl(types::Tuple* tuple, bool* eof) {
  while (true) {
    if (!have_outer_) {
      bool outer_eof = false;
      PPP_RETURN_IF_ERROR(outer_->Next(&outer_tuple_, &outer_eof));
      if (outer_eof) {
        *eof = true;
        return common::Status::OK();
      }
      // Rescan: the inner pipeline restarts and re-reads its pages.
      PPP_RETURN_IF_ERROR(inner_->Open());
      have_outer_ = true;
    }
    types::Tuple inner_tuple;
    bool inner_eof = false;
    PPP_RETURN_IF_ERROR(inner_->Next(&inner_tuple, &inner_eof));
    if (inner_eof) {
      have_outer_ = false;
      continue;
    }
    types::Tuple joined = types::Tuple::Concat(outer_tuple_, inner_tuple);
    if (!primary_.has_value() || primary_->Eval(joined, &ctx_->eval)) {
      *tuple = std::move(joined);
      *eof = false;
      return common::Status::OK();
    }
  }
}

std::string NestedLoopJoinOp::Describe() const {
  return primary_.has_value() ? "NestedLoopJoin" : "NestedLoopJoin(cross)";
}

void NestedLoopJoinOp::RefreshLocalStats() const {
  if (!primary_.has_value()) return;
  stats_.has_cache = true;
  stats_.cache_enabled = primary_->cache_enabled();
  stats_.cache_hits = primary_->cache_hits();
  stats_.cache_entries = primary_->cache_entries();
  stats_.cache_evictions = primary_->cache_evictions();
}

// ---- IndexNestedLoopJoinOp -------------------------------------------------

IndexNestedLoopJoinOp::IndexNestedLoopJoinOp(
    std::unique_ptr<Operator> outer, const catalog::Table* inner_table,
    const std::string& inner_alias, std::string inner_column,
    size_t outer_key_index)
    : outer_(std::move(outer)),
      inner_table_(inner_table),
      inner_column_(std::move(inner_column)),
      outer_key_index_(outer_key_index) {
  schema_ = types::RowSchema::Concat(
      outer_->schema(), inner_table->RowSchemaForAlias(inner_alias));
}

common::Status IndexNestedLoopJoinOp::OpenImpl() {
  have_outer_ = false;
  matches_.clear();
  match_pos_ = 0;
  return outer_->Open();
}

common::Status IndexNestedLoopJoinOp::NextImpl(types::Tuple* tuple, bool* eof) {
  const storage::BTree* index = inner_table_->GetIndex(inner_column_);
  if (index == nullptr) {
    return common::Status::NotFound("no index on " + inner_table_->name() +
                                    "." + inner_column_);
  }
  while (true) {
    if (have_outer_ && match_pos_ < matches_.size()) {
      PPP_ASSIGN_OR_RETURN(types::Tuple inner_tuple,
                           inner_table_->Read(matches_[match_pos_]));
      ++match_pos_;
      *tuple = types::Tuple::Concat(outer_tuple_, inner_tuple);
      *eof = false;
      return common::Status::OK();
    }
    bool outer_eof = false;
    PPP_RETURN_IF_ERROR(outer_->Next(&outer_tuple_, &outer_eof));
    if (outer_eof) {
      *eof = true;
      return common::Status::OK();
    }
    const types::Value& key = outer_tuple_.Get(outer_key_index_);
    matches_.clear();
    match_pos_ = 0;
    have_outer_ = true;
    if (!key.is_null() && key.type() == types::TypeId::kInt64) {
      matches_ = index->Lookup(key.AsInt64());
    }
  }
}

std::string IndexNestedLoopJoinOp::Describe() const {
  return "IndexNestedLoopJoin(" + inner_table_->name() + "." +
         inner_column_ + ")";
}

// ---- MergeJoinOp -----------------------------------------------------------

MergeJoinOp::MergeJoinOp(std::unique_ptr<Operator> outer,
                         std::unique_ptr<Operator> inner,
                         size_t outer_key_index, size_t inner_key_index)
    : outer_(std::move(outer)),
      inner_(std::move(inner)),
      outer_key_(outer_key_index),
      inner_key_(inner_key_index) {
  schema_ = types::RowSchema::Concat(outer_->schema(), inner_->schema());
}

common::Status MergeJoinOp::OpenImpl() {
  outer_rows_.clear();
  inner_rows_.clear();
  PPP_RETURN_IF_ERROR(Drain(outer_.get(), batch_size_, &outer_rows_));
  PPP_RETURN_IF_ERROR(Drain(inner_.get(), batch_size_, &inner_rows_));
  // NULL keys never join.
  auto null_key = [](size_t key) {
    return [key](const types::Tuple& t) { return t.Get(key).is_null(); };
  };
  outer_rows_.erase(std::remove_if(outer_rows_.begin(), outer_rows_.end(),
                                   null_key(outer_key_)),
                    outer_rows_.end());
  inner_rows_.erase(std::remove_if(inner_rows_.begin(), inner_rows_.end(),
                                   null_key(inner_key_)),
                    inner_rows_.end());
  auto by_key = [](size_t key) {
    return [key](const types::Tuple& a, const types::Tuple& b) {
      return a.Get(key).Compare(b.Get(key)) < 0;
    };
  };
  std::stable_sort(outer_rows_.begin(), outer_rows_.end(),
                   by_key(outer_key_));
  std::stable_sort(inner_rows_.begin(), inner_rows_.end(),
                   by_key(inner_key_));
  oi_ = 0;
  inner_base_ = 0;
  inner_end_ = 0;
  group_pos_ = 0;
  group_active_ = false;
  return common::Status::OK();
}

common::Status MergeJoinOp::NextImpl(types::Tuple* tuple, bool* eof) {
  while (true) {
    if (group_active_) {
      if (group_pos_ < inner_end_) {
        *tuple = types::Tuple::Concat(outer_rows_[oi_],
                                      inner_rows_[group_pos_]);
        ++group_pos_;
        *eof = false;
        return common::Status::OK();
      }
      // Outer row exhausted its group; the next outer row may share the
      // key and reuse the same group.
      const types::Value key = outer_rows_[oi_].Get(outer_key_);
      ++oi_;
      group_active_ = false;
      if (oi_ < outer_rows_.size() &&
          outer_rows_[oi_].Get(outer_key_).Compare(key) == 0) {
        group_pos_ = inner_base_;
        group_active_ = true;
        continue;
      }
      inner_base_ = inner_end_;
      continue;
    }
    if (oi_ >= outer_rows_.size() || inner_base_ >= inner_rows_.size()) {
      *eof = true;
      return common::Status::OK();
    }
    const int cmp = outer_rows_[oi_].Get(outer_key_).Compare(
        inner_rows_[inner_base_].Get(inner_key_));
    if (cmp < 0) {
      ++oi_;
    } else if (cmp > 0) {
      ++inner_base_;
    } else {
      // Delimit the inner group of this key.
      const types::Value key = inner_rows_[inner_base_].Get(inner_key_);
      inner_end_ = inner_base_ + 1;
      while (inner_end_ < inner_rows_.size() &&
             inner_rows_[inner_end_].Get(inner_key_).Compare(key) == 0) {
        ++inner_end_;
      }
      group_pos_ = inner_base_;
      group_active_ = true;
    }
  }
}

std::string MergeJoinOp::Describe() const { return "MergeJoin"; }

// ---- HashJoinOp ------------------------------------------------------------

HashJoinOp::HashJoinOp(std::unique_ptr<Operator> outer,
                       std::unique_ptr<Operator> inner,
                       size_t outer_key_index, size_t inner_key_index,
                       std::shared_ptr<BloomTransfer> transfer)
    : outer_(std::move(outer)),
      inner_(std::move(inner)),
      outer_key_(outer_key_index),
      inner_key_(inner_key_index),
      transfer_(std::move(transfer)) {
  schema_ = types::RowSchema::Concat(outer_->schema(), inner_->schema());
}

common::Status HashJoinOp::OpenImpl() {
  table_.clear();
  // Per-batch build loop: each key is hashed exactly once; the hash lands
  // in the table entry and (below) in the transferred Bloom filter.
  PPP_RETURN_IF_ERROR(inner_->Open());
  TupleBatch batch;
  bool eof = false;
  while (!eof) {
    batch.clear();
    PPP_RETURN_IF_ERROR(inner_->NextBatch(batch_size_, &batch, &eof));
    for (types::Tuple& row : batch.tuples) {
      const types::Value& key = row.Get(inner_key_);
      if (key.is_null()) continue;
      const uint64_t hash = static_cast<uint64_t>(key.Hash());
      table_[HashedKey{key, hash}].push_back(std::move(row));
    }
  }
  if (transfer_ != nullptr && !transfer_->published()) {
    // Build the sideways filter over the distinct build keys (their hashes
    // were computed above) and publish it before the probe side opens, so
    // the consuming scan prunes from its very first batch.
    std::optional<obs::Span> span;
    if (obs::SpanTracer::Global().enabled()) {
      span.emplace("exec", "bloom.build");
      span->AddArg("site", transfer_->Site());
    }
    auto filter = std::make_unique<BloomFilter>(table_.size());
    for (const auto& [key, rows] : table_) filter->InsertHash(key.hash);
    if (span.has_value()) {
      span->AddArg("keys", std::to_string(table_.size()));
      span->AddArg("bits_set", std::to_string(filter->BitsSet()));
    }
    transfer_->Publish(std::move(filter));
  }
  have_outer_ = false;
  current_matches_ = nullptr;
  match_pos_ = 0;
  return outer_->Open();
}

common::Status HashJoinOp::NextImpl(types::Tuple* tuple, bool* eof) {
  while (true) {
    if (have_outer_ && current_matches_ != nullptr &&
        match_pos_ < current_matches_->size()) {
      const types::Tuple& inner = (*current_matches_)[match_pos_];
      ++match_pos_;
      if (match_pos_ == current_matches_->size()) {
        // Last (typically only) match for this outer row: steal the outer
        // tuple instead of copying every value. The next iteration
        // overwrites outer_tuple_ before reading it.
        *tuple = types::Tuple::Concat(std::move(outer_tuple_), inner);
        have_outer_ = false;
        current_matches_ = nullptr;
      } else {
        *tuple = types::Tuple::Concat(outer_tuple_, inner);
      }
      *eof = false;
      return common::Status::OK();
    }
    bool outer_eof = false;
    PPP_RETURN_IF_ERROR(outer_->Next(&outer_tuple_, &outer_eof));
    if (outer_eof) {
      *eof = true;
      return common::Status::OK();
    }
    have_outer_ = true;
    match_pos_ = 0;
    current_matches_ = nullptr;
    const types::Value& key = outer_tuple_.Get(outer_key_);
    if (key.is_null()) continue;
    auto it = table_.find(
        HashedKey{key, static_cast<uint64_t>(key.Hash())});
    if (it != table_.end()) {
      current_matches_ = &it->second;
    } else if (transfer_ != nullptr &&
               transfer_->ActiveFilter() != nullptr) {
      // This row survived the transferred filter but has no join partner:
      // a measured false positive.
      transfer_->RecordJoinMiss();
    }
  }
}

std::string HashJoinOp::Describe() const {
  return transfer_ != nullptr ? "HashJoin(bloom)" : "HashJoin";
}

}  // namespace ppp::exec
