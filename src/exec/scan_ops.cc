#include "exec/scan_ops.h"

namespace ppp::exec {

SeqScanOp::SeqScanOp(const catalog::Table* table, const std::string& alias)
    : table_(table), it_(table->heap().Scan()) {
  schema_ = table->RowSchemaForAlias(alias);
}

common::Status SeqScanOp::Open() {
  it_ = table_->heap().Scan();
  return common::Status::OK();
}

common::Status SeqScanOp::Next(types::Tuple* tuple, bool* eof) {
  storage::RecordId rid;
  std::string bytes;
  if (!it_.Next(&rid, &bytes)) {
    *eof = true;
    return common::Status::OK();
  }
  PPP_ASSIGN_OR_RETURN(*tuple, types::Tuple::Deserialize(bytes));
  *eof = false;
  return common::Status::OK();
}

IndexScanOp::IndexScanOp(const catalog::Table* table,
                         const std::string& alias, std::string column,
                         int64_t key)
    : IndexScanOp(table, alias, std::move(column), key, key) {}

IndexScanOp::IndexScanOp(const catalog::Table* table,
                         const std::string& alias, std::string column,
                         int64_t lo, int64_t hi)
    : table_(table), column_(std::move(column)), lo_(lo), hi_(hi) {
  schema_ = table->RowSchemaForAlias(alias);
}

common::Status IndexScanOp::Open() {
  const storage::BTree* index = table_->GetIndex(column_);
  if (index == nullptr) {
    return common::Status::NotFound("no index on " + table_->name() + "." +
                                    column_);
  }
  rids_ = index->LookupRange(lo_, hi_);
  pos_ = 0;
  return common::Status::OK();
}

common::Status IndexScanOp::Next(types::Tuple* tuple, bool* eof) {
  if (pos_ >= rids_.size()) {
    *eof = true;
    return common::Status::OK();
  }
  PPP_ASSIGN_OR_RETURN(*tuple, table_->Read(rids_[pos_]));
  ++pos_;
  *eof = false;
  return common::Status::OK();
}

}  // namespace ppp::exec
