#include "exec/scan_ops.h"

#include <algorithm>
#include <functional>
#include <optional>

#include "common/string_util.h"
#include "obs/span.h"

namespace ppp::exec {

void TransferProbe::FilterBatch(TupleBatch* batch) const {
  for (const Slot& slot : slots_) {
    const BloomFilter* filter = slot.transfer->ActiveFilter();
    if (filter == nullptr || batch->empty()) continue;
    std::optional<obs::Span> span;
    if (obs::SpanTracer::Global().enabled()) {
      span.emplace("exec", "bloom.probe");
      span->AddArg("site", slot.transfer->Site());
    }
    const size_t probed = batch->size();
    std::vector<uint64_t> hashes;
    hashes.reserve(probed);
    for (const types::Tuple& tuple : batch->tuples) {
      hashes.push_back(
          static_cast<uint64_t>(tuple.Get(slot.key_index).Hash()));
    }
    std::vector<char> keep;
    const size_t kept = filter->ProbeBatch(hashes.data(), probed, &keep);
    if (kept < probed) {
      size_t out = 0;
      for (size_t i = 0; i < probed; ++i) {
        if (keep[i]) batch->tuples[out++] = std::move(batch->tuples[i]);
      }
      batch->tuples.resize(out);
    }
    slot.transfer->RecordProbes(probed, kept);
    if (span.has_value()) {
      span->AddArg("probed", std::to_string(probed));
      span->AddArg("passed", std::to_string(kept));
    }
  }
}

namespace {

/// Hash of one column cell, computed from native column storage. Must stay
/// byte-for-byte consistent with Value::Hash — the build side inserted
/// Value::Hash values (vector_test pins the equivalence).
uint64_t HashColumnCell(const types::ColumnBatch& batch, size_t col_index,
                        uint32_t row) {
  const types::ColumnBatch::Column& col = batch.column(col_index);
  if (col.boxed) {
    return static_cast<uint64_t>(batch.GetValue(col_index, row).Hash());
  }
  if (col.nulls[row] != 0) return 0x9E3779B9u;
  switch (col.type) {
    case types::TypeId::kInt64: {
      const int64_t v = col.i64[row];
      const double d = static_cast<double>(v);
      if (static_cast<int64_t>(d) == v) {
        return static_cast<uint64_t>(std::hash<double>()(d));
      }
      return static_cast<uint64_t>(std::hash<int64_t>()(v));
    }
    case types::TypeId::kBool:
      return static_cast<uint64_t>(
          std::hash<double>()(col.i64[row] != 0 ? 1.0 : 0.0));
    case types::TypeId::kDouble:
      return static_cast<uint64_t>(std::hash<double>()(col.f64[row]));
    case types::TypeId::kString:
      return static_cast<uint64_t>(
          std::hash<std::string>()(std::string(col.StringAt(row))));
    case types::TypeId::kNull:
      break;
  }
  return 0x9E3779B9u;
}

}  // namespace

void TransferProbe::FilterColumns(types::ColumnBatch* batch) const {
  for (const Slot& slot : slots_) {
    const BloomFilter* filter = slot.transfer->ActiveFilter();
    if (filter == nullptr || batch->selected() == 0) continue;
    std::optional<obs::Span> span;
    if (obs::SpanTracer::Global().enabled()) {
      span.emplace("exec", "bloom.probe");
      span->AddArg("site", slot.transfer->Site());
    }
    std::vector<uint32_t>& sel = *batch->mutable_selection();
    const size_t probed = sel.size();
    std::vector<uint64_t> hashes;
    hashes.reserve(probed);
    for (const uint32_t row : sel) {
      hashes.push_back(HashColumnCell(*batch, slot.key_index, row));
    }
    std::vector<char> keep;
    const size_t kept = filter->ProbeBatch(hashes.data(), probed, &keep);
    if (kept < probed) {
      size_t out = 0;
      for (size_t i = 0; i < probed; ++i) {
        if (keep[i]) sel[out++] = sel[i];
      }
      sel.resize(out);
    }
    slot.transfer->RecordProbes(probed, kept);
    if (span.has_value()) {
      span->AddArg("probed", std::to_string(probed));
      span->AddArg("passed", std::to_string(kept));
    }
  }
}

bool TransferProbe::Passes(const types::Tuple& tuple) const {
  for (const Slot& slot : slots_) {
    const BloomFilter* filter = slot.transfer->ActiveFilter();
    if (filter == nullptr) continue;
    const bool pass = filter->MightContainHash(
        static_cast<uint64_t>(tuple.Get(slot.key_index).Hash()));
    slot.transfer->RecordProbes(1, pass ? 1 : 0);
    if (!pass) return false;
  }
  return true;
}

void TransferProbe::FoldStats(OperatorStats* stats) const {
  if (slots_.empty()) return;
  stats->has_transfer = true;
  stats->transfer_probed = 0;
  stats->transfer_passed = 0;
  stats->transfer_killed = false;
  stats->transfer_fpr = -1.0;
  for (const Slot& slot : slots_) {
    stats->transfer_probed += slot.transfer->probed();
    stats->transfer_passed += slot.transfer->passed();
    stats->transfer_killed = stats->transfer_killed || slot.transfer->killed();
    const double fpr = slot.transfer->MeasuredFpr();
    if (fpr >= 0.0) {
      stats->transfer_fpr = std::max(stats->transfer_fpr, fpr);
    }
  }
}

SeqScanOp::SeqScanOp(const catalog::Table* table, const std::string& alias)
    : table_(table), alias_(alias), it_(table->heap().Scan()) {
  schema_ = table->RowSchemaForAlias(alias);
}

common::Status SeqScanOp::OpenImpl() {
  it_ = table_->heap().Scan();
  return common::Status::OK();
}

common::Status SeqScanOp::NextImpl(types::Tuple* tuple, bool* eof) {
  storage::RecordId rid;
  std::string bytes;
  while (true) {
    if (!it_.Next(&rid, &bytes)) {
      *eof = true;
      return common::Status::OK();
    }
    PPP_ASSIGN_OR_RETURN(*tuple, types::Tuple::Deserialize(bytes));
    if (transfers_.empty() || transfers_.Passes(*tuple)) break;
  }
  *eof = false;
  return common::Status::OK();
}

common::Status SeqScanOp::NextBatchImpl(size_t max_rows, TupleBatch* batch,
                                        bool* eof) {
  *eof = false;
  storage::RecordId rid;
  std::string bytes;
  while (batch->size() < max_rows) {
    if (!it_.Next(&rid, &bytes)) {
      *eof = true;
      break;
    }
    PPP_ASSIGN_OR_RETURN(types::Tuple tuple,
                         types::Tuple::Deserialize(bytes));
    batch->tuples.push_back(std::move(tuple));
  }
  if (!transfers_.empty()) transfers_.FilterBatch(batch);
  return common::Status::OK();
}

common::Status SeqScanOp::NextColumnBatchImpl(size_t max_rows,
                                              types::ColumnBatch* batch,
                                              bool* eof) {
  batch->Reset(schema_);
  *eof = false;
  storage::RecordId rid;
  std::string_view bytes;
  while (batch->num_rows() < max_rows) {
    if (!it_.NextView(&rid, &bytes)) {
      *eof = true;
      break;
    }
    PPP_RETURN_IF_ERROR(batch->AppendSerialized(bytes));
  }
  if (!transfers_.empty()) transfers_.FilterColumns(batch);
  return common::Status::OK();
}

std::string SeqScanOp::Describe() const {
  std::string out = "SeqScan(" + table_->name();
  if (alias_ != table_->name()) out += " AS " + alias_;
  return out + ")";
}

IndexScanOp::IndexScanOp(const catalog::Table* table,
                         const std::string& alias, std::string column,
                         int64_t key)
    : IndexScanOp(table, alias, std::move(column), key, key) {}

IndexScanOp::IndexScanOp(const catalog::Table* table,
                         const std::string& alias, std::string column,
                         int64_t lo, int64_t hi)
    : table_(table), alias_(alias), column_(std::move(column)), lo_(lo),
      hi_(hi) {
  schema_ = table->RowSchemaForAlias(alias);
}

common::Status IndexScanOp::OpenImpl() {
  const storage::BTree* index = table_->GetIndex(column_);
  if (index == nullptr) {
    return common::Status::NotFound("no index on " + table_->name() + "." +
                                    column_);
  }
  rids_ = index->LookupRange(lo_, hi_);
  pos_ = 0;
  return common::Status::OK();
}

common::Status IndexScanOp::NextImpl(types::Tuple* tuple, bool* eof) {
  while (true) {
    if (pos_ >= rids_.size()) {
      *eof = true;
      return common::Status::OK();
    }
    PPP_ASSIGN_OR_RETURN(*tuple, table_->Read(rids_[pos_]));
    ++pos_;
    if (transfers_.empty() || transfers_.Passes(*tuple)) break;
  }
  *eof = false;
  return common::Status::OK();
}

common::Status IndexScanOp::NextBatchImpl(size_t max_rows,
                                          TupleBatch* batch, bool* eof) {
  *eof = false;
  while (batch->size() < max_rows) {
    if (pos_ >= rids_.size()) {
      *eof = true;
      break;
    }
    PPP_ASSIGN_OR_RETURN(types::Tuple tuple, table_->Read(rids_[pos_]));
    ++pos_;
    batch->tuples.push_back(std::move(tuple));
  }
  if (!transfers_.empty()) transfers_.FilterBatch(batch);
  return common::Status::OK();
}

common::Status IndexScanOp::NextColumnBatchImpl(size_t max_rows,
                                                types::ColumnBatch* batch,
                                                bool* eof) {
  batch->Reset(schema_);
  *eof = false;
  while (batch->num_rows() < max_rows) {
    if (pos_ >= rids_.size()) {
      *eof = true;
      break;
    }
    PPP_ASSIGN_OR_RETURN(const types::Tuple tuple, table_->Read(rids_[pos_]));
    ++pos_;
    batch->AppendTuple(tuple);
  }
  if (!transfers_.empty()) transfers_.FilterColumns(batch);
  return common::Status::OK();
}

std::string IndexScanOp::Describe() const {
  if (lo_ == hi_) {
    return common::StringPrintf("IndexScan(%s.%s = %lld)",
                                table_->name().c_str(), column_.c_str(),
                                static_cast<long long>(lo_));
  }
  return common::StringPrintf("IndexScan(%lld <= %s.%s <= %lld)",
                              static_cast<long long>(lo_),
                              table_->name().c_str(), column_.c_str(),
                              static_cast<long long>(hi_));
}

}  // namespace ppp::exec
