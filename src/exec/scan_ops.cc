#include "exec/scan_ops.h"

#include "common/string_util.h"

namespace ppp::exec {

SeqScanOp::SeqScanOp(const catalog::Table* table, const std::string& alias)
    : table_(table), alias_(alias), it_(table->heap().Scan()) {
  schema_ = table->RowSchemaForAlias(alias);
}

common::Status SeqScanOp::OpenImpl() {
  it_ = table_->heap().Scan();
  return common::Status::OK();
}

common::Status SeqScanOp::NextImpl(types::Tuple* tuple, bool* eof) {
  storage::RecordId rid;
  std::string bytes;
  if (!it_.Next(&rid, &bytes)) {
    *eof = true;
    return common::Status::OK();
  }
  PPP_ASSIGN_OR_RETURN(*tuple, types::Tuple::Deserialize(bytes));
  *eof = false;
  return common::Status::OK();
}

common::Status SeqScanOp::NextBatchImpl(size_t max_rows, TupleBatch* batch,
                                        bool* eof) {
  *eof = false;
  storage::RecordId rid;
  std::string bytes;
  while (batch->size() < max_rows) {
    if (!it_.Next(&rid, &bytes)) {
      *eof = true;
      break;
    }
    PPP_ASSIGN_OR_RETURN(types::Tuple tuple,
                         types::Tuple::Deserialize(bytes));
    batch->tuples.push_back(std::move(tuple));
  }
  return common::Status::OK();
}

std::string SeqScanOp::Describe() const {
  std::string out = "SeqScan(" + table_->name();
  if (alias_ != table_->name()) out += " AS " + alias_;
  return out + ")";
}

IndexScanOp::IndexScanOp(const catalog::Table* table,
                         const std::string& alias, std::string column,
                         int64_t key)
    : IndexScanOp(table, alias, std::move(column), key, key) {}

IndexScanOp::IndexScanOp(const catalog::Table* table,
                         const std::string& alias, std::string column,
                         int64_t lo, int64_t hi)
    : table_(table), alias_(alias), column_(std::move(column)), lo_(lo),
      hi_(hi) {
  schema_ = table->RowSchemaForAlias(alias);
}

common::Status IndexScanOp::OpenImpl() {
  const storage::BTree* index = table_->GetIndex(column_);
  if (index == nullptr) {
    return common::Status::NotFound("no index on " + table_->name() + "." +
                                    column_);
  }
  rids_ = index->LookupRange(lo_, hi_);
  pos_ = 0;
  return common::Status::OK();
}

common::Status IndexScanOp::NextImpl(types::Tuple* tuple, bool* eof) {
  if (pos_ >= rids_.size()) {
    *eof = true;
    return common::Status::OK();
  }
  PPP_ASSIGN_OR_RETURN(*tuple, table_->Read(rids_[pos_]));
  ++pos_;
  *eof = false;
  return common::Status::OK();
}

common::Status IndexScanOp::NextBatchImpl(size_t max_rows,
                                          TupleBatch* batch, bool* eof) {
  *eof = false;
  while (batch->size() < max_rows) {
    if (pos_ >= rids_.size()) {
      *eof = true;
      break;
    }
    PPP_ASSIGN_OR_RETURN(types::Tuple tuple, table_->Read(rids_[pos_]));
    ++pos_;
    batch->tuples.push_back(std::move(tuple));
  }
  return common::Status::OK();
}

std::string IndexScanOp::Describe() const {
  if (lo_ == hi_) {
    return common::StringPrintf("IndexScan(%s.%s = %lld)",
                                table_->name().c_str(), column_.c_str(),
                                static_cast<long long>(lo_));
  }
  return common::StringPrintf("IndexScan(%lld <= %s.%s <= %lld)",
                              static_cast<long long>(lo_),
                              table_->name().c_str(), column_.c_str(),
                              static_cast<long long>(hi_));
}

}  // namespace ppp::exec
