#include "exec/shared_caches.h"

#include <utility>

namespace ppp::exec {

std::shared_ptr<ShardedPredicateCache> SharedPredicateCacheRegistry::GetOrCreate(
    const std::string& identity,
    const ShardedPredicateCache::Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  ++acquisitions_;
  auto it = caches_.find(identity);
  if (it != caches_.end()) {
    ++reuses_;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.cache;
  }
  while (caches_.size() >= max_caches_) {
    caches_.erase(lru_.back());
    lru_.pop_back();
  }
  auto cache = std::make_shared<ShardedPredicateCache>(options);
  lru_.push_front(identity);
  caches_.emplace(identity, Slot{cache, lru_.begin()});
  return cache;
}

size_t SharedPredicateCacheRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return caches_.size();
}

uint64_t SharedPredicateCacheRegistry::acquisitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acquisitions_;
}

uint64_t SharedPredicateCacheRegistry::reuses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reuses_;
}

void SharedPredicateCacheRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  caches_.clear();
  lru_.clear();
}

std::string BuildSharedCacheKey(
    const std::string& expr_text, const std::string& resolved_tables,
    const ShardedPredicateCache::Options& options) {
  std::string key = expr_text;
  key += '|';
  key += resolved_tables;
  key += "|e=";
  key += std::to_string(options.max_entries);
  key += ",b=";
  key += std::to_string(options.max_bytes);
  key += ",lru=";
  key += options.lru ? '1' : '0';
  key += ",s=";
  key += std::to_string(options.shards);
  key += ",a=";
  key += options.adaptive ? '1' : '0';
  key += ",w=";
  key += std::to_string(options.probe_window);
  return key;
}

}  // namespace ppp::exec
