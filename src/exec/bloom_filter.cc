#include "exec/bloom_filter.h"

#include <bit>

namespace ppp::exec {

namespace {

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

BloomFilter::BloomFilter(size_t expected_keys) {
  // ~16 bits per key keeps the split-block FPR comfortably under 1%; the
  // block count rounds up to a power of two so selection is one mask.
  const size_t wanted_bits = expected_keys * 16;
  const size_t blocks = NextPowerOfTwo(
      wanted_bits == 0 ? 1 : (wanted_bits + kBitsPerBlock - 1) / kBitsPerBlock);
  blocks_.resize(blocks);
  block_mask_ = blocks - 1;
}

size_t BloomFilter::ProbeBatch(const uint64_t* hashes, size_t count,
                               std::vector<char>* keep) const {
  keep->resize(count);
  size_t kept = 0;
  for (size_t i = 0; i < count; ++i) {
    const char hit = MightContainHash(hashes[i]) ? 1 : 0;
    (*keep)[i] = hit;
    kept += static_cast<size_t>(hit);
  }
  return kept;
}

uint64_t BloomFilter::BitsSet() const {
  uint64_t total = 0;
  for (const Block& block : blocks_) {
    for (size_t w = 0; w < kWordsPerBlock; ++w) {
      total += static_cast<uint64_t>(std::popcount(block.words[w]));
    }
  }
  return total;
}

double BloomFilter::EstimatedFpr() const {
  const double load =
      static_cast<double>(BitsSet()) / static_cast<double>(num_bits());
  double fpr = 1.0;
  for (size_t i = 0; i < kWordsPerBlock; ++i) fpr *= load;
  return fpr;
}

void BloomTransfer::Publish(std::unique_ptr<BloomFilter> filter) {
  // Single producer (the owning hash join, on the coordinator thread).
  if (state_.load(std::memory_order_relaxed) != State::kEmpty) {
    return;  // Already published (rescan) or killed.
  }
  filter_ = std::move(filter);
  state_.store(State::kReady, std::memory_order_release);
}

void BloomTransfer::RecordProbes(uint64_t probed, uint64_t passed) {
  const uint64_t total_probed =
      probed_.fetch_add(probed, std::memory_order_relaxed) + probed;
  const uint64_t total_passed =
      passed_.fetch_add(passed, std::memory_order_relaxed) + passed;
  if (total_probed < min_probes) return;
  const double pass_rate = static_cast<double>(total_passed) /
                           static_cast<double>(total_probed);
  if (pass_rate > kill_pass_rate) {
    State expected = State::kReady;
    state_.compare_exchange_strong(expected, State::kKilled,
                                   std::memory_order_acq_rel);
  }
}

double BloomTransfer::MeasuredFpr() const {
  const uint64_t fp = join_misses();
  const uint64_t negatives = pruned() + fp;
  if (negatives == 0) return -1.0;
  return static_cast<double>(fp) / static_cast<double>(negatives);
}

}  // namespace ppp::exec
