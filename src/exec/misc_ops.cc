#include "exec/misc_ops.h"

#include <algorithm>
#include <map>

namespace ppp::exec {

SortOp::SortOp(std::unique_ptr<Operator> child, size_t key_index)
    : child_(std::move(child)), key_(key_index) {
  schema_ = child_->schema();
}

common::Status SortOp::OpenImpl() {
  rows_.clear();
  pos_ = 0;
  PPP_RETURN_IF_ERROR(child_->Open());
  TupleBatch batch;
  bool eof = false;
  while (!eof) {
    batch.clear();
    PPP_RETURN_IF_ERROR(child_->NextBatch(batch_size_, &batch, &eof));
    for (types::Tuple& tuple : batch.tuples) {
      rows_.push_back(std::move(tuple));
    }
  }
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const types::Tuple& a, const types::Tuple& b) {
                     return a.Get(key_).Compare(b.Get(key_)) < 0;
                   });
  return common::Status::OK();
}

common::Status SortOp::NextImpl(types::Tuple* tuple, bool* eof) {
  if (pos_ >= rows_.size()) {
    *eof = true;
    return common::Status::OK();
  }
  *tuple = rows_[pos_++];
  *eof = false;
  return common::Status::OK();
}

MaterializeOp::MaterializeOp(std::unique_ptr<Operator> child)
    : child_(std::move(child)) {
  schema_ = child_->schema();
}

common::Status MaterializeOp::OpenImpl() {
  pos_ = 0;
  if (filled_) return common::Status::OK();
  PPP_RETURN_IF_ERROR(child_->Open());
  TupleBatch batch;
  bool eof = false;
  while (!eof) {
    batch.clear();
    PPP_RETURN_IF_ERROR(child_->NextBatch(batch_size_, &batch, &eof));
    for (types::Tuple& tuple : batch.tuples) {
      rows_.push_back(std::move(tuple));
    }
  }
  filled_ = true;
  return common::Status::OK();
}

common::Status MaterializeOp::NextImpl(types::Tuple* tuple, bool* eof) {
  if (pos_ >= rows_.size()) {
    *eof = true;
    return common::Status::OK();
  }
  *tuple = rows_[pos_++];
  *eof = false;
  return common::Status::OK();
}

common::Status MaterializeOp::NextBatchImpl(size_t max_rows,
                                            TupleBatch* batch, bool* eof) {
  while (batch->size() < max_rows && pos_ < rows_.size()) {
    batch->tuples.push_back(rows_[pos_++]);
  }
  *eof = pos_ >= rows_.size();
  return common::Status::OK();
}

HashAggregateOp::HashAggregateOp(std::unique_ptr<Operator> child,
                                 std::vector<size_t> key_indexes,
                                 std::vector<BoundAggregate> aggregates,
                                 types::RowSchema output_schema,
                                 ExecContext* ctx)
    : child_(std::move(child)),
      key_indexes_(std::move(key_indexes)),
      aggregates_(std::move(aggregates)),
      ctx_(ctx) {
  schema_ = std::move(output_schema);
}

common::Status HashAggregateOp::OpenImpl() {
  results_.clear();
  pos_ = 0;
  PPP_RETURN_IF_ERROR(child_->Open());

  // key (serialized group values) -> (group values, accumulators).
  std::map<std::string,
           std::pair<std::vector<types::Value>, std::vector<Accumulator>>>
      groups;

  TupleBatch batch;
  bool eof = false;
  bool saw_row = false;
  while (!eof) {
    batch.clear();
    PPP_RETURN_IF_ERROR(child_->NextBatch(batch_size_, &batch, &eof));
    for (const types::Tuple& tuple : batch.tuples) {
      saw_row = true;
      std::vector<types::Value> key_values;
      key_values.reserve(key_indexes_.size());
      for (const size_t i : key_indexes_) {
        key_values.push_back(tuple.Get(i));
      }
      const std::string key = types::Tuple(key_values).Serialize();
      auto [it, inserted] = groups.try_emplace(key);
      if (inserted) {
        it->second.first = std::move(key_values);
        it->second.second.resize(aggregates_.size());
      }
      for (size_t a = 0; a < aggregates_.size(); ++a) {
        Accumulator& acc = it->second.second[a];
        const BoundAggregate& agg = aggregates_[a];
        types::Value v;
        if (agg.arg != nullptr) {
          v = agg.arg->Eval(tuple, &ctx_->eval);
          if (v.is_null()) continue;  // SQL: NULLs are ignored.
        }
        ++acc.count;
        if (agg.arg != nullptr) {
          if (v.type() == types::TypeId::kInt64 ||
              v.type() == types::TypeId::kDouble) {
            acc.sum += v.AsNumeric();
          }
          if (!acc.has_value || v.Compare(acc.min) < 0) acc.min = v;
          if (!acc.has_value || v.Compare(acc.max) > 0) acc.max = v;
          acc.has_value = true;
        }
      }
    }
  }

  // A global aggregate over an empty input still emits one row.
  if (groups.empty() && key_indexes_.empty() && !saw_row) {
    groups.try_emplace("", std::make_pair(std::vector<types::Value>{},
                                          std::vector<Accumulator>(
                                              aggregates_.size())));
  }

  for (auto& [key, group] : groups) {
    std::vector<types::Value> row = std::move(group.first);
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      const Accumulator& acc = group.second[a];
      switch (aggregates_[a].op) {
        case plan::AggregateItem::Op::kCount:
          row.emplace_back(static_cast<int64_t>(acc.count));
          break;
        case plan::AggregateItem::Op::kSum:
          row.push_back(acc.count > 0 ? types::Value(acc.sum)
                                      : types::Value());
          break;
        case plan::AggregateItem::Op::kAvg:
          row.push_back(acc.count > 0
                            ? types::Value(acc.sum /
                                           static_cast<double>(acc.count))
                            : types::Value());
          break;
        case plan::AggregateItem::Op::kMin:
          row.push_back(acc.has_value ? acc.min : types::Value());
          break;
        case plan::AggregateItem::Op::kMax:
          row.push_back(acc.has_value ? acc.max : types::Value());
          break;
      }
    }
    results_.emplace_back(std::move(row));
  }
  return common::Status::OK();
}

common::Status HashAggregateOp::NextImpl(types::Tuple* tuple, bool* eof) {
  if (pos_ >= results_.size()) {
    *eof = true;
    return common::Status::OK();
  }
  *tuple = results_[pos_++];
  *eof = false;
  return common::Status::OK();
}

ProjectOp::ProjectOp(std::unique_ptr<Operator> child,
                     std::vector<std::shared_ptr<expr::BoundExpr>> exprs,
                     types::RowSchema output_schema, ExecContext* ctx)
    : child_(std::move(child)), exprs_(std::move(exprs)), ctx_(ctx) {
  schema_ = std::move(output_schema);
}

common::Status ProjectOp::OpenImpl() { return child_->Open(); }

common::Status ProjectOp::NextImpl(types::Tuple* tuple, bool* eof) {
  types::Tuple input;
  PPP_RETURN_IF_ERROR(child_->Next(&input, eof));
  if (*eof) return common::Status::OK();
  *tuple = Apply(input);
  return common::Status::OK();
}

common::Status ProjectOp::NextBatchImpl(size_t max_rows, TupleBatch* batch,
                                        bool* eof) {
  TupleBatch input;
  PPP_RETURN_IF_ERROR(child_->NextBatch(max_rows, &input, eof));
  for (const types::Tuple& tuple : input.tuples) {
    batch->tuples.push_back(Apply(tuple));
  }
  return common::Status::OK();
}

types::Tuple ProjectOp::Apply(const types::Tuple& input) {
  std::vector<types::Value> values;
  values.reserve(exprs_.size());
  for (const std::shared_ptr<expr::BoundExpr>& e : exprs_) {
    values.push_back(e->Eval(input, &ctx_->eval));
  }
  return types::Tuple(std::move(values));
}

std::string SortOp::Describe() const { return "Sort"; }
std::string MaterializeOp::Describe() const { return "Materialize"; }
std::string HashAggregateOp::Describe() const { return "Aggregate"; }
std::string ProjectOp::Describe() const { return "Project"; }

}  // namespace ppp::exec
