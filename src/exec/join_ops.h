#ifndef PPP_EXEC_JOIN_OPS_H_
#define PPP_EXEC_JOIN_OPS_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "catalog/table.h"
#include "exec/operator.h"
#include "storage/record_id.h"

namespace ppp::exec {

/// Pipelined nested-loop join: the inner subtree is re-Open()ed for every
/// outer tuple, re-reading its pages through the buffer pool — the
/// behaviour the paper's `j{R}|S|` cost term describes. The primary
/// predicate (possibly expensive, possibly absent for a cross product) is
/// evaluated on each candidate pair through a CachedPredicate.
class NestedLoopJoinOp : public Operator {
 public:
  NestedLoopJoinOp(std::unique_ptr<Operator> outer,
                   std::unique_ptr<Operator> inner,
                   std::optional<CachedPredicate> primary, ExecContext* ctx);

  std::string Describe() const override;
  std::vector<Operator*> Children() override {
    return {outer_.get(), inner_.get()};
  }

 protected:
  common::Status OpenImpl() override;
  common::Status NextImpl(types::Tuple* tuple, bool* eof) override;
  void RefreshLocalStats() const override;

 private:
  std::unique_ptr<Operator> outer_;
  std::unique_ptr<Operator> inner_;
  std::optional<CachedPredicate> primary_;
  ExecContext* ctx_;
  types::Tuple outer_tuple_;
  bool have_outer_ = false;
};

/// Index nested-loop join: for each outer tuple, probes the inner table's
/// B-tree on the join column and fetches the matching tuples.
class IndexNestedLoopJoinOp : public Operator {
 public:
  IndexNestedLoopJoinOp(std::unique_ptr<Operator> outer,
                        const catalog::Table* inner_table,
                        const std::string& inner_alias,
                        std::string inner_column, size_t outer_key_index);

  std::string Describe() const override;
  /// The probed inner table is not an operator, so the outer input is the
  /// only child.
  std::vector<Operator*> Children() override { return {outer_.get()}; }

 protected:
  common::Status OpenImpl() override;
  common::Status NextImpl(types::Tuple* tuple, bool* eof) override;

 private:
  std::unique_ptr<Operator> outer_;
  const catalog::Table* inner_table_;
  std::string inner_column_;
  size_t outer_key_index_;
  types::Tuple outer_tuple_;
  std::vector<storage::RecordId> matches_;
  size_t match_pos_ = 0;
  bool have_outer_ = false;
};

/// Sort-merge join on a simple equi-join key. Inputs are drained and
/// sorted in memory on Open (the sort's I/O is modeled, not simulated —
/// see DESIGN.md); rows with NULL keys never match and are dropped.
class MergeJoinOp : public Operator {
 public:
  MergeJoinOp(std::unique_ptr<Operator> outer,
              std::unique_ptr<Operator> inner, size_t outer_key_index,
              size_t inner_key_index);

  std::string Describe() const override;
  std::vector<Operator*> Children() override {
    return {outer_.get(), inner_.get()};
  }

 protected:
  common::Status OpenImpl() override;
  common::Status NextImpl(types::Tuple* tuple, bool* eof) override;

 private:
  std::unique_ptr<Operator> outer_;
  std::unique_ptr<Operator> inner_;
  size_t outer_key_;
  size_t inner_key_;
  std::vector<types::Tuple> outer_rows_;
  std::vector<types::Tuple> inner_rows_;
  size_t oi_ = 0;
  size_t inner_base_ = 0;   // First inner row of the current key group.
  size_t inner_end_ = 0;    // One past the group.
  size_t group_pos_ = 0;    // Cursor within the group.
  bool group_active_ = false;
};

/// In-memory hash join: builds on the inner input, streams the outer.
///
/// The build path hashes each join key exactly once per tuple: the hash is
/// stored alongside the key in the table (HashedKey) and, when a
/// BloomTransfer is attached, the same hash feeds the transferred Bloom
/// filter — never a second Value::Hash() call. The probe side reuses the
/// one hash per outer tuple the same way, and feeds join misses back to
/// the transfer as measured false positives.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(std::unique_ptr<Operator> outer,
             std::unique_ptr<Operator> inner, size_t outer_key_index,
             size_t inner_key_index,
             std::shared_ptr<BloomTransfer> transfer = nullptr);

  std::string Describe() const override;
  std::vector<Operator*> Children() override {
    return {outer_.get(), inner_.get()};
  }

 protected:
  common::Status OpenImpl() override;
  common::Status NextImpl(types::Tuple* tuple, bool* eof) override;

 private:
  /// Join key plus its precomputed hash, so the unordered_map never
  /// re-hashes the Value.
  struct HashedKey {
    types::Value value;
    uint64_t hash;
    bool operator==(const HashedKey& other) const {
      return value == other.value;
    }
  };
  struct HashedKeyHasher {
    size_t operator()(const HashedKey& key) const {
      return static_cast<size_t>(key.hash);
    }
  };

  std::unique_ptr<Operator> outer_;
  std::unique_ptr<Operator> inner_;
  size_t outer_key_;
  size_t inner_key_;
  std::unordered_map<HashedKey, std::vector<types::Tuple>, HashedKeyHasher>
      table_;
  std::shared_ptr<BloomTransfer> transfer_;
  types::Tuple outer_tuple_;
  const std::vector<types::Tuple>* current_matches_ = nullptr;
  size_t match_pos_ = 0;
  bool have_outer_ = false;
};

}  // namespace ppp::exec

#endif  // PPP_EXEC_JOIN_OPS_H_
