#ifndef PPP_EXEC_FILTER_OP_H_
#define PPP_EXEC_FILTER_OP_H_

#include <memory>

#include "exec/operator.h"
#include "exec/parallel_eval.h"

namespace ppp::exec {

/// Applies one predicate, with the §5.1 predicate cache when enabled. The
/// cache belongs to the operator instance and survives Open() — a
/// nested-loop rescan re-runs the filter but pays no repeated function
/// invocations for bindings already seen.
///
/// The batch path fans expensive, parallel-safe predicates across the
/// context's worker pool (ParallelPredicateEvaluator); everything else —
/// cheap predicates, unsafe functions, serial configurations — evaluates
/// tuple-by-tuple on the coordinator, bit-identical to the tuple-at-a-time
/// engine.
class FilterOp : public Operator {
 public:
  FilterOp(std::unique_ptr<Operator> child, CachedPredicate predicate,
           ExecContext* ctx);

  const CachedPredicate& predicate() const { return predicate_; }

  /// Whether the batch path fans this filter out across workers.
  bool parallel() const { return parallel_; }

  std::string Describe() const override;
  std::vector<Operator*> Children() override { return {child_.get()}; }

 protected:
  common::Status OpenImpl() override;
  common::Status NextImpl(types::Tuple* tuple, bool* eof) override;
  common::Status NextBatchImpl(size_t max_rows, TupleBatch* batch,
                               bool* eof) override;
  void RefreshLocalStats() const override;

 private:
  std::unique_ptr<Operator> child_;
  CachedPredicate predicate_;
  ExecContext* ctx_;
  bool parallel_ = false;
  std::unique_ptr<ParallelPredicateEvaluator> evaluator_;
};

}  // namespace ppp::exec

#endif  // PPP_EXEC_FILTER_OP_H_
