#ifndef PPP_EXEC_FILTER_OP_H_
#define PPP_EXEC_FILTER_OP_H_

#include <memory>
#include <optional>
#include <vector>

#include "exec/operator.h"
#include "exec/parallel_eval.h"
#include "exec/vector_filter.h"
#include "expr/predicate.h"

namespace ppp::exec {

/// Applies one predicate, with the §5.1 predicate cache when enabled. The
/// cache belongs to the operator instance and survives Open() — a
/// nested-loop rescan re-runs the filter but pays no repeated function
/// invocations for bindings already seen.
///
/// Under ExecParams::vectorized the conjunction is split at build time:
/// its maximal *prefix* of cheap vectorizable comparisons compiles to
/// VectorizedPredicate kernels that narrow the child ColumnBatch's
/// selection vector in tight typed loops, and the expensive remainder (the
/// suffix, with every UDF) evaluates late — scalar or fanned across the
/// context's worker pool (ParallelPredicateEvaluator) — against only the
/// surviving positions. Splitting only the prefix, and keeping rows whose
/// cheap part evaluated NULL alive (flagged) for the suffix, preserves the
/// scalar engine's exact UDF invocation counts: SQL AND short-circuits on
/// FALSE only. Predicates whose whole-conjunct memo is engaged are never
/// split (the split would change cache keys and hit patterns), and a batch
/// whose referenced columns fell back to boxed storage evaluates scalar.
///
/// Everything else — non-vectorizable predicates, vectorized off, row-only
/// children — keeps the row-oriented batch path, bit-identical to the
/// tuple-at-a-time engine.
class FilterOp : public Operator {
 public:
  /// Binds `pred` against the child's schema and compiles the vectorized
  /// split when ctx->params.vectorized allows it.
  static common::Result<std::unique_ptr<FilterOp>> Make(
      std::unique_ptr<Operator> child, const expr::PredicateInfo& pred,
      ExecContext* ctx);

  /// Row-only construction (no vectorization), for callers that already
  /// hold a bound predicate.
  FilterOp(std::unique_ptr<Operator> child, CachedPredicate predicate,
           ExecContext* ctx);

  const CachedPredicate& predicate() const { return predicate_; }

  /// Whether the batch path fans this filter out across workers.
  bool parallel() const { return parallel_; }

  /// Number of cheap conjuncts compiled to vectorized kernels.
  size_t vectorized_conjuncts() const { return kernels_.size(); }

  std::string Describe() const override;
  std::vector<Operator*> Children() override { return {child_.get()}; }
  bool provides_columns() const override { return use_columns_; }

 protected:
  common::Status OpenImpl() override;
  common::Status NextImpl(types::Tuple* tuple, bool* eof) override;
  common::Status NextBatchImpl(size_t max_rows, TupleBatch* batch,
                               bool* eof) override;
  common::Status NextColumnBatchImpl(size_t max_rows,
                                     types::ColumnBatch* batch,
                                     bool* eof) override;
  void RefreshLocalStats() const override;

 private:
  /// Narrows `batch`'s selection to the predicate's survivors (kernels +
  /// late expensive pass, or full scalar fallback).
  common::Status FilterColumns(types::ColumnBatch* batch);
  /// Evaluates `pred` over the selected rows (parallel when configured),
  /// leaving only passing rows selected; rows flagged in `maybe_null`
  /// (when non-null) are evaluated but always dropped from the output.
  void EvalScalarOnSelection(CachedPredicate* pred, types::ColumnBatch* batch,
                             const std::vector<uint8_t>* maybe_null);

  std::unique_ptr<Operator> child_;
  CachedPredicate predicate_;
  ExecContext* ctx_;
  bool parallel_ = false;
  std::unique_ptr<ParallelPredicateEvaluator> evaluator_;

  /// Vectorized split (empty kernels_ = fully scalar).
  std::vector<VectorizedPredicate> kernels_;
  /// Expensive remainder; nullopt when the whole conjunction vectorized.
  std::optional<CachedPredicate> suffix_;
  /// True when the batch path pulls columns from the child.
  bool use_columns_ = false;

  /// Scratch, reused across batches.
  std::vector<uint8_t> maybe_null_;
  TupleBatch survivors_;
  std::vector<char> keep_;
  types::ColumnBatch column_scratch_;
};

}  // namespace ppp::exec

#endif  // PPP_EXEC_FILTER_OP_H_
