#ifndef PPP_EXEC_PRED_CACHE_H_
#define PPP_EXEC_PRED_CACHE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/sharded_memo.h"

namespace ppp::exec {

/// The §5.1 predicate cache ("a hash table keyed on the bindings of the
/// input variables"), sharded so the parallel predicate evaluator's
/// concurrent probes don't serialize on one mutex. Wraps
/// common::ShardedMemo<bool> and wires its events into the global metrics
/// registry (exec.predicate_cache.*), keeping hit/miss/eviction counts
/// exact under concurrency.
class ShardedPredicateCache {
 public:
  struct Options {
    /// Total entry bound; 0 = unbounded.
    size_t max_entries = 0;
    /// Total approximate byte bound (key bytes + fixed per-entry overhead);
    /// 0 = unbounded. Evictions under either bound also count into the
    /// exec.pred_cache.evictions metric.
    size_t max_bytes = 0;
    /// Replacement order for bounded caches: FIFO (false, the historical
    /// default) or LRU (true).
    bool lru = false;
    size_t shards = 1;
    /// §5.1 adaptive self-disable: give up after `probe_window` probes with
    /// zero hits.
    bool adaptive = false;
    uint64_t probe_window = 512;
  };

  explicit ShardedPredicateCache(const Options& options);

  /// Picks a shard count for a given worker count: 1 when serial (which
  /// preserves the single-table FIFO eviction order, and therefore
  /// bit-identical serial behaviour), several shards per worker otherwise.
  static size_t ShardsFor(size_t parallel_workers);

  /// Returns the cached verdict for `key`, evaluating `compute` at most
  /// once per distinct key (concurrent probers of an in-flight key wait).
  bool GetOrCompute(const std::string& key,
                    const std::function<bool()>& compute) {
    return memo_.GetOrCompute(key, compute);
  }

  bool disabled() const { return memo_.disabled(); }
  size_t entries() const { return memo_.entries(); }
  size_t approx_bytes() const { return memo_.approx_bytes(); }
  uint64_t probes() const { return memo_.probes(); }
  uint64_t hits() const { return memo_.hits(); }
  uint64_t evictions() const { return memo_.evictions(); }
  uint64_t contended_probes() const { return memo_.contended_probes(); }

 private:
  common::ShardedMemo<bool> memo_;
};

}  // namespace ppp::exec

#endif  // PPP_EXEC_PRED_CACHE_H_
