#include "exec/system_scan.h"

namespace ppp::exec {

SystemTableScanOp::SystemTableScanOp(const catalog::Table* table,
                                     const std::string& alias)
    : table_(table), alias_(alias) {
  schema_ = table->RowSchemaForAlias(alias);
}

common::Status SystemTableScanOp::OpenImpl() {
  if (!materialized_) {
    PPP_ASSIGN_OR_RETURN(rows_, table_->MaterializeSystemRows());
    materialized_ = true;
  }
  pos_ = 0;
  return common::Status::OK();
}

common::Status SystemTableScanOp::NextImpl(types::Tuple* tuple, bool* eof) {
  while (pos_ < rows_.size()) {
    const types::Tuple& candidate = rows_[pos_++];
    if (transfers_.empty() || transfers_.Passes(candidate)) {
      *tuple = candidate;
      *eof = false;
      return common::Status::OK();
    }
  }
  *eof = true;
  return common::Status::OK();
}

common::Status SystemTableScanOp::NextBatchImpl(size_t max_rows,
                                                TupleBatch* batch,
                                                bool* eof) {
  *eof = false;
  while (batch->size() < max_rows) {
    if (pos_ >= rows_.size()) {
      *eof = true;
      break;
    }
    batch->tuples.push_back(rows_[pos_++]);
  }
  if (!transfers_.empty()) transfers_.FilterBatch(batch);
  return common::Status::OK();
}

std::string SystemTableScanOp::Describe() const {
  std::string out = "SystemTableScan(" + table_->name();
  if (alias_ != table_->name()) out += " AS " + alias_;
  return out + ")";
}

}  // namespace ppp::exec
