#ifndef PPP_EXEC_EXECUTOR_H_
#define PPP_EXEC_EXECUTOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"
#include "plan/plan_node.h"
#include "storage/io_stats.h"

namespace ppp::exec {

/// Compiles a physical plan into an operator tree. The plan must be
/// executable: joins with methods whose requirements hold (e.g. merge/hash
/// need a simple equi-join primary; index nested loops needs a bare scan
/// inner with an index on the join column).
common::Result<std::unique_ptr<Operator>> BuildExecutor(
    const plan::PlanNode& plan, ExecContext* ctx);

/// What one execution cost, in the paper's measurement currency: physical
/// page I/O (from the buffer pool) plus per-function invocation counts.
/// The harness converts these to "charged time" with the function costs,
/// exactly as §2 describes.
struct ExecStats {
  uint64_t output_rows = 0;
  storage::IoStats io;
  std::unordered_map<std::string, uint64_t> invocations;

  std::string ToString() const;
};

/// Executes `plan` to completion, returning all output tuples. I/O deltas
/// are measured against the catalog's buffer pool; invocation counts come
/// from ctx->eval. `out_schema`, when non-null, receives the output row
/// descriptor (plans with different join orders emit columns in different
/// orders; compare results with CanonicalResults + schema). `root_out`,
/// when non-null, receives the executed operator tree so the caller can
/// inspect per-operator stats (EXPLAIN ANALYZE).
common::Result<std::vector<types::Tuple>> ExecutePlan(
    const plan::PlanNode& plan, ExecContext* ctx, ExecStats* stats,
    types::RowSchema* out_schema = nullptr,
    std::unique_ptr<Operator>* root_out = nullptr);

}  // namespace ppp::exec

#endif  // PPP_EXEC_EXECUTOR_H_
