#include "exec/filter_op.h"

namespace ppp::exec {

FilterOp::FilterOp(std::unique_ptr<Operator> child,
                   CachedPredicate predicate, ExecContext* ctx)
    : child_(std::move(child)), predicate_(std::move(predicate)), ctx_(ctx) {
  schema_ = child_->schema();
}

common::Status FilterOp::Open() { return child_->Open(); }

common::Status FilterOp::Next(types::Tuple* tuple, bool* eof) {
  while (true) {
    PPP_RETURN_IF_ERROR(child_->Next(tuple, eof));
    if (*eof) return common::Status::OK();
    if (predicate_.Eval(*tuple, &ctx_->eval)) return common::Status::OK();
  }
}

}  // namespace ppp::exec
