#include "exec/filter_op.h"

namespace ppp::exec {

FilterOp::FilterOp(std::unique_ptr<Operator> child,
                   CachedPredicate predicate, ExecContext* ctx)
    : child_(std::move(child)), predicate_(std::move(predicate)), ctx_(ctx) {
  schema_ = child_->schema();
  parallel_ = ctx_->params.parallel_workers > 1 &&
              ctx_->thread_pool != nullptr && predicate_.is_expensive() &&
              predicate_.parallel_safe();
  if (parallel_) {
    evaluator_ = std::make_unique<ParallelPredicateEvaluator>(
        ctx_->thread_pool.get());
  }
}

common::Status FilterOp::OpenImpl() { return child_->Open(); }

common::Status FilterOp::NextImpl(types::Tuple* tuple, bool* eof) {
  while (true) {
    PPP_RETURN_IF_ERROR(child_->Next(tuple, eof));
    if (*eof) return common::Status::OK();
    if (predicate_.Eval(*tuple, &ctx_->eval)) return common::Status::OK();
  }
}

common::Status FilterOp::NextBatchImpl(size_t max_rows, TupleBatch* batch,
                                       bool* eof) {
  *eof = false;
  TupleBatch input;
  // Loop until we produce at least one row (or hit eof), so a selective
  // predicate doesn't bubble empty batches up the pipeline.
  while (batch->empty() && !*eof) {
    input.clear();
    PPP_RETURN_IF_ERROR(child_->NextBatch(max_rows, &input, eof));
    if (input.empty()) continue;
    if (parallel_) {
      std::vector<char> keep;
      evaluator_->EvalBatch(&predicate_, input, ctx_, &keep);
      for (size_t i = 0; i < input.size(); ++i) {
        if (keep[i]) batch->tuples.push_back(std::move(input.tuples[i]));
      }
    } else {
      for (types::Tuple& tuple : input.tuples) {
        if (predicate_.Eval(tuple, &ctx_->eval)) {
          batch->tuples.push_back(std::move(tuple));
        }
      }
    }
  }
  return common::Status::OK();
}

std::string FilterOp::Describe() const {
  return parallel_ ? "Filter(parallel)" : "Filter";
}

void FilterOp::RefreshLocalStats() const {
  stats_.has_cache = true;
  stats_.cache_enabled = predicate_.cache_enabled();
  stats_.cache_hits = predicate_.cache_hits();
  stats_.cache_entries = predicate_.cache_entries();
  stats_.cache_evictions = predicate_.cache_evictions();
}

}  // namespace ppp::exec
