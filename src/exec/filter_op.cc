#include "exec/filter_op.h"

namespace ppp::exec {

FilterOp::FilterOp(std::unique_ptr<Operator> child,
                   CachedPredicate predicate, ExecContext* ctx)
    : child_(std::move(child)), predicate_(std::move(predicate)), ctx_(ctx) {
  schema_ = child_->schema();
}

common::Status FilterOp::OpenImpl() { return child_->Open(); }

common::Status FilterOp::NextImpl(types::Tuple* tuple, bool* eof) {
  while (true) {
    PPP_RETURN_IF_ERROR(child_->Next(tuple, eof));
    if (*eof) return common::Status::OK();
    if (predicate_.Eval(*tuple, &ctx_->eval)) return common::Status::OK();
  }
}

std::string FilterOp::Describe() const { return "Filter"; }

void FilterOp::RefreshLocalStats() const {
  stats_.has_cache = true;
  stats_.cache_enabled = predicate_.cache_enabled();
  stats_.cache_hits = predicate_.cache_hits();
  stats_.cache_entries = predicate_.cache_entries();
  stats_.cache_evictions = predicate_.cache_evictions();
}

}  // namespace ppp::exec
