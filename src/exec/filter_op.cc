#include "exec/filter_op.h"

#include <utility>

#include "obs/metrics.h"

namespace ppp::exec {

FilterOp::FilterOp(std::unique_ptr<Operator> child,
                   CachedPredicate predicate, ExecContext* ctx)
    : child_(std::move(child)), predicate_(std::move(predicate)), ctx_(ctx) {
  schema_ = child_->schema();
  parallel_ = ctx_->params.parallel_workers > 1 &&
              ctx_->thread_pool != nullptr && predicate_.is_expensive() &&
              predicate_.parallel_safe();
  if (parallel_) {
    evaluator_ = std::make_unique<ParallelPredicateEvaluator>(
        ctx_->thread_pool.get());
  }
}

common::Result<std::unique_ptr<FilterOp>> FilterOp::Make(
    std::unique_ptr<Operator> child, const expr::PredicateInfo& pred,
    ExecContext* ctx) {
  PPP_ASSIGN_OR_RETURN(
      CachedPredicate bound,
      CachedPredicate::Bind(pred, child->schema(), *ctx->catalog,
                            ctx->params, ctx->shared_caches, &ctx->binding));
  auto op = std::make_unique<FilterOp>(std::move(child), std::move(bound),
                                       ctx);
  if (!ctx->params.vectorized || pred.expr == nullptr) return op;

  // Compile the maximal vectorizable *prefix* of the conjunction. Prefix
  // order matters for counter parity: the scalar engine short-circuits a
  // conjunction left to right, so only a prefix can be peeled off without
  // changing which rows the remainder sees.
  const std::vector<expr::ExprPtr> conjuncts =
      expr::SplitConjuncts(pred.expr);
  std::vector<VectorizedPredicate> kernels;
  size_t split = 0;
  for (; split < conjuncts.size(); ++split) {
    std::optional<VectorizedPredicate> kernel =
        VectorizedPredicate::Compile(conjuncts[split], op->child_->schema());
    if (!kernel.has_value()) break;
    kernels.push_back(std::move(*kernel));
  }
  if (kernels.empty()) return op;

  if (split < conjuncts.size()) {
    // Mixed conjunction. Splitting a predicate whose whole-conjunct memo is
    // engaged would change the cache keys and hit pattern, so leave those
    // scalar. (The suffix below can never re-enable a cache: the reasons
    // the full predicate's cache is off — caching disabled, predicate
    // cheap, or a non-cacheable function, which necessarily lives in the
    // suffix — all apply to the suffix too.)
    if (op->predicate_.cache_enabled()) return op;
    expr::PredicateInfo suffix_info = pred;
    suffix_info.expr = expr::CombineConjuncts(std::vector<expr::ExprPtr>(
        conjuncts.begin() + static_cast<ptrdiff_t>(split), conjuncts.end()));
    PPP_ASSIGN_OR_RETURN(
        CachedPredicate suffix,
        CachedPredicate::Bind(suffix_info, op->child_->schema(),
                              *ctx->catalog, ctx->params,
                              ctx->shared_caches, &ctx->binding));
    op->suffix_ = std::move(suffix);
  }
  op->kernels_ = std::move(kernels);
  op->use_columns_ = op->child_->provides_columns();
  return op;
}

common::Status FilterOp::OpenImpl() { return child_->Open(); }

common::Status FilterOp::NextImpl(types::Tuple* tuple, bool* eof) {
  while (true) {
    PPP_RETURN_IF_ERROR(child_->Next(tuple, eof));
    if (*eof) return common::Status::OK();
    if (predicate_.Eval(*tuple, &ctx_->eval)) return common::Status::OK();
  }
}

void FilterOp::EvalScalarOnSelection(
    CachedPredicate* pred, types::ColumnBatch* batch,
    const std::vector<uint8_t>* maybe_null) {
  std::vector<uint32_t>& sel = *batch->mutable_selection();
  if (sel.empty()) return;
  size_t out = 0;
  if (parallel_) {
    survivors_.clear();
    survivors_.tuples.reserve(sel.size());
    for (const uint32_t row : sel) {
      survivors_.tuples.push_back(batch->RowAsTuple(row));
    }
    evaluator_->EvalBatch(pred, survivors_, ctx_, &keep_);
    for (size_t i = 0; i < sel.size(); ++i) {
      const uint32_t row = sel[i];
      if (keep_[i] &&
          (maybe_null == nullptr || (*maybe_null)[row] == 0)) {
        sel[out++] = row;
      }
    }
  } else {
    for (const uint32_t row : sel) {
      const types::Tuple tuple = batch->RowAsTuple(row);
      // Eval unconditionally: a maybe_null row must still invoke the
      // expensive remainder (the scalar engine would), it just can't pass.
      const bool pass = pred->Eval(tuple, &ctx_->eval);
      if (pass && (maybe_null == nullptr || (*maybe_null)[row] == 0)) {
        sel[out++] = row;
      }
    }
  }
  sel.resize(out);
}

common::Status FilterOp::FilterColumns(types::ColumnBatch* batch) {
  static obs::Counter* pruned_counter =
      obs::MetricsRegistry::Global().GetCounter("exec.vector.pruned");
  bool native = !kernels_.empty();
  for (const VectorizedPredicate& kernel : kernels_) {
    if (!kernel.Applicable(*batch)) {
      native = false;
      break;
    }
  }
  if (!native) {
    // No kernels (or a referenced column fell back to boxed storage this
    // batch): evaluate the whole predicate scalar over the selection —
    // exactly the row engine's semantics.
    EvalScalarOnSelection(&predicate_, batch, nullptr);
    return common::Status::OK();
  }

  const size_t before = batch->selected();
  std::vector<uint8_t>* maybe_null = nullptr;
  if (suffix_.has_value()) {
    maybe_null_.assign(batch->num_rows(), 0);
    maybe_null = &maybe_null_;
  }
  for (const VectorizedPredicate& kernel : kernels_) {
    kernel.Filter(batch, maybe_null);
    if (batch->selected() == 0) break;
  }
  pruned_counter->Increment(before - batch->selected());
  if (suffix_.has_value() && batch->selected() > 0) {
    // Late expensive pass: UDFs see only the surviving positions.
    EvalScalarOnSelection(&*suffix_, batch, maybe_null);
  }
  return common::Status::OK();
}

common::Status FilterOp::NextColumnBatchImpl(size_t max_rows,
                                             types::ColumnBatch* batch,
                                             bool* eof) {
  *eof = false;
  // Loop until at least one row survives (or eof), so a selective predicate
  // doesn't bubble empty batches up the pipeline.
  do {
    PPP_RETURN_IF_ERROR(child_->NextColumnBatch(max_rows, batch, eof));
    if (batch->selected() > 0) {
      PPP_RETURN_IF_ERROR(FilterColumns(batch));
    }
  } while (batch->selected() == 0 && !*eof);
  return common::Status::OK();
}

common::Status FilterOp::NextBatchImpl(size_t max_rows, TupleBatch* batch,
                                       bool* eof) {
  if (use_columns_) {
    // Columnar core with a row-world shim: pull columns from the child,
    // narrow the selection, materialize only the survivors.
    PPP_RETURN_IF_ERROR(NextColumnBatchImpl(max_rows, &column_scratch_, eof));
    column_scratch_.ToTuples(&batch->tuples);
    return common::Status::OK();
  }
  *eof = false;
  TupleBatch input;
  // Loop until we produce at least one row (or hit eof), so a selective
  // predicate doesn't bubble empty batches up the pipeline.
  while (batch->empty() && !*eof) {
    input.clear();
    PPP_RETURN_IF_ERROR(child_->NextBatch(max_rows, &input, eof));
    if (input.empty()) continue;
    if (parallel_) {
      std::vector<char> keep;
      evaluator_->EvalBatch(&predicate_, input, ctx_, &keep);
      for (size_t i = 0; i < input.size(); ++i) {
        if (keep[i]) batch->tuples.push_back(std::move(input.tuples[i]));
      }
    } else {
      for (types::Tuple& tuple : input.tuples) {
        if (predicate_.Eval(tuple, &ctx_->eval)) {
          batch->tuples.push_back(std::move(tuple));
        }
      }
    }
  }
  return common::Status::OK();
}

std::string FilterOp::Describe() const {
  std::string out = "Filter";
  if (!kernels_.empty() && parallel_) {
    out += "(vector+parallel)";
  } else if (!kernels_.empty()) {
    out += "(vector)";
  } else if (parallel_) {
    out += "(parallel)";
  }
  return out;
}

void FilterOp::RefreshLocalStats() const {
  stats_.has_cache = true;
  stats_.cache_enabled = predicate_.cache_enabled();
  stats_.cache_hits = predicate_.cache_hits();
  stats_.cache_entries = predicate_.cache_entries();
  stats_.cache_evictions = predicate_.cache_evictions();
}

}  // namespace ppp::exec
