#ifndef PPP_SERVE_PLAN_CACHE_H_
#define PPP_SERVE_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "cost/cost_params.h"
#include "plan/plan_node.h"

namespace ppp::serve {

/// Identity of one plan-cache slot. Three coordinates, per the tentpole:
/// the normalized query text (constants included — a plan embeds its
/// literals), the statistics snapshots the optimizer planned against, and
/// the placement-relevant knobs (CostParams + algorithm). Any coordinate
/// moving is a miss, never a stale plan.
struct PlanCacheKey {
  uint64_t text_hash = 0;
  /// Hash over every placement-relevant CostParams field + algorithm name.
  uint64_t params_hash = 0;
  /// Family (generic-plan) entries are keyed on family_hash-as-text_hash
  /// with this flag set, so a family entry for `u10 < $1` can never
  /// collide with an exact entry whose literal text happens to hash alike.
  bool family = false;

  bool operator==(const PlanCacheKey& other) const {
    return text_hash == other.text_hash &&
           params_hash == other.params_hash && family == other.family;
  }
};

/// One cached optimization: the immutable plan plus everything a session
/// needs to execute it without re-parsing (alias bindings) and everything
/// the cache needs to re-validate it on probe (per-table stats epochs,
/// history identity).
struct CachedPlan {
  std::shared_ptr<const plan::PlanNode> plan;
  /// (alias, table name) in spec order: sessions rebuild ExecContext
  /// bindings from this on a hit, skipping parse/bind entirely.
  std::vector<std::pair<std::string, std::string>> bindings;
  /// stats_epoch() of each bound table at optimize time, same order as
  /// `bindings`. Probe re-reads the live epochs; any drift is a miss.
  std::vector<uint64_t> stats_epochs;
  uint64_t text_hash = 0;
  uint64_t family_hash = 0;   ///< Literal-sloted family (observability).
  uint64_t plan_fingerprint = 0;
  std::string algorithm;
  double est_cost = 0.0;
  double optimize_seconds = 0.0;  ///< What the miss paid (the hit saves it).
  uint64_t hits = 0;
  size_t approx_bytes = 0;
  /// Generic (family-keyed) entries only: how many parameter slots the
  /// plan's expressions carry — CloneWithParams validates against it.
  size_t num_params = 0;
};

/// Snapshot row of one entry (the ppp_plan_cache system table).
struct PlanCacheEntryView {
  uint64_t text_hash = 0;
  uint64_t family_hash = 0;
  uint64_t params_hash = 0;
  uint64_t plan_fingerprint = 0;
  std::string algorithm;
  std::string tables;  ///< Comma-joined bound table names.
  uint64_t hits = 0;
  double est_cost = 0.0;
  double optimize_seconds = 0.0;
  size_t approx_bytes = 0;
  bool is_family = false;       ///< Generic (parameterized) entry?
  uint64_t family_hits = 0;     ///< Generic-plan hits for this family.
};

/// The serving layer's normalized-query plan cache. Probe is O(1) in the
/// number of entries: one hash lookup, then validation against the live
/// stats epochs of the entry's own tables and the plan-history regression
/// verdict for its fingerprint. Invalidation is deliberately three-way:
///
///  * ANALYZE (or a declared-stats override) bumps a table's stats epoch;
///    the catalog listener calls InvalidateTable and probe-time epoch
///    checks catch any entry the listener raced with.
///  * PlanHistory flags the entry's (text_hash, fingerprint) regressed;
///    the next probe drops the entry so the optimizer can re-plan.
///  * Capacity: byte-bounded LRU like the predicate cache (entry bytes =
///    key + bindings + an estimate of the plan tree).
///
/// Thread-safe under one mutex; all operations are O(1)-ish except
/// InvalidateTable, which scans entries (the cache is small and ANALYZE is
/// rare). Counters surface as serve.plan_cache.{hits,misses,invalidations,
/// evictions} in the global metrics registry.
class PlanCache {
 public:
  static constexpr size_t kDefaultMaxBytes = 8u << 20;
  static constexpr size_t kDefaultMaxEntries = 512;

  struct Options {
    size_t max_bytes = kDefaultMaxBytes;
    size_t max_entries = kDefaultMaxEntries;
  };

  PlanCache() : PlanCache(Options()) {}
  explicit PlanCache(const Options& options);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan for `key` when present AND still valid:
  /// every bound table's live stats epoch matches the entry's, and the
  /// plan history holds no regression verdict against it. An invalid entry
  /// is dropped (counted as an invalidation) and nullptr returned. The
  /// returned shared_ptr keeps the plan alive even if the entry is evicted
  /// mid-execution.
  std::shared_ptr<const CachedPlan> Probe(const PlanCacheKey& key,
                                          const catalog::Catalog& catalog);

  /// Inserts (or replaces) the entry for `key`, evicting LRU entries past
  /// the byte/entry bounds.
  void Insert(const PlanCacheKey& key, CachedPlan plan);

  /// Drops every entry that binds `table_name` (the ANALYZE hook).
  void InvalidateTable(const std::string& table_name);

  /// Drops everything.
  void Clear();

  size_t entries() const;
  size_t approx_bytes() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  uint64_t family_hits() const {
    return family_hits_total_.load(std::memory_order_relaxed);
  }

  std::vector<PlanCacheEntryView> Snapshot() const;

 private:
  struct KeyHash {
    size_t operator()(const PlanCacheKey& key) const {
      // text_hash is already FNV-mixed; fold params in with the golden
      // ratio so equal text under different knobs spreads.
      return static_cast<size_t>(key.text_hash ^
                                 (key.params_hash * 0x9e3779b97f4a7c15ull) ^
                                 (key.family ? 0x5851f42d4c957f2dull : 0));
    }
  };
  struct Slot {
    CachedPlan plan;
    std::list<PlanCacheKey>::iterator lru_pos;
  };

  void EraseLocked(
      std::unordered_map<PlanCacheKey, Slot, KeyHash>::iterator it);
  void EvictPastBoundsLocked();

  Options options_;
  mutable std::mutex mu_;
  std::unordered_map<PlanCacheKey, Slot, KeyHash> slots_;
  std::list<PlanCacheKey> lru_;  ///< Front = most recently used.
  size_t bytes_ = 0;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> family_hits_total_{0};
  /// Per-family generic-plan hit counts. Survives entry eviction so the
  /// ppp_plan_cache family_hits column reflects lifetime reuse.
  std::unordered_map<uint64_t, uint64_t> family_hit_counts_;
};

/// Hash over every CostParams field that can change plan choice, plus the
/// algorithm name: two sessions with different knobs never share a slot.
uint64_t PlacementParamsHash(const cost::CostParams& params,
                             const std::string& algorithm);

/// Rough byte footprint of a cached plan entry (keys + bindings + a
/// per-plan-node constant), the currency of the cache's byte bound.
size_t ApproxPlanBytes(const plan::PlanNode& plan,
                       const std::vector<std::pair<std::string, std::string>>&
                           bindings);

}  // namespace ppp::serve

#endif  // PPP_SERVE_PLAN_CACHE_H_
