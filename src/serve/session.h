#ifndef PPP_SERVE_SESSION_H_
#define PPP_SERVE_SESSION_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "cost/cost_params.h"
#include "exec/executor.h"
#include "exec/operator.h"
#include "exec/shared_caches.h"
#include "optimizer/optimizer.h"
#include "parser/normalize.h"
#include "serve/plan_cache.h"
#include "types/row_schema.h"
#include "types/tuple.h"
#include "types/value.h"
#include "workload/database.h"

namespace ppp::serve {

/// Per-session planning/execution configuration. Each session owns its
/// copy (the per-session isolation of the tentpole); the shared engine
/// context lives in the manager.
struct SessionOptions {
  optimizer::Algorithm algorithm = optimizer::Algorithm::kMigration;
  cost::CostParams cost_params;
  exec::ExecParams exec_params;
  /// Probe/fill the manager's plan cache for this session's queries.
  bool use_plan_cache = true;
};

/// One PREPAREd statement family. Keyed on the normalized family hash in
/// the shared engine state, so two sessions preparing statements that
/// differ only in constants (or placeholder spelling) share one entry;
/// each session maps its own statement names onto these.
struct PreparedFamily {
  std::string family_text;  ///< Normalized body, literals as $n slots.
  uint64_t family_hash = 0;
  size_t num_params = 0;
  /// Lexical class each slot was spelled with in the PREPARE body —
  /// EXECUTE arguments are checked (and int→float widened) against it;
  /// kHole slots (explicit $n) accept any scalar.
  std::vector<parser::ParamKind> param_kinds;
};

/// Outcome of one Session::Execute call.
struct QueryResult {
  std::vector<types::Tuple> rows;
  types::RowSchema schema;
  /// The executed plan (shared with the cache on a hit) for printing and
  /// inspection; null for ANALYZE and PREPARE statements.
  std::shared_ptr<const plan::PlanNode> plan;
  /// Seconds spent producing an executable plan: parse+bind+optimize on a
  /// miss, cache probe on a hit — the quantity the plan cache amortizes.
  double optimize_seconds = 0.0;
  double execute_seconds = 0.0;
  bool plan_cache_hit = false;
  uint64_t text_hash = 0;
  uint64_t plan_fingerprint = 0;
  /// For ANALYZE statements: tables analyzed (rows/schema stay empty).
  size_t analyzed_tables = 0;
  /// PREPARE/EXECUTE: the statement's family hash (0 for plain queries).
  uint64_t family_hash = 0;
  /// EXECUTE only: the plan came from the family (generic) cache with
  /// fresh parameters substituted — no parse, no optimize.
  bool generic_plan = false;
  /// PREPARE only: the statement name just registered.
  std::string prepared_name;
};

/// Aggregate per-session counters, the backing row of ppp_sessions.
/// Retained (with active = false) after the session closes so a workload's
/// full history stays queryable.
struct SessionRow {
  uint64_t session_id = 0;
  bool active = false;
  bool plan_cache = true;
  uint64_t queries = 0;
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t rows_returned = 0;
};

class SessionManager;
class Session;

namespace internal {
/// Engine context shared by every session of one manager: the plan cache,
/// the cross-query predicate-cache registry, and the session table.
/// Sessions hold it by shared_ptr so a session outliving its manager
/// degrades gracefully; system-table providers hold it weakly.
struct ServeState {
  workload::Database* db = nullptr;
  PlanCache plan_cache;
  exec::SharedPredicateCacheRegistry shared_caches;
  bool plan_cache_enabled = true;
  bool share_predicate_caches = true;

  std::mutex mu;
  uint64_t next_session_id = 1;
  std::map<uint64_t, SessionRow> sessions;
  /// PREPAREd families by family hash, shared engine-wide (guarded by mu).
  std::map<uint64_t, std::shared_ptr<const PreparedFamily>> prepared_families;

  explicit ServeState(workload::Database* db_in,
                      const PlanCache::Options& cache_options)
      : db(db_in), plan_cache(cache_options) {}
};
}  // namespace internal

/// One client's handle onto the shared engine: per-session ExecParams /
/// CostParams / algorithm, a persistent ExecContext (function cache and
/// worker pool survive across queries), and Execute() for SELECT and
/// ANALYZE statements. Sessions are NOT individually thread-safe — one
/// thread per session, many sessions in parallel is the supported model
/// (everything shared underneath is synchronized).
class Session {
 public:
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint64_t id() const { return id_; }

  /// Runs one statement. SELECTs go through the plan cache (when enabled
  /// for both manager and session): normalize → probe → on miss
  /// parse/bind/rewrite/optimize and fill. ANALYZE statements collect
  /// statistics and, via the catalog's stats listener, invalidate every
  /// cached plan that binds the analyzed tables. PREPARE/EXECUTE route to
  /// Prepare / ExecutePrepared.
  common::Result<QueryResult> Execute(const std::string& sql);

  /// Registers `name` for the SELECT body (which may mix literals and $n
  /// placeholders — both become parameter slots in one left-to-right
  /// numbering). Planning is deferred to the first ExecutePrepared.
  common::Result<QueryResult> Prepare(const std::string& name,
                                      const std::string& body);

  /// Binds `values` to the named statement's slots and executes. The plan
  /// comes from, in fastest-first order: the exact plan-cache entry for
  /// the rendered literal text, the family (generic) entry with fresh
  /// values substituted (plan::CloneWithParams — placement reused,
  /// selectivities frozen at prepare time), or a full parameterized
  /// plan — which then fills both cache levels when safe.
  common::Result<QueryResult> ExecutePrepared(
      const std::string& name, const std::vector<types::Value>& values);

  /// Names this session has PREPAREd, in registration order.
  std::vector<std::string> PreparedNames() const;

  SessionOptions& options() { return options_; }
  const SessionOptions& options() const { return options_; }

  /// The per-session plan-cache switch (`\set plancache on|off`).
  void set_plan_cache_enabled(bool on);
  bool plan_cache_enabled() const { return options_.use_plan_cache; }

  uint64_t queries() const { return queries_; }
  uint64_t plan_cache_hits() const { return cache_hits_; }

 private:
  friend class SessionManager;
  Session(std::shared_ptr<internal::ServeState> state, uint64_t id,
          SessionOptions options);

  common::Result<QueryResult> ExecuteSelect(const std::string& sql);
  common::Result<QueryResult> ExecuteAnalyze(const std::string& sql);
  common::Result<QueryResult> RunPlan(
      std::shared_ptr<const plan::PlanNode> plan, QueryResult result,
      uint64_t text_hash, const std::string& algorithm_name,
      std::chrono::steady_clock::time_point plan_start);
  void UpdateRow(const QueryResult& result);

  std::shared_ptr<internal::ServeState> state_;
  uint64_t id_ = 0;
  SessionOptions options_;
  /// Reused across queries so the function cache and worker pool persist
  /// (the per-session half of §5.1 amortization).
  exec::ExecContext ctx_;
  /// This session's statement-name → shared family bindings.
  std::map<std::string, std::shared_ptr<const PreparedFamily>> prepared_;
  std::vector<std::string> prepared_order_;
  uint64_t queries_ = 0;
  uint64_t cache_hits_ = 0;
};

/// Hands out sessions over one shared engine context and wires the
/// serving-layer plumbing: the statistics listener that turns ANALYZE into
/// plan-cache invalidations, the ppp_plan_cache / ppp_sessions system
/// tables, and the serve.sessions.active gauge. Thread-safe.
class SessionManager {
 public:
  struct Options {
    PlanCache::Options plan_cache;
    /// Master plan-cache switch; overridden to off by PPP_PLAN_CACHE=0.
    bool plan_cache_enabled = true;
    /// Cross-session §5.1 predicate-cache sharing.
    bool share_predicate_caches = true;
    /// Default configuration handed to new sessions.
    SessionOptions session_defaults;
  };

  explicit SessionManager(workload::Database* db)
      : SessionManager(db, Options()) {}
  SessionManager(workload::Database* db, Options options);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Creates a session with the manager's default options (or an explicit
  /// override). Sessions may outlive the manager but are usually closed
  /// first; each close retires its ppp_sessions row to inactive.
  std::unique_ptr<Session> CreateSession();
  std::unique_ptr<Session> CreateSession(const SessionOptions& options);

  PlanCache& plan_cache() { return state_->plan_cache; }
  exec::SharedPredicateCacheRegistry& shared_caches() {
    return state_->shared_caches;
  }
  bool plan_cache_enabled() const { return state_->plan_cache_enabled; }

  size_t active_sessions() const;
  std::vector<SessionRow> SessionRows() const;

 private:
  std::shared_ptr<internal::ServeState> state_;
  uint64_t listener_id_ = 0;
};

}  // namespace ppp::serve

#endif  // PPP_SERVE_SESSION_H_
