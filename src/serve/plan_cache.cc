#include "serve/plan_cache.h"

#include <cinttypes>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/plan_history.h"

namespace ppp::serve {

namespace {

obs::Counter* HitCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.plan_cache.hits");
  return c;
}
obs::Counter* MissCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.plan_cache.misses");
  return c;
}
obs::Counter* InvalidationCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "serve.plan_cache.invalidations");
  return c;
}
obs::Counter* EvictionCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("serve.plan_cache.evictions");
  return c;
}
obs::Counter* FamilyHitCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().GetCounter(
      "serve.plan_cache.family_hits");
  return c;
}

size_t CountNodes(const plan::PlanNode& node) {
  size_t n = 1;
  for (const auto& child : node.children) n += CountNodes(*child);
  return n;
}

}  // namespace

PlanCache::PlanCache(const Options& options) : options_(options) {
  if (options_.max_entries == 0) options_.max_entries = 1;
}

std::shared_ptr<const CachedPlan> PlanCache::Probe(
    const PlanCacheKey& key, const catalog::Catalog& catalog) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = slots_.find(key);
  if (it == slots_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    MissCounter()->Increment();
    return nullptr;
  }

  // Validate against live state. The epochs are read without the cache
  // lock ordering mattering: a concurrent ANALYZE either bumped the epoch
  // (we miss, correct) or its listener already erased the entry.
  CachedPlan& cached = it->second.plan;
  bool valid = true;
  for (size_t i = 0; i < cached.bindings.size() && valid; ++i) {
    auto table = catalog.GetTable(cached.bindings[i].second);
    valid = table.ok() && (*table)->stats_epoch() == cached.stats_epochs[i];
  }
  if (valid && obs::PlanHistory::Global().enabled() &&
      obs::PlanHistory::Global().Regressed(cached.text_hash,
                                           cached.plan_fingerprint)) {
    valid = false;
  }
  if (!valid) {
    EraseLocked(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    InvalidationCounter()->Increment();
    misses_.fetch_add(1, std::memory_order_relaxed);
    MissCounter()->Increment();
    return nullptr;
  }

  cached.hits += 1;
  if (key.family) {
    family_hit_counts_[cached.family_hash] += 1;
    family_hits_total_.fetch_add(1, std::memory_order_relaxed);
    FamilyHitCounter()->Increment();
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  hits_.fetch_add(1, std::memory_order_relaxed);
  HitCounter()->Increment();
  return std::make_shared<CachedPlan>(cached);
}

void PlanCache::Insert(const PlanCacheKey& key, CachedPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(key);
  if (it != slots_.end()) EraseLocked(it);
  plan.approx_bytes = ApproxPlanBytes(*plan.plan, plan.bindings);
  bytes_ += plan.approx_bytes;
  lru_.push_front(key);
  slots_.emplace(key, Slot{std::move(plan), lru_.begin()});
  EvictPastBoundsLocked();
}

void PlanCache::InvalidateTable(const std::string& table_name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = slots_.begin(); it != slots_.end();) {
    bool binds = false;
    for (const auto& [alias, table] : it->second.plan.bindings) {
      if (table == table_name) {
        binds = true;
        break;
      }
    }
    if (binds) {
      auto victim = it++;
      EraseLocked(victim);
      invalidations_.fetch_add(1, std::memory_order_relaxed);
      InvalidationCounter()->Increment();
    } else {
      ++it;
    }
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
  lru_.clear();
  family_hit_counts_.clear();
  bytes_ = 0;
}

size_t PlanCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

size_t PlanCache::approx_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::vector<PlanCacheEntryView> PlanCache::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PlanCacheEntryView> out;
  out.reserve(slots_.size());
  // LRU order, hottest first, so the system table reads as a ranking.
  for (const PlanCacheKey& key : lru_) {
    const auto it = slots_.find(key);
    if (it == slots_.end()) continue;
    const CachedPlan& p = it->second.plan;
    PlanCacheEntryView view;
    view.text_hash = p.text_hash;
    view.family_hash = p.family_hash;
    view.params_hash = key.params_hash;
    view.is_family = key.family;
    if (const auto fh = family_hit_counts_.find(p.family_hash);
        fh != family_hit_counts_.end()) {
      view.family_hits = fh->second;
    }
    view.plan_fingerprint = p.plan_fingerprint;
    view.algorithm = p.algorithm;
    for (const auto& [alias, table] : p.bindings) {
      if (!view.tables.empty()) view.tables += ',';
      view.tables += table;
    }
    view.hits = p.hits;
    view.est_cost = p.est_cost;
    view.optimize_seconds = p.optimize_seconds;
    view.approx_bytes = p.approx_bytes;
    out.push_back(std::move(view));
  }
  return out;
}

void PlanCache::EraseLocked(
    std::unordered_map<PlanCacheKey, Slot, KeyHash>::iterator it) {
  bytes_ -= it->second.plan.approx_bytes;
  lru_.erase(it->second.lru_pos);
  slots_.erase(it);
}

void PlanCache::EvictPastBoundsLocked() {
  while (slots_.size() > 1 &&
         (slots_.size() > options_.max_entries ||
          (options_.max_bytes > 0 && bytes_ > options_.max_bytes))) {
    auto it = slots_.find(lru_.back());
    if (it == slots_.end()) {
      lru_.pop_back();
      continue;
    }
    EraseLocked(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    EvictionCounter()->Increment();
  }
}

uint64_t PlacementParamsHash(const cost::CostParams& p,
                             const std::string& algorithm) {
  // %.17g round-trips doubles exactly, so distinct knob values never
  // collide by formatting.
  const std::string text = common::StringPrintf(
      "%s|%.17g|%.17g|%.17g|%.17g|%.17g|%d|%d|%.17g|%d|%d|%d|%d|%.17g|%d|"
      "%.17g",
      algorithm.c_str(), p.seq_page_io, p.rand_page_io, p.index_probe_ios,
      p.buffer_pages, p.sort_fanout, p.per_input_selectivity ? 1 : 0,
      p.predicate_caching ? 1 : 0, p.parallel_workers,
      p.current_cardinality_estimate ? 1 : 0, p.use_feedback ? 1 : 0,
      p.use_collected_stats ? 1 : 0, p.predicate_transfer ? 1 : 0,
      p.cpu_tuple_cost, p.vectorized ? 1 : 0, p.vector_speedup);
  return common::Fnv1aHash(text);
}

size_t ApproxPlanBytes(
    const plan::PlanNode& plan,
    const std::vector<std::pair<std::string, std::string>>& bindings) {
  // Entries are dominated by the plan tree; charge a flat estimate per
  // node (expression + strings + annotations) plus the binding strings and
  // fixed slot overhead. Deliberately coarse, like the predicate cache's
  // key-bytes accounting — the bound exists to cap growth, not to meter
  // allocations.
  constexpr size_t kPerNode = 512;
  constexpr size_t kSlotOverhead = 256;
  size_t bytes = kSlotOverhead + CountNodes(plan) * kPerNode;
  for (const auto& [alias, table] : bindings) {
    bytes += alias.size() + table.size() + 2 * sizeof(void*);
  }
  return bytes;
}

}  // namespace ppp::serve
