#include "serve/session.h"

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

#include "catalog/system_tables.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "optimizer/algorithm.h"
#include "parser/normalize.h"
#include "parser/parser.h"
#include "stats/collector.h"
#include "subquery/rewrite.h"

namespace ppp::serve {

namespace {

using internal::ServeState;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

obs::Gauge* ActiveSessionsGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("serve.sessions.active");
  return g;
}

/// catalog → live ServeState, for the ppp_plan_cache / ppp_sessions
/// providers. Providers capture only the catalog pointer, so a manager
/// re-created over the same database transparently re-binds the existing
/// system tables to its fresh state.
std::mutex g_states_mu;
std::map<const catalog::Catalog*, std::weak_ptr<ServeState>>& States() {
  static auto* states =
      new std::map<const catalog::Catalog*, std::weak_ptr<ServeState>>();
  return *states;
}

std::shared_ptr<ServeState> StateFor(const catalog::Catalog* catalog) {
  std::lock_guard<std::mutex> lock(g_states_mu);
  auto it = States().find(catalog);
  if (it == States().end()) return nullptr;
  return it->second.lock();
}

types::Value HexValue(uint64_t h) {
  return types::Value(common::StringPrintf(
      "%016llx", static_cast<unsigned long long>(h)));
}

types::Value IntValue(uint64_t v) {
  return types::Value(static_cast<int64_t>(v));
}

void RegisterServeSystemTables(catalog::Catalog* catalog) {
  using types::TypeId;
  const catalog::Catalog* key = catalog;
  auto plan_cache_rows =
      [key]() -> common::Result<std::vector<types::Tuple>> {
    std::vector<types::Tuple> rows;
    const std::shared_ptr<ServeState> state = StateFor(key);
    if (state == nullptr) return rows;
    for (const PlanCacheEntryView& e : state->plan_cache.Snapshot()) {
      rows.emplace_back(std::vector<types::Value>{
          HexValue(e.text_hash), HexValue(e.family_hash),
          HexValue(e.params_hash), HexValue(e.plan_fingerprint),
          types::Value(e.algorithm), types::Value(e.tables),
          types::Value(std::string(e.is_family ? "generic" : "exact")),
          IntValue(e.hits), IntValue(e.family_hits),
          types::Value(e.est_cost), types::Value(e.optimize_seconds),
          IntValue(static_cast<uint64_t>(e.approx_bytes))});
    }
    return rows;
  };
  auto session_rows = [key]() -> common::Result<std::vector<types::Tuple>> {
    std::vector<types::Tuple> rows;
    const std::shared_ptr<ServeState> state = StateFor(key);
    if (state == nullptr) return rows;
    std::lock_guard<std::mutex> lock(state->mu);
    for (const auto& [id, row] : state->sessions) {
      rows.emplace_back(std::vector<types::Value>{
          IntValue(row.session_id), IntValue(row.active ? 1 : 0),
          IntValue(row.plan_cache ? 1 : 0), IntValue(row.queries),
          IntValue(row.plan_cache_hits), IntValue(row.plan_cache_misses),
          IntValue(row.rows_returned)});
    }
    return rows;
  };

  // AlreadyExists is expected when a second manager binds the same
  // database: the existing tables' providers re-resolve through States().
  auto r1 = catalog->RegisterSystemTable(std::make_unique<catalog::Table>(
      "ppp_plan_cache",
      std::vector<catalog::ColumnDef>{{"text_hash", TypeId::kString},
                                      {"family_hash", TypeId::kString},
                                      {"params_hash", TypeId::kString},
                                      {"plan_fingerprint", TypeId::kString},
                                      {"algorithm", TypeId::kString},
                                      {"tables", TypeId::kString},
                                      {"kind", TypeId::kString},
                                      {"hits", TypeId::kInt64},
                                      {"family_hits", TypeId::kInt64},
                                      {"est_cost", TypeId::kDouble},
                                      {"optimize_seconds", TypeId::kDouble},
                                      {"approx_bytes", TypeId::kInt64}},
      plan_cache_rows, [key] {
        const std::shared_ptr<ServeState> state = StateFor(key);
        return state == nullptr
                   ? int64_t{0}
                   : static_cast<int64_t>(state->plan_cache.entries());
      }));
  (void)r1;
  auto r2 = catalog->RegisterSystemTable(std::make_unique<catalog::Table>(
      "ppp_sessions",
      std::vector<catalog::ColumnDef>{{"session_id", TypeId::kInt64},
                                      {"active", TypeId::kInt64},
                                      {"plan_cache", TypeId::kInt64},
                                      {"queries", TypeId::kInt64},
                                      {"plan_cache_hits", TypeId::kInt64},
                                      {"plan_cache_misses", TypeId::kInt64},
                                      {"rows_returned", TypeId::kInt64}},
      session_rows, [key] {
        const std::shared_ptr<ServeState> state = StateFor(key);
        if (state == nullptr) return int64_t{0};
        std::lock_guard<std::mutex> lock(state->mu);
        return static_cast<int64_t>(state->sessions.size());
      }));
  (void)r2;
}

/// Renders a bound parameter the way NormalizeSql spells the same literal,
/// so an EXECUTE and a plain QUERY with identical constants share one
/// exact plan-cache slot (doubles use %.17g — exotic spellings simply get
/// their own slot, which is correct, just not shared).
std::string RenderValueLiteral(const types::Value& v) {
  switch (v.type()) {
    case types::TypeId::kInt64:
      return std::to_string(v.AsInt64());
    case types::TypeId::kDouble:
      return common::StringPrintf("%.17g", v.AsDouble());
    case types::TypeId::kString:
      return "'" + v.AsString() + "'";
    default:
      return v.ToString();
  }
}

/// Splices `values` into the family text's $n slots, producing the
/// normalized concrete statement text.
std::string RenderConcreteText(const std::string& family_text,
                               const std::vector<types::Value>& values) {
  std::string out;
  for (const std::string& token : common::Split(family_text, ' ')) {
    bool is_slot = token.size() >= 2 && token[0] == '$';
    for (size_t i = 1; is_slot && i < token.size(); ++i) {
      is_slot = std::isdigit(static_cast<unsigned char>(token[i])) != 0;
    }
    if (!out.empty()) out.push_back(' ');
    if (is_slot) {
      const size_t slot =
          std::strtoull(token.c_str() + 1, nullptr, 10);
      if (slot >= 1 && slot <= values.size()) {
        out.append(RenderValueLiteral(values[slot - 1]));
        continue;
      }
    }
    out.append(token);
  }
  return out;
}

/// Validates EXECUTE arguments against the family's slot kinds, widening
/// int arguments bound to float-spelled slots.
common::Status CheckParamTypes(const PreparedFamily& family,
                               std::vector<types::Value>* values) {
  if (values->size() != family.num_params) {
    return common::Status::InvalidArgument(common::StringPrintf(
        "prepared statement takes %zu parameter(s), %zu given",
        family.num_params, values->size()));
  }
  for (size_t i = 0; i < values->size(); ++i) {
    const types::TypeId got = (*values)[i].type();
    switch (family.param_kinds[i]) {
      case parser::ParamKind::kInt:
        if (got != types::TypeId::kInt64) {
          return common::Status::InvalidArgument(common::StringPrintf(
              "parameter $%zu expects an integer", i + 1));
        }
        break;
      case parser::ParamKind::kFloat:
        if (got == types::TypeId::kInt64) {
          (*values)[i] =
              types::Value(static_cast<double>((*values)[i].AsInt64()));
        } else if (got != types::TypeId::kDouble) {
          return common::Status::InvalidArgument(common::StringPrintf(
              "parameter $%zu expects a number", i + 1));
        }
        break;
      case parser::ParamKind::kString:
        if (got != types::TypeId::kString) {
          return common::Status::InvalidArgument(common::StringPrintf(
              "parameter $%zu expects a string", i + 1));
        }
        break;
      case parser::ParamKind::kHole:
        break;  // Explicit $n slots accept any scalar.
    }
  }
  return common::Status::OK();
}

/// First keyword of `sql`, uppercased (empty when none).
std::string FirstKeyword(const std::string& sql) {
  size_t pos = 0;
  while (pos < sql.size() &&
         std::isspace(static_cast<unsigned char>(sql[pos]))) {
    ++pos;
  }
  std::string word;
  while (pos < sql.size() &&
         (std::isalnum(static_cast<unsigned char>(sql[pos])) ||
          sql[pos] == '_')) {
    word.push_back(static_cast<char>(
        std::toupper(static_cast<unsigned char>(sql[pos]))));
    ++pos;
  }
  return word;
}

}  // namespace

// ---------------------------------------------------------------------------
// SessionManager

SessionManager::SessionManager(workload::Database* db, Options options)
    : state_(std::make_shared<ServeState>(db, options.plan_cache)) {
  state_->plan_cache_enabled = options.plan_cache_enabled;
  const char* env = std::getenv("PPP_PLAN_CACHE");
  if (env != nullptr && env[0] == '0' && env[1] == '\0') {
    state_->plan_cache_enabled = false;
  }
  state_->share_predicate_caches = options.share_predicate_caches;

  {
    std::lock_guard<std::mutex> lock(g_states_mu);
    States()[&db->catalog()] = state_;
  }
  RegisterServeSystemTables(&db->catalog());

  // ANALYZE → invalidation: a stats-epoch bump on any table drops every
  // cached plan that binds it. The listener holds the state weakly so a
  // late notification after manager teardown is a no-op.
  std::weak_ptr<ServeState> weak = state_;
  listener_id_ = db->catalog().AddStatsListener(
      [weak](const std::string& table_name) {
        const std::shared_ptr<ServeState> state = weak.lock();
        if (state != nullptr) state->plan_cache.InvalidateTable(table_name);
      });
}

SessionManager::~SessionManager() {
  state_->db->catalog().RemoveStatsListener(listener_id_);
  std::lock_guard<std::mutex> lock(g_states_mu);
  auto it = States().find(&state_->db->catalog());
  if (it != States().end() && it->second.lock() == state_) {
    States().erase(it);
  }
}

std::unique_ptr<Session> SessionManager::CreateSession() {
  SessionOptions defaults;
  defaults.use_plan_cache = true;
  // Serve sessions opt into the cross-query Bloom kill memory: the whole
  // point of the layer is amortizing decisions across the workload.
  defaults.exec_params.transfer_cross_query_kill = true;
  return CreateSession(defaults);
}

std::unique_ptr<Session> SessionManager::CreateSession(
    const SessionOptions& options) {
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    id = state_->next_session_id++;
    SessionRow row;
    row.session_id = id;
    row.active = true;
    row.plan_cache = state_->plan_cache_enabled && options.use_plan_cache;
    state_->sessions[id] = row;
  }
  ActiveSessionsGauge()->Add(1.0);
  return std::unique_ptr<Session>(new Session(state_, id, options));
}

size_t SessionManager::active_sessions() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  size_t n = 0;
  for (const auto& [id, row] : state_->sessions) {
    if (row.active) ++n;
  }
  return n;
}

std::vector<SessionRow> SessionManager::SessionRows() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  std::vector<SessionRow> out;
  out.reserve(state_->sessions.size());
  for (const auto& [id, row] : state_->sessions) out.push_back(row);
  return out;
}

// ---------------------------------------------------------------------------
// Session

Session::Session(std::shared_ptr<ServeState> state, uint64_t id,
                 SessionOptions options)
    : state_(std::move(state)), id_(id), options_(std::move(options)) {
  ctx_.catalog = &state_->db->catalog();
}

Session::~Session() {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    auto it = state_->sessions.find(id_);
    if (it != state_->sessions.end()) it->second.active = false;
  }
  ActiveSessionsGauge()->Add(-1.0);
}

void Session::set_plan_cache_enabled(bool on) {
  options_.use_plan_cache = on;
  std::lock_guard<std::mutex> lock(state_->mu);
  auto it = state_->sessions.find(id_);
  if (it != state_->sessions.end()) {
    it->second.plan_cache = on && state_->plan_cache_enabled;
  }
}

common::Result<QueryResult> Session::Execute(const std::string& sql) {
  const std::string keyword = FirstKeyword(sql);
  if (keyword == "ANALYZE") return ExecuteAnalyze(sql);
  if (keyword == "PREPARE" || keyword == "EXECUTE") {
    PPP_ASSIGN_OR_RETURN(parser::ParsedStatement stmt,
                         parser::ParseStatement(sql));
    if (stmt.kind == parser::StatementKind::kPrepare) {
      return Prepare(stmt.prepare_name, stmt.prepare_body);
    }
    return ExecutePrepared(stmt.execute_name, stmt.execute_params);
  }
  return ExecuteSelect(sql);
}

common::Result<QueryResult> Session::ExecuteAnalyze(const std::string& sql) {
  PPP_ASSIGN_OR_RETURN(parser::ParsedStatement stmt,
                       parser::ParseStatement(sql));
  if (stmt.kind != parser::StatementKind::kAnalyze) {
    return common::Status::InvalidArgument(
        "expected an ANALYZE statement");
  }
  catalog::Catalog& catalog = state_->db->catalog();
  std::vector<std::string> tables = stmt.analyze_tables;
  if (tables.empty()) tables = catalog.TableNames();
  const stats::AnalyzeOptions options = stats::AnalyzeOptions::Default();
  QueryResult result;
  for (const std::string& name : tables) {
    PPP_ASSIGN_OR_RETURN(catalog::Table * table, catalog.GetTable(name));
    PPP_RETURN_IF_ERROR(stats::AnalyzeTable(table, options));
    ++result.analyzed_tables;
  }
  UpdateRow(result);
  return result;
}

common::Result<QueryResult> Session::ExecuteSelect(const std::string& sql) {
  catalog::Catalog& catalog = state_->db->catalog();

  // Root lifecycle span, as in workload::RunWithAlgorithm: probe/optimize
  // and execute (with their own child spans) nest under it, tagged with the
  // owning session.
  std::optional<obs::Span> span;
  if (obs::SpanTracer::Global().enabled()) {
    span.emplace("query", "query");
    span->AddArg("algorithm", optimizer::AlgorithmName(options_.algorithm));
    span->AddArg("session_id", std::to_string(id_));
  }

  const auto plan_start = std::chrono::steady_clock::now();

  // EXPLAIN prefixes run like plain SELECTs here; sessions return rows,
  // the shell renders plans.
  std::string rest;
  parser::StripExplain(sql, &rest);

  PPP_ASSIGN_OR_RETURN(parser::NormalizedQuery norm,
                       parser::NormalizeSql(rest));
  const std::string algorithm_name =
      optimizer::AlgorithmName(options_.algorithm);
  const bool use_cache =
      state_->plan_cache_enabled && options_.use_plan_cache;
  PlanCacheKey key;
  key.text_hash = norm.text_hash;
  key.params_hash =
      PlacementParamsHash(options_.cost_params, algorithm_name);

  QueryResult result;
  result.text_hash = norm.text_hash;

  std::shared_ptr<const plan::PlanNode> plan;
  std::shared_ptr<const CachedPlan> cached;
  if (use_cache) cached = state_->plan_cache.Probe(key, catalog);

  if (cached != nullptr) {
    // Hit: rebuild bindings from the entry; no parse, no optimize.
    ctx_.binding.clear();
    for (const auto& [alias, table_name] : cached->bindings) {
      PPP_ASSIGN_OR_RETURN(catalog::Table * table,
                           catalog.GetTable(table_name));
      ctx_.binding[alias] = table;
    }
    plan = cached->plan;
    result.plan_cache_hit = true;
    result.plan_fingerprint = cached->plan_fingerprint;
  } else {
    PPP_ASSIGN_OR_RETURN(plan::QuerySpec spec,
                         subquery::ParseBindRewrite(rest, &catalog));
    // Capture bindings and stats epochs *before* optimizing: if an ANALYZE
    // lands mid-optimization the entry's epochs are already stale and the
    // next probe re-plans (the safe direction).
    CachedPlan entry;
    ctx_.binding.clear();
    for (const plan::TableRef& ref : spec.tables) {
      PPP_ASSIGN_OR_RETURN(catalog::Table * table,
                           catalog.GetTable(ref.table_name));
      ctx_.binding[ref.alias] = table;
      entry.bindings.emplace_back(ref.alias, ref.table_name);
      entry.stats_epochs.push_back(table->stats_epoch());
    }
    optimizer::Optimizer opt(&catalog, options_.cost_params);
    PPP_ASSIGN_OR_RETURN(optimizer::OptimizeResult optimized,
                         opt.Optimize(spec, options_.algorithm));
    plan = std::shared_ptr<const plan::PlanNode>(std::move(optimized.plan));
    result.plan_fingerprint = plan->Fingerprint();
    if (use_cache) {
      entry.plan = plan;
      entry.text_hash = norm.text_hash;
      entry.family_hash = norm.family_hash;
      entry.plan_fingerprint = result.plan_fingerprint;
      entry.algorithm = algorithm_name;
      entry.est_cost = optimized.est_cost;
      entry.optimize_seconds = SecondsSince(plan_start);
      state_->plan_cache.Insert(key, std::move(entry));
    }
  }
  return RunPlan(std::move(plan), std::move(result), norm.text_hash,
                 algorithm_name, plan_start);
}

common::Result<QueryResult> Session::RunPlan(
    std::shared_ptr<const plan::PlanNode> plan, QueryResult result,
    uint64_t text_hash, const std::string& algorithm_name,
    std::chrono::steady_clock::time_point plan_start) {
  result.optimize_seconds = SecondsSince(plan_start);
  result.plan = plan;

  // Execute on the session's persistent context. Shared engine stores are
  // wired per query (cheap pointer writes) so manager-level toggles apply
  // immediately.
  ctx_.params = options_.exec_params;
  ctx_.shared_caches =
      state_->share_predicate_caches ? &state_->shared_caches : nullptr;
  ctx_.log_hints.text_hash = text_hash;
  ctx_.log_hints.algorithm = algorithm_name;
  ctx_.log_hints.optimize_seconds = result.optimize_seconds;
  ctx_.log_hints.session_id = id_;

  const auto exec_start = std::chrono::steady_clock::now();
  exec::ExecStats stats;
  PPP_ASSIGN_OR_RETURN(
      result.rows,
      exec::ExecutePlan(*plan, &ctx_, &stats, &result.schema, nullptr));
  result.execute_seconds = SecondsSince(exec_start);

  ++queries_;
  if (result.plan_cache_hit) ++cache_hits_;
  UpdateRow(result);
  return result;
}

common::Result<QueryResult> Session::Prepare(const std::string& name,
                                             const std::string& body) {
  PPP_ASSIGN_OR_RETURN(parser::NormalizedQuery norm,
                       parser::NormalizeSql(body));
  // Surface parse errors at PREPARE time (null stand-ins for the slots);
  // binding and optimization wait for the first EXECUTE's real values.
  const std::vector<types::Value> stand_ins(norm.params.size());
  PPP_ASSIGN_OR_RETURN(parser::ParsedSelect parsed,
                       parser::ParseSelect(norm.family_text, stand_ins));
  (void)parsed;

  auto family = std::make_shared<PreparedFamily>();
  family->family_text = norm.family_text;
  family->family_hash = norm.family_hash;
  family->num_params = norm.params.size();
  family->param_kinds = norm.param_kinds;
  std::shared_ptr<const PreparedFamily> shared = family;
  {
    // Statements differing only in constants normalize to one family —
    // re-preparing an existing family shares the first entry.
    std::lock_guard<std::mutex> lock(state_->mu);
    auto [it, inserted] =
        state_->prepared_families.emplace(norm.family_hash, shared);
    if (!inserted) shared = it->second;
  }
  if (prepared_.find(name) == prepared_.end()) {
    prepared_order_.push_back(name);
  }
  prepared_[name] = shared;

  QueryResult result;
  result.family_hash = norm.family_hash;
  result.prepared_name = name;
  UpdateRow(result);
  return result;
}

common::Result<QueryResult> Session::ExecutePrepared(
    const std::string& name, const std::vector<types::Value>& values) {
  const auto prep_it = prepared_.find(name);
  if (prep_it == prepared_.end()) {
    return common::Status::InvalidArgument("unknown prepared statement '" +
                                           name + "'");
  }
  const std::shared_ptr<const PreparedFamily> family = prep_it->second;
  std::vector<types::Value> bound = values;
  PPP_RETURN_IF_ERROR(CheckParamTypes(*family, &bound));

  catalog::Catalog& catalog = state_->db->catalog();
  std::optional<obs::Span> span;
  if (obs::SpanTracer::Global().enabled()) {
    span.emplace("query", "execute_prepared");
    span->AddArg("statement", name);
    span->AddArg("session_id", std::to_string(id_));
  }

  const auto plan_start = std::chrono::steady_clock::now();
  const std::string concrete_text =
      RenderConcreteText(family->family_text, bound);
  const uint64_t text_hash = common::Fnv1aHash(concrete_text);
  const std::string algorithm_name =
      optimizer::AlgorithmName(options_.algorithm);
  const uint64_t params_hash =
      PlacementParamsHash(options_.cost_params, algorithm_name);
  const bool use_cache =
      state_->plan_cache_enabled && options_.use_plan_cache;

  QueryResult result;
  result.text_hash = text_hash;
  result.family_hash = family->family_hash;

  PlanCacheKey exact_key{text_hash, params_hash, /*family=*/false};
  PlanCacheKey family_key{family->family_hash, params_hash,
                          /*family=*/true};

  std::shared_ptr<const plan::PlanNode> plan;

  // Fastest path: this exact literal combination already has a plan.
  std::shared_ptr<const CachedPlan> cached;
  if (use_cache) cached = state_->plan_cache.Probe(exact_key, catalog);
  if (cached != nullptr) {
    ctx_.binding.clear();
    for (const auto& [alias, table_name] : cached->bindings) {
      PPP_ASSIGN_OR_RETURN(catalog::Table * table,
                           catalog.GetTable(table_name));
      ctx_.binding[alias] = table;
    }
    result.plan_cache_hit = true;
    result.plan_fingerprint = cached->plan_fingerprint;
    return RunPlan(cached->plan, std::move(result), text_hash,
                   algorithm_name, plan_start);
  }

  // Generic-plan path: substitute fresh values into the family's plan —
  // placement and join order are reused without parse/bind/optimize.
  std::shared_ptr<const CachedPlan> generic;
  if (use_cache) generic = state_->plan_cache.Probe(family_key, catalog);
  if (generic != nullptr) {
    plan::PlanPtr substituted = plan::CloneWithParams(*generic->plan, bound);
    if (substituted != nullptr) {
      plan = std::shared_ptr<const plan::PlanNode>(std::move(substituted));
      ctx_.binding.clear();
      for (const auto& [alias, table_name] : generic->bindings) {
        PPP_ASSIGN_OR_RETURN(catalog::Table * table,
                             catalog.GetTable(table_name));
        ctx_.binding[alias] = table;
      }
      result.plan_cache_hit = true;
      result.generic_plan = true;
      result.plan_fingerprint = plan->Fingerprint();
      // Promote into the exact level so a repeat of these literals skips
      // even the substitution. Epochs were just validated by the probe.
      CachedPlan entry;
      entry.plan = plan;
      entry.bindings = generic->bindings;
      entry.stats_epochs = generic->stats_epochs;
      entry.text_hash = text_hash;
      entry.family_hash = family->family_hash;
      entry.plan_fingerprint = result.plan_fingerprint;
      entry.algorithm = algorithm_name;
      entry.est_cost = generic->est_cost;
      entry.optimize_seconds = SecondsSince(plan_start);
      state_->plan_cache.Insert(exact_key, std::move(entry));
      return RunPlan(std::move(plan), std::move(result), text_hash,
                     algorithm_name, plan_start);
    }
  }

  // Cold path: full parameterized compile. The spec's constants carry
  // their slots, so the optimized plan is a generic-plan template as long
  // as no slot got baked into an index probe or subquery closure.
  PPP_ASSIGN_OR_RETURN(
      plan::QuerySpec spec,
      subquery::ParseBindRewrite(family->family_text, bound, &catalog));
  CachedPlan entry;
  ctx_.binding.clear();
  for (const plan::TableRef& ref : spec.tables) {
    PPP_ASSIGN_OR_RETURN(catalog::Table * table,
                         catalog.GetTable(ref.table_name));
    ctx_.binding[ref.alias] = table;
    entry.bindings.emplace_back(ref.alias, ref.table_name);
    entry.stats_epochs.push_back(table->stats_epoch());
  }
  optimizer::Optimizer opt(&catalog, options_.cost_params);
  PPP_ASSIGN_OR_RETURN(optimizer::OptimizeResult optimized,
                       opt.Optimize(spec, options_.algorithm));
  plan = std::shared_ptr<const plan::PlanNode>(std::move(optimized.plan));
  result.plan_fingerprint = plan->Fingerprint();
  if (use_cache) {
    entry.plan = plan;
    entry.text_hash = text_hash;
    entry.family_hash = family->family_hash;
    entry.plan_fingerprint = result.plan_fingerprint;
    entry.algorithm = algorithm_name;
    entry.est_cost = optimized.est_cost;
    entry.optimize_seconds = SecondsSince(plan_start);
    entry.num_params = family->num_params;
    if (plan::PlanIsParameterizable(*plan, family->num_params)) {
      CachedPlan family_entry = entry;
      family_entry.text_hash = family->family_hash;
      state_->plan_cache.Insert(family_key, std::move(family_entry));
    }
    entry.num_params = 0;
    state_->plan_cache.Insert(exact_key, std::move(entry));
  }
  return RunPlan(std::move(plan), std::move(result), text_hash,
                 algorithm_name, plan_start);
}

std::vector<std::string> Session::PreparedNames() const {
  return prepared_order_;
}

void Session::UpdateRow(const QueryResult& result) {
  std::lock_guard<std::mutex> lock(state_->mu);
  auto it = state_->sessions.find(id_);
  if (it == state_->sessions.end()) return;
  SessionRow& row = it->second;
  row.queries += 1;
  if (result.plan_cache_hit) {
    row.plan_cache_hits += 1;
  } else if (result.analyzed_tables == 0 && result.prepared_name.empty()) {
    row.plan_cache_misses += 1;
  }
  row.rows_returned += result.rows.size();
  row.plan_cache =
      options_.use_plan_cache && state_->plan_cache_enabled;
}

}  // namespace ppp::serve
