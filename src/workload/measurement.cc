#include "workload/measurement.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <optional>

#include "common/string_util.h"
#include "cost/cost_model.h"
#include "exec/explain.h"
#include "exec/operator.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "optimizer/optimizer.h"

namespace ppp::workload {

using common::JsonEscape;

std::string Measurement::Summary() const {
  std::string out = common::StringPrintf(
      "%-20s est=%-12.6g measured=%-12.6g (io=%.6g udf=%.6g) rows=%llu",
      algorithm.c_str(), est_cost, charged_time, charged_io, charged_udf,
      static_cast<unsigned long long>(output_rows));
  std::vector<std::string> invs;
  for (const auto& [name, count] : invocations) {
    invs.push_back(name + "×" + std::to_string(count));
  }
  std::sort(invs.begin(), invs.end());
  if (!invs.empty()) out += "  [" + common::Join(invs, " ") + "]";
  return out;
}

std::string Measurement::ToJson() const {
  std::string out = "{";
  out += "\"algorithm\": \"" + JsonEscape(algorithm) + "\"";
  out += common::StringPrintf(", \"est_cost\": %.17g", est_cost);
  out += common::StringPrintf(", \"charged_time\": %.17g", charged_time);
  out += common::StringPrintf(", \"charged_io\": %.17g", charged_io);
  out += common::StringPrintf(", \"charged_udf\": %.17g", charged_udf);
  out += ", \"output_rows\": " + std::to_string(output_rows);
  out += common::StringPrintf(", \"optimize_seconds\": %.17g",
                              optimize_seconds);
  out += ", \"plans_retained\": " + std::to_string(plans_retained);
  out += common::StringPrintf(", \"wall_seconds\": %.17g", wall_seconds);
  out += ", \"io\": {\"sequential_reads\": " +
         std::to_string(io.sequential_reads) +
         ", \"random_reads\": " + std::to_string(io.random_reads) +
         ", \"writes\": " + std::to_string(io.writes) +
         ", \"buffer_hits\": " + std::to_string(io.buffer_hits) + "}";
  out += ", \"dp_stats\": {\"subplans_generated\": " +
         std::to_string(dp_stats.subplans_generated) +
         ", \"subplans_pruned\": " + std::to_string(dp_stats.subplans_pruned) +
         ", \"subplans_retained\": " +
         std::to_string(dp_stats.subplans_retained) +
         ", \"unpruneable_retained\": " +
         std::to_string(dp_stats.unpruneable_retained) +
         ", \"order_keeps\": " + std::to_string(dp_stats.order_keeps) + "}";
  out += ", \"invocations\": {";
  std::vector<std::string> names;
  for (const auto& [name, count] : invocations) names.push_back(name);
  std::sort(names.begin(), names.end());
  bool first = true;
  for (const std::string& name : names) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) +
           "\": " + std::to_string(invocations.at(name));
  }
  out += "}";
  out += ", \"plan\": \"" + JsonEscape(plan_text) + "\"";
  if (!explain_text.empty()) {
    out += ", \"explain\": \"" + JsonEscape(explain_text) + "\"";
  }
  out += "}";
  return out;
}

common::Result<std::string> WriteBenchJson(
    const std::string& name, const std::vector<Measurement>& measurements) {
  const std::string path = "BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out.is_open()) {
    return common::Status::Internal("cannot open " + path + " for writing");
  }
  out << "{\"bench\": \"" << JsonEscape(name) << "\", \"measurements\": [\n";
  for (size_t i = 0; i < measurements.size(); ++i) {
    out << "  " << measurements[i].ToJson();
    if (i + 1 < measurements.size()) out << ",";
    out << "\n";
  }
  out << "]}\n";
  out.close();
  if (out.fail()) {
    return common::Status::Internal("failed writing " + path);
  }
  return path;
}

exec::ExecParams ExecParamsFor(const cost::CostParams& cost_params) {
  exec::ExecParams exec_params;
  exec_params.predicate_caching = cost_params.predicate_caching;
  exec_params.parallel_workers = static_cast<size_t>(
      std::max(1.0, cost_params.parallel_workers));
  exec_params.predicate_transfer = cost_params.predicate_transfer;
  exec_params.vectorized = cost_params.vectorized;
  return exec_params;
}

double ChargedTime(const exec::ExecStats& stats,
                   const catalog::FunctionRegistry& functions,
                   const cost::CostParams& params, double* io_part,
                   double* udf_part) {
  const double io =
      static_cast<double>(stats.io.sequential_reads) * params.seq_page_io +
      static_cast<double>(stats.io.random_reads) * params.rand_page_io +
      static_cast<double>(stats.io.writes) * params.seq_page_io;
  double udf = 0.0;
  for (const auto& [name, count] : stats.invocations) {
    auto def = functions.Lookup(name);
    if (def.ok() && (*def)->charge_invocations) {
      udf += static_cast<double>(count) * (*def)->cost_per_call *
             params.rand_page_io;
    }
  }
  if (io_part != nullptr) *io_part = io;
  if (udf_part != nullptr) *udf_part = udf;
  return io + udf;
}

common::Result<Measurement> RunWithAlgorithm(
    Database* db, const plan::QuerySpec& spec,
    optimizer::Algorithm algorithm, const cost::CostParams& cost_params,
    const exec::ExecParams& exec_params, bool execute, bool collect_explain,
    obs::OptTrace* trace) {
  // Root lifecycle span: optimize and execute (with their own child spans)
  // nest under it in the exported trace.
  std::optional<obs::Span> span;
  if (obs::SpanTracer::Global().enabled()) {
    span.emplace("query", "query");
    span->AddArg("algorithm", optimizer::AlgorithmName(algorithm));
  }

  Measurement m;
  m.algorithm = optimizer::AlgorithmName(algorithm);

  optimizer::Optimizer opt(&db->catalog(), cost_params);
  const auto started = std::chrono::steady_clock::now();
  PPP_ASSIGN_OR_RETURN(optimizer::OptimizeResult result,
                       opt.Optimize(spec, algorithm, trace));
  m.optimize_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  m.est_cost = result.est_cost;
  m.plans_retained = result.plans_retained;
  m.plan_text = result.plan->ToString();
  m.dp_stats = result.dp_stats;

  if (!execute) {
    if (collect_explain) m.explain_text = exec::RenderExplain(*result.plan);
    return m;
  }

  // Cold start: nothing of the previous run survives in the pool.
  db->pool().FlushAll();
  db->pool().EvictAll();

  exec::ExecContext ctx;
  ctx.catalog = &db->catalog();
  ctx.params = exec_params;
  // The query log's normalized text is the bound spec's canonical
  // rendering — stable across whitespace/literal formatting of the
  // original SQL, distinct across constants.
  ctx.log_hints.text_hash = common::Fnv1aHash(spec.ToString());
  ctx.log_hints.algorithm = m.algorithm;
  ctx.log_hints.optimize_seconds = m.optimize_seconds;
  for (const plan::TableRef& ref : spec.tables) {
    PPP_ASSIGN_OR_RETURN(catalog::Table * table,
                         db->catalog().GetTable(ref.table_name));
    ctx.binding[ref.alias] = table;
  }

  exec::ExecStats stats;
  std::unique_ptr<exec::Operator> root;
  const auto exec_started = std::chrono::steady_clock::now();
  PPP_ASSIGN_OR_RETURN(
      std::vector<types::Tuple> rows,
      exec::ExecutePlan(*result.plan, &ctx, &stats, nullptr,
                        collect_explain ? &root : nullptr));
  m.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    exec_started)
          .count();
  m.output_rows = stats.output_rows;
  m.invocations = stats.invocations;
  m.io = stats.io;
  m.charged_time = ChargedTime(stats, db->catalog().functions(), cost_params,
                               &m.charged_io, &m.charged_udf);
  if (collect_explain && root != nullptr) {
    m.explain_text = exec::RenderExplainAnalyze(*result.plan, *root,
                                                &db->catalog().functions());
  }
  (void)rows;
  return m;
}

std::string CalibrationReport::Summary() const {
  return common::StringPrintf(
      "calibrated %zu function(s); placement %s\n"
      "  est cost (static model, before):   %.6g\n"
      "  obs cost of uncalibrated plan:     %.6g\n"
      "  obs cost of calibrated plan:       %.6g\n"
      "  placement regret:                  %.6g",
      functions_calibrated,
      placement_changed ? "CHANGED" : "unchanged",
      est_cost_before, obs_cost_before, obs_cost_after, regret);
}

namespace {

/// Replaces every predicate annotation in `node`'s subtree with a fresh
/// analysis of the same conjunct by `analyzer` (which consults the feedback
/// store), so a subsequent Annotate costs the tree under observed numbers.
common::Status ReanalyzePredicates(plan::PlanNode* node,
                                   const expr::PredicateAnalyzer& analyzer) {
  if (node->predicate.expr != nullptr) {
    PPP_ASSIGN_OR_RETURN(node->predicate,
                         analyzer.Analyze(node->predicate.expr));
  }
  for (std::unique_ptr<plan::PlanNode>& child : node->children) {
    PPP_RETURN_IF_ERROR(ReanalyzePredicates(child.get(), analyzer));
  }
  return common::Status::OK();
}

}  // namespace

common::Result<CalibrationReport> Calibrate(
    catalog::Catalog* catalog, const plan::QuerySpec& spec,
    optimizer::Algorithm algorithm, const cost::CostParams& cost_params) {
  CalibrationReport report;
  report.functions_calibrated =
      obs::PredicateFeedbackStore::Global().AbsorbProfiles(
          obs::PredicateProfiler::Global());

  // Placement as the static estimates choose it. "Static" only disables
  // feedback: use_collected_stats is inherited from the caller, so after
  // ANALYZE the regret baseline is the stats-informed plan — comparing
  // against a declared-only plan would overstate the regret feedback
  // actually removes.
  cost::CostParams static_params = cost_params;
  static_params.use_feedback = false;
  optimizer::Optimizer static_opt(catalog, static_params);
  PPP_ASSIGN_OR_RETURN(optimizer::OptimizeResult before,
                       static_opt.Optimize(spec, algorithm));

  // ...and as the observed numbers choose it.
  cost::CostParams feedback_params = cost_params;
  feedback_params.use_feedback = true;
  optimizer::Optimizer feedback_opt(catalog, feedback_params);
  PPP_ASSIGN_OR_RETURN(optimizer::OptimizeResult after,
                       feedback_opt.Optimize(spec, algorithm));

  report.est_cost_before = before.est_cost;
  report.obs_cost_after = after.est_cost;
  report.plan_before = before.plan->ToString();
  report.plan_after = after.plan->ToString();
  report.placement_changed =
      before.plan->Signature() != after.plan->Signature();

  // Cost the static placement under the observed model: re-analyze its
  // predicates through the feedback store, then re-annotate. The gap to
  // the calibrated plan is the regret the static estimates cause.
  expr::TableBinding binding;
  for (const plan::TableRef& ref : spec.tables) {
    PPP_ASSIGN_OR_RETURN(catalog::Table * table,
                         catalog->GetTable(ref.table_name));
    binding[ref.alias] = table;
  }
  expr::PredicateAnalyzer analyzer(catalog, binding);
  analyzer.set_feedback(&obs::PredicateFeedbackStore::Global());
  analyzer.set_use_stats(feedback_params.use_collected_stats);
  std::unique_ptr<plan::PlanNode> before_obs = before.plan->Clone();
  PPP_RETURN_IF_ERROR(ReanalyzePredicates(before_obs.get(), analyzer));
  cost::CostModel obs_model(catalog, binding, feedback_params);
  PPP_RETURN_IF_ERROR(obs_model.Annotate(before_obs.get()));
  report.obs_cost_before = before_obs->est_cost;
  report.regret = report.obs_cost_before - report.obs_cost_after;
  return report;
}

std::vector<std::string> CanonicalResults(
    const std::vector<types::Tuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const types::Tuple& row : rows) out.push_back(row.Serialize());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> CanonicalResults(
    const std::vector<types::Tuple>& rows, const types::RowSchema& schema) {
  // Permutation of column indexes into ascending qualified-name order.
  std::vector<size_t> order(schema.NumColumns());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return schema.Column(a).QualifiedName() <
           schema.Column(b).QualifiedName();
  });
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const types::Tuple& row : rows) {
    std::vector<types::Value> values;
    values.reserve(order.size());
    for (const size_t i : order) values.push_back(row.Get(i));
    out.push_back(types::Tuple(std::move(values)).Serialize());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ppp::workload
