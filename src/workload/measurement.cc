#include "workload/measurement.h"

#include <algorithm>
#include <chrono>

#include "common/string_util.h"
#include "optimizer/optimizer.h"

namespace ppp::workload {

std::string Measurement::Summary() const {
  std::string out = common::StringPrintf(
      "%-20s est=%-12.6g measured=%-12.6g (io=%.6g udf=%.6g) rows=%llu",
      algorithm.c_str(), est_cost, charged_time, charged_io, charged_udf,
      static_cast<unsigned long long>(output_rows));
  std::vector<std::string> invs;
  for (const auto& [name, count] : invocations) {
    invs.push_back(name + "×" + std::to_string(count));
  }
  std::sort(invs.begin(), invs.end());
  if (!invs.empty()) out += "  [" + common::Join(invs, " ") + "]";
  return out;
}

double ChargedTime(const exec::ExecStats& stats,
                   const catalog::FunctionRegistry& functions,
                   const cost::CostParams& params, double* io_part,
                   double* udf_part) {
  const double io =
      static_cast<double>(stats.io.sequential_reads) * params.seq_page_io +
      static_cast<double>(stats.io.random_reads) * params.rand_page_io +
      static_cast<double>(stats.io.writes) * params.seq_page_io;
  double udf = 0.0;
  for (const auto& [name, count] : stats.invocations) {
    auto def = functions.Lookup(name);
    if (def.ok() && (*def)->charge_invocations) {
      udf += static_cast<double>(count) * (*def)->cost_per_call *
             params.rand_page_io;
    }
  }
  if (io_part != nullptr) *io_part = io;
  if (udf_part != nullptr) *udf_part = udf;
  return io + udf;
}

common::Result<Measurement> RunWithAlgorithm(
    Database* db, const plan::QuerySpec& spec,
    optimizer::Algorithm algorithm, const cost::CostParams& cost_params,
    const exec::ExecParams& exec_params, bool execute) {
  Measurement m;
  m.algorithm = optimizer::AlgorithmName(algorithm);

  optimizer::Optimizer opt(&db->catalog(), cost_params);
  const auto started = std::chrono::steady_clock::now();
  PPP_ASSIGN_OR_RETURN(optimizer::OptimizeResult result,
                       opt.Optimize(spec, algorithm));
  m.optimize_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  m.est_cost = result.est_cost;
  m.plans_retained = result.plans_retained;
  m.plan_text = result.plan->ToString();

  if (!execute) return m;

  // Cold start: nothing of the previous run survives in the pool.
  db->pool().FlushAll();
  db->pool().EvictAll();

  exec::ExecContext ctx;
  ctx.catalog = &db->catalog();
  ctx.params = exec_params;
  for (const plan::TableRef& ref : spec.tables) {
    PPP_ASSIGN_OR_RETURN(catalog::Table * table,
                         db->catalog().GetTable(ref.table_name));
    ctx.binding[ref.alias] = table;
  }

  exec::ExecStats stats;
  PPP_ASSIGN_OR_RETURN(std::vector<types::Tuple> rows,
                       exec::ExecutePlan(*result.plan, &ctx, &stats));
  m.output_rows = stats.output_rows;
  m.invocations = stats.invocations;
  m.charged_time = ChargedTime(stats, db->catalog().functions(), cost_params,
                               &m.charged_io, &m.charged_udf);
  (void)rows;
  return m;
}

std::vector<std::string> CanonicalResults(
    const std::vector<types::Tuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const types::Tuple& row : rows) out.push_back(row.Serialize());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> CanonicalResults(
    const std::vector<types::Tuple>& rows, const types::RowSchema& schema) {
  // Permutation of column indexes into ascending qualified-name order.
  std::vector<size_t> order(schema.NumColumns());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return schema.Column(a).QualifiedName() <
           schema.Column(b).QualifiedName();
  });
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const types::Tuple& row : rows) {
    std::vector<types::Value> values;
    values.reserve(order.size());
    for (const size_t i : order) values.push_back(row.Get(i));
    out.push_back(types::Tuple(std::move(values)).Serialize());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ppp::workload
