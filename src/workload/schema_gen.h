#ifndef PPP_WORKLOAD_SCHEMA_GEN_H_
#define PPP_WORKLOAD_SCHEMA_GEN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "workload/database.h"

namespace ppp::workload {

/// The benchmark database of §2, reconstructed: the Hong–Stonebraker
/// schema with cardinalities scaled by `scale` per table number.
///
/// Table `tK` holds `K * scale` 100-byte tuples (the paper uses
/// scale = 10 000 for ~110 MB total; the default here keeps benches fast)
/// with columns following the paper's naming conventions:
///
///   a     indexed, unique (a permutation of 0..n-1)
///   a1    indexed, each value repeated ~1 time   (uniform over [0, n))
///   a10   indexed, ~10 repetitions               (uniform over [0, n/10))
///   a20   indexed, ~20 repetitions               (uniform over [0, n/20))
///   ua    unindexed, unique
///   ua1   unindexed, ~1 repetition
///   u10   unindexed, ~10 repetitions
///   u100  unindexed, ~100 repetitions
///   pad   string padding to ~100 bytes/tuple
///
/// Attributes starting with 'u' are unindexed; the rest carry B-trees.
/// "~1 repetition" draws uniformly from a domain equal to the cardinality,
/// so the distinct count is ≈ 0.632 n — which is how the paper's t9.ua
/// (exactly unique, 0.9n') can have *more* values than t10.ua1 (≈0.632 n).
struct BenchmarkConfig {
  int64_t scale = 2000;
  /// Which tK tables to create (the paper's queries use these six).
  std::vector<int> table_numbers = {1, 3, 6, 7, 9, 10};
  uint64_t seed = 42;
};

/// Creates, loads, indexes and analyzes the benchmark tables.
common::Status LoadBenchmarkDatabase(Database* db,
                                     const BenchmarkConfig& config);

/// Registers the paper's function families: costly1/10/100/1000 (boolean
/// selections with the named cost in random I/Os, selectivity 0.5) and
/// match100 (an expensive join predicate, cost 100, selectivity 0.002).
common::Status RegisterBenchmarkFunctions(Database* db);

}  // namespace ppp::workload

#endif  // PPP_WORKLOAD_SCHEMA_GEN_H_
