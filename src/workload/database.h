#ifndef PPP_WORKLOAD_DATABASE_H_
#define PPP_WORKLOAD_DATABASE_H_

#include <cstddef>

#include "catalog/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace ppp::workload {

/// A self-contained database instance: simulated disk, buffer pool, and
/// catalog. The default pool (256 pages = 1 MB) is deliberately much
/// smaller than the benchmark tables, mirroring the paper's 32 MB memory
/// against a 110 MB database.
class Database {
 public:
  explicit Database(size_t buffer_pages = 256)
      : pool_(&disk_, buffer_pages), catalog_(&pool_) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  catalog::Catalog& catalog() { return catalog_; }
  const catalog::Catalog& catalog() const { return catalog_; }
  storage::BufferPool& pool() { return pool_; }
  storage::DiskManager& disk() { return disk_; }

 private:
  storage::DiskManager disk_;
  storage::BufferPool pool_;
  catalog::Catalog catalog_;
};

}  // namespace ppp::workload

#endif  // PPP_WORKLOAD_DATABASE_H_
