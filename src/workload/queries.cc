#include "workload/queries.h"

#include "common/string_util.h"
#include "parser/binder.h"

namespace ppp::workload {

std::vector<BenchmarkQuery> BenchmarkQueries(const BenchmarkConfig& config) {
  const int64_t scale = config.scale;
  // t10.u10 is uniform over [0, |t10|/10) = [0, scale); `< scale/10` keeps
  // ~10% of t10.
  const int64_t t10_u10_tenth = std::max<int64_t>(1, scale / 10);

  std::vector<BenchmarkQuery> out;
  out.push_back(
      {"Q1",
       "Costly selection under a join that filters its table (join "
       "selectivity over t10 < 1): pullup wins, PushDown loses (Fig. 3). "
       "The costly input t10.ua is unique, so predicate caching cannot "
       "mask the placement difference.",
       "SELECT * FROM t3, t10 "
       "WHERE t3.ua = t10.ua1 AND costly100(t10.ua)"});
  out.push_back(
      {"Q2",
       "Same as Q1 with t9: t9.ua has more values than t10.ua1, so the "
       "join has selectivity 1 over t10 and pullup gains nothing; PullUp's "
       "error is nearly insignificant (Fig. 4).",
       "SELECT * FROM t9, t10 "
       "WHERE t9.ua = t10.ua1 AND costly100(t10.ua)"});
  out.push_back(
      {"Q3",
       "Join that multiplies the costly predicate's stream (selectivity "
       "over t1 > 1): over-eager pullup evaluates the predicate many times "
       "per t1 tuple (Fig. 5). Run with predicate caching disabled — §4.2 "
       "notes caching is exactly what rescues PullUp here (ablation A2).",
       "SELECT * FROM t1, t10 "
       "WHERE t1.ua = t10.u100 AND costly100(t1.ua)"});
  out.push_back(
      {"Q4",
       "Three-way join with ranks decreasing up the t3 stream: PullRank "
       "cannot pull the costly selection over the join group and flips to "
       "a bad join order; Predicate Migration groups the joins (Figs. 6-8).",
       common::StringPrintf(
           "SELECT * FROM t3, t6, t10 "
           "WHERE t3.a10 = t6.a10 AND t6.ua = t10.ua1 "
           "AND t10.u10 < %lld AND costly100(t3.ua)",
           static_cast<long long>(t10_u10_tenth))});
  out.push_back(
      {"Q5",
       "Expensive primary join predicate (match100 connects t7) plus a "
       "costly selection: PullUp places the selection above the expensive "
       "join and explodes its invocation count (Fig. 9).",
       common::StringPrintf(
           "SELECT * FROM t7, t3, t6, t10 "
           "WHERE match100(t7.ua, t3.ua) AND t3.a10 = t6.a10 "
           "AND t6.ua = t10.ua1 AND t10.u10 < %lld "
           "AND selective100(t3.ua)",
           static_cast<long long>(t10_u10_tenth))});
  return out;
}

common::Result<plan::QuerySpec> GetBenchmarkQuery(const Database& db,
                                                  const BenchmarkConfig& config,
                                                  const std::string& id) {
  for (const BenchmarkQuery& q : BenchmarkQueries(config)) {
    if (q.id == id) {
      return parser::ParseAndBind(q.sql, db.catalog());
    }
  }
  return common::Status::NotFound("no benchmark query named " + id);
}

}  // namespace ppp::workload
