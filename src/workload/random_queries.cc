#include "workload/random_queries.h"

#include <algorithm>

namespace ppp::workload {

namespace {

/// Join-column candidates; near-unique columns keep random join outputs
/// from exploding.
const char* const kJoinColumns[] = {"ua", "ua1", "a1", "a", "u10"};
const char* const kUdfInputs[] = {"ua", "ua1", "u10", "a1"};
const char* const kCostlyFns[] = {"costly1", "costly10", "costly100"};

}  // namespace

plan::QuerySpec RandomQuery(const BenchmarkConfig& config,
                            const RandomQueryOptions& options,
                            common::Random* rng) {
  plan::QuerySpec spec;

  const int num_tables = static_cast<int>(rng->NextInt64(
      options.min_tables, options.max_tables));
  std::vector<int> pool = config.table_numbers;
  for (int i = 0; i < num_tables && !pool.empty(); ++i) {
    const size_t pick = rng->NextUint64(pool.size());
    const int k = pool[pick];
    pool.erase(pool.begin() + static_cast<long>(pick));
    const std::string name = "t" + std::to_string(k);
    spec.tables.push_back({name, name});
  }

  // Chain joins between adjacent FROM entries.
  for (size_t i = 1; i < spec.tables.size(); ++i) {
    const char* left_col =
        kJoinColumns[rng->NextUint64(std::size(kJoinColumns))];
    const char* right_col =
        kJoinColumns[rng->NextUint64(std::size(kJoinColumns))];
    spec.conjuncts.push_back(
        expr::Eq(expr::Col(spec.tables[i - 1].alias, left_col),
                 expr::Col(spec.tables[i].alias, right_col)));
  }

  // Cheap range selections: tK.u10 < c with c a fraction of the domain.
  const int cheap = static_cast<int>(
      rng->NextUint64(static_cast<uint64_t>(options.max_cheap_predicates) +
                      1));
  for (int i = 0; i < cheap; ++i) {
    const size_t t = rng->NextUint64(spec.tables.size());
    const std::string& alias = spec.tables[t].alias;
    const int k = std::stoi(alias.substr(1));
    const int64_t domain =
        std::max<int64_t>(1, k * config.scale / 10);
    const int64_t threshold = rng->NextInt64(domain / 4, domain);
    spec.conjuncts.push_back(
        expr::Cmp(expr::CompareOp::kLt, expr::Col(alias, "u10"),
                  expr::Int(threshold)));
  }

  // Expensive predicates.
  const int expensive = static_cast<int>(rng->NextUint64(
      static_cast<uint64_t>(options.max_expensive_predicates) + 1));
  for (int i = 0; i < expensive; ++i) {
    const size_t t = rng->NextUint64(spec.tables.size());
    const std::string& alias = spec.tables[t].alias;
    const char* fn = kCostlyFns[rng->NextUint64(std::size(kCostlyFns))];
    const char* input = kUdfInputs[rng->NextUint64(std::size(kUdfInputs))];
    spec.conjuncts.push_back(
        expr::Call(fn, {expr::Col(alias, input)}));
  }
  return spec;
}

}  // namespace ppp::workload
