#ifndef PPP_WORKLOAD_QUERIES_H_
#define PPP_WORKLOAD_QUERIES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "plan/query_spec.h"
#include "workload/database.h"
#include "workload/schema_gen.h"

namespace ppp::workload {

/// The paper's experiment queries, reconstructed from the properties §4
/// states about them (the original figures give only performance bars).
/// Constants that encode selectivities are derived from `scale` so each
/// query keeps its shape at any database size. See DESIGN.md §5.
struct BenchmarkQuery {
  std::string id;           // "Q1".."Q5".
  std::string description;  // What phenomenon it demonstrates.
  std::string sql;
};

/// All five queries for a database generated with `config`.
std::vector<BenchmarkQuery> BenchmarkQueries(const BenchmarkConfig& config);

/// Returns query `id` ("Q1".."Q5"), parsed and bound against `db`.
common::Result<plan::QuerySpec> GetBenchmarkQuery(
    const Database& db, const BenchmarkConfig& config, const std::string& id);

}  // namespace ppp::workload

#endif  // PPP_WORKLOAD_QUERIES_H_
