#include "workload/schema_gen.h"

#include <numeric>

#include "common/random.h"
#include "common/string_util.h"
#include "types/tuple.h"

namespace ppp::workload {

namespace {

/// A fixed-point permutation value: (i * step) % n with gcd(step, n) == 1,
/// giving a deterministic shuffle of 0..n-1.
int64_t CoprimeStep(int64_t n) {
  int64_t step = 1000003;  // A prime well above any benchmark cardinality.
  while (std::gcd(step, n) != 1) step += 2;
  return step;
}

}  // namespace

common::Status LoadBenchmarkDatabase(Database* db,
                                     const BenchmarkConfig& config) {
  for (const int k : config.table_numbers) {
    const std::string name = "t" + std::to_string(k);
    const int64_t n = static_cast<int64_t>(k) * config.scale;

    std::vector<catalog::ColumnDef> columns = {
        {"a", types::TypeId::kInt64},    {"a1", types::TypeId::kInt64},
        {"a10", types::TypeId::kInt64},  {"a20", types::TypeId::kInt64},
        {"ua", types::TypeId::kInt64},   {"ua1", types::TypeId::kInt64},
        {"u10", types::TypeId::kInt64},  {"u100", types::TypeId::kInt64},
        {"pad", types::TypeId::kString},
    };
    PPP_ASSIGN_OR_RETURN(catalog::Table * table,
                         db->catalog().CreateTable(name, std::move(columns)));

    common::Random rng(config.seed + static_cast<uint64_t>(k) * 7919);
    // Two distinct steps coprime with n, so `a` and `ua` are different
    // shuffles of 0..n-1.
    const int64_t step_a = CoprimeStep(n);
    int64_t step_ua = step_a + 2;
    while (std::gcd(step_ua, n) != 1) step_ua += 2;
    const int64_t dom10 = std::max<int64_t>(1, n / 10);
    const int64_t dom20 = std::max<int64_t>(1, n / 20);
    const int64_t dom100 = std::max<int64_t>(1, n / 100);
    // ua1 draws from a domain slightly below the cardinality (~1.1 repeats
    // per value). Chosen as 0.9 n so that t9.ua (a permutation of
    // 0..0.9|t10|-1) covers t10.ua1's domain exactly: the t9 ⋈ t10 join of
    // Query 2 then has true selectivity 1 over t10, as the paper states.
    const int64_t dom_ua1 = std::max<int64_t>(1, (n * 9) / 10);
    const std::string pad(20, 'x');

    for (int64_t i = 0; i < n; ++i) {
      types::Tuple tuple({
          types::Value((i * step_a) % n),                       // a
          types::Value(static_cast<int64_t>(rng.NextUint64(
              static_cast<uint64_t>(n)))),                      // a1
          types::Value(static_cast<int64_t>(rng.NextUint64(
              static_cast<uint64_t>(dom10)))),                  // a10
          types::Value(static_cast<int64_t>(rng.NextUint64(
              static_cast<uint64_t>(dom20)))),                  // a20
          types::Value((i * step_ua + 1) % n),                  // ua
          types::Value(static_cast<int64_t>(rng.NextUint64(
              static_cast<uint64_t>(dom_ua1)))),                // ua1
          types::Value(static_cast<int64_t>(rng.NextUint64(
              static_cast<uint64_t>(dom10)))),                  // u10
          types::Value(static_cast<int64_t>(rng.NextUint64(
              static_cast<uint64_t>(dom100)))),                 // u100
          types::Value(pad),                                    // pad
      });
      PPP_RETURN_IF_ERROR(table->Insert(tuple));
    }

    for (const char* indexed : {"a", "a1", "a10", "a20"}) {
      PPP_RETURN_IF_ERROR(table->CreateIndex(indexed));
    }
    PPP_RETURN_IF_ERROR(table->Analyze());
  }
  return common::Status::OK();
}

common::Status RegisterBenchmarkFunctions(Database* db) {
  catalog::FunctionRegistry& functions = db->catalog().functions();
  PPP_RETURN_IF_ERROR(
      functions.RegisterCostlyPredicate("costly1", 1.0, 0.5));
  PPP_RETURN_IF_ERROR(
      functions.RegisterCostlyPredicate("costly10", 10.0, 0.5));
  PPP_RETURN_IF_ERROR(
      functions.RegisterCostlyPredicate("costly100", 100.0, 0.5));
  PPP_RETURN_IF_ERROR(
      functions.RegisterCostlyPredicate("costly1000", 1000.0, 0.5));
  // An expensive *join* predicate: the Q5 ingredient. Selectivity is in the
  // ballpark of an equi-join over ~500-value domains.
  PPP_RETURN_IF_ERROR(
      functions.RegisterCostlyPredicate("match100", 100.0, 0.002));
  // A highly selective expensive selection (Q5's costly filter): keeping it
  // low in the plan shrinks the cross product the expensive join sees.
  PPP_RETURN_IF_ERROR(
      functions.RegisterCostlyPredicate("selective100", 100.0, 0.1));
  return common::Status::OK();
}

}  // namespace ppp::workload
