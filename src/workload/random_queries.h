#ifndef PPP_WORKLOAD_RANDOM_QUERIES_H_
#define PPP_WORKLOAD_RANDOM_QUERIES_H_

#include "common/random.h"
#include "plan/query_spec.h"
#include "workload/schema_gen.h"

namespace ppp::workload {

/// Knobs for the random-query generator.
struct RandomQueryOptions {
  int min_tables = 2;
  int max_tables = 4;
  int max_cheap_predicates = 2;
  int max_expensive_predicates = 2;
};

/// Generates a random chain-join query over the benchmark tables of
/// `config`: adjacent tables joined on randomly chosen (mostly
/// near-unique) columns, plus random cheap range selections and random
/// costly predicates.
///
/// This powers the paper's own debugging methodology (§5): "running the
/// same query under the various different optimization heuristics, and
/// comparing the estimated costs and running times of the resulting
/// plans" — here as an automated property: all algorithms must agree on
/// results, and Predicate Migration must never be estimated worse than
/// the simpler heuristics.
plan::QuerySpec RandomQuery(const BenchmarkConfig& config,
                            const RandomQueryOptions& options,
                            common::Random* rng);

}  // namespace ppp::workload

#endif  // PPP_WORKLOAD_RANDOM_QUERIES_H_
