#ifndef PPP_WORKLOAD_MEASUREMENT_H_
#define PPP_WORKLOAD_MEASUREMENT_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "cost/cost_params.h"
#include "exec/executor.h"
#include "obs/trace.h"
#include "optimizer/algorithm.h"
#include "plan/query_spec.h"
#include "storage/io_stats.h"
#include "workload/database.h"

namespace ppp::workload {

/// One optimize-then-execute run of a query under one placement algorithm,
/// measured the way the paper measures (§2): physical I/O counts plus
/// `invocations × declared cost` per expensive function, all in random-I/O
/// units. Numbers are relative, never wall-clock.
struct Measurement {
  std::string algorithm;
  double est_cost = 0.0;       // Optimizer's estimate.
  double charged_time = 0.0;   // Measured relative time.
  double charged_io = 0.0;     // I/O share of charged_time.
  double charged_udf = 0.0;    // Function share of charged_time.
  uint64_t output_rows = 0;
  std::unordered_map<std::string, uint64_t> invocations;
  double optimize_seconds = 0.0;
  size_t plans_retained = 0;
  std::string plan_text;
  /// Raw I/O classes of the run (the counters charged_io derives from).
  storage::IoStats io;
  /// DP enumeration counters of the optimize step.
  optimizer::DpStats dp_stats;
  /// EXPLAIN [ANALYZE] rendering; filled when collect_explain is set.
  std::string explain_text;
  /// Wall-clock of the execute phase. Diagnostic only (the parallel bench
  /// reports speedups from it); charged_time stays the paper's currency.
  double wall_seconds = 0.0;

  std::string Summary() const;

  /// One JSON object with every field above (invocations as a nested
  /// object); the unit benches aggregate into BENCH_<name>.json.
  std::string ToJson() const;
};

/// Writes `measurements` as a JSON array to BENCH_<name>.json in the
/// current directory. Returns the path written.
common::Result<std::string> WriteBenchJson(
    const std::string& name, const std::vector<Measurement>& measurements);

/// Execution parameters consistent with `cost_params`: the knobs shared by
/// optimizer and executor (predicate_caching, parallel_workers,
/// predicate_transfer) are copied from the cost side, so the optimizer
/// always models what the executor does. Use this instead of setting the
/// two flags independently.
exec::ExecParams ExecParamsFor(const cost::CostParams& cost_params);

/// Converts executor stats into charged relative time under `params`.
double ChargedTime(const exec::ExecStats& stats,
                   const catalog::FunctionRegistry& functions,
                   const cost::CostParams& params, double* io_part,
                   double* udf_part);

/// Optimizes `spec` with `algorithm`, evicts the buffer pool (cold start,
/// as the paper's one-query-at-a-time measurements imply), executes, and
/// measures. `execute` false skips execution (for optimize-time studies).
/// `collect_explain` fills Measurement::explain_text — EXPLAIN ANALYZE of
/// the executed operator tree when executing, plain EXPLAIN otherwise.
/// `trace`, when non-null, records the optimizer's decisions.
common::Result<Measurement> RunWithAlgorithm(
    Database* db, const plan::QuerySpec& spec,
    optimizer::Algorithm algorithm, const cost::CostParams& cost_params,
    const exec::ExecParams& exec_params, bool execute = true,
    bool collect_explain = false, obs::OptTrace* trace = nullptr);

/// Result of re-running predicate placement with observed (profiled)
/// costs and selectivities in place of the catalog's static guesses.
struct CalibrationReport {
  /// Functions whose profiles were absorbed into the feedback store.
  size_t functions_calibrated = 0;
  /// Whether the calibrated plan differs from the uncalibrated one.
  bool placement_changed = false;
  /// The uncalibrated plan's cost under the *static* model (the number the
  /// optimizer originally believed).
  double est_cost_before = 0.0;
  /// The uncalibrated plan's cost re-annotated under the observed model:
  /// what that placement actually costs per the profile data.
  double obs_cost_before = 0.0;
  /// The calibrated plan's cost under the observed model.
  double obs_cost_after = 0.0;
  /// Placement regret: obs_cost_before - obs_cost_after. How much the
  /// static estimates were costing us, in random-I/O units.
  double regret = 0.0;
  std::string plan_before;
  std::string plan_after;

  std::string Summary() const;
};

/// Re-runs placement of `spec` with observed costs/selectivities: absorbs
/// the global PredicateProfiler's data into the PredicateFeedbackStore,
/// optimizes once without and once with feedback, and re-costs the
/// uncalibrated plan under the observed model to quantify the regret.
/// The feedback store retains the absorbed profiles afterwards, so
/// subsequent optimizations with CostParams::use_feedback see them.
common::Result<CalibrationReport> Calibrate(
    catalog::Catalog* catalog, const plan::QuerySpec& spec,
    optimizer::Algorithm algorithm, const cost::CostParams& cost_params);

/// Canonical form of a result set (sorted serialized tuples), for
/// cross-algorithm equivalence checks.
std::vector<std::string> CanonicalResults(
    const std::vector<types::Tuple>& rows);

/// Schema-aware canonical form: reorders each row's values into ascending
/// qualified-column-name order before serializing, so plans with different
/// join orders (hence different output column orders) compare equal.
std::vector<std::string> CanonicalResults(
    const std::vector<types::Tuple>& rows, const types::RowSchema& schema);

}  // namespace ppp::workload

#endif  // PPP_WORKLOAD_MEASUREMENT_H_
