// Figure 4: Query 2 — Query 1 with t9 replacing t3. t9.ua has more values
// than t10.ua1, so the join has selectivity 1 over t10 and pulling the
// costly selection up gains nothing. PullUp errs, but the error is nearly
// insignificant (the paper's point: over-eager pullup of a *cheap-to-redo*
// decision costs little when primary joins are cheap).

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace ppp;
  const int64_t scale = bench::BenchScale();
  auto db = bench::MakeBenchDatabase(scale);
  workload::BenchmarkConfig config;
  config.scale = scale;

  bench::PrintHeader("Figure 4 — Query 2 (scale " + std::to_string(scale) +
                     ")");
  const auto queries = workload::BenchmarkQueries(config);
  std::printf("%s\n%s\n\n", queries[1].sql.c_str(),
              queries[1].description.c_str());

  std::vector<workload::Measurement> bars;
  for (const optimizer::Algorithm algorithm : bench::kAllAlgorithms) {
    bars.push_back(bench::RunQuery(db.get(), config, "Q2", algorithm));
  }
  bench::PrintFigure(
      "relative running times (paper: PullUp's error nearly insignificant):",
      bars);
  if (bench::TraceEnabled()) bench::PrintDpStats(bars);
  bench::MaybeWriteBenchJson("fig4_query2", bars);
  return 0;
}
