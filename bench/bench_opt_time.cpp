// Optimization-time study (§4.4): "Even in the worst-case scenario where
// no subplans can be pruned, Montage plans a 5-way join with expensive
// predicates in under 8 seconds on our SparcStation 10."
//
// Google-benchmark timings of Optimize() per algorithm for 2..5-way joins
// with expensive selections. Predicate Migration's unpruneable retention
// grows the plan space; Exhaustive demonstrates why full enumeration is
// prohibitive.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "optimizer/optimizer.h"
#include "parser/binder.h"

namespace {

using namespace ppp;

struct Fixture {
  std::unique_ptr<workload::Database> db;
  std::vector<plan::QuerySpec> specs;  // Index = number of joins - 1.

  Fixture() {
    db = bench::MakeBenchDatabase(200, {1, 3, 6, 9, 10});
    const char* sqls[] = {
        "SELECT * FROM t1, t3 WHERE t1.ua = t3.ua1 AND costly100(t1.ua)",
        "SELECT * FROM t1, t3, t6 WHERE t1.ua = t3.ua1 AND "
        "t3.a10 = t6.a10 AND costly100(t1.ua) AND costly10(t3.ua)",
        "SELECT * FROM t1, t3, t6, t9 WHERE t1.ua = t3.ua1 AND "
        "t3.a10 = t6.a10 AND t6.ua = t9.ua1 AND costly100(t1.ua) AND "
        "costly10(t3.ua)",
        "SELECT * FROM t1, t3, t6, t9, t10 WHERE t1.ua = t3.ua1 AND "
        "t3.a10 = t6.a10 AND t6.ua = t9.ua1 AND t9.a20 = t10.a20 AND "
        "costly100(t1.ua) AND costly10(t3.ua) AND costly1000(t9.ua)",
    };
    for (const char* sql : sqls) {
      auto spec = parser::ParseAndBind(sql, db->catalog());
      PPP_CHECK(spec.ok()) << spec.status().ToString();
      specs.push_back(*spec);
    }
  }
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

void BM_Optimize(benchmark::State& state, optimizer::Algorithm algorithm) {
  Fixture& fixture = GetFixture();
  const size_t tables = static_cast<size_t>(state.range(0));
  const plan::QuerySpec& spec = fixture.specs[tables - 2];
  optimizer::Optimizer opt(&fixture.db->catalog(), {});
  size_t retained = 0;
  for (auto _ : state) {
    auto result = opt.Optimize(spec, algorithm);
    PPP_CHECK(result.ok()) << result.status().ToString();
    retained = result->plans_retained;
    benchmark::DoNotOptimize(result->est_cost);
  }
  state.counters["plans_retained"] = static_cast<double>(retained);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Optimize, PushDown, optimizer::Algorithm::kPushDown)
    ->DenseRange(2, 5)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Optimize, PullUp, optimizer::Algorithm::kPullUp)
    ->DenseRange(2, 5)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Optimize, PullRank, optimizer::Algorithm::kPullRank)
    ->DenseRange(2, 5)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Optimize, Migration, optimizer::Algorithm::kMigration)
    ->DenseRange(2, 5)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Optimize, LDL, optimizer::Algorithm::kLdl)
    ->DenseRange(2, 5)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Optimize, Exhaustive, optimizer::Algorithm::kExhaustive)
    ->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
