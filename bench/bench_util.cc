#include "bench/bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/string_util.h"

namespace ppp::bench {

const optimizer::Algorithm kAllAlgorithms[7] = {
    optimizer::Algorithm::kPushDown,  optimizer::Algorithm::kPullUp,
    optimizer::Algorithm::kPullRank,  optimizer::Algorithm::kMigration,
    optimizer::Algorithm::kLdl,       optimizer::Algorithm::kLdlBushy,
    optimizer::Algorithm::kExhaustive,
};

int64_t BenchScale(int64_t default_scale) {
  const char* env = std::getenv("PPP_SCALE");
  if (env != nullptr) {
    const int64_t v = std::atoll(env);
    if (v > 0) return v;
  }
  return default_scale;
}

std::unique_ptr<workload::Database> MakeBenchDatabase(
    int64_t scale, const std::vector<int>& tables) {
  auto db = std::make_unique<workload::Database>();
  workload::BenchmarkConfig config;
  config.scale = scale;
  config.table_numbers = tables;
  common::Status status = workload::LoadBenchmarkDatabase(db.get(), config);
  PPP_CHECK(status.ok()) << status.ToString();
  status = workload::RegisterBenchmarkFunctions(db.get());
  PPP_CHECK(status.ok()) << status.ToString();
  return db;
}

/// PPP_BENCH_REPEAT=N (default 1): execute each bench query N times and
/// keep the run with the minimum wall — a noise floor for the regression
/// gate on loaded machines. N <= 1 leaves behavior unchanged.
size_t BenchRepeat() {
  const char* env = std::getenv("PPP_BENCH_REPEAT");
  if (env == nullptr) return 1;
  const long long v = std::atoll(env);
  return v > 1 ? static_cast<size_t>(v) : 1;
}

workload::Measurement RunQuery(workload::Database* db,
                               const workload::BenchmarkConfig& config,
                               const std::string& id,
                               optimizer::Algorithm algorithm,
                               cost::CostParams cost_params, bool execute,
                               obs::OptTrace* trace) {
  auto spec = workload::GetBenchmarkQuery(*db, config, id);
  PPP_CHECK(spec.ok()) << spec.status().ToString();
  auto m = workload::RunWithAlgorithm(db, *spec, algorithm, cost_params,
                                      workload::ExecParamsFor(cost_params),
                                      execute,
                                      /*collect_explain=*/false, trace);
  PPP_CHECK(m.ok()) << m.status().ToString();
  workload::Measurement best = *m;
  if (execute) {
    // Reruns keep the min-wall measurement whole (counters and wall from
    // the same run); the optimizer trace comes from the first run only.
    for (size_t i = 1; i < BenchRepeat(); ++i) {
      auto rerun = workload::RunWithAlgorithm(
          db, *spec, algorithm, cost_params,
          workload::ExecParamsFor(cost_params), execute,
          /*collect_explain=*/false, /*trace=*/nullptr);
      PPP_CHECK(rerun.ok()) << rerun.status().ToString();
      if (rerun->wall_seconds < best.wall_seconds) best = *rerun;
    }
  }
  return best;
}

bool TraceEnabled() {
  const char* env = std::getenv("PPP_TRACE");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

void MaybeWriteBenchJson(const std::string& name,
                         const std::vector<workload::Measurement>& bars) {
  const char* env = std::getenv("PPP_BENCH_JSON");
  if (env != nullptr && env[0] == '0' && env[1] == '\0') return;
  auto path = workload::WriteBenchJson(name, bars);
  if (!path.ok()) {
    std::printf("(bench json not written: %s)\n",
                path.status().ToString().c_str());
    return;
  }
  std::printf("wrote %s\n", path->c_str());
}

void PrintDpStats(const std::vector<workload::Measurement>& bars) {
  std::printf("DP enumeration statistics:\n");
  for (const workload::Measurement& m : bars) {
    std::printf("%-20s %s\n", m.algorithm.c_str(),
                m.dp_stats.ToString().c_str());
  }
}

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintFigure(const std::string& caption,
                 const std::vector<workload::Measurement>& bars) {
  PPP_CHECK(!bars.empty());
  double best = bars[0].charged_time;
  for (const workload::Measurement& m : bars) {
    best = std::min(best, m.charged_time);
  }
  if (best <= 0) best = 1;
  std::printf("%s\n", caption.c_str());
  std::printf("%-20s %14s %14s %8s  %s\n", "algorithm", "measured", "est",
              "ratio", "invocations");
  for (const workload::Measurement& m : bars) {
    std::vector<std::string> invs;
    for (const auto& [name, count] : m.invocations) {
      invs.push_back(name + "×" + std::to_string(count));
    }
    std::sort(invs.begin(), invs.end());
    std::printf("%-20s %14.6g %14.6g %7.2fx  %s\n", m.algorithm.c_str(),
                m.charged_time, m.est_cost, m.charged_time / best,
                common::Join(invs, " ").c_str());
  }
}

}  // namespace ppp::bench
