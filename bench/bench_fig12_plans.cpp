// Figures 1 & 2: the optimal plan for the two-selection join query (both
// expensive selections directly above their scans) versus the LDL view of
// the same query, where selections are joins with virtual relations and a
// left-deep tree must pull them above the inner — the bushy/left-deep gap
// that forces LDL's over-eager pullup (§3.1).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "optimizer/optimizer.h"
#include "parser/binder.h"

int main() {
  using namespace ppp;
  const int64_t scale = bench::BenchScale();
  auto db = bench::MakeBenchDatabase(scale, {3, 10});
  workload::BenchmarkConfig config;
  config.scale = scale;

  // The §3.1 example: SELECT * FROM R, S WHERE R.c1 = S.c1 AND p(R.c2)
  // AND q(S.c2) — both selections mildly expensive so the optimum keeps
  // each directly above its scan.
  common::Status st =
      db->catalog().functions().RegisterCostlyPredicate("p2", 2.0, 0.2);
  PPP_CHECK(st.ok());
  st = db->catalog().functions().RegisterCostlyPredicate("q2", 2.0, 0.2);
  PPP_CHECK(st.ok());
  const std::string sql =
      "SELECT * FROM t3, t10 WHERE t3.ua = t10.ua1 AND p2(t3.u10) "
      "AND q2(t10.u10)";
  auto spec = parser::ParseAndBind(sql, db->catalog());
  PPP_CHECK(spec.ok()) << spec.status().ToString();

  bench::PrintHeader("Figures 1-2 — the LDL left-deep limitation");
  std::printf("%s\n", sql.c_str());

  cost::CostParams params;
  params.predicate_caching = false;  // Pure placement comparison.
  optimizer::Optimizer opt(&db->catalog(), params);

  auto best = opt.Optimize(*spec, optimizer::Algorithm::kExhaustive);
  PPP_CHECK(best.ok()) << best.status().ToString();
  std::printf("\nFig. 1 — optimal placement (Exhaustive, est %.6g):\n%s\n",
              best->est_cost, best->plan->ToString().c_str());

  auto ldl = opt.Optimize(*spec, optimizer::Algorithm::kLdl);
  PPP_CHECK(ldl.ok()) << ldl.status().ToString();
  std::printf("Fig. 2 — LDL (left-deep, selections as virtual joins, est "
              "%.6g):\n%s\n",
              ldl->est_cost, ldl->plan->ToString().c_str());
  std::printf("LDL / optimal estimated cost: %.3fx — the forced pullup "
              "from the inner relation.\n",
              ldl->est_cost / best->est_cost);

  // §3.1's sketched fix: let the join orderer produce bushy trees, and the
  // virtual-relation encoding recovers the Fig. 1 shape.
  auto bushy = opt.Optimize(*spec, optimizer::Algorithm::kLdlBushy);
  PPP_CHECK(bushy.ok()) << bushy.status().ToString();
  std::printf("\nLDL over bushy trees (the §3.1 fix, est %.6g):\n%s\n",
              bushy->est_cost, bushy->plan->ToString().c_str());
  std::printf("LDL-Bushy / optimal estimated cost: %.3fx\n",
              bushy->est_cost / best->est_cost);
  std::printf(
      "\nreproduction note: whether the left-deep limitation binds depends\n"
      "on whether the *optimal* plan keeps an expensive selection on an\n"
      "inner subtree. On this two-table query the optimum is\n"
      "LDL-representable (ratios 1.0x); the limitation does bite on the\n"
      "multi-join Query 4 (see bench_fig8_query4, where LDL trails the\n"
      "rank-based algorithms).\n");
  return 0;
}
