// Ablation A2 (§5.1): predicate caching. Caching changes both execution
// (repeated bindings are free) and optimization (join selectivities are
// computed on values and clamped at 1). The paper claims caching makes
// over-eager pullup safe; Q3 is the query where that matters most.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace ppp;
  const int64_t scale = bench::BenchScale();
  auto db = bench::MakeBenchDatabase(scale);
  workload::BenchmarkConfig config;
  config.scale = scale;

  bench::PrintHeader("Ablation A2 — predicate caching on/off (scale " +
                     std::to_string(scale) + ")");

  cost::CostParams cache_on;
  cost::CostParams cache_off;
  cache_off.predicate_caching = false;

  for (const char* id : {"Q1", "Q2", "Q3"}) {
    std::printf("\n%s:\n", id);
    std::vector<workload::Measurement> bars;
    for (const optimizer::Algorithm algorithm :
         {optimizer::Algorithm::kPushDown, optimizer::Algorithm::kPullUp,
          optimizer::Algorithm::kMigration}) {
      workload::Measurement on =
          bench::RunQuery(db.get(), config, id, algorithm, cache_on);
      on.algorithm += "/cache";
      bars.push_back(std::move(on));
      workload::Measurement off =
          bench::RunQuery(db.get(), config, id, algorithm, cache_off);
      off.algorithm += "/nocache";
      bars.push_back(std::move(off));
    }
    bench::PrintFigure("", bars);
  }
  std::printf("\npaper: 'join selectivities greater than 1 ... can be "
              "avoided by using function caching' (§4.2); under caching a "
              "join 'cannot produce more than 100%% of the values from "
              "each input' (§5.1).\n");
  return 0;
}
