#ifndef PPP_BENCH_BENCH_UTIL_H_
#define PPP_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "optimizer/algorithm.h"
#include "workload/database.h"
#include "workload/measurement.h"
#include "workload/queries.h"
#include "workload/schema_gen.h"

namespace ppp::bench {

/// All placement algorithms, in the paper's Table 1 order (plus the
/// bushy-tree LDL extension).
extern const optimizer::Algorithm kAllAlgorithms[7];

/// The benchmark scale: |tK| = K * scale. Overridable with the PPP_SCALE
/// environment variable; the paper's own scale is 10 000 (≈110 MB).
int64_t BenchScale(int64_t default_scale = 400);

/// Builds and loads the benchmark database at `scale` with all six tables
/// the queries need. Aborts on failure (benches have no error path).
std::unique_ptr<workload::Database> MakeBenchDatabase(
    int64_t scale, const std::vector<int>& tables = {1, 3, 6, 7, 9, 10});

/// Runs `id` (Q1..Q5) under `algorithm` and returns the measurement.
/// Aborts on failure. `trace`, when non-null, records the optimizer's
/// decisions for that run (observability only; charged time is unchanged).
workload::Measurement RunQuery(workload::Database* db,
                               const workload::BenchmarkConfig& config,
                               const std::string& id,
                               optimizer::Algorithm algorithm,
                               cost::CostParams cost_params = {},
                               bool execute = true,
                               obs::OptTrace* trace = nullptr);

/// True when PPP_TRACE is set to a non-empty value other than "0":
/// benches then print optimizer traces and DP statistics.
bool TraceEnabled();

/// Writes BENCH_<name>.json via workload::WriteBenchJson and prints the
/// path. Disable with PPP_BENCH_JSON=0.
void MaybeWriteBenchJson(const std::string& name,
                         const std::vector<workload::Measurement>& bars);

/// Prints per-algorithm DP enumeration statistics (subplans generated,
/// pruned, retained, ...) gathered during optimization.
void PrintDpStats(const std::vector<workload::Measurement>& bars);

/// Prints a separator + title.
void PrintHeader(const std::string& title);

/// Prints one figure-style row: algorithm, measured relative time, and the
/// ratio to the best in the batch (the paper's bar charts are exactly
/// these ratios).
void PrintFigure(const std::string& caption,
                 const std::vector<workload::Measurement>& bars);

}  // namespace ppp::bench

#endif  // PPP_BENCH_BENCH_UTIL_H_
