// Figure 3: Query 1 — a costly selection on t10 under a join that filters
// t10 (join selectivity over t10 < 1). PushDown evaluates costly100 on
// every t10 tuple; every pullup-capable algorithm waits until after the
// join. Expected shape: PushDown several times worse, everyone else tied.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace ppp;
  const int64_t scale = bench::BenchScale();
  auto db = bench::MakeBenchDatabase(scale);
  workload::BenchmarkConfig config;
  config.scale = scale;

  bench::PrintHeader("Figure 3 — Query 1 (scale " + std::to_string(scale) +
                     ")");
  const auto queries = workload::BenchmarkQueries(config);
  std::printf("%s\n%s\n\n", queries[0].sql.c_str(),
              queries[0].description.c_str());

  const bool tracing = bench::TraceEnabled();
  std::vector<workload::Measurement> bars;
  for (const optimizer::Algorithm algorithm : bench::kAllAlgorithms) {
    obs::OptTrace trace;
    bars.push_back(bench::RunQuery(db.get(), config, "Q1", algorithm, {},
                                   /*execute=*/true,
                                   tracing ? &trace : nullptr));
    if (tracing && !trace.empty()) {
      std::printf("--- optimizer trace: %s ---\n%s",
                  bars.back().algorithm.c_str(), trace.ToText().c_str());
    }
  }
  bench::PrintFigure("relative running times (paper: PushDown loses badly):",
                     bars);
  if (tracing) bench::PrintDpStats(bars);
  bench::MaybeWriteBenchJson("fig3_query1", bars);
  return 0;
}
