// Ablation A4 (§5.2): the `{R}` estimation dilemma. Montage computes the
// input cardinality of a join "on the fly as needed, based on the number
// of selections over R at the time" — potentially under-estimating {R}
// (some selections may later be pulled up), which under-estimates join
// ranks and biases toward over-eager pullup. The alternative (assume
// expensive selections pass everything) biases toward under-eager pullup.
// The paper deliberately chooses the over-eager direction.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace ppp;
  const int64_t scale = bench::BenchScale();
  auto db = bench::MakeBenchDatabase(scale);
  workload::BenchmarkConfig config;
  config.scale = scale;

  bench::PrintHeader(
      "Ablation A4 — current vs pessimistic {R} estimates (scale " +
      std::to_string(scale) + ")");

  cost::CostParams current;  // Montage behaviour.
  cost::CostParams pessimistic;
  pessimistic.current_cardinality_estimate = false;

  for (const char* id : {"Q1", "Q2", "Q4"}) {
    std::printf("\n%s:\n", id);
    std::vector<workload::Measurement> bars;
    for (const optimizer::Algorithm algorithm :
         {optimizer::Algorithm::kPullRank,
          optimizer::Algorithm::kMigration}) {
      workload::Measurement a =
          bench::RunQuery(db.get(), config, id, algorithm, current);
      a.algorithm += "/current";
      bars.push_back(std::move(a));
      workload::Measurement b =
          bench::RunQuery(db.get(), config, id, algorithm, pessimistic);
      b.algorithm += "/pessim";
      bars.push_back(std::move(b));
    }
    bench::PrintFigure("", bars);
  }
  std::printf("\npaper: 'it was decided that estimates resulting in "
              "somewhat over-eager pullup are preferable to estimates "
              "resulting in under-eager pullup' (§5.2).\n");
  return 0;
}
