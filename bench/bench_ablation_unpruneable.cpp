// Ablation A3 (§4.4): unpruneable-subplan retention. Predicate Migration
// keeps every subplan containing an expensive predicate that was not
// pulled up, so it can later pull the predicate over a join *group*. The
// price is plan-space growth — in the worst case System R never prunes.
// This bench measures retained subplans and optimization time for 2..5-way
// joins, PullRank (no retention) vs Migration (retention).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "optimizer/optimizer.h"
#include "parser/binder.h"

int main() {
  using namespace ppp;
  auto db = bench::MakeBenchDatabase(200, {1, 3, 6, 9, 10});

  bench::PrintHeader("Ablation A3 — unpruneable-plan space growth");

  const char* sqls[] = {
      "SELECT * FROM t1, t3 WHERE t1.ua = t3.ua1 AND costly100(t1.u10)",
      "SELECT * FROM t1, t3, t6 WHERE t1.ua = t3.ua1 AND t3.a10 = t6.a10 "
      "AND costly100(t1.u10) AND costly10(t3.u10)",
      "SELECT * FROM t1, t3, t6, t9 WHERE t1.ua = t3.ua1 AND "
      "t3.a10 = t6.a10 AND t6.ua = t9.ua1 AND costly100(t1.u10) AND "
      "costly10(t3.u10) AND costly1000(t9.u10)",
      "SELECT * FROM t1, t3, t6, t9, t10 WHERE t1.ua = t3.ua1 AND "
      "t3.a10 = t6.a10 AND t6.ua = t9.ua1 AND t9.a20 = t10.a20 AND "
      "costly100(t1.u10) AND costly10(t3.u10) AND costly1000(t9.u10)",
  };

  std::printf("%-7s %22s %22s %8s\n", "tables", "PullRank retained",
              "Migration retained", "growth");
  int tables = 2;
  for (const char* sql : sqls) {
    auto spec = parser::ParseAndBind(sql, db->catalog());
    PPP_CHECK(spec.ok()) << spec.status().ToString();
    optimizer::Optimizer opt(&db->catalog(), {});
    auto pullrank = opt.Optimize(*spec, optimizer::Algorithm::kPullRank);
    auto migration = opt.Optimize(*spec, optimizer::Algorithm::kMigration);
    PPP_CHECK(pullrank.ok() && migration.ok());
    std::printf("%-7d %22zu %22zu %7.2fx\n", tables,
                pullrank->plans_retained, migration->plans_retained,
                static_cast<double>(migration->plans_retained) /
                    static_cast<double>(pullrank->plans_retained));
    ++tables;
  }
  std::printf("\npaper: 'In the worst case ... the System R algorithm "
              "exhaustively enumerates the space of join orders, never "
              "pruning any subplan. This is still preferable to the LDL "
              "approach of adding joins to the query.'\n");
  return 0;
}
