// Bloom-filter predicate transfer on a two-join query. The expensive
// predicate sits on the probe side of two selective hash joins; without
// transfer it pays its latency for every r tuple, including the ~7/8 that
// the joins discard anyway. With transfer each join's build side publishes
// a Bloom filter that the r scan probes batch-at-a-time *before* the
// predicate runs, so doomed tuples never reach the UDF.
//
// Invariants checked: identical result multisets in every configuration
// ({transfer off, on} × {1, 4} workers), and a ≥2x UDF invocation
// reduction plus lower wall time with transfer on.

#include <chrono>
#include <cstdio>
#include <map>
#include <thread>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "exec/executor.h"
#include "expr/predicate.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace {

/// Sums transfer counters over every scan in the executed operator tree.
void CollectTransferStats(const ppp::exec::Operator* op, uint64_t* probed,
                          uint64_t* passed) {
  const ppp::exec::OperatorStats& stats = op->stats();
  if (stats.has_transfer) {
    *probed += stats.transfer_probed;
    *passed += stats.transfer_passed;
  }
  for (const ppp::exec::Operator* child : op->Children()) {
    CollectTransferStats(child, probed, passed);
  }
}

}  // namespace

int main() {
  using namespace ppp;
  using types::Tuple;
  using types::TypeId;
  using types::Value;

  const int64_t scale = bench::BenchScale(200);
  const int64_t r_rows = 20 * scale;      // 4000 at default scale.
  const int64_t s_rows = r_rows / 8;      // Selective build side: 1/8 keys.
  const int64_t t_rows = r_rows / 2;      // Second join: 1/2 keys.

  storage::DiskManager disk;
  storage::BufferPool pool(&disk, 256);
  catalog::Catalog catalog(&pool);
  // Build-side keys are strided across r's key space (every 8th / every
  // 2nd key) rather than a dense prefix: r's heap returns keys in
  // insertion order, and a prefix-clustered build side would make the
  // first probed batch look 100%-passing, tripping the kill switch on a
  // filter that is actually selective.
  const auto load = [&](const std::string& name, int64_t rows,
                        int64_t stride) {
    auto table = catalog.CreateTable(name, {{"key", TypeId::kInt64}});
    PPP_CHECK(table.ok()) << table.status().ToString();
    for (int64_t i = 0; i < rows; ++i) {
      PPP_CHECK((*table)->Insert(Tuple({Value(i * stride)})).ok());
    }
    PPP_CHECK((*table)->Analyze().ok());
  };
  load("r", r_rows, 1);
  load("s", s_rows, 8);
  load("t", t_rows, 2);

  // ~150µs of pure latency per call (a remote lookup stand-in); not
  // cacheable, so every tuple that reaches it pays the wait.
  catalog::FunctionDef def;
  def.name = "remote_check";
  def.cost_per_call = 25;
  def.selectivity = 0.5;
  def.return_type = TypeId::kBool;
  def.cacheable = false;
  def.impl = [](const std::vector<Value>& args) {
    std::this_thread::sleep_for(std::chrono::microseconds(150));
    return Value(args[0].AsInt64() % 2 == 0);
  };
  PPP_CHECK(catalog.functions().Register(std::move(def)).ok());

  expr::TableBinding binding = {{"r", *catalog.GetTable("r")},
                                {"s", *catalog.GetTable("s")},
                                {"t", *catalog.GetTable("t")}};
  expr::PredicateAnalyzer analyzer(&catalog, binding);
  const auto analyze = [&](const expr::ExprPtr& e) {
    auto info = analyzer.Analyze(e);
    PPP_CHECK(info.ok()) << info.status().ToString();
    return *info;
  };

  // HashJoin(HashJoin(Filter(remote_check(r)) ⋈ s) ⋈ t): both joins sit
  // above the expensive filter on r's stream, so both transfer their
  // build-side keys down to the r scan.
  const auto make_plan = [&] {
    return plan::MakeJoin(
        plan::JoinMethod::kHash,
        plan::MakeJoin(
            plan::JoinMethod::kHash,
            plan::MakeFilter(plan::MakeSeqScan("r", "r"),
                             analyze(expr::Call("remote_check",
                                                {expr::Col("r", "key")}))),
            plan::MakeSeqScan("s", "s"),
            analyze(expr::Eq(expr::Col("r", "key"), expr::Col("s", "key")))),
        plan::MakeSeqScan("t", "t"),
        analyze(expr::Eq(expr::Col("r", "key"), expr::Col("t", "key"))));
  };

  bench::PrintHeader(
      "Bloom-filter predicate transfer, 2-join query (" +
      std::to_string(r_rows) + " r rows × ~150µs UDF latency)");
  std::printf("%-10s %12s %14s %12s %12s %10s\n", "config", "wall (s)",
              "invocations", "probed", "pruned", "rows");

  std::vector<workload::Measurement> bars;
  std::vector<std::string> reference_rows;
  std::map<bool, std::map<size_t, uint64_t>> invocations_by;
  std::map<bool, std::map<size_t, double>> wall_by;

  for (const bool transfer : {false, true}) {
    for (const size_t workers : {size_t{1}, size_t{4}}) {
      exec::ExecContext ctx;
      ctx.catalog = &catalog;
      ctx.binding = binding;
      ctx.params.predicate_transfer = transfer;
      ctx.params.parallel_workers = workers;
      plan::PlanPtr plan = make_plan();
      exec::ExecStats stats;
      std::unique_ptr<exec::Operator> root;
      const auto started = std::chrono::steady_clock::now();
      auto result = exec::ExecutePlan(*plan, &ctx, &stats, nullptr, &root);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count();
      PPP_CHECK(result.ok()) << result.status().ToString();

      const std::vector<std::string> canonical =
          workload::CanonicalResults(*result);
      if (reference_rows.empty() && !transfer && workers == 1) {
        reference_rows = canonical;
      } else {
        PPP_CHECK(canonical == reference_rows)
            << "results changed at transfer=" << transfer
            << " workers=" << workers;
      }
      const uint64_t calls = stats.invocations.at("remote_check");
      invocations_by[transfer][workers] = calls;
      wall_by[transfer][workers] = wall;

      uint64_t probed = 0;
      uint64_t passed = 0;
      CollectTransferStats(root.get(), &probed, &passed);

      const std::string config = std::string(transfer ? "on" : "off") +
                                 "-w" + std::to_string(workers);
      std::printf("%-10s %12.3f %14llu %12llu %12llu %10llu\n",
                  config.c_str(), wall,
                  static_cast<unsigned long long>(calls),
                  static_cast<unsigned long long>(probed),
                  static_cast<unsigned long long>(probed - passed),
                  static_cast<unsigned long long>(stats.output_rows));

      workload::Measurement m;
      m.algorithm = config;
      m.output_rows = stats.output_rows;
      m.invocations = stats.invocations;
      m.io = stats.io;
      m.wall_seconds = wall;
      m.charged_time = workload::ChargedTime(stats, catalog.functions(), {},
                                             &m.charged_io, &m.charged_udf);
      bars.push_back(std::move(m));
    }
  }

  // Worker count must never change the bill at a fixed transfer setting.
  PPP_CHECK(invocations_by[false][1] == invocations_by[false][4])
      << "transfer-off invocations changed with workers";
  PPP_CHECK(invocations_by[true][1] == invocations_by[true][4])
      << "transfer-on invocations changed with workers";

  const double reduction =
      static_cast<double>(invocations_by[false][1]) /
      static_cast<double>(std::max<uint64_t>(1, invocations_by[true][1]));
  const bool faster = wall_by[true][1] < wall_by[false][1];
  std::printf("\nUDF invocation reduction with transfer on: %.2fx (%s); "
              "wall time %s; results identical in all configurations.\n",
              reduction, reduction >= 2.0 ? "ok, >= 2x" : "BELOW 2x target",
              faster ? "lower with transfer on" : "NOT lower with transfer on");
  bench::MaybeWriteBenchJson("transfer", bars);
  return reduction >= 2.0 && faster ? 0 : 1;
}
