// Introspection overhead and the "observe the observer" query. Phase 1
// runs the Q1-Q5 mix with the query log disabled, phase 2 with it enabled
// (the shipped default): the per-query cost of two registry snapshots, the
// counter diff, and the ring append must stay under 2% of wall time.
// Phase 3 turns the log's contents back on itself: an analytical SELECT
// joining ppp_query_log with ppp_metrics_window through the ordinary
// optimizer and executor, proving introspection needs no side channel.
//
// Emits BENCH_introspect.json: logging_off / logging_on carry the mix
// totals (summed invocations are deterministic and gate regressions),
// introspect_join carries the analytical query.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "obs/query_log.h"
#include "obs/timeseries.h"
#include "parser/binder.h"

namespace {

/// One full pass over the paper's query mix; returns the summed
/// measurements as a single bar named `label`.
ppp::workload::Measurement RunMix(ppp::workload::Database* db,
                                  const ppp::workload::BenchmarkConfig& config,
                                  const std::string& label) {
  ppp::workload::Measurement total;
  total.algorithm = label;
  for (const char* id : {"Q1", "Q2", "Q3", "Q4", "Q5"}) {
    const ppp::workload::Measurement m = ppp::bench::RunQuery(
        db, config, id, ppp::optimizer::Algorithm::kMigration);
    total.wall_seconds += m.wall_seconds;
    total.charged_time += m.charged_time;
    total.charged_io += m.charged_io;
    total.charged_udf += m.charged_udf;
    total.output_rows += m.output_rows;
    for (const auto& [fn, count] : m.invocations) {
      total.invocations[fn] += count;
    }
  }
  return total;
}

}  // namespace

int main() {
  using namespace ppp;

  const int64_t scale = bench::BenchScale(100);
  auto db = bench::MakeBenchDatabase(scale);
  workload::BenchmarkConfig config;
  config.scale = scale;

  bench::PrintHeader("Introspection overhead (scale " +
                     std::to_string(scale) + ")");

  obs::QueryLog& log = obs::QueryLog::Global();
  constexpr int kTrials = 3;

  // Warm-up pass so first-touch costs (lazy counters, plan caches) hit
  // neither phase.
  log.set_enabled(false);
  RunMix(db.get(), config, "warmup");

  // Min-of-N per phase: on a shared machine the minimum is the least noisy
  // estimate of the true cost.
  workload::Measurement off;
  for (int trial = 0; trial < kTrials; ++trial) {
    workload::Measurement m = RunMix(db.get(), config, "logging_off");
    if (trial == 0 || m.wall_seconds < off.wall_seconds) off = std::move(m);
  }

  log.set_enabled(true);
  log.Clear();
  obs::TimeSeries::Global().Clear();
  workload::Measurement on;
  for (int trial = 0; trial < kTrials; ++trial) {
    workload::Measurement m = RunMix(db.get(), config, "logging_on");
    if (trial == 0 || m.wall_seconds < on.wall_seconds) on = std::move(m);
  }

  PPP_CHECK(log.size() >= 5u * kTrials)
      << "logging-on phase must have recorded the mix, got " << log.size();
  PPP_CHECK(off.output_rows == on.output_rows)
      << "the query log must never change answers";

  const double overhead =
      off.wall_seconds > 0.0
          ? (on.wall_seconds - off.wall_seconds) / off.wall_seconds
          : 0.0;
  std::printf("%-12s %12s %14s %12s\n", "config", "wall (s)", "rows",
              "overhead");
  std::printf("%-12s %12.4f %14llu %12s\n", "logging off", off.wall_seconds,
              static_cast<unsigned long long>(off.output_rows), "-");
  std::printf("%-12s %12.4f %14llu %11.2f%%\n", "logging on",
              on.wall_seconds,
              static_cast<unsigned long long>(on.output_rows),
              overhead * 100.0);

  // The acceptance bar: < 2% relative overhead. At smoke scales the mix
  // finishes in milliseconds where scheduler jitter swamps a relative
  // measure, so short runs get an equivalent absolute allowance instead.
  const double slack = std::max(0.02 * off.wall_seconds, 0.010);
  PPP_CHECK(on.wall_seconds - off.wall_seconds <= slack)
      << "query logging overhead " << overhead * 100.0 << "% exceeds 2% ("
      << off.wall_seconds << "s off, " << on.wall_seconds << "s on)";

  // Phase 3: the analytical query over the log itself, through the normal
  // parse/bind/optimize/execute path. Joining on the 1 s bucket correlates
  // each logged query with the counter deltas of the second it finished in.
  auto spec = parser::ParseAndBind(
      "SELECT ppp_metrics_window.name, count(*), "
      "sum(ppp_query_log.wall_seconds), sum(ppp_metrics_window.delta) "
      "FROM ppp_query_log, ppp_metrics_window "
      "WHERE ppp_query_log.bucket = ppp_metrics_window.bucket "
      "GROUP BY ppp_metrics_window.name",
      db->catalog());
  PPP_CHECK(spec.ok()) << spec.status().ToString();
  auto join = workload::RunWithAlgorithm(
      db.get(), *spec, optimizer::Algorithm::kMigration, {},
      workload::ExecParamsFor({}), /*execute=*/true,
      /*collect_explain=*/true);
  PPP_CHECK(join.ok()) << join.status().ToString();
  join->algorithm = "introspect_join";
  std::printf("\nppp_query_log x ppp_metrics_window plan:\n%s\n",
              join->explain_text.c_str());
  std::printf("introspect join: %llu counter series correlated in %.4fs\n",
              static_cast<unsigned long long>(join->output_rows),
              join->wall_seconds);

  // Determinism note for the regression gate: the two mix bars carry
  // identical invocation maps (logging cannot change evaluation counts).
  PPP_CHECK(off.invocations == on.invocations)
      << "query logging must not change invocation counts";

  bench::MaybeWriteBenchJson("introspect", {off, on, *join});
  return 0;
}
