// Figures 6-8: Query 4 — three-way join whose join ranks decrease going up
// the t3 stream. PullRank cannot justify pulling the costly selection over
// the first join alone, so it either leaves the predicate buried or flips
// to a join order that permits single-join pullup (Fig. 7) — a bad order.
// Predicate Migration groups the out-of-rank-order joins and pulls the
// selection above the pair (Fig. 6's plan with the selection on top).

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace ppp;
  const int64_t scale = bench::BenchScale();
  auto db = bench::MakeBenchDatabase(scale);
  workload::BenchmarkConfig config;
  config.scale = scale;

  bench::PrintHeader("Figures 6-8 — Query 4 (scale " +
                     std::to_string(scale) + ")");
  const auto queries = workload::BenchmarkQueries(config);
  std::printf("%s\n%s\n\n", queries[3].sql.c_str(),
              queries[3].description.c_str());

  std::vector<workload::Measurement> bars;
  for (const optimizer::Algorithm algorithm : bench::kAllAlgorithms) {
    bars.push_back(bench::RunQuery(db.get(), config, "Q4", algorithm));
  }
  bench::PrintFigure("relative running times (Fig. 8):", bars);

  // Figures 6/7: the plans PullRank and Migration actually chose.
  std::printf("\nPullRank's plan (cf. Fig. 7):\n%s\n",
              bars[2].plan_text.c_str());
  std::printf("Predicate Migration's plan (cf. Fig. 6 + pullup):\n%s\n",
              bars[3].plan_text.c_str());
  std::printf(
      "reproduction note: under this library's Yao-adjusted value\n"
      "selectivities, PullRank's single-join rank already justifies the\n"
      "pullup, so the paper's PullRank order-flip (Fig. 7) does not recur;\n"
      "the forced join-group case is exercised in migration_test\n"
      "(MovesFilterAboveJoinGroup). Note that the pure cost comparison\n"
      "(Exhaustive, LDL) is blind here — estimates tie — while rank-based\n"
      "hoisting still finds the winning placement.\n");
  if (bench::TraceEnabled()) bench::PrintDpStats(bars);
  bench::MaybeWriteBenchJson("fig8_query4", bars);
  return 0;
}
