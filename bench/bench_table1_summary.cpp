// Table 1: summary of algorithms — which query classes each algorithm
// optimizes correctly. The paper states this as analysis; we regenerate it
// empirically: an algorithm "works for" a query when its measured charged
// time is within 10% of the best algorithm's.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"

int main() {
  using namespace ppp;
  const int64_t scale = bench::BenchScale(300);
  auto db = bench::MakeBenchDatabase(scale);
  workload::BenchmarkConfig config;
  config.scale = scale;

  bench::PrintHeader("Table 1 — Summary of Algorithms (scale " +
                     std::to_string(scale) + ")");

  const char* query_ids[] = {"Q1", "Q2", "Q3", "Q4", "Q5"};
  // Q3's phenomenon requires caching off (see Fig. 5 bench).
  std::map<std::string, std::map<std::string, double>> measured;
  std::map<std::string, double> best;
  for (const char* id : query_ids) {
    cost::CostParams params;
    if (std::string(id) == "Q3") params.predicate_caching = false;
    for (const optimizer::Algorithm algorithm : bench::kAllAlgorithms) {
      const workload::Measurement m =
          bench::RunQuery(db.get(), config, id, algorithm, params);
      measured[m.algorithm][id] = m.charged_time;
      auto it = best.find(id);
      if (it == best.end() || m.charged_time < it->second) {
        best[id] = m.charged_time;
      }
    }
  }

  std::printf("'+' = within 10%% of the best measured plan\n\n");
  std::printf("%-20s", "algorithm");
  for (const char* id : query_ids) std::printf(" %4s", id);
  std::printf("   comments (paper's Table 1)\n");

  const std::map<std::string, std::string> comments = {
      {"PushDown", "queries without expensive predicates / single table"},
      {"PullUp", "free or very expensive selections; cheap primary joins"},
      {"PullRank", "at most one join"},
      {"PredicateMigration", "widely effective; enlarges plan space"},
      {"LDL", "optimal plan has no costly predicate over an inner"},
      {"LDL-Bushy", "the bushy-tree fix sketched in §3.1"},
      {"Exhaustive", "all queries; prohibitive complexity"},
  };
  for (const optimizer::Algorithm algorithm : bench::kAllAlgorithms) {
    const std::string name = optimizer::AlgorithmName(algorithm);
    std::printf("%-20s", name.c_str());
    for (const char* id : query_ids) {
      const bool ok = measured[name][id] <= best[id] * 1.10;
      std::printf(" %4s", ok ? "+" : "-");
    }
    auto it = comments.find(name);
    std::printf("   %s\n",
                it != comments.end() ? it->second.c_str() : "");
  }
  return 0;
}
