// Figure 10: the algorithms form a spectrum of eagerness in pullup:
//   PushDown (never) ... PullRank/Migration (rank-based) ... LDL
//   (inner-forced) ... PullUp (always).
// We quantify eagerness as the average normalized height of expensive
// filters in the chosen plans across the five queries: 0 = glued to the
// scan, 1 = at the root.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "optimizer/optimizer.h"

namespace {

using ppp::plan::PlanKind;
using ppp::plan::PlanNode;

// Collects (depth-from-root, subtree-height) of expensive filters.
void Walk(const PlanNode& node, int depth, int* tree_height,
          std::vector<int>* filter_depths) {
  if (node.kind == PlanKind::kFilter && node.predicate.is_expensive()) {
    filter_depths->push_back(depth);
  }
  *tree_height = std::max(*tree_height, depth);
  for (const auto& child : node.children) {
    Walk(*child, depth + 1, tree_height, filter_depths);
  }
}

}  // namespace

int main() {
  using namespace ppp;
  const int64_t scale = bench::BenchScale(300);
  auto db = bench::MakeBenchDatabase(scale);
  workload::BenchmarkConfig config;
  config.scale = scale;

  bench::PrintHeader("Figure 10 — spectrum of eagerness in pullup (scale " +
                     std::to_string(scale) + ")");

  std::map<std::string, std::pair<double, int>> eagerness;  // sum, count.
  for (const char* id : {"Q1", "Q2", "Q3", "Q4", "Q5"}) {
    for (const optimizer::Algorithm algorithm : bench::kAllAlgorithms) {
      auto spec = workload::GetBenchmarkQuery(*db, config, id);
      PPP_CHECK(spec.ok());
      optimizer::Optimizer opt(&db->catalog(), {});
      auto result = opt.Optimize(*spec, algorithm);
      PPP_CHECK(result.ok()) << result.status().ToString();
      int height = 0;
      std::vector<int> depths;
      Walk(*result->plan, 0, &height, &depths);
      for (const int d : depths) {
        // Height above the leaves, normalized: 1 - depth/height.
        const double h =
            height > 0 ? 1.0 - static_cast<double>(d) / height : 0.0;
        auto& [sum, count] = eagerness[optimizer::AlgorithmName(algorithm)];
        sum += h;
        ++count;
      }
    }
  }

  std::printf("%-20s %s\n", "algorithm",
              "avg normalized pullup height (0=scan, 1=root)");
  // Print in the paper's spectrum order.
  for (const char* name :
       {"PushDown", "LDL", "PullRank", "PredicateMigration", "Exhaustive",
        "PullUp"}) {
    auto it = eagerness.find(name);
    if (it == eagerness.end() || it->second.second == 0) continue;
    const double avg = it->second.first / it->second.second;
    std::printf("%-20s %.3f  ", name, avg);
    const int stars = static_cast<int>(avg * 40);
    for (int i = 0; i < stars; ++i) std::printf("*");
    std::printf("\n");
  }
  std::printf("\npaper's Fig. 10 ordering: PushDown < PullRank/Migration "
              "(rank-based) < LDL (inner-forced) < PullUp.\n");
  return 0;
}
