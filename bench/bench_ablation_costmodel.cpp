// Ablation A1 (§3.2): the "global" cost model of [HS93a] gives a join the
// same selectivity for both inputs; the paper found it inaccurate and
// replaced it with per-input selectivities (sel over R = s * {S}). With
// the global model, the optimizer cannot see that a key-foreign-key join
// filters one side but not the other, and makes wrong pullup calls —
// visible on Q1 (pullup is right) and Q2 (pullup is pointless).

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace ppp;
  const int64_t scale = bench::BenchScale();
  auto db = bench::MakeBenchDatabase(scale);
  workload::BenchmarkConfig config;
  config.scale = scale;

  bench::PrintHeader(
      "Ablation A1 — per-input vs global join selectivities (scale " +
      std::to_string(scale) + ")");

  cost::CostParams per_input;  // Default: the Montage model.
  cost::CostParams global;
  global.per_input_selectivity = false;

  for (const char* id : {"Q1", "Q2"}) {
    std::printf("\n%s:\n", id);
    std::vector<workload::Measurement> bars;
    for (const optimizer::Algorithm algorithm :
         {optimizer::Algorithm::kPullRank,
          optimizer::Algorithm::kMigration}) {
      workload::Measurement a =
          bench::RunQuery(db.get(), config, id, algorithm, per_input);
      a.algorithm += "/per-input";
      bars.push_back(std::move(a));
      workload::Measurement b =
          bench::RunQuery(db.get(), config, id, algorithm, global);
      b.algorithm += "/global";
      bars.push_back(std::move(b));
    }
    bench::PrintFigure("", bars);
  }
  std::printf("\npaper: the global model 'proved to be inaccurate at "
              "modelling query plans in practice, and was discarded in "
              "Montage'.\n");
  return 0;
}
