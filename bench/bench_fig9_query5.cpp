// Figure 9: Query 5 — an expensive primary join predicate (match100
// connects t7 to the rest) plus a selective costly filter on t3. PullUp
// (the paper's "PullAll") hoists the selection above the expensive join,
// so match100 fires on the un-reduced cross product — in Montage this
// filled all swap space with predicate-cache entries and never finished.
// Here it completes but is charged several times the optimum.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace ppp;
  // Q5 executes an expensive-join cross product; run one notch smaller
  // than the other figures by default.
  const int64_t scale = bench::BenchScale(300);
  auto db = bench::MakeBenchDatabase(scale);
  workload::BenchmarkConfig config;
  config.scale = scale;

  bench::PrintHeader("Figure 9 — Query 5 (scale " + std::to_string(scale) +
                     ")");
  const auto queries = workload::BenchmarkQueries(config);
  std::printf("%s\n%s\n\n", queries[4].sql.c_str(),
              queries[4].description.c_str());

  std::vector<workload::Measurement> bars;
  for (const optimizer::Algorithm algorithm : bench::kAllAlgorithms) {
    bars.push_back(bench::RunQuery(db.get(), config, "Q5", algorithm));
  }
  bench::PrintFigure(
      "relative running times (paper: PullAll never completed):", bars);
  std::printf("\npredicate-cache pressure (entries ~ invocations): PullUp "
              "evaluated match100 %llu times vs Migration's %llu — the "
              "footnote-4 swap blowup, in miniature.\n",
              static_cast<unsigned long long>(
                  bars[1].invocations.count("match100")
                      ? bars[1].invocations.at("match100")
                      : 0),
              static_cast<unsigned long long>(
                  bars[3].invocations.count("match100")
                      ? bars[3].invocations.at("match100")
                      : 0));
  if (bench::TraceEnabled()) bench::PrintDpStats(bars);
  bench::MaybeWriteBenchJson("fig9_query5", bars);
  return 0;
}
