// Parallel expensive-predicate evaluation. The paper prices an expensive
// function in random-I/O units (§2) precisely because its cost is
// dominated by waiting — disk seeks, nested retrievals, remote lookups.
// Waiting overlaps: N workers can have N evaluations in flight at once,
// so wall-clock drops while the bill (invocations × declared cost) is
// unchanged. This bench models that with a predicate that sleeps ~200µs
// per call (an I/O-latency stand-in, honest even on a single core) and
// sweeps the worker count.
//
// Invariants checked: the result multiset and the invocation counters are
// identical at every worker count — parallelism is a pure latency
// optimization, never a cost change.

#include <chrono>
#include <cstdio>
#include <map>
#include <thread>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "exec/executor.h"
#include "expr/predicate.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

int main() {
  using namespace ppp;
  using types::Tuple;
  using types::TypeId;
  using types::Value;

  const int64_t scale = bench::BenchScale(200);
  const int64_t rows = 40 * scale;  // 8000 at default scale: ~1.6s serial.

  storage::DiskManager disk;
  storage::BufferPool pool(&disk, 256);
  catalog::Catalog catalog(&pool);
  auto table = catalog.CreateTable("t", {{"k", TypeId::kInt64}});
  PPP_CHECK(table.ok()) << table.status().ToString();
  for (int64_t i = 0; i < rows; ++i) {
    PPP_CHECK((*table)->Insert(Tuple({Value(i)})).ok());
  }
  PPP_CHECK((*table)->Analyze().ok());

  // The expensive predicate: ~200µs of pure latency per call, the shape of
  // a per-tuple remote lookup. Declared cost 25 random I/Os; not cacheable
  // (every input is distinct anyway), so every tuple pays the wait.
  catalog::FunctionDef def;
  def.name = "remote_check";
  def.cost_per_call = 25;
  def.selectivity = 0.5;
  def.return_type = TypeId::kBool;
  def.cacheable = false;
  def.impl = [](const std::vector<Value>& args) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return Value(args[0].AsInt64() % 2 == 0);
  };
  PPP_CHECK(catalog.functions().Register(std::move(def)).ok());

  expr::TableBinding binding = {{"t", *catalog.GetTable("t")}};
  expr::PredicateAnalyzer analyzer(&catalog, binding);
  auto info = analyzer.Analyze(expr::Call("remote_check", {expr::Col("t", "k")}));
  PPP_CHECK(info.ok()) << info.status().ToString();

  bench::PrintHeader(
      "Parallel expensive-predicate evaluation (" + std::to_string(rows) +
      " rows × ~200µs latency each)");
  std::printf("%-12s %12s %10s %14s %12s\n", "config", "wall (s)", "speedup",
              "invocations", "charged");

  std::vector<workload::Measurement> bars;
  std::vector<std::string> reference_rows;
  std::map<std::string, uint64_t> reference_invocations;
  double serial_wall = 0.0;
  double wall_at_4 = 0.0;

  for (const size_t workers : {1, 2, 4, 8}) {
    exec::ExecContext ctx;
    ctx.catalog = &catalog;
    ctx.binding = binding;
    ctx.params.parallel_workers = workers;
    plan::PlanPtr plan =
        plan::MakeFilter(plan::MakeSeqScan("t", "t"), *info);
    exec::ExecStats stats;
    const auto started = std::chrono::steady_clock::now();
    auto result = exec::ExecutePlan(*plan, &ctx, &stats);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started)
            .count();
    PPP_CHECK(result.ok()) << result.status().ToString();

    const std::vector<std::string> canonical =
        workload::CanonicalResults(*result);
    const std::map<std::string, uint64_t> invocations(
        stats.invocations.begin(), stats.invocations.end());
    if (workers == 1) {
      reference_rows = canonical;
      reference_invocations = invocations;
      serial_wall = wall;
    } else {
      PPP_CHECK(canonical == reference_rows)
          << "result multiset changed at workers=" << workers;
      PPP_CHECK(invocations == reference_invocations)
          << "invocation counters changed at workers=" << workers;
    }
    if (workers == 4) wall_at_4 = wall;

    workload::Measurement m;
    m.algorithm = "workers=" + std::to_string(workers);
    m.output_rows = stats.output_rows;
    m.invocations = stats.invocations;
    m.io = stats.io;
    m.wall_seconds = wall;
    m.charged_time = workload::ChargedTime(stats, catalog.functions(), {},
                                           &m.charged_io, &m.charged_udf);
    std::printf("%-12s %12.3f %9.2fx %14llu %12.6g\n", m.algorithm.c_str(),
                wall, serial_wall / wall,
                static_cast<unsigned long long>(
                    m.invocations.at("remote_check")),
                m.charged_time);
    bars.push_back(std::move(m));
  }

  const double speedup = serial_wall / wall_at_4;
  std::printf("\nspeedup at 4 workers: %.2fx (%s); counters and results "
              "identical at every worker count.\n",
              speedup, speedup >= 2.0 ? "ok, >= 2x" : "BELOW 2x target");
  bench::MaybeWriteBenchJson("parallel", bars);
  return speedup >= 2.0 ? 0 : 1;
}
