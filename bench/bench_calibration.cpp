// Feedback calibration closing the loop on mis-declared predicates. The
// paper's placement is only as good as the catalog's cost/selectivity
// declarations (§5.1 notes estimates "may be far off"). This bench plants
// two expensive predicates whose declarations invert reality:
//
//   looks_cheap   declared cost 1, sel 0.20 (rank -0.80, ranked first)
//                 actually ~800µs/call and passes 90% of rows
//   looks_pricey  declared cost 100, sel 0.95 (rank -0.0005, ranked last)
//                 actually ~80µs/call and passes 20% of rows
//
// The static optimizer evaluates looks_cheap first — the worst possible
// order. The runtime profiler observes the real costs and distinct-value
// selectivities, EXPLAIN ANALYZE flags both ranks as DRIFT, and
// workload::Calibrate() feeds the observations back into the analyzer,
// flipping the placement. Checked: DRIFT is flagged, the placement
// changes, the invocation counters flip (the cheap-in-truth predicate
// becomes the filter that runs on every row), and the reported regret is
// positive. Before/after land in BENCH_calibration.json.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "obs/profiler.h"
#include "parser/binder.h"

int main() {
  using namespace ppp;
  using types::Tuple;
  using types::TypeId;
  using types::Value;

  const int64_t scale = bench::BenchScale(100);
  const int64_t rows = 10 * scale;  // 1000 at default scale.

  workload::Database db;
  auto table = db.catalog().CreateTable("t", {{"k", TypeId::kInt64}});
  PPP_CHECK(table.ok()) << table.status().ToString();
  for (int64_t i = 0; i < rows; ++i) {
    PPP_CHECK((*table)->Insert(Tuple({Value(i)})).ok());
  }
  PPP_CHECK((*table)->Analyze().ok());

  // Declarations invert reality; both uncacheable so every row pays and
  // the invocation counters below are exact.
  catalog::FunctionDef cheap;
  cheap.name = "looks_cheap";
  cheap.cost_per_call = 1.0;
  cheap.selectivity = 0.2;
  cheap.return_type = TypeId::kBool;
  cheap.cacheable = false;
  cheap.impl = [](const std::vector<Value>& args) {
    std::this_thread::sleep_for(std::chrono::microseconds(800));
    return Value(args[0].AsInt64() % 10 != 0);
  };
  PPP_CHECK(db.catalog().functions().Register(std::move(cheap)).ok());

  catalog::FunctionDef pricey;
  pricey.name = "looks_pricey";
  pricey.cost_per_call = 100.0;
  pricey.selectivity = 0.95;
  pricey.return_type = TypeId::kBool;
  pricey.cacheable = false;
  pricey.impl = [](const std::vector<Value>& args) {
    std::this_thread::sleep_for(std::chrono::microseconds(80));
    return Value(args[0].AsInt64() % 5 == 0);
  };
  PPP_CHECK(db.catalog().functions().Register(std::move(pricey)).ok());

  obs::PredicateProfiler& profiler = obs::PredicateProfiler::Global();
  profiler.Reset();
  profiler.set_enabled(true);
  profiler.set_seconds_per_io(1e-4);
  obs::PredicateFeedbackStore::Global().Clear();

  auto spec = parser::ParseAndBind(
      "SELECT * FROM t WHERE looks_cheap(t.k) AND looks_pricey(t.k)",
      db.catalog());
  PPP_CHECK(spec.ok()) << spec.status().ToString();

  const optimizer::Algorithm algorithm = optimizer::Algorithm::kMigration;
  cost::CostParams cost_params;
  const exec::ExecParams exec_params = workload::ExecParamsFor(cost_params);

  bench::PrintHeader(
      "Feedback calibration (" + std::to_string(rows) +
      " rows, two predicates with inverted declarations)");

  // Run 1: static estimates. looks_cheap (rank -0.8) runs first on every
  // row; looks_pricey only on the 90% that pass. The profiler watches.
  auto before = workload::RunWithAlgorithm(&db, *spec, algorithm,
                                           cost_params, exec_params,
                                           /*execute=*/true,
                                           /*collect_explain=*/true);
  PPP_CHECK(before.ok()) << before.status().ToString();
  before->algorithm = "before";
  PPP_CHECK(before->invocations.at("looks_cheap") ==
            static_cast<uint64_t>(rows))
      << "looks_cheap should be evaluated on every row before calibration";
  PPP_CHECK(before->invocations.at("looks_pricey") ==
            static_cast<uint64_t>(rows - rows / 10))
      << "looks_pricey should only see looks_cheap's survivors";
  PPP_CHECK(before->explain_text.find("DRIFT") != std::string::npos)
      << "EXPLAIN ANALYZE should flag rank drift:\n" << before->explain_text;
  std::printf("EXPLAIN ANALYZE after the uncalibrated run:\n%s\n",
              before->explain_text.c_str());

  // Calibrate: absorb the observed profile and re-place.
  auto report = workload::Calibrate(&db.catalog(), *spec, algorithm,
                                    cost_params);
  PPP_CHECK(report.ok()) << report.status().ToString();
  std::printf("%s\n", report->Summary().c_str());
  PPP_CHECK(report->functions_calibrated == 2)
      << "expected both functions profiled, got "
      << report->functions_calibrated;
  PPP_CHECK(report->placement_changed)
      << "calibration should flip the evaluation order";
  PPP_CHECK(report->regret > 0.0)
      << "static placement should show positive regret, got "
      << report->regret;
  std::printf("plan before:\n%splan after:\n%s\n",
              report->plan_before.c_str(), report->plan_after.c_str());

  // Run 2: with feedback. looks_pricey (truly cheap and selective) runs
  // first; looks_cheap only on the 10% that pass.
  cost_params.use_feedback = true;
  auto after = workload::RunWithAlgorithm(&db, *spec, algorithm, cost_params,
                                          exec_params, /*execute=*/true,
                                          /*collect_explain=*/true);
  PPP_CHECK(after.ok()) << after.status().ToString();
  after->algorithm = "after";
  PPP_CHECK(after->invocations.at("looks_pricey") ==
            static_cast<uint64_t>(rows))
      << "looks_pricey should run first after calibration";
  PPP_CHECK(after->invocations.at("looks_cheap") ==
            static_cast<uint64_t>(rows / 5))
      << "looks_cheap should only see looks_pricey's survivors";
  PPP_CHECK(after->output_rows == static_cast<uint64_t>(rows / 10) &&
            after->output_rows == before->output_rows)
      << "calibration must not change the result";

  std::printf("%-8s %12s %14s %14s %12s\n", "config", "wall (s)",
              "looks_cheap", "looks_pricey", "rows");
  for (const workload::Measurement* m : {&*before, &*after}) {
    std::printf("%-8s %12.3f %14llu %14llu %12llu\n", m->algorithm.c_str(),
                m->wall_seconds,
                static_cast<unsigned long long>(
                    m->invocations.at("looks_cheap")),
                static_cast<unsigned long long>(
                    m->invocations.at("looks_pricey")),
                static_cast<unsigned long long>(m->output_rows));
  }
  std::printf("\ncalibration cut wall time %.2fx; placement regret %.4g "
              "I/Os per run.\n",
              before->wall_seconds / after->wall_seconds, report->regret);

  bench::MaybeWriteBenchJson("calibration", {*before, *after});
  return 0;
}
