// The serving layer under concurrent clients. Phase 1 measures what the
// statistics-keyed plan cache amortizes: plan-production time (parse +
// bind + rewrite + optimize on a miss, normalize + probe + binding rebuild
// on a hit) for each of Q1-Q5. Target: >= 10x lower on repeats
// (PPP_SERVE_MIN_OPT_SPEEDUP overrides; CI sets 1 under sanitizers).
//
// Phase 2 drives N in {1,2,4,8,16} session threads over a mixed Q1-Q5
// stream against a fresh SessionManager per N and reports QPS and p50/p99
// latency. The box has one core, so scaling comes from amortization, not
// parallel CPU: the first stream pays the optimizer misses and warms the
// cross-query shared predicate caches; the other N-1 streams ride them.
// Targets: QPS(8)/QPS(1) >= 3 (PPP_SERVE_MIN_SCALING), byte-identical
// results everywhere, and exact engine-wide UDF invocation parity between
// plancache on and off at 8 sessions.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "obs/query_log.h"
#include "serve/session.h"
#include "workload/measurement.h"
#include "workload/queries.h"

namespace {

/// Registers the benchmark UDFs with their declared cost *realized* as
/// CPU work: the same deterministic pass/fail decision as
/// RegisterBenchmarkFunctions (so Q1-Q5 answers are unchanged), plus
/// ~`cost` x 100 rounds of integer mixing per call. The stock impls
/// return in nanoseconds, which would make the shared predicate caches
/// irrelevant to wall time; here a cache hit saves real microseconds,
/// the quantity a serving layer amortizes across clients.
void RegisterRealizedCostFunctions(ppp::workload::Database* db) {
  using ppp::types::Value;
  const auto costly = [&](const std::string& name, double cost,
                          double selectivity) {
    ppp::catalog::FunctionDef def;
    def.name = name;
    def.cost_per_call = cost;
    def.selectivity = selectivity;
    def.return_type = ppp::types::TypeId::kBool;
    def.cacheable = true;
    const uint64_t rounds = static_cast<uint64_t>(cost * 100.0);
    def.impl = [selectivity, rounds](const std::vector<Value>& args) {
      uint64_t h = 0x9E3779B97F4A7C15ULL;
      for (const Value& v : args) {
        h ^= static_cast<uint64_t>(v.Hash()) + 0x9E3779B97F4A7C15ULL +
             (h << 6) + (h >> 2);
      }
      h ^= h >> 33;
      h *= 0xFF51AFD7ED558CCDULL;
      h ^= h >> 33;
      const double u =
          static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
      const bool pass = u < selectivity;
      // The realized cost: an unskippable mixing loop (its result feeds a
      // volatile sink so the optimizer cannot elide it).
      uint64_t burn = h;
      for (uint64_t i = 0; i < rounds; ++i) {
        burn ^= burn >> 33;
        burn *= 0xFF51AFD7ED558CCDULL;
        burn += i;
      }
      static volatile uint64_t sink;
      sink = burn;
      return Value(pass);
    };
    PPP_CHECK(db->catalog().functions().Register(std::move(def)).ok());
  };
  // Same (name, cost, selectivity) table as RegisterBenchmarkFunctions.
  costly("costly1", 1.0, 0.5);
  costly("costly10", 10.0, 0.5);
  costly("costly100", 100.0, 0.5);
  costly("costly1000", 1000.0, 0.5);
  costly("match100", 100.0, 0.002);
  costly("selective100", 100.0, 0.1);
}

}  // namespace

int main() {
  using namespace ppp;

  const int64_t scale = bench::BenchScale(200);
  workload::BenchmarkConfig config;
  config.scale = scale;
  config.table_numbers = {1, 3, 6, 7, 9, 10};
  auto db = std::make_unique<workload::Database>();
  {
    const common::Status status =
        workload::LoadBenchmarkDatabase(db.get(), config);
    PPP_CHECK(status.ok()) << status.ToString();
  }
  RegisterRealizedCostFunctions(db.get());

  std::vector<std::string> queries;
  std::vector<std::string> ids;
  for (const workload::BenchmarkQuery& q :
       workload::BenchmarkQueries(config)) {
    queries.push_back(q.sql);
    ids.push_back(q.id);
  }

  double min_opt_speedup = 10.0;
  if (const char* env = std::getenv("PPP_SERVE_MIN_OPT_SPEEDUP");
      env != nullptr && *env != '\0') {
    min_opt_speedup = std::atof(env);
  }
  double min_scaling = 3.0;
  if (const char* env = std::getenv("PPP_SERVE_MIN_SCALING");
      env != nullptr && *env != '\0') {
    min_scaling = std::atof(env);
  }

  std::vector<workload::Measurement> bars;

  // -- Phase 1: plan-production amortization ------------------------------
  bench::PrintHeader("Serving layer: plan cache + concurrent sessions "
                     "(scale " + std::to_string(scale) + ")");
  std::printf("%-4s %14s %14s %10s\n", "q", "miss (ms)", "hit (ms)",
              "speedup");
  double miss_total = 0.0;
  double hit_total = 0.0;
  std::vector<std::vector<std::string>> reference;
  {
    serve::SessionManager manager(db.get());
    auto session = manager.CreateSession();
    constexpr int kHitReps = 50;
    for (size_t q = 0; q < queries.size(); ++q) {
      auto miss = session->Execute(queries[q]);
      PPP_CHECK(miss.ok()) << miss.status().ToString();
      PPP_CHECK(!miss->plan_cache_hit) << ids[q] << " hit on first run";
      reference.push_back(
          workload::CanonicalResults(miss->rows, miss->schema));
      double hit_sum = 0.0;
      for (int r = 0; r < kHitReps; ++r) {
        auto hit = session->Execute(queries[q]);
        PPP_CHECK(hit.ok()) << hit.status().ToString();
        PPP_CHECK(hit->plan_cache_hit) << ids[q] << " missed on repeat";
        PPP_CHECK(workload::CanonicalResults(hit->rows, hit->schema) ==
                  reference[q])
            << ids[q] << " results changed on a plan-cache hit";
        hit_sum += hit->optimize_seconds;
      }
      const double hit_mean = hit_sum / kHitReps;
      miss_total += miss->optimize_seconds;
      hit_total += hit_mean;
      std::printf("%-4s %14.4f %14.4f %9.1fx\n", ids[q].c_str(),
                  miss->optimize_seconds * 1e3, hit_mean * 1e3,
                  miss->optimize_seconds / std::max(hit_mean, 1e-9));

      workload::Measurement m;
      m.algorithm = "optimize-" + ids[q];
      m.optimize_seconds = miss->optimize_seconds;
      m.wall_seconds = hit_mean;  // The amortized per-repeat plan cost.
      m.output_rows = miss->rows.size();
      bars.push_back(std::move(m));
    }
  }
  const double opt_speedup = miss_total / std::max(hit_total, 1e-9);
  std::printf("plan-production speedup on repeats: %.1fx (%s %.1fx "
              "floor)\n\n",
              opt_speedup, opt_speedup >= min_opt_speedup ? "ok, >=" :
              "BELOW", min_opt_speedup);

  // -- Phase 2: QPS scaling over sessions ---------------------------------
  // Each session runs the mixed stream twice; a fresh manager per config
  // makes every config pay its own warm-up (that is the quantity under
  // test). Returns {qps, udf_total}.
  constexpr int kStreamReps = 2;
  struct ConfigResult {
    double qps = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    uint64_t udf_total = 0;
    bool identical = true;
  };
  const auto run_config = [&](size_t n_sessions,
                              bool plan_cache) -> ConfigResult {
    obs::QueryLog::Global().Clear();
    serve::SessionManager::Options options;
    options.plan_cache_enabled = plan_cache;
    serve::SessionManager manager(db.get(), options);
    std::vector<std::unique_ptr<serve::Session>> sessions;
    for (size_t i = 0; i < n_sessions; ++i) {
      sessions.push_back(manager.CreateSession());
    }
    std::vector<std::vector<double>> latencies(n_sessions);
    std::vector<bool> ok(n_sessions, true);
    const auto started = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (size_t i = 0; i < n_sessions; ++i) {
      threads.emplace_back([&, i]() {
        for (int rep = 0; rep < kStreamReps; ++rep) {
          for (size_t q = 0; q < queries.size(); ++q) {
            const auto t0 = std::chrono::steady_clock::now();
            auto r = sessions[i]->Execute(queries[q]);
            latencies[i].push_back(
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
            if (!r.ok() ||
                workload::CanonicalResults(r->rows, r->schema) !=
                    reference[q]) {
              ok[i] = false;
              return;
            }
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - started)
                            .count();
    ConfigResult result;
    std::vector<double> all;
    for (size_t i = 0; i < n_sessions; ++i) {
      result.identical = result.identical && ok[i];
      all.insert(all.end(), latencies[i].begin(), latencies[i].end());
    }
    std::sort(all.begin(), all.end());
    result.qps = static_cast<double>(all.size()) / std::max(wall, 1e-9);
    result.p50_ms = all[all.size() / 2] * 1e3;
    result.p99_ms = all[(all.size() * 99) / 100] * 1e3;
    for (const obs::QueryLogRecord& r : obs::QueryLog::Global().Snapshot()) {
      result.udf_total += r.udf_invocations;
    }
    return result;
  };

  std::printf("%-10s %10s %10s %10s %12s  (stream = %zu queries x %d)\n",
              "sessions", "qps", "p50 (ms)", "p99 (ms)", "udf",
              queries.size(), kStreamReps);
  double qps1 = 0.0;
  double qps8 = 0.0;
  bool identical = true;
  for (const size_t n : {size_t{1}, size_t{2}, size_t{4}, size_t{8},
                         size_t{16}}) {
    // Best of two runs: the regression gate diffs these walls against a
    // baseline, and a scheduler spike on one run shouldn't trip it. The
    // UDF totals must agree exactly between runs (determinism check).
    ConfigResult r = run_config(n, /*plan_cache=*/true);
    const ConfigResult again = run_config(n, /*plan_cache=*/true);
    identical = identical && r.identical && again.identical &&
                r.udf_total == again.udf_total;
    if (again.qps > r.qps) r = again;
    if (n == 1) qps1 = r.qps;
    if (n == 8) qps8 = r.qps;
    std::printf("%-10zu %10.1f %10.3f %10.3f %12llu\n", n, r.qps, r.p50_ms,
                r.p99_ms, static_cast<unsigned long long>(r.udf_total));
    workload::Measurement m;
    m.algorithm = "serve-" + std::to_string(n);
    m.wall_seconds =
        static_cast<double>(n * queries.size() * kStreamReps) /
        std::max(r.qps, 1e-9);
    m.output_rows = n * queries.size() * kStreamReps;
    bars.push_back(std::move(m));
  }

  // Invocation parity: the plan cache must never change what executes.
  const ConfigResult on8 = run_config(8, /*plan_cache=*/true);
  const ConfigResult off8 = run_config(8, /*plan_cache=*/false);
  identical = identical && on8.identical && off8.identical;
  const bool parity = on8.udf_total == off8.udf_total;
  std::printf("\nudf invocations at 8 sessions: plancache on %llu, off "
              "%llu (%s)\n",
              static_cast<unsigned long long>(on8.udf_total),
              static_cast<unsigned long long>(off8.udf_total),
              parity ? "exact parity" : "PARITY BROKEN");

  const double scaling = qps8 / std::max(qps1, 1e-9);
  std::printf("qps scaling 1 -> 8 sessions: %.2fx (%s %.1fx floor); "
              "results %s\n",
              scaling, scaling >= min_scaling ? "ok, >=" : "BELOW",
              min_scaling, identical ? "byte-identical" : "DIVERGED");

  bench::MaybeWriteBenchJson("serve", bars);
  return opt_speedup >= min_opt_speedup && scaling >= min_scaling &&
                 parity && identical
             ? 0
             : 1;
}
