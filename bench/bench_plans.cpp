// Plan-lifecycle observability: overhead, parity, and the ANALYZE-induced
// plan flip seen end to end through the history.
//
// Phase 1 runs the Q1-Q5 mix with the plan audit + history disabled, then
// enabled (the shipped default), at 1 and 4 workers: results and UDF
// invocation counters must be byte-identical either way, and the enabled
// run must stay under 2% wall overhead (absolute allowance at smoke
// scales, where jitter swamps a relative measure).
//
// Phase 2 replants bench_stats' declared-lie scenario: r.k is declared
// unique, so the expensive predicate is hoisted above the join; ANALYZE
// exposes the duplicate keys and the next execution of the *same query
// text* runs a different plan. The history must then hold two fingerprints
// for one text_hash, the plan.changed counter must tick exactly once, the
// flip execution's query-log record must carry the plan_changed flag, and
// the faster changed-to plan must never be flagged regressed. Both tables
// are SELECTed through the ordinary SQL path to prove the lifecycle is
// introspectable without side channels.
//
// Emits BENCH_plans.json: the four mix bars (summed invocations gate
// regressions) plus the declared/analyzed flip pair.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/plan_audit.h"
#include "obs/plan_history.h"
#include "obs/query_log.h"
#include "parser/binder.h"
#include "stats/collector.h"

namespace {

/// One full pass over the paper's query mix at `workers`; returns the
/// summed measurements as a single bar named `label`.
ppp::workload::Measurement RunMix(ppp::workload::Database* db,
                                  const ppp::workload::BenchmarkConfig& config,
                                  const std::string& label, int workers) {
  ppp::cost::CostParams cost_params;
  cost_params.parallel_workers = static_cast<double>(workers);
  ppp::workload::Measurement total;
  total.algorithm = label;
  for (const char* id : {"Q1", "Q2", "Q3", "Q4", "Q5"}) {
    const ppp::workload::Measurement m = ppp::bench::RunQuery(
        db, config, id, ppp::optimizer::Algorithm::kMigration, cost_params);
    total.wall_seconds += m.wall_seconds;
    total.charged_time += m.charged_time;
    total.output_rows += m.output_rows;
    for (const auto& [fn, count] : m.invocations) {
      total.invocations[fn] += count;
    }
  }
  return total;
}

void SetLifecycle(bool on) {
  ppp::obs::PlanAudit::Global().set_enabled(on);
  ppp::obs::PlanHistory::Global().set_enabled(on);
}

}  // namespace

int main() {
  using namespace ppp;
  using types::Tuple;
  using types::TypeId;
  using types::Value;

  const int64_t scale = bench::BenchScale(100);
  auto db = bench::MakeBenchDatabase(scale);
  workload::BenchmarkConfig config;
  config.scale = scale;

  bench::PrintHeader("Plan-lifecycle overhead (scale " +
                     std::to_string(scale) + ")");

  constexpr int kTrials = 3;
  SetLifecycle(false);
  RunMix(db.get(), config, "warmup", 1);  // First-touch costs hit no phase.

  std::vector<workload::Measurement> bars;
  for (const int workers : {1, 4}) {
    workload::Measurement off;
    SetLifecycle(false);
    for (int trial = 0; trial < kTrials; ++trial) {
      workload::Measurement m = RunMix(
          db.get(), config, "off-w" + std::to_string(workers), workers);
      if (trial == 0 || m.wall_seconds < off.wall_seconds) {
        off = std::move(m);
      }
    }

    SetLifecycle(true);
    obs::PlanAudit::Global().Clear();
    obs::PlanHistory::Global().Clear();
    workload::Measurement on;
    for (int trial = 0; trial < kTrials; ++trial) {
      workload::Measurement m = RunMix(
          db.get(), config, "on-w" + std::to_string(workers), workers);
      if (trial == 0 || m.wall_seconds < on.wall_seconds) on = std::move(m);
    }

    PPP_CHECK(off.output_rows == on.output_rows)
        << "plan-lifecycle tracking must never change answers (w"
        << workers << ")";
    PPP_CHECK(off.invocations == on.invocations)
        << "plan-lifecycle tracking must not change invocation counts (w"
        << workers << ")";
    PPP_CHECK(obs::PlanAudit::Global().total() > 0)
        << "enabled phase must have audited operators";
    PPP_CHECK(obs::PlanHistory::Global().size() >= 5u)
        << "enabled phase must have history for the mix, got "
        << obs::PlanHistory::Global().size();

    const double overhead =
        off.wall_seconds > 0.0
            ? (on.wall_seconds - off.wall_seconds) / off.wall_seconds
            : 0.0;
    std::printf("%-8s %12s %14s %12s\n", "config", "wall (s)", "rows",
                "overhead");
    std::printf("%-8s %12.4f %14llu %12s\n", off.algorithm.c_str(),
                off.wall_seconds,
                static_cast<unsigned long long>(off.output_rows), "-");
    std::printf("%-8s %12.4f %14llu %11.2f%%\n", on.algorithm.c_str(),
                on.wall_seconds,
                static_cast<unsigned long long>(on.output_rows),
                overhead * 100.0);

    // The acceptance bar: < 2% relative overhead, with an equivalent
    // absolute allowance at smoke scales (see bench_introspect).
    const double slack = std::max(0.02 * off.wall_seconds, 0.010);
    PPP_CHECK(on.wall_seconds - off.wall_seconds <= slack)
        << "plan-lifecycle overhead " << overhead * 100.0
        << "% exceeds 2% at w" << workers << " (" << off.wall_seconds
        << "s off, " << on.wall_seconds << "s on)";
    bars.push_back(std::move(off));
    bars.push_back(std::move(on));
  }

  // Phase 2: the ANALYZE-induced flip, watched through the history.
  bench::PrintHeader("Plan change detection (declared lie -> ANALYZE flip)");
  const int64_t keys = scale / 2;
  const int64_t rows_r = 20 * scale;
  const int64_t rows_s = 4 * scale;

  workload::Database flip_db;
  auto r = flip_db.catalog().CreateTable(
      "r", {{"k", TypeId::kInt64}, {"v", TypeId::kInt64}});
  PPP_CHECK(r.ok()) << r.status().ToString();
  for (int64_t i = 0; i < rows_r; ++i) {
    PPP_CHECK((*r)->Insert(Tuple({Value(i % keys), Value(i)})).ok());
  }
  auto s = flip_db.catalog().CreateTable("s", {{"k", TypeId::kInt64}});
  PPP_CHECK(s.ok()) << s.status().ToString();
  for (int64_t i = 0; i < rows_s; ++i) {
    PPP_CHECK((*s)->Insert(Tuple({Value(i % keys)})).ok());
  }
  PPP_CHECK((*r)->Analyze().ok());
  PPP_CHECK((*s)->Analyze().ok());
  catalog::ColumnStats lie;  // The planted lie: r.k declared unique.
  lie.num_distinct = rows_r;
  lie.min_value = 0;
  lie.max_value = rows_r - 1;
  PPP_CHECK((*r)->SetDeclaredStats("k", lie).ok());
  catalog::FunctionDef expensive;
  expensive.name = "expensive";
  expensive.cost_per_call = 50.0;
  expensive.selectivity = 0.5;
  expensive.return_type = TypeId::kBool;
  expensive.cacheable = false;
  expensive.impl = [](const std::vector<Value>& args) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    return Value(args[0].AsInt64() % 2 == 0);
  };
  PPP_CHECK(
      flip_db.catalog().functions().Register(std::move(expensive)).ok());

  auto spec = parser::ParseAndBind(
      "SELECT * FROM r, s WHERE r.k = s.k AND expensive(r.v)",
      flip_db.catalog());
  PPP_CHECK(spec.ok()) << spec.status().ToString();

  obs::PlanHistory& history = obs::PlanHistory::Global();
  SetLifecycle(true);
  history.Clear();
  obs::QueryLog::Global().Clear();
  obs::Counter* changed_counter =
      obs::MetricsRegistry::Global().GetCounter("plan.changed");
  obs::Counter* regressed_counter =
      obs::MetricsRegistry::Global().GetCounter("plan.regressed");
  const uint64_t changed_before = changed_counter->value();
  const uint64_t regressed_before = regressed_counter->value();

  const optimizer::Algorithm algorithm = optimizer::Algorithm::kMigration;
  cost::CostParams cost_params;
  const exec::ExecParams exec_params = workload::ExecParamsFor(cost_params);
  const auto run_once = [&](const std::string& label) {
    auto m = workload::RunWithAlgorithm(&flip_db, *spec, algorithm,
                                        cost_params, exec_params,
                                        /*execute=*/true,
                                        /*collect_explain=*/false);
    PPP_CHECK(m.ok()) << m.status().ToString();
    m->algorithm = label;
    return *m;
  };

  // Enough declared-plan executions to establish a mean (>= warmup), then
  // the same text again after ANALYZE: one plan change, no regression
  // (the changed-to plan is the faster one).
  workload::Measurement declared = run_once("declared");
  for (uint64_t i = 1; i < history.warmup_executions(); ++i) {
    run_once("declared");
  }
  auto analyzed_status = stats::AnalyzeAll(&flip_db.catalog(),
                                           stats::AnalyzeOptions::Default());
  PPP_CHECK(analyzed_status.ok()) << analyzed_status.ToString();
  workload::Measurement analyzed = run_once("analyzed");
  for (uint64_t i = 1; i < history.warmup_executions(); ++i) {
    run_once("analyzed");
  }

  PPP_CHECK(analyzed.output_rows == declared.output_rows)
      << "the flip must change the plan, never the answer";
  PPP_CHECK(analyzed.invocations.at("expensive") <
            declared.invocations.at("expensive"))
      << "the analyzed plan must evaluate the predicate below the join";

  // The history now holds two fingerprints for one normalized query.
  uint64_t flip_text_hash = 0;
  {
    std::vector<obs::PlanHistoryEntry> entries = history.Snapshot();
    uint64_t plans = 0;
    for (const obs::PlanHistoryEntry& e : entries) {
      if (e.executions >= history.warmup_executions()) {
        flip_text_hash = e.text_hash;
      }
    }
    PPP_CHECK(flip_text_hash != 0) << "flip query missing from the history";
    for (const obs::PlanHistoryEntry& e : entries) {
      if (e.text_hash == flip_text_hash) ++plans;
    }
    PPP_CHECK(plans >= 2)
        << "one text_hash must map to two fingerprints after the flip, got "
        << plans;
    PPP_CHECK(history.PlansFor(flip_text_hash) == plans);
  }
  PPP_CHECK(changed_counter->value() == changed_before + 1)
      << "plan.changed must tick exactly once for the flip, got +"
      << changed_counter->value() - changed_before;
  PPP_CHECK(regressed_counter->value() == regressed_before)
      << "a faster changed-to plan must never count as a regression";

  // The flip execution's log record carries the flag.
  uint64_t flagged = 0;
  for (const obs::QueryLogRecord& rec : obs::QueryLog::Global().Snapshot()) {
    if (rec.plan_changed) ++flagged;
    PPP_CHECK(!rec.plan_regressed);
  }
  PPP_CHECK(flagged == 1)
      << "exactly one query-log record must be flagged plan_changed, got "
      << flagged;

  // Both lifecycle tables answer through the ordinary SQL path.
  auto sql = parser::ParseAndBind(
      "SELECT ppp_plan_history.plan_fingerprint, "
      "ppp_plan_history.executions, ppp_plan_history.plan_changed "
      "FROM ppp_plan_history", flip_db.catalog());
  PPP_CHECK(sql.ok()) << sql.status().ToString();
  auto rows = workload::RunWithAlgorithm(&flip_db, *sql, algorithm,
                                         cost_params, exec_params,
                                         /*execute=*/true,
                                         /*collect_explain=*/false);
  PPP_CHECK(rows.ok()) << rows.status().ToString();
  PPP_CHECK(rows->output_rows >= 2)
      << "ppp_plan_history must expose both plans, got "
      << rows->output_rows;
  auto audit_sql = parser::ParseAndBind(
      "SELECT count(*) FROM ppp_operator_audit "
      "WHERE ppp_operator_audit.udf_invocations > 0",
      flip_db.catalog());
  PPP_CHECK(audit_sql.ok()) << audit_sql.status().ToString();
  auto audit_rows = workload::RunWithAlgorithm(&flip_db, *audit_sql,
                                               algorithm, cost_params,
                                               exec_params,
                                               /*execute=*/true,
                                               /*collect_explain=*/false);
  PPP_CHECK(audit_rows.ok()) << audit_rows.status().ToString();

  std::printf("%-10s %12s %14s %12s\n", "config", "wall (s)",
              "invocations", "rows");
  for (const workload::Measurement* m : {&declared, &analyzed}) {
    std::printf("%-10s %12.3f %14llu %12llu\n", m->algorithm.c_str(),
                m->wall_seconds,
                static_cast<unsigned long long>(
                    m->invocations.at("expensive")),
                static_cast<unsigned long long>(m->output_rows));
  }
  std::printf("\nflip detected: text_hash %016llx carries %zu plans, "
              "plan.changed +1, 1 flagged log record, 0 regressions.\n",
              static_cast<unsigned long long>(flip_text_hash),
              history.PlansFor(flip_text_hash));

  bars.push_back(std::move(declared));
  bars.push_back(std::move(analyzed));
  bench::MaybeWriteBenchJson("plans", bars);
  return 0;
}
