// Figure 5: Query 3 — the join multiplies the costly predicate's stream
// (selectivity over t1 > 1), so over-eager pullup evaluates costly100 many
// times per t1 tuple. The paper notes (§4.2) that function caching avoids
// exactly this failure, so the figure is reproduced with caching OFF and
// the caching run is shown as the rescue (ablation A2 cross-reference).

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace ppp;
  const int64_t scale = bench::BenchScale();
  auto db = bench::MakeBenchDatabase(scale);
  workload::BenchmarkConfig config;
  config.scale = scale;

  bench::PrintHeader("Figure 5 — Query 3 (scale " + std::to_string(scale) +
                     ", predicate caching OFF)");
  const auto queries = workload::BenchmarkQueries(config);
  std::printf("%s\n%s\n\n", queries[2].sql.c_str(),
              queries[2].description.c_str());

  cost::CostParams no_cache;
  no_cache.predicate_caching = false;

  std::vector<workload::Measurement> bars;
  for (const optimizer::Algorithm algorithm : bench::kAllAlgorithms) {
    bars.push_back(
        bench::RunQuery(db.get(), config, "Q3", algorithm, no_cache));
  }
  bench::PrintFigure(
      "relative running times (paper: over-eager pullup hurts):", bars);

  std::printf("\nwith predicate caching ON (the paper's rescue, §4.2):\n");
  std::vector<workload::Measurement> cached;
  cached.push_back(bench::RunQuery(db.get(), config, "Q3",
                                   optimizer::Algorithm::kPullUp));
  cached.push_back(bench::RunQuery(db.get(), config, "Q3",
                                   optimizer::Algorithm::kMigration));
  bench::PrintFigure("PullUp vs Migration, caching on:", cached);
  if (bench::TraceEnabled()) bench::PrintDpStats(bars);
  bench::MaybeWriteBenchJson("fig5_query3", bars);
  return 0;
}
