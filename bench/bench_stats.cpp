// ANALYZE alone flipping predicate placement — no runtime feedback needed.
// The declared catalog stats claim the join key of r is unique, so the
// join looks reducing (fan-out 0.2 over r) and the optimizer pulls the
// expensive predicate above it, expecting few survivors. In truth r.k has
// heavy duplicates: the join explodes 8x, and evaluating the predicate
// after it costs 8x the invocations.
//
//   declared   r.k unique     -> join sel over r = 0.2, rank -inf (free,
//                                first); expensive predicate hoisted above
//   collected  ndv(r.k) ~ 50  -> join fan-out 8 over r, rank +inf;
//                                predicate stays below, on r's scan
//
// The flip comes purely from ANALYZE's NDV sketches driving the per-input
// join selectivity (paper §3.2) — the feedback store stays empty and no
// query ran before the statistics were collected. Checked: invocation
// counts drop by the fan-out factor, wall time improves, results are
// identical, EXPLAIN provenance tags flip decl -> stats. Before/after
// land in BENCH_stats.json.

#include <cstdio>
#include <string>
#include <thread>
#include <chrono>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "obs/profiler.h"
#include "parser/binder.h"
#include "stats/collector.h"

int main() {
  using namespace ppp;
  using types::Tuple;
  using types::TypeId;
  using types::Value;

  const int64_t scale = bench::BenchScale(100);
  const int64_t keys = scale / 2;        // Shared join-key domain.
  const int64_t rows_r = 20 * scale;     // 40 copies of each key.
  const int64_t rows_s = 4 * scale;      // 8 copies of each key.
  const int64_t join_rows = keys * (rows_r / keys) * (rows_s / keys);

  workload::Database db;
  auto r = db.catalog().CreateTable(
      "r", {{"k", TypeId::kInt64}, {"v", TypeId::kInt64}});
  PPP_CHECK(r.ok()) << r.status().ToString();
  for (int64_t i = 0; i < rows_r; ++i) {
    PPP_CHECK((*r)->Insert(Tuple({Value(i % keys), Value(i)})).ok());
  }
  auto s = db.catalog().CreateTable("s", {{"k", TypeId::kInt64}});
  PPP_CHECK(s.ok()) << s.status().ToString();
  for (int64_t i = 0; i < rows_s; ++i) {
    PPP_CHECK((*s)->Insert(Tuple({Value(i % keys)})).ok());
  }
  PPP_CHECK((*r)->Analyze().ok());
  PPP_CHECK((*s)->Analyze().ok());

  // The planted lie: r.k declared unique. Every row count above is real;
  // only this declaration inverts the join's true fan-out.
  catalog::ColumnStats lie;
  lie.num_distinct = rows_r;
  lie.min_value = 0;
  lie.max_value = rows_r - 1;
  PPP_CHECK((*r)->SetDeclaredStats("k", lie).ok());

  // Uncacheable expensive predicate on r alone, so invocation counters
  // are exact evaluation counts.
  catalog::FunctionDef expensive;
  expensive.name = "expensive";
  expensive.cost_per_call = 50.0;
  expensive.selectivity = 0.5;
  expensive.return_type = TypeId::kBool;
  expensive.cacheable = false;
  expensive.impl = [](const std::vector<Value>& args) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    return Value(args[0].AsInt64() % 2 == 0);
  };
  PPP_CHECK(db.catalog().functions().Register(std::move(expensive)).ok());

  // No runtime feedback anywhere: the flip must come from ANALYZE alone.
  obs::PredicateFeedbackStore::Global().Clear();

  auto spec = parser::ParseAndBind(
      "SELECT * FROM r, s WHERE r.k = s.k AND expensive(r.v)",
      db.catalog());
  PPP_CHECK(spec.ok()) << spec.status().ToString();

  const optimizer::Algorithm algorithm = optimizer::Algorithm::kMigration;
  cost::CostParams cost_params;  // use_collected_stats defaults to true.
  const exec::ExecParams exec_params = workload::ExecParamsFor(cost_params);

  bench::PrintHeader(
      "ANALYZE-driven placement (" + std::to_string(rows_r) + " x " +
      std::to_string(rows_s) + " rows, " + std::to_string(keys) +
      " join keys, declared r.k unique)");

  // Run 1: declared stats only (no ANALYZE has happened). The join looks
  // reducing, so the expensive predicate is evaluated above it — once per
  // joined row.
  auto before = workload::RunWithAlgorithm(&db, *spec, algorithm,
                                           cost_params, exec_params,
                                           /*execute=*/true,
                                           /*collect_explain=*/true);
  PPP_CHECK(before.ok()) << before.status().ToString();
  before->algorithm = "declared";
  PPP_CHECK(before->plan_text.find("~decl") != std::string::npos &&
            before->plan_text.find("~stats") == std::string::npos)
      << "pre-ANALYZE plan must carry only declared tags:\n"
      << before->plan_text;
  PPP_CHECK(before->invocations.at("expensive") ==
            static_cast<uint64_t>(join_rows))
      << "declared plan should evaluate the predicate per joined row, got "
      << before->invocations.at("expensive") << " of " << join_rows;
  std::printf("declared plan:\n%s\n", before->plan_text.c_str());

  // ANALYZE both tables. No query result or profile feeds this — only the
  // reservoir sample and its sketches.
  auto analyzed = stats::AnalyzeAll(&db.catalog(),
                                    stats::AnalyzeOptions::Default());
  PPP_CHECK(analyzed.ok()) << analyzed.ToString();
  PPP_CHECK(obs::PredicateFeedbackStore::Global().size() == 0)
      << "feedback store must stay empty: the flip is ANALYZE-only";

  // Run 2: collected stats. NDV sketches expose the duplicate keys, the
  // join's per-input selectivity exceeds 1, and the predicate stays below
  // it — once per r row, 8x fewer.
  auto after = workload::RunWithAlgorithm(&db, *spec, algorithm,
                                          cost_params, exec_params,
                                          /*execute=*/true,
                                          /*collect_explain=*/true);
  PPP_CHECK(after.ok()) << after.status().ToString();
  after->algorithm = "analyzed";
  PPP_CHECK(after->plan_text.find("~stats") != std::string::npos)
      << "post-ANALYZE plan must carry stats tags:\n" << after->plan_text;
  PPP_CHECK(after->invocations.at("expensive") ==
            static_cast<uint64_t>(rows_r))
      << "analyzed plan should evaluate the predicate per r row, got "
      << after->invocations.at("expensive") << " of " << rows_r;
  PPP_CHECK(after->output_rows == before->output_rows)
      << "statistics must steer the plan, never the answer";
  std::printf("analyzed plan:\n%s\n", after->plan_text.c_str());

  std::printf("%-10s %12s %14s %12s %12s\n", "config", "wall (s)",
              "invocations", "charged", "rows");
  for (const workload::Measurement* m : {&*before, &*after}) {
    std::printf("%-10s %12.3f %14llu %12.0f %12llu\n", m->algorithm.c_str(),
                m->wall_seconds,
                static_cast<unsigned long long>(
                    m->invocations.at("expensive")),
                m->charged_time,
                static_cast<unsigned long long>(m->output_rows));
  }
  PPP_CHECK(after->wall_seconds < before->wall_seconds)
      << "fewer evaluations of a 100us predicate must be faster";
  std::printf(
      "\nANALYZE alone cut invocations %.1fx and wall time %.2fx.\n",
      static_cast<double>(before->invocations.at("expensive")) /
          static_cast<double>(after->invocations.at("expensive")),
      before->wall_seconds / after->wall_seconds);

  bench::MaybeWriteBenchJson("stats", {*before, *after});
  return 0;
}
