// The network serving subsystem end to end: a real TCP server (wire
// protocol + admission control) over the benchmark database, driven by
// concurrent socket clients.
//
// Phase 1 — correctness: every Q1-Q5 result decoded off the wire must be
// byte-identical to in-process session execution, with exact engine-wide
// UDF invocation parity (the socket layer must not change what executes).
//
// Phase 2 — PREPARE/EXECUTE: distinct-literal EXECUTEs ride the family
// (generic) plan-cache entry; their amortized plan-production time must
// beat the per-query parse+bind+optimize of equivalent distinct-literal
// QUERY statements by >= 10x (PPP_SERVER_MIN_PREP_SPEEDUP overrides; CI
// sets 1 under sanitizers).
//
// Phase 3 — throughput: N in {1,4,8,16} TCP clients stream the Q1-Q5 mix;
// reports QPS and p50/p99 latency per N (BENCH_server.json feeds the
// regression gate).
//
// Phase 4 — admission: 2x-queue-depth pipelined statements against one
// slow worker must all be answered — shed with ERR, never hung.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/query_log.h"
#include "serve/session.h"
#include "workload/measurement.h"
#include "workload/queries.h"

namespace {

using namespace ppp;

/// Minimal blocking client (mirrors tests/net_test.cc's TestClient).
class Client {
 public:
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  bool Send(const std::string& payload) {
    const std::string wire = net::EncodeFrame(payload);
    size_t off = 0;
    while (off < wire.size()) {
      const ssize_t n =
          ::send(fd_, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Frames of the next response: ROW* then the OK/ERR/METRICS terminal.
  std::vector<std::string> ReadResponse() {
    std::vector<std::string> response;
    char buf[64 * 1024];
    for (;;) {
      while (!pending_.empty()) {
        std::string payload = std::move(pending_.front());
        pending_.erase(pending_.begin());
        const bool terminal = payload.rfind("OK", 0) == 0 ||
                              payload.rfind("ERR", 0) == 0 ||
                              payload.rfind("METRICS", 0) == 0;
        response.push_back(std::move(payload));
        if (terminal) return response;
      }
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return response;
      PPP_CHECK(parser_.Feed(buf, static_cast<size_t>(n), &pending_).ok());
    }
  }

 private:
  int fd_ = -1;
  net::FrameParser parser_;
  std::vector<std::string> pending_;
};

std::string Terminal(const std::vector<std::string>& response) {
  return response.empty() ? std::string() : response.back();
}

/// Canonical results of a wire response (rows + schema off the OK frame),
/// comparable against workload::CanonicalResults of in-process rows.
std::vector<std::string> WireCanonical(
    const std::vector<std::string>& response) {
  const std::string ok = Terminal(response);
  PPP_CHECK(ok.rfind("OK", 0) == 0) << ok;
  auto schema = net::DecodeSchema(net::OkField(ok, "schema"));
  PPP_CHECK(schema.ok()) << schema.status().ToString();
  std::vector<types::Tuple> rows;
  for (const std::string& payload : response) {
    if (payload.rfind("ROW ", 0) != 0) continue;
    auto tuple = net::DecodeRowPayload(payload);
    PPP_CHECK(tuple.ok()) << tuple.status().ToString();
    rows.push_back(std::move(*tuple));
  }
  return workload::CanonicalResults(rows, *schema);
}

uint64_t QueryLogUdfTotal() {
  uint64_t total = 0;
  for (const obs::QueryLogRecord& r : obs::QueryLog::Global().Snapshot()) {
    total += r.udf_invocations;
  }
  return total;
}

double EnvFloor(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  return raw != nullptr && *raw != '\0' ? std::atof(raw) : fallback;
}

}  // namespace

int main() {
  const int64_t scale = bench::BenchScale(200);
  auto db = bench::MakeBenchDatabase(scale);

  std::vector<std::string> queries;
  std::vector<std::string> ids;
  workload::BenchmarkConfig config;
  config.scale = scale;
  for (const workload::BenchmarkQuery& q :
       workload::BenchmarkQueries(config)) {
    queries.push_back(q.sql);
    ids.push_back(q.id);
  }
  const double min_prep_speedup =
      EnvFloor("PPP_SERVER_MIN_PREP_SPEEDUP", 10.0);

  std::vector<workload::Measurement> bars;
  bool all_ok = true;

  // -- Phase 1: wire results == in-process results, exact UDF parity ------
  bench::PrintHeader("Network server: wire protocol + admission (scale " +
                     std::to_string(scale) + ")");
  std::vector<std::vector<std::string>> reference;
  uint64_t inproc_udf = 0;
  {
    obs::QueryLog::Global().Clear();
    serve::SessionManager manager(db.get());
    auto session = manager.CreateSession();
    for (const std::string& sql : queries) {
      auto r = session->Execute(sql);
      PPP_CHECK(r.ok()) << r.status().ToString();
      reference.push_back(workload::CanonicalResults(r->rows, r->schema));
    }
    inproc_udf = QueryLogUdfTotal();
  }
  {
    obs::QueryLog::Global().Clear();
    serve::SessionManager manager(db.get());
    net::Server::Options options;
    options.workers = 4;
    net::Server server(db.get(), &manager, options);
    PPP_CHECK(server.Start().ok());
    Client client;
    PPP_CHECK(client.Connect(server.port()));
    bool identical = true;
    for (size_t q = 0; q < queries.size(); ++q) {
      PPP_CHECK(client.Send("QUERY " + queries[q]));
      identical =
          identical && WireCanonical(client.ReadResponse()) == reference[q];
    }
    const uint64_t socket_udf = QueryLogUdfTotal();
    server.Stop();
    const bool parity = socket_udf == inproc_udf;
    std::printf("wire vs in-process over %zu queries: results %s, udf "
                "%llu vs %llu (%s)\n",
                queries.size(),
                identical ? "byte-identical" : "DIVERGED",
                static_cast<unsigned long long>(socket_udf),
                static_cast<unsigned long long>(inproc_udf),
                parity ? "exact parity" : "PARITY BROKEN");
    all_ok = all_ok && identical && parity;
  }

  // -- Phase 2: PREPARE/EXECUTE vs per-query parse ------------------------
  {
    serve::SessionManager manager(db.get());
    net::Server server(db.get(), &manager, net::Server::Options{});
    PPP_CHECK(server.Start().ok());
    Client client;
    PPP_CHECK(client.Connect(server.port()));
    constexpr int kLiterals = 40;
    // The family is Q5's shape — a four-way join with an expensive join
    // predicate, so plan production (parse + bind + join enumeration +
    // placement) dominates per statement; the generic plan amortizes it.
    const char* kFamily =
        "SELECT * FROM t7, t3, t6, t10 WHERE match100(t7.ua, t3.ua) "
        "AND t3.a10 = t6.a10 AND t6.ua = t10.ua1 AND t10.u10 < %d "
        "AND selective100(t3.ua);";
    // Baseline: distinct literals as plain QUERY — each one is a fresh
    // parse+bind+optimize (distinct text hash, so no exact-cache hit).
    double query_opt_us = 0.0;
    for (int i = 0; i < kLiterals; ++i) {
      PPP_CHECK(client.Send(
          "QUERY " + common::StringPrintf(kFamily, i + 2)));
      const std::string ok = Terminal(client.ReadResponse());
      PPP_CHECK(ok.rfind("OK", 0) == 0) << ok;
      PPP_CHECK(net::OkField(ok, "hit") == "0") << ok;
      query_opt_us += std::atof(net::OkField(ok, "optimize_us").c_str());
    }
    // Prepared: the same statement family, distinct literals bound at
    // EXECUTE — after the first compile every one rides the generic plan.
    PPP_CHECK(client.Send(
        "PREPARE spread AS SELECT * FROM t7, t3, t6, t10 WHERE "
        "match100(t7.ua, t3.ua) AND t3.a10 = t6.a10 AND t6.ua = t10.ua1 "
        "AND t10.u10 < $1 AND selective100(t3.ua);"));
    PPP_CHECK(Terminal(client.ReadResponse()).rfind("OK", 0) == 0);
    PPP_CHECK(client.Send("EXECUTE spread(1);"));  // Pays the one compile.
    PPP_CHECK(Terminal(client.ReadResponse()).rfind("OK", 0) == 0);
    double exec_opt_us = 0.0;
    int generic_hits = 0;
    for (int i = 0; i < kLiterals; ++i) {
      PPP_CHECK(client.Send(common::StringPrintf(
          "EXECUTE spread(%d);", i + kLiterals + 10)));
      const std::string ok = Terminal(client.ReadResponse());
      PPP_CHECK(ok.rfind("OK", 0) == 0) << ok;
      if (net::OkField(ok, "hit") == "1") ++generic_hits;
      exec_opt_us += std::atof(net::OkField(ok, "optimize_us").c_str());
    }
    server.Stop();
    const double speedup =
        (query_opt_us / kLiterals) /
        std::max(exec_opt_us / kLiterals, 1e-3);
    const bool prep_ok =
        speedup >= min_prep_speedup && generic_hits == kLiterals;
    std::printf("prepared statements: %d/%d family hits, plan production "
                "%.1f us (QUERY) vs %.1f us (EXECUTE) = %.1fx (%s %.1fx "
                "floor)\n",
                generic_hits, kLiterals, query_opt_us / kLiterals,
                exec_opt_us / kLiterals, speedup,
                prep_ok ? "ok, >=" : "BELOW", min_prep_speedup);
    all_ok = all_ok && prep_ok;

    workload::Measurement m;
    m.algorithm = "prepare-execute";
    m.optimize_seconds = query_opt_us * 1e-6 / kLiterals;
    m.wall_seconds = exec_opt_us * 1e-6 / kLiterals;
    m.output_rows = kLiterals;
    bars.push_back(std::move(m));
  }

  // -- Phase 3: QPS over N TCP clients ------------------------------------
  constexpr int kStreamReps = 2;
  std::printf("\n%-8s %10s %10s %10s  (stream = %zu queries x %d)\n",
              "clients", "qps", "p50 (ms)", "p99 (ms)", queries.size(),
              kStreamReps);
  for (const size_t n : {size_t{1}, size_t{4}, size_t{8}, size_t{16}}) {
    // A fresh manager+server per N: every config pays its own plan-cache
    // and predicate-cache warm-up, exactly like bench_serve's sessions.
    serve::SessionManager manager(db.get());
    net::Server::Options options;
    options.workers = 4;
    options.queue_depth = 4 * n;
    net::Server server(db.get(), &manager, options);
    PPP_CHECK(server.Start().ok());
    std::vector<std::vector<double>> latencies(n);
    std::vector<bool> ok(n, true);
    const auto started = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (size_t i = 0; i < n; ++i) {
      threads.emplace_back([&, i] {
        Client client;
        if (!client.Connect(server.port())) {
          ok[i] = false;
          return;
        }
        for (int rep = 0; rep < kStreamReps; ++rep) {
          for (size_t q = 0; q < queries.size(); ++q) {
            const auto t0 = std::chrono::steady_clock::now();
            if (!client.Send("QUERY " + queries[q])) {
              ok[i] = false;
              return;
            }
            const auto response = client.ReadResponse();
            latencies[i].push_back(
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
            if (WireCanonical(response) != reference[q]) {
              ok[i] = false;
              return;
            }
          }
        }
        client.Send("CLOSE");
        client.ReadResponse();
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - started)
                            .count();
    server.Stop();
    std::vector<double> all;
    bool identical = true;
    for (size_t i = 0; i < n; ++i) {
      identical = identical && ok[i];
      all.insert(all.end(), latencies[i].begin(), latencies[i].end());
    }
    PPP_CHECK(!all.empty());
    std::sort(all.begin(), all.end());
    const double qps = static_cast<double>(all.size()) / std::max(wall, 1e-9);
    std::printf("%-8zu %10.1f %10.3f %10.3f%s\n", n, qps,
                all[all.size() / 2] * 1e3,
                all[(all.size() * 99) / 100] * 1e3,
                identical ? "" : "  RESULTS DIVERGED");
    all_ok = all_ok && identical;

    workload::Measurement m;
    m.algorithm = "server-" + std::to_string(n);
    m.wall_seconds = static_cast<double>(all.size()) / std::max(qps, 1e-9);
    m.output_rows = all.size();
    bars.push_back(std::move(m));
  }

  // -- Phase 4: shed, never hang, at 2x queue depth -----------------------
  {
    serve::SessionManager manager(db.get());
    net::Server::Options options;
    options.workers = 1;
    options.queue_depth = 4;
    options.queue_timeout_seconds = 0;
    net::Server server(db.get(), &manager, options);
    PPP_CHECK(server.Start().ok());
    Client client;
    PPP_CHECK(client.Connect(server.port()));
    const int burst = static_cast<int>(2 * (options.queue_depth + 1));
    for (int i = 0; i < burst; ++i) {
      PPP_CHECK(client.Send("QUERY " + queries[0]));
    }
    int answered = 0;
    int shed = 0;
    for (int i = 0; i < burst; ++i) {
      const std::string terminal = Terminal(client.ReadResponse());
      if (terminal.empty()) break;  // Connection died: a hang/crash.
      ++answered;
      if (terminal.rfind("ERR", 0) == 0) ++shed;
    }
    server.Stop();
    const bool shed_ok = answered == burst && shed > 0;
    std::printf("\nadmission at 2x queue depth: %d/%d answered, %d shed, "
                "%llu queued (%s)\n",
                answered, burst, shed,
                static_cast<unsigned long long>(
                    server.admission().total_queued()),
                shed_ok ? "shed, no hang" : "ADMISSION BROKEN");
    all_ok = all_ok && shed_ok;
  }

  bench::MaybeWriteBenchJson("server", bars);
  return all_ok ? 0 : 1;
}
