// Ablation A5 (§5.1's implementation-space discussion): predicate-level
// caching (Montage) vs function-level caching ([Jhi88]) vs bounded caches
// with FIFO replacement vs the adaptive self-disable. "Such alternatives
// do not form a focus of this paper ... we merely wish to point out that
// it is easy and beneficial to implement a reasonable solution."

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"

int main() {
  using namespace ppp;
  const int64_t scale = bench::BenchScale();
  auto db = bench::MakeBenchDatabase(scale);
  workload::BenchmarkConfig config;
  config.scale = scale;

  bench::PrintHeader(
      "Ablation A5 — §5.1 cache implementation alternatives (scale " +
      std::to_string(scale) + ")");

  struct Variant {
    const char* name;
    exec::ExecParams params;
  };
  std::vector<Variant> variants;
  {
    Variant v{"predicate (Montage)", {}};
    variants.push_back(v);
  }
  {
    Variant v{"function [Jhi88]", {}};
    v.params.cache_mode = exec::CacheMode::kFunction;
    variants.push_back(v);
  }
  {
    Variant v{"predicate, 64 entries", {}};
    v.params.cache_max_entries = 64;
    variants.push_back(v);
  }
  {
    Variant v{"predicate, adaptive", {}};
    v.params.adaptive_caching = true;
    variants.push_back(v);
  }
  {
    Variant v{"no caching", {}};
    v.params.predicate_caching = false;
    variants.push_back(v);
  }

  for (const char* id : {"Q1", "Q3"}) {
    std::printf("\n%s (PredicateMigration plans):\n", id);
    std::printf("%-26s %14s %s\n", "cache variant", "measured",
                "invocations");
    for (const Variant& variant : variants) {
      auto spec = workload::GetBenchmarkQuery(*db, config, id);
      PPP_CHECK(spec.ok());
      cost::CostParams cost_params;
      cost_params.predicate_caching = variant.params.predicate_caching;
      auto m = workload::RunWithAlgorithm(
          db.get(), *spec, optimizer::Algorithm::kMigration, cost_params,
          variant.params);
      PPP_CHECK(m.ok()) << m.status().ToString();
      std::string invs;
      for (const auto& [name, count] : m->invocations) {
        invs += name + "×" + std::to_string(count) + " ";
      }
      std::printf("%-26s %14.6g %s\n", variant.name, m->charged_time,
                  invs.c_str());
    }
  }
  std::printf(
      "\nReading: on Q1 the costly inputs are unique, so every cache\n"
      "variant invokes identically and the adaptive variant additionally\n"
      "frees its (useless) table — the paper's planned optimization. On\n"
      "Q3 the chosen plan evaluates the predicate above the inflating\n"
      "join, where bindings repeat ~10x: any §5.1 cache recovers the 10x,\n"
      "and only disabling caching pays full price.\n");
  return 0;
}
