// Table 2: physical characteristics of the benchmark relations — the
// reconstructed Hong–Stonebraker schema (cardinality, pages, tuple width,
// distinct counts of the attributes the queries use).

#include <cstdio>

#include "bench/bench_util.h"
#include "storage/page.h"

int main() {
  using namespace ppp;
  const int64_t scale = bench::BenchScale();
  auto db = bench::MakeBenchDatabase(scale, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});

  bench::PrintHeader("Table 2 — Benchmark relations (scale " +
                     std::to_string(scale) + "; paper scale 10000)");
  std::printf("%-6s %10s %8s %8s %10s %10s %10s %10s\n", "table", "tuples",
              "pages", "width", "d(a)", "d(a20)", "d(ua1)", "d(u100)");

  uint64_t total_pages = 0;
  for (int k = 1; k <= 10; ++k) {
    const std::string name = "t" + std::to_string(k);
    auto table = db->catalog().GetTable(name);
    if (!table.ok()) continue;
    const catalog::Table* t = *table;
    const double width =
        t->NumTuples() > 0
            ? static_cast<double>(t->NumPages()) * storage::kPageSize /
                  static_cast<double>(t->NumTuples())
            : 0;
    total_pages += static_cast<uint64_t>(t->NumPages());
    std::printf("%-6s %10lld %8lld %7.0fB %10lld %10lld %10lld %10lld\n",
                name.c_str(), static_cast<long long>(t->NumTuples()),
                static_cast<long long>(t->NumPages()), width,
                static_cast<long long>(t->GetColumnStats("a").num_distinct),
                static_cast<long long>(
                    t->GetColumnStats("a20").num_distinct),
                static_cast<long long>(
                    t->GetColumnStats("ua1").num_distinct),
                static_cast<long long>(
                    t->GetColumnStats("u100").num_distinct));
  }
  std::printf("\ntotal heap size: %.1f MB (paper: ~110 MB with indexes "
              "and catalogs at scale 10000)\n",
              static_cast<double>(total_pages) * storage::kPageSize / 1e6);
  std::printf("indexes: B-trees on a, a1, a10, a20 of every table; "
              "'u'-prefixed attributes unindexed (paper §2).\n");
  return 0;
}
