// Columnar batch execution on cheap-predicate-heavy scans. Phase 1 drives
// a four-deep chain of two-conjunct cheap comparison filters over a wide
// table and compares rows/sec between the row-oriented pipeline
// (vectorized off) and the columnar fast path (vectorized on): pages
// decode straight into column vectors via the zero-copy page view, each
// filter narrows a selection vector in a tight typed loop, and tuples only
// materialize for the ~2% of rows that survive the whole chain.
// Target: >= 5x scan-filter throughput, identical results.
//
// Phase 2 places an expensive UDF conjunction above the cheap filters
// (caching off, so the cheap prefix splits off as kernels and the UDF
// evaluates late over survivors) and checks the invariant vectorization
// must never break: byte-identical results and *exactly* equal UDF
// invocation counters across {vectorized off,on} x {1,4} workers.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "exec/executor.h"
#include "expr/predicate.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

int main() {
  using namespace ppp;
  using expr::Cmp;
  using expr::Col;
  using expr::CompareOp;
  using types::Tuple;
  using types::TypeId;
  using types::Value;

  const int64_t scale = bench::BenchScale(200);
  // 20000 at default scale; floored so per-run fixed costs (operator
  // build, kernel compile) can't mask the per-row ratio at smoke scales.
  const int64_t rows = std::max<int64_t>(100 * scale, 8000);

  storage::DiskManager disk;
  // Generous pool: the bench measures filter CPU throughput, not I/O.
  storage::BufferPool pool(&disk, 4096);
  catalog::Catalog catalog(&pool);
  auto table = catalog.CreateTable("t", {{"key", TypeId::kInt64},
                                         {"a", TypeId::kInt64},
                                         {"b", TypeId::kInt64},
                                         {"x", TypeId::kDouble},
                                         {"pad", TypeId::kString}});
  PPP_CHECK(table.ok()) << table.status().ToString();
  const std::string pad(40, 'p');
  for (int64_t i = 0; i < rows; ++i) {
    PPP_CHECK((*table)
                  ->Insert(Tuple({Value(i), Value(i % 100), Value(i % 50),
                                  Value(static_cast<double>(i % 1000) * 0.25),
                                  Value(pad)}))
                  .ok());
  }
  PPP_CHECK((*table)->Analyze().ok());
  PPP_CHECK(
      catalog.functions().RegisterCostlyPredicate("costly", 100, 0.5).ok());

  expr::TableBinding binding = {{"t", *catalog.GetTable("t")}};
  expr::PredicateAnalyzer analyzer(&catalog, binding);
  const auto analyze = [&](const expr::ExprPtr& e) {
    auto info = analyzer.Analyze(e);
    PPP_CHECK(info.ok()) << info.status().ToString();
    return *info;
  };

  // Four stacked filters of two or three cheap conjuncts each (the
  // "cheap-predicate-heavy" shape: ten comparisons per row for the scalar
  // path, ten kernel loops over shrinking selections for the columnar
  // one). The bottom filters see every row, the rest narrow to ~2% of
  // rows surviving to materialization.
  const auto cheap_chain = [&] {
    return plan::MakeFilter(
        plan::MakeFilter(
            plan::MakeFilter(
                plan::MakeFilter(
                    plan::MakeSeqScan("t", "t"),
                    analyze(expr::And(
                        expr::And(
                            Cmp(CompareOp::kGe, Col("t", "key"),
                                expr::Int(0)),
                            Cmp(CompareOp::kLt, Col("t", "key"),
                                expr::Int(rows))),
                        Cmp(CompareOp::kNe, Col("t", "key"),
                            expr::Int(rows / 2))))),
                analyze(expr::And(
                    expr::And(
                        Cmp(CompareOp::kGe, Col("t", "a"), expr::Int(0)),
                        Cmp(CompareOp::kLt, Col("t", "a"), expr::Int(30))),
                    Cmp(CompareOp::kNe, Col("t", "a"), expr::Int(15))))),
            analyze(expr::And(
                Cmp(CompareOp::kGe, Col("t", "b"), expr::Int(5)),
                Cmp(CompareOp::kLt, Col("t", "b"), expr::Int(25))))),
        analyze(expr::And(
            Cmp(CompareOp::kGe, Col("t", "x"), expr::Const(Value(25.0))),
            Cmp(CompareOp::kLt, Col("t", "x"), expr::Const(Value(50.0))))));
  };

  const auto run_once = [&](const plan::PlanNode& plan,
                            const exec::ExecParams& params,
                            exec::ExecStats* stats, double* wall) {
    exec::ExecContext ctx;
    ctx.catalog = &catalog;
    ctx.binding = binding;
    ctx.params = params;
    const auto started = std::chrono::steady_clock::now();
    auto result = exec::ExecutePlan(plan, &ctx, stats);
    *wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          started)
                .count();
    PPP_CHECK(result.ok()) << result.status().ToString();
    return workload::CanonicalResults(*result);
  };

  bench::PrintHeader("Columnar batch execution (" + std::to_string(rows) +
                     " rows, 4 cheap filters + 40B pad)");

  // -- Phase 1: cheap-chain throughput ------------------------------------
  plan::PlanPtr chain = cheap_chain();
  exec::ExecParams scalar_params;
  scalar_params.vectorized = false;
  exec::ExecParams vector_params;
  vector_params.vectorized = true;

  // Deterministic rep count (same for every config, a pure function of
  // the scale) so recorded walls are comparable across runs — the
  // bench_regress gate diffs them against the checked-in baseline, and a
  // timing-calibrated count would make totals incomparable. The first
  // scalar run doubles as warmup and produces the reference rows.
  exec::ExecStats warmup_stats;
  double warmup_wall = 0.0;
  const std::vector<std::string> reference =
      run_once(*chain, scalar_params, &warmup_stats, &warmup_wall);
  const int reps = static_cast<int>(
      std::max<int64_t>(1, std::min<int64_t>(1000, 1600000 / rows)));

  std::printf("%-12s %12s %14s %12s  (%d reps)\n", "config", "wall (s)",
              "rows/sec", "out rows", reps);
  std::vector<workload::Measurement> bars;
  std::map<std::string, double> wall_of;
  for (const bool vectorized : {false, true}) {
    const exec::ExecParams& params = vectorized ? vector_params
                                                : scalar_params;
    // Record min-per-rep x reps, not the sum: scheduler load spikes land
    // on individual reps, and the regression gate diffs these walls
    // against a baseline recorded on an idle machine.
    double best = 1e30;
    exec::ExecStats stats;
    for (int r = 0; r < reps; ++r) {
      exec::ExecStats rep_stats;
      double wall = 0.0;
      const std::vector<std::string> rows_out =
          run_once(*chain, params, &rep_stats, &wall);
      PPP_CHECK(rows_out == reference)
          << "phase-1 results changed with vectorized=" << vectorized;
      best = std::min(best, wall);
      stats = rep_stats;
    }
    const std::string config = vectorized ? "chain-vector" : "chain-scalar";
    const double total = best * reps;
    const double rows_per_sec =
        static_cast<double>(rows) * reps / std::max(total, 1e-9);
    wall_of[config] = total;
    std::printf("%-12s %12.3f %14.0f %12llu\n", config.c_str(), total,
                rows_per_sec,
                static_cast<unsigned long long>(stats.output_rows));

    workload::Measurement m;
    m.algorithm = config;
    m.output_rows = stats.output_rows;
    m.invocations = stats.invocations;
    m.io = stats.io;
    m.wall_seconds = total;
    m.charged_time = workload::ChargedTime(stats, catalog.functions(), {},
                                           &m.charged_io, &m.charged_udf);
    bars.push_back(std::move(m));
  }
  const double speedup = wall_of["chain-scalar"] / wall_of["chain-vector"];

  // -- Phase 2: UDF-above-cheap parity ------------------------------------
  // Filter(b >= 25 AND costly(key)) over Filter(a < 30) over SeqScan, with
  // caching off so the b >= 25 prefix splits into a kernel and costly()
  // runs late over the selection's survivors.
  plan::PlanPtr udf_plan = plan::MakeFilter(
      plan::MakeFilter(
          plan::MakeSeqScan("t", "t"),
          analyze(Cmp(CompareOp::kLt, Col("t", "a"), expr::Int(30)))),
      analyze(expr::And(Cmp(CompareOp::kGe, Col("t", "b"), expr::Int(25)),
                        expr::Call("costly", {Col("t", "key")}))));

  std::printf("\n%-12s %12s %14s %12s\n", "config", "wall (s)",
              "invocations", "rows");
  std::vector<std::string> udf_reference;
  uint64_t udf_calls = 0;
  bool parity_ok = true;
  for (const bool vectorized : {false, true}) {
    for (const size_t workers : {size_t{1}, size_t{4}}) {
      exec::ExecParams params;
      params.vectorized = vectorized;
      params.parallel_workers = workers;
      params.predicate_caching = false;
      exec::ExecStats stats;
      double wall = 0.0;
      const std::vector<std::string> rows_out =
          run_once(*udf_plan, params, &stats, &wall);
      const uint64_t calls = stats.invocations.at("costly");
      if (udf_reference.empty()) {
        udf_reference = rows_out;
        udf_calls = calls;
      } else {
        parity_ok = parity_ok && rows_out == udf_reference &&
                    calls == udf_calls;
      }
      const std::string config = std::string("udf-") +
                                 (vectorized ? "on" : "off") + "-w" +
                                 std::to_string(workers);
      std::printf("%-12s %12.3f %14llu %12llu\n", config.c_str(), wall,
                  static_cast<unsigned long long>(calls),
                  static_cast<unsigned long long>(stats.output_rows));

      workload::Measurement m;
      m.algorithm = config;
      m.output_rows = stats.output_rows;
      m.invocations = stats.invocations;
      m.io = stats.io;
      m.wall_seconds = wall;
      m.charged_time = workload::ChargedTime(stats, catalog.functions(), {},
                                             &m.charged_io, &m.charged_udf);
      bars.push_back(std::move(m));
    }
  }

  // Sanitizer builds skew the scalar/vector wall ratio; CI overrides the
  // floor there (PPP_VECTOR_MIN_SPEEDUP=1) to gate on parity alone.
  double min_speedup = 5.0;
  if (const char* env = std::getenv("PPP_VECTOR_MIN_SPEEDUP");
      env != nullptr && *env != '\0') {
    min_speedup = std::atof(env);
  }
  std::printf("\ncheap-chain speedup vectorized/scalar: %.2fx (%s %.1fx "
              "floor); UDF parity across {off,on} x {1,4} workers: %s.\n",
              speedup, speedup >= min_speedup ? "ok, >=" : "BELOW",
              min_speedup, parity_ok ? "exact" : "BROKEN");
  bench::MaybeWriteBenchJson("vector", bars);
  return speedup >= min_speedup && parity_ok ? 0 : 1;
}
