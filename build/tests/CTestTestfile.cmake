# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/types_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/predicate_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/cost_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/migration_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/subquery_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/bushy_test[1]_include.cmake")
include("/root/repo/build/tests/orderby_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/aggregate_test[1]_include.cmake")
