# Empty compiler generated dependencies file for bushy_test.
# This may be replaced when dependencies are built.
