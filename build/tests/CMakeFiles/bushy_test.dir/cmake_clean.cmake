file(REMOVE_RECURSE
  "CMakeFiles/bushy_test.dir/bushy_test.cc.o"
  "CMakeFiles/bushy_test.dir/bushy_test.cc.o.d"
  "bushy_test"
  "bushy_test.pdb"
  "bushy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bushy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
