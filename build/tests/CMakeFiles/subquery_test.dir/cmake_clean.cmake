file(REMOVE_RECURSE
  "CMakeFiles/subquery_test.dir/subquery_test.cc.o"
  "CMakeFiles/subquery_test.dir/subquery_test.cc.o.d"
  "subquery_test"
  "subquery_test.pdb"
  "subquery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subquery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
