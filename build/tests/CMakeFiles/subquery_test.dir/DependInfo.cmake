
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/subquery_test.cc" "tests/CMakeFiles/subquery_test.dir/subquery_test.cc.o" "gcc" "tests/CMakeFiles/subquery_test.dir/subquery_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/ppp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/subquery/CMakeFiles/ppp_subquery.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/ppp_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/ppp_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/ppp_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/ppp_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/ppp_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/ppp_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/ppp_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ppp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/ppp_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ppp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
