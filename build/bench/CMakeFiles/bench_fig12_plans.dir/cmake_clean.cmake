file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_plans.dir/bench_fig12_plans.cpp.o"
  "CMakeFiles/bench_fig12_plans.dir/bench_fig12_plans.cpp.o.d"
  "bench_fig12_plans"
  "bench_fig12_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
