# Empty compiler generated dependencies file for bench_fig12_plans.
# This may be replaced when dependencies are built.
