file(REMOVE_RECURSE
  "CMakeFiles/bench_opt_time.dir/bench_opt_time.cpp.o"
  "CMakeFiles/bench_opt_time.dir/bench_opt_time.cpp.o.d"
  "bench_opt_time"
  "bench_opt_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_opt_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
