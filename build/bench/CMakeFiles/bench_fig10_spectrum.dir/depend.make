# Empty dependencies file for bench_fig10_spectrum.
# This may be replaced when dependencies are built.
