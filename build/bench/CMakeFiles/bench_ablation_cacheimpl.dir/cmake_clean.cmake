file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cacheimpl.dir/bench_ablation_cacheimpl.cpp.o"
  "CMakeFiles/bench_ablation_cacheimpl.dir/bench_ablation_cacheimpl.cpp.o.d"
  "bench_ablation_cacheimpl"
  "bench_ablation_cacheimpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cacheimpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
