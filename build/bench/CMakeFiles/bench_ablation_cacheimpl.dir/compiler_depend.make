# Empty compiler generated dependencies file for bench_ablation_cacheimpl.
# This may be replaced when dependencies are built.
