file(REMOVE_RECURSE
  "CMakeFiles/ppp_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/ppp_bench_util.dir/bench_util.cc.o.d"
  "libppp_bench_util.a"
  "libppp_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppp_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
