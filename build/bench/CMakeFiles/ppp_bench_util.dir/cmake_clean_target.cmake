file(REMOVE_RECURSE
  "libppp_bench_util.a"
)
