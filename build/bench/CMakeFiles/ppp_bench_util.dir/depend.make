# Empty dependencies file for ppp_bench_util.
# This may be replaced when dependencies are built.
