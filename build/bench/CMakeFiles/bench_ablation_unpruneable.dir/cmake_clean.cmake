file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_unpruneable.dir/bench_ablation_unpruneable.cpp.o"
  "CMakeFiles/bench_ablation_unpruneable.dir/bench_ablation_unpruneable.cpp.o.d"
  "bench_ablation_unpruneable"
  "bench_ablation_unpruneable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_unpruneable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
