# Empty compiler generated dependencies file for bench_ablation_unpruneable.
# This may be replaced when dependencies are built.
