file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_query5.dir/bench_fig9_query5.cpp.o"
  "CMakeFiles/bench_fig9_query5.dir/bench_fig9_query5.cpp.o.d"
  "bench_fig9_query5"
  "bench_fig9_query5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_query5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
