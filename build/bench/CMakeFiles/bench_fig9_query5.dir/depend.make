# Empty dependencies file for bench_fig9_query5.
# This may be replaced when dependencies are built.
