# Empty compiler generated dependencies file for cost_crossover.
# This may be replaced when dependencies are built.
