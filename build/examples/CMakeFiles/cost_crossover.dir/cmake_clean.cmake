file(REMOVE_RECURSE
  "CMakeFiles/cost_crossover.dir/cost_crossover.cpp.o"
  "CMakeFiles/cost_crossover.dir/cost_crossover.cpp.o.d"
  "cost_crossover"
  "cost_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
