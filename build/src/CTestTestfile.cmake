# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("types")
subdirs("catalog")
subdirs("storage")
subdirs("expr")
subdirs("parser")
subdirs("plan")
subdirs("cost")
subdirs("optimizer")
subdirs("exec")
subdirs("subquery")
subdirs("workload")
