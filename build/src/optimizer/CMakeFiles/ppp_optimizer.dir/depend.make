# Empty dependencies file for ppp_optimizer.
# This may be replaced when dependencies are built.
