file(REMOVE_RECURSE
  "libppp_optimizer.a"
)
