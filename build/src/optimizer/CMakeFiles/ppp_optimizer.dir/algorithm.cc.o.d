src/optimizer/CMakeFiles/ppp_optimizer.dir/algorithm.cc.o: \
 /root/repo/src/optimizer/algorithm.cc /usr/include/stdc-predef.h \
 /root/repo/src/optimizer/algorithm.h
