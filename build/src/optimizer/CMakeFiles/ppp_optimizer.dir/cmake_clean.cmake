file(REMOVE_RECURSE
  "CMakeFiles/ppp_optimizer.dir/algorithm.cc.o"
  "CMakeFiles/ppp_optimizer.dir/algorithm.cc.o.d"
  "CMakeFiles/ppp_optimizer.dir/join_enumerator.cc.o"
  "CMakeFiles/ppp_optimizer.dir/join_enumerator.cc.o.d"
  "CMakeFiles/ppp_optimizer.dir/migration.cc.o"
  "CMakeFiles/ppp_optimizer.dir/migration.cc.o.d"
  "CMakeFiles/ppp_optimizer.dir/optimizer.cc.o"
  "CMakeFiles/ppp_optimizer.dir/optimizer.cc.o.d"
  "CMakeFiles/ppp_optimizer.dir/optimizer_context.cc.o"
  "CMakeFiles/ppp_optimizer.dir/optimizer_context.cc.o.d"
  "libppp_optimizer.a"
  "libppp_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppp_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
