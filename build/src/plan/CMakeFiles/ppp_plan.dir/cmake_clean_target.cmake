file(REMOVE_RECURSE
  "libppp_plan.a"
)
