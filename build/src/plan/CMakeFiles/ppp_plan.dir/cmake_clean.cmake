file(REMOVE_RECURSE
  "CMakeFiles/ppp_plan.dir/plan_node.cc.o"
  "CMakeFiles/ppp_plan.dir/plan_node.cc.o.d"
  "CMakeFiles/ppp_plan.dir/query_spec.cc.o"
  "CMakeFiles/ppp_plan.dir/query_spec.cc.o.d"
  "libppp_plan.a"
  "libppp_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppp_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
