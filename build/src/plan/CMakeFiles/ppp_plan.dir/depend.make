# Empty dependencies file for ppp_plan.
# This may be replaced when dependencies are built.
