file(REMOVE_RECURSE
  "libppp_catalog.a"
)
