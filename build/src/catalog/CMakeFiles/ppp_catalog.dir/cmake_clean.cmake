file(REMOVE_RECURSE
  "CMakeFiles/ppp_catalog.dir/catalog.cc.o"
  "CMakeFiles/ppp_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/ppp_catalog.dir/function_registry.cc.o"
  "CMakeFiles/ppp_catalog.dir/function_registry.cc.o.d"
  "CMakeFiles/ppp_catalog.dir/table.cc.o"
  "CMakeFiles/ppp_catalog.dir/table.cc.o.d"
  "libppp_catalog.a"
  "libppp_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppp_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
