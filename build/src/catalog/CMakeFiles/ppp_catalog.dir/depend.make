# Empty dependencies file for ppp_catalog.
# This may be replaced when dependencies are built.
