file(REMOVE_RECURSE
  "libppp_types.a"
)
