# Empty compiler generated dependencies file for ppp_types.
# This may be replaced when dependencies are built.
