file(REMOVE_RECURSE
  "CMakeFiles/ppp_types.dir/row_schema.cc.o"
  "CMakeFiles/ppp_types.dir/row_schema.cc.o.d"
  "CMakeFiles/ppp_types.dir/tuple.cc.o"
  "CMakeFiles/ppp_types.dir/tuple.cc.o.d"
  "CMakeFiles/ppp_types.dir/value.cc.o"
  "CMakeFiles/ppp_types.dir/value.cc.o.d"
  "libppp_types.a"
  "libppp_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppp_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
