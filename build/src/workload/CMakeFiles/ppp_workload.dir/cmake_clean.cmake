file(REMOVE_RECURSE
  "CMakeFiles/ppp_workload.dir/measurement.cc.o"
  "CMakeFiles/ppp_workload.dir/measurement.cc.o.d"
  "CMakeFiles/ppp_workload.dir/queries.cc.o"
  "CMakeFiles/ppp_workload.dir/queries.cc.o.d"
  "CMakeFiles/ppp_workload.dir/random_queries.cc.o"
  "CMakeFiles/ppp_workload.dir/random_queries.cc.o.d"
  "CMakeFiles/ppp_workload.dir/schema_gen.cc.o"
  "CMakeFiles/ppp_workload.dir/schema_gen.cc.o.d"
  "libppp_workload.a"
  "libppp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
