file(REMOVE_RECURSE
  "CMakeFiles/ppp_subquery.dir/rewrite.cc.o"
  "CMakeFiles/ppp_subquery.dir/rewrite.cc.o.d"
  "libppp_subquery.a"
  "libppp_subquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppp_subquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
