# Empty dependencies file for ppp_subquery.
# This may be replaced when dependencies are built.
