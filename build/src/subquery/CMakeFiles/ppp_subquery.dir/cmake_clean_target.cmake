file(REMOVE_RECURSE
  "libppp_subquery.a"
)
