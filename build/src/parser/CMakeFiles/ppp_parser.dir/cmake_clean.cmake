file(REMOVE_RECURSE
  "CMakeFiles/ppp_parser.dir/binder.cc.o"
  "CMakeFiles/ppp_parser.dir/binder.cc.o.d"
  "CMakeFiles/ppp_parser.dir/parser.cc.o"
  "CMakeFiles/ppp_parser.dir/parser.cc.o.d"
  "libppp_parser.a"
  "libppp_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppp_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
