file(REMOVE_RECURSE
  "libppp_parser.a"
)
