# Empty compiler generated dependencies file for ppp_parser.
# This may be replaced when dependencies are built.
