file(REMOVE_RECURSE
  "libppp_exec.a"
)
