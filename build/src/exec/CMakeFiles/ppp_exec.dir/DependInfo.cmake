
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/executor.cc" "src/exec/CMakeFiles/ppp_exec.dir/executor.cc.o" "gcc" "src/exec/CMakeFiles/ppp_exec.dir/executor.cc.o.d"
  "/root/repo/src/exec/filter_op.cc" "src/exec/CMakeFiles/ppp_exec.dir/filter_op.cc.o" "gcc" "src/exec/CMakeFiles/ppp_exec.dir/filter_op.cc.o.d"
  "/root/repo/src/exec/join_ops.cc" "src/exec/CMakeFiles/ppp_exec.dir/join_ops.cc.o" "gcc" "src/exec/CMakeFiles/ppp_exec.dir/join_ops.cc.o.d"
  "/root/repo/src/exec/misc_ops.cc" "src/exec/CMakeFiles/ppp_exec.dir/misc_ops.cc.o" "gcc" "src/exec/CMakeFiles/ppp_exec.dir/misc_ops.cc.o.d"
  "/root/repo/src/exec/operator.cc" "src/exec/CMakeFiles/ppp_exec.dir/operator.cc.o" "gcc" "src/exec/CMakeFiles/ppp_exec.dir/operator.cc.o.d"
  "/root/repo/src/exec/scan_ops.cc" "src/exec/CMakeFiles/ppp_exec.dir/scan_ops.cc.o" "gcc" "src/exec/CMakeFiles/ppp_exec.dir/scan_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ppp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/ppp_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/ppp_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/ppp_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/ppp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/ppp_types.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
