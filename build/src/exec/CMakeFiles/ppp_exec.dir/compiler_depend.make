# Empty compiler generated dependencies file for ppp_exec.
# This may be replaced when dependencies are built.
