file(REMOVE_RECURSE
  "CMakeFiles/ppp_exec.dir/executor.cc.o"
  "CMakeFiles/ppp_exec.dir/executor.cc.o.d"
  "CMakeFiles/ppp_exec.dir/filter_op.cc.o"
  "CMakeFiles/ppp_exec.dir/filter_op.cc.o.d"
  "CMakeFiles/ppp_exec.dir/join_ops.cc.o"
  "CMakeFiles/ppp_exec.dir/join_ops.cc.o.d"
  "CMakeFiles/ppp_exec.dir/misc_ops.cc.o"
  "CMakeFiles/ppp_exec.dir/misc_ops.cc.o.d"
  "CMakeFiles/ppp_exec.dir/operator.cc.o"
  "CMakeFiles/ppp_exec.dir/operator.cc.o.d"
  "CMakeFiles/ppp_exec.dir/scan_ops.cc.o"
  "CMakeFiles/ppp_exec.dir/scan_ops.cc.o.d"
  "libppp_exec.a"
  "libppp_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppp_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
