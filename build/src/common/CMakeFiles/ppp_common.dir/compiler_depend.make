# Empty compiler generated dependencies file for ppp_common.
# This may be replaced when dependencies are built.
