file(REMOVE_RECURSE
  "libppp_common.a"
)
