file(REMOVE_RECURSE
  "CMakeFiles/ppp_common.dir/logging.cc.o"
  "CMakeFiles/ppp_common.dir/logging.cc.o.d"
  "CMakeFiles/ppp_common.dir/status.cc.o"
  "CMakeFiles/ppp_common.dir/status.cc.o.d"
  "CMakeFiles/ppp_common.dir/string_util.cc.o"
  "CMakeFiles/ppp_common.dir/string_util.cc.o.d"
  "libppp_common.a"
  "libppp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
