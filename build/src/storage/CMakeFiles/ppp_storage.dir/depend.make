# Empty dependencies file for ppp_storage.
# This may be replaced when dependencies are built.
