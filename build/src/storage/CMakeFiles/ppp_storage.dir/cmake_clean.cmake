file(REMOVE_RECURSE
  "CMakeFiles/ppp_storage.dir/btree.cc.o"
  "CMakeFiles/ppp_storage.dir/btree.cc.o.d"
  "CMakeFiles/ppp_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/ppp_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/ppp_storage.dir/disk_manager.cc.o"
  "CMakeFiles/ppp_storage.dir/disk_manager.cc.o.d"
  "CMakeFiles/ppp_storage.dir/heap_file.cc.o"
  "CMakeFiles/ppp_storage.dir/heap_file.cc.o.d"
  "libppp_storage.a"
  "libppp_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppp_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
