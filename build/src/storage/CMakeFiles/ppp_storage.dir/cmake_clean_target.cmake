file(REMOVE_RECURSE
  "libppp_storage.a"
)
