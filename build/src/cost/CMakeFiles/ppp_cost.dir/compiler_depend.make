# Empty compiler generated dependencies file for ppp_cost.
# This may be replaced when dependencies are built.
