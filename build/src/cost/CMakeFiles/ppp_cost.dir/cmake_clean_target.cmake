file(REMOVE_RECURSE
  "libppp_cost.a"
)
