file(REMOVE_RECURSE
  "CMakeFiles/ppp_cost.dir/cost_model.cc.o"
  "CMakeFiles/ppp_cost.dir/cost_model.cc.o.d"
  "libppp_cost.a"
  "libppp_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppp_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
