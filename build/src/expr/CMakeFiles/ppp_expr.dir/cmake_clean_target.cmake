file(REMOVE_RECURSE
  "libppp_expr.a"
)
