# Empty dependencies file for ppp_expr.
# This may be replaced when dependencies are built.
