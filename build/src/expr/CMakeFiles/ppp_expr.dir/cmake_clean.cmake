file(REMOVE_RECURSE
  "CMakeFiles/ppp_expr.dir/evaluator.cc.o"
  "CMakeFiles/ppp_expr.dir/evaluator.cc.o.d"
  "CMakeFiles/ppp_expr.dir/expr.cc.o"
  "CMakeFiles/ppp_expr.dir/expr.cc.o.d"
  "CMakeFiles/ppp_expr.dir/predicate.cc.o"
  "CMakeFiles/ppp_expr.dir/predicate.cc.o.d"
  "libppp_expr.a"
  "libppp_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppp_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
