#include <gtest/gtest.h>

#include "obs/trace.h"
#include "workload/database.h"
#include "workload/measurement.h"
#include "workload/queries.h"
#include "workload/schema_gen.h"

namespace ppp {
namespace {

class OptTraceQueryTest : public ::testing::Test {
 protected:
  OptTraceQueryTest() {
    config_.scale = 300;
    config_.table_numbers = {3, 6, 10};
    EXPECT_TRUE(workload::LoadBenchmarkDatabase(&db_, config_).ok());
    EXPECT_TRUE(workload::RegisterBenchmarkFunctions(&db_).ok());
  }

  workload::Measurement Run(const std::string& id,
                            optimizer::Algorithm algorithm,
                            obs::OptTrace* trace) {
    auto spec = workload::GetBenchmarkQuery(db_, config_, id);
    EXPECT_TRUE(spec.ok()) << spec.status();
    auto m = workload::RunWithAlgorithm(&db_, *spec, algorithm, {}, {},
                                        /*execute=*/false,
                                        /*collect_explain=*/false, trace);
    EXPECT_TRUE(m.ok()) << m.status();
    return *m;
  }

  workload::Database db_;
  workload::BenchmarkConfig config_;
};

TEST_F(OptTraceQueryTest, MigrationGroupRanksAreNonDecreasing) {
  // §4.4: after composing out-of-order joins into groups, group ranks
  // along every stream are non-decreasing going up — the series-parallel
  // invariant. Q4 is built to force a composition on the t3 stream.
  obs::OptTrace trace;
  Run("Q4", optimizer::Algorithm::kMigration, &trace);
  const auto groups = trace.Find("migration.groups");
  ASSERT_FALSE(groups.empty());
  for (const obs::TraceEntry* entry : groups) {
    for (size_t i = 1; i < entry->values.size(); ++i) {
      EXPECT_GE(entry->values[i], entry->values[i - 1])
          << entry->detail << " at group " << i;
    }
  }
}

TEST_F(OptTraceQueryTest, DpStatsCountEnumeration) {
  obs::OptTrace trace;
  const workload::Measurement m =
      Run("Q4", optimizer::Algorithm::kMigration, &trace);
  EXPECT_GT(m.dp_stats.subplans_generated, 0u);
  EXPECT_GT(m.dp_stats.subplans_retained, 0u);
  EXPECT_GE(m.dp_stats.subplans_generated, m.dp_stats.subplans_retained);
  // The enumerator announces its totals once per run.
  EXPECT_EQ(trace.Find("dp.summary").size(), 1u);
}

TEST_F(OptTraceQueryTest, ExhaustiveNeverPrunes) {
  obs::OptTrace trace;
  const workload::Measurement m =
      Run("Q1", optimizer::Algorithm::kExhaustive, &trace);
  EXPECT_EQ(m.dp_stats.subplans_pruned, 0u);
  EXPECT_TRUE(trace.Find("dp.prune").empty());
}

TEST_F(OptTraceQueryTest, PruningAlgorithmsRecordPrunes) {
  obs::OptTrace trace;
  const workload::Measurement m =
      Run("Q4", optimizer::Algorithm::kPushDown, &trace);
  EXPECT_GT(m.dp_stats.subplans_pruned, 0u);
  EXPECT_EQ(trace.Find("dp.prune").size(), m.dp_stats.subplans_pruned);
}

TEST_F(OptTraceQueryTest, PullRankTracesHoists) {
  // Q1's costly100 on t10 has rank below the join's, so PullRank hoists
  // it above the join and the trace records the decision.
  obs::OptTrace trace;
  Run("Q1", optimizer::Algorithm::kPullRank, &trace);
  const auto hoists = trace.Find("pullrank.hoist");
  ASSERT_FALSE(hoists.empty());
  for (const obs::TraceEntry* entry : hoists) {
    // Each hoist records {predicate rank, stream rank}.
    ASSERT_EQ(entry->values.size(), 2u);
  }
}

TEST_F(OptTraceQueryTest, TracingDoesNotChangeTheChosenPlan) {
  obs::OptTrace trace;
  const workload::Measurement traced =
      Run("Q4", optimizer::Algorithm::kMigration, &trace);
  const workload::Measurement untraced =
      Run("Q4", optimizer::Algorithm::kMigration, nullptr);
  EXPECT_EQ(traced.plan_text, untraced.plan_text);
  EXPECT_DOUBLE_EQ(traced.est_cost, untraced.est_cost);
}

}  // namespace
}  // namespace ppp
